//! Loop edge cases of the lowering, asserted by *trace equivalence*: for
//! every test input, the lowered model's observables (return value, printed
//! output) must equal the MiniPy interpreter's. These are exactly the
//! interactions the `#ret`/`#brk` special-variable encoding has to get
//! right: nested loops with `break` plus early `return`, `continue`
//! skipping (or rather *not* skipping) the iterator update, and `while`
//! conditions reading variables mutated on the `break` path.

use clara_lang::{parse_program, run_function, Limits, Value};
use clara_model::{execute, lower_entry, Fuel, TraceStatus};

/// Asserts model/interpreter agreement on every input.
fn assert_trace_equivalent(src: &str, entry: &str, inputs: &[Vec<Value>]) {
    let source = parse_program(src).expect("test program parses");
    let program = lower_entry(&source, entry).expect("test program lowers");
    for args in inputs {
        let trace = execute(&program, args, Fuel::default());
        assert_eq!(trace.status, TraceStatus::Completed, "model diverged on {args:?}:\n{src}");
        let direct = run_function(&source, entry, args, Limits::default())
            .unwrap_or_else(|e| panic!("interpreter failed on {args:?}: {e}\n{src}"));
        assert!(
            trace.return_value().py_eq(&direct.return_value) || {
                // Functions that fall off the end return None in the
                // interpreter and leave `return` undefined in the model.
                trace.return_value() == Value::Undef && direct.return_value == Value::None
            },
            "return diverged on {args:?}: model {:?}, interpreter {:?}\n{src}",
            trace.return_value(),
            direct.return_value,
        );
        assert_eq!(trace.output(), direct.output, "output diverged on {args:?}\n{src}");
    }
}

fn ints(values: &[i64]) -> Vec<Vec<Value>> {
    values.iter().map(|v| vec![Value::Int(*v)]).collect()
}

#[test]
fn nested_loops_with_inner_break_and_early_return() {
    // The inner loop breaks (inner `#brk`), and an early `return` fires from
    // inside it on some inputs — the `#ret` guard must stop both the inner
    // and the outer loop, and the code after the loops must not re-execute.
    let src = "\
def f(n):
    total = 0
    i = 0
    while i < n:
        j = 0
        while j < n:
            if total > 20:
                return total
            if j == i:
                total = total + i
                break
            j = j + 1
        i = i + 1
    return total
";
    assert_trace_equivalent(src, "f", &ints(&[0, 1, 3, 5, 8, 13]));
}

#[test]
fn early_return_from_the_outer_loop_skips_inner_loops() {
    let src = "\
def f(n):
    acc = 0
    for i in range(n):
        if i == 3:
            return acc
        for j in range(i):
            acc = acc + j
    return acc
";
    assert_trace_equivalent(src, "f", &ints(&[0, 2, 3, 4, 10]));
}

#[test]
fn continue_does_not_skip_the_iterator_update() {
    // `continue` skips the remainder of the body, but the desugared
    // iterator advance (`x = head(#it); #it = tail(#it)`) is a loop
    // *prelude* that must run unconditionally — otherwise the model spins
    // on the same element forever.
    let src = "\
def f(n):
    total = 0
    for x in range(n):
        if x % 2 == 0:
            continue
        total = total + x
    return total
";
    assert_trace_equivalent(src, "f", &ints(&[0, 1, 2, 5, 10]));
}

#[test]
fn continue_before_the_manual_update_in_a_while_loop() {
    // The classic while-loop variant: `continue` placed after the manual
    // increment keeps the loop productive; the guard composition must not
    // resurrect the skipped statements.
    let src = "\
def f(n):
    i = 0
    out = 0
    while i < n:
        i = i + 1
        if i % 3 == 0:
            continue
        out = out + i
    return out
";
    assert_trace_equivalent(src, "f", &ints(&[0, 1, 3, 7, 12]));
}

#[test]
fn while_condition_reads_a_variable_mutated_on_the_break_path() {
    // `done` is both the loop condition's input and mutated immediately
    // before `break`: the composed block must order the mutation before the
    // break flag, and the loop condition must see the pre-iteration value.
    let src = "\
def f(n):
    done = 0
    count = 0
    while done < n:
        count = count + 1
        if count > 4:
            done = n + 10
            break
        done = done + 2
    return done + count
";
    assert_trace_equivalent(src, "f", &ints(&[0, 1, 4, 9, 30]));
}

#[test]
fn break_and_return_in_the_same_loop_body() {
    let src = "\
def f(n):
    i = 0
    while i < n:
        if i == 7:
            return 100
        if i * i > n:
            break
        i = i + 1
    return i
";
    assert_trace_equivalent(src, "f", &ints(&[0, 3, 10, 40, 100]));
}

#[test]
fn print_inside_nested_loops_with_break() {
    let src = "\
def f(n):
    for i in range(n):
        row = ''
        j = 0
        while j < n:
            if j > i:
                break
            row = row + str(j)
            j = j + 1
        print(row)
";
    assert_trace_equivalent(src, "f", &ints(&[0, 1, 3, 5]));
}
