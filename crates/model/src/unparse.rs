//! Un-desugaring of the surface IR back into MiniPy source text.
//!
//! The mutation engine of `clara-corpus` rewrites programs at the
//! language-neutral surface-IR level and then needs *real source files* that
//! re-parse through the original frontend. For MiniPy that means inverting
//! the desugarings of [`crate::lower`]: `x = append(x, e)` becomes
//! `x.append(e)`, `x = store(x, i, e)` becomes `x[i] = e`, and an
//! [`SurfaceStmt::Output`] piece list of the canonical
//! `str(a), " ", str(b), "\n"` shape becomes `print(a, b)`.
//!
//! The inversion is partial by design: a mutation can produce an `Output`
//! piece list no `print` statement desugars to (e.g. after its trailing
//! newline was dropped). Such functions are not expressible as MiniPy source
//! and rendering returns an error — the mutation engine simply discards the
//! variant, keeping the guarantee that every emitted mutant re-parses.

use clara_lang::ast::{Expr, Function, Lit, SourceProgram, Stmt, Target};
use clara_lang::program_to_string;

use crate::surface::{SurfaceFunction, SurfaceStmt};

/// Why a surface function could not be rendered as MiniPy source.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct UnparseError {
    /// 1-based source line of the statement that failed to render.
    pub line: u32,
    /// Human-readable description.
    pub message: String,
}

impl UnparseError {
    fn new(line: u32, message: impl Into<String>) -> Self {
        UnparseError { line, message: message.into() }
    }
}

impl std::fmt::Display for UnparseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for UnparseError {}

/// Renders a surface function as MiniPy source text.
///
/// # Errors
///
/// Returns an [`UnparseError`] when the function contains a construct with
/// no MiniPy spelling (see the module docs).
pub fn minipy_source(function: &SurfaceFunction) -> Result<String, UnparseError> {
    let function = minipy_function(function)?;
    Ok(program_to_string(&SourceProgram { functions: vec![function] }))
}

/// Un-desugars a surface function into a MiniPy AST function.
///
/// # Errors
///
/// See [`minipy_source`].
pub fn minipy_function(function: &SurfaceFunction) -> Result<Function, UnparseError> {
    Ok(Function {
        name: function.name.clone(),
        params: function.params.clone(),
        body: unparse_stmts(&function.body)?,
        line: function.line,
    })
}

fn unparse_stmts(stmts: &[SurfaceStmt]) -> Result<Vec<Stmt>, UnparseError> {
    stmts.iter().map(unparse_stmt).collect()
}

fn unparse_stmt(stmt: &SurfaceStmt) -> Result<Stmt, UnparseError> {
    Ok(match stmt {
        SurfaceStmt::Assign { var, value, line } => unparse_assign(var, value, *line),
        SurfaceStmt::If { cond, then_body, else_body, line } => Stmt::If {
            cond: cond.clone(),
            then_body: unparse_stmts(then_body)?,
            else_body: unparse_stmts(else_body)?,
            line: *line,
        },
        SurfaceStmt::While { cond, body, line } => {
            Stmt::While { cond: cond.clone(), body: unparse_stmts(body)?, line: *line }
        }
        SurfaceStmt::ForEach { var, iter, body, line } => {
            Stmt::For { var: var.clone(), iter: iter.clone(), body: unparse_stmts(body)?, line: *line }
        }
        SurfaceStmt::Return { value, line } => {
            let value = if *value == Expr::Lit(Lit::None) { None } else { Some(value.clone()) };
            Stmt::Return { value, line: *line }
        }
        SurfaceStmt::Output { pieces, line } => Stmt::Print { args: print_args(pieces, *line)?, line: *line },
        SurfaceStmt::Break { line } => Stmt::Break { line: *line },
        SurfaceStmt::Continue { line } => Stmt::Continue { line: *line },
        SurfaceStmt::Nop { line } => Stmt::Pass { line: *line },
    })
}

/// Inverts the assignment desugarings of `lower`: `append`/`store` calls on
/// the assigned variable itself come from `xs.append(e)` / `a[i] = e`.
fn unparse_assign(var: &str, value: &Expr, line: u32) -> Stmt {
    match value {
        Expr::Call(name, args) if name == "append" && args.len() == 2 && args[0] == Expr::var(var) => {
            Stmt::ExprStmt {
                expr: Expr::Method(Box::new(Expr::var(var)), "append".to_owned(), vec![args[1].clone()]),
                line,
            }
        }
        Expr::Call(name, args) if name == "store" && args.len() == 3 && args[0] == Expr::var(var) => {
            Stmt::Assign {
                target: Target::Index(var.to_owned(), args[1].clone()),
                op: None,
                value: args[2].clone(),
                line,
            }
        }
        Expr::Method(recv, name, args) if name == "pop" && args.is_empty() && **recv == Expr::var(var) => {
            Stmt::ExprStmt {
                expr: Expr::Method(Box::new(Expr::var(var)), "pop".to_owned(), Vec::new()),
                line,
            }
        }
        _ => Stmt::Assign { target: Target::Name(var.to_owned()), op: None, value: value.clone(), line },
    }
}

/// Inverts the `print` desugaring: the canonical piece list is
/// `str(a₁), " ", str(a₂), ..., "\n"`.
fn print_args(pieces: &[Expr], line: u32) -> Result<Vec<Expr>, UnparseError> {
    let Some((last, rest)) = pieces.split_last() else {
        return Err(UnparseError::new(line, "output without a trailing newline piece"));
    };
    if *last != Expr::str("\n") {
        return Err(UnparseError::new(line, "output without a trailing newline piece"));
    }
    let mut args = Vec::new();
    for (i, piece) in rest.iter().enumerate() {
        if i % 2 == 1 {
            // Separator slot.
            if *piece != Expr::str(" ") {
                return Err(UnparseError::new(line, "output pieces are not print-shaped"));
            }
            continue;
        }
        match piece {
            Expr::Call(name, inner) if name == "str" && inner.len() == 1 => args.push(inner[0].clone()),
            _ => return Err(UnparseError::new(line, "output piece is not a str(...) conversion")),
        }
    }
    Ok(args)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lower::surface_function;
    use clara_lang::parse_program;

    /// Parsing, desugaring to the surface IR and rendering back must be the
    /// identity on canonical source (the pretty-printer's own output).
    #[test]
    fn desugar_then_unparse_round_trips_canonical_sources() {
        for src in [
            "def f(x):\n    return x + 1\n",
            "def f(xs):\n    out = []\n    for x in xs:\n        out.append(float(x))\n    return out\n",
            "def f(a):\n    a[0] = 1\n    a.pop()\n    return a\n",
            "def f(n):\n    i = 0\n    while i < n:\n        print(i, n)\n        i = i + 1\n    return i\n",
            "def f(n):\n    if n > 0:\n        print(n)\n    else:\n        pass\n    return 0\n",
        ] {
            let parsed = parse_program(src).unwrap();
            let canonical = program_to_string(&parsed);
            let surface = surface_function(&parsed.functions[0]).unwrap();
            let rendered = minipy_source(&surface).unwrap();
            let reparsed = parse_program(&rendered).expect("rendered source re-parses");
            assert_eq!(program_to_string(&reparsed), canonical, "round trip changed structure for:\n{src}");
        }
    }

    #[test]
    fn augmented_assignments_survive_as_plain_assignments() {
        let parsed = parse_program("def f(x):\n    x += 2\n    return x\n").unwrap();
        let surface = surface_function(&parsed.functions[0]).unwrap();
        let rendered = minipy_source(&surface).unwrap();
        assert!(rendered.contains("x = x + 2"), "{rendered}");
        assert!(parse_program(&rendered).is_ok());
    }

    #[test]
    fn malformed_output_pieces_are_rejected() {
        let function = SurfaceFunction {
            name: "f".into(),
            params: vec![],
            body: vec![SurfaceStmt::Output { pieces: vec![Expr::str("no newline")], line: 2 }],
            line: 1,
        };
        let err = minipy_source(&function).unwrap_err();
        assert!(err.to_string().contains("newline"), "{err}");
    }
}
