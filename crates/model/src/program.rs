//! The Clara program model (Definitions 3.1–3.2 of the paper).
//!
//! A [`Program`] is a tuple `(L, ℓ_init, V, U, S)`: a finite set of locations,
//! an initial location, a finite set of variables, an *update function* `U`
//! assigning an expression to every location/variable pair, and a *successor
//! function* `S` mapping a location and a branch outcome to the next location
//! (or to the special end marker).

use std::collections::HashMap;
use std::fmt;

use clara_lang::{expr_to_string, Expr};

/// Names of the special model variables (the set `V♯` of Definition 3.1).
pub mod special {
    /// The branch-condition variable `?`.
    pub const COND: &str = "?";
    /// The return-value variable.
    pub const RETURN: &str = "return";
    /// Boolean flag recording that the program has executed a `return`.
    pub const RET_FLAG: &str = "#ret";
    /// Accumulated printed output.
    pub const OUT: &str = "#out";

    /// Returns `true` for special (model-introduced) variable names,
    /// including generated iterator (`#it<n>`) and break (`#brk<n>`) flags.
    pub fn is_special(name: &str) -> bool {
        name == COND || name == RETURN || name.starts_with('#')
    }

    /// The special variables present in every lowered program, in a fixed
    /// order.
    pub fn always_present() -> [&'static str; 4] {
        [COND, RETURN, RET_FLAG, OUT]
    }
}

/// A program location (an index into [`Program::locations`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Loc(pub usize);

impl fmt::Display for Loc {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "ℓ{}", self.0)
    }
}

/// The successor of a location for a given branch outcome.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Succ {
    /// Control continues at the given location.
    Loc(Loc),
    /// The program terminates (the special value `end`).
    End,
}

/// The role a location plays in the control-flow structure; used to build
/// human-readable feedback and the structural signature.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LocKind {
    /// A loop-free basic block (possibly collapsed if-then-else code).
    Block,
    /// The condition location of a loop.
    LoopCond,
    /// A block that additionally decides a branch containing loops.
    Branch,
}

/// Metadata about a location.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LocInfo {
    /// What kind of location this is.
    pub kind: LocKind,
    /// 1-based source line this location is anchored at.
    pub line: u32,
    /// Human-readable description, e.g. `"the loop at line 3"`.
    pub description: String,
}

/// The control-flow structure of a program reduced to its looping/branching
/// skeleton (Definition 4.1 is realised by comparing these signatures; two
/// lowered programs have the same control flow iff their signatures are
/// equal, in which case locations correspond positionally).
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum StructSig {
    /// A loop-free basic block.
    Block,
    /// A loop whose body has the given structure.
    Loop(Vec<StructSig>),
    /// A branch (if-then-else containing loops) with the two branch
    /// structures.
    Branch(Vec<StructSig>, Vec<StructSig>),
}

impl StructSig {
    /// A compact textual rendering of a structure sequence, useful as a
    /// clustering pre-filter key and in debug output.
    pub fn sequence_key(sigs: &[StructSig]) -> String {
        fn render(sig: &StructSig, out: &mut String) {
            match sig {
                StructSig::Block => out.push('B'),
                StructSig::Loop(body) => {
                    out.push_str("L(");
                    for s in body {
                        render(s, out);
                    }
                    out.push(')');
                }
                StructSig::Branch(then_sigs, else_sigs) => {
                    out.push_str("I(");
                    for s in then_sigs {
                        render(s, out);
                    }
                    out.push('|');
                    for s in else_sigs {
                        render(s, out);
                    }
                    out.push(')');
                }
            }
        }
        let mut out = String::new();
        for sig in sigs {
            render(sig, &mut out);
        }
        out
    }
}

/// A program in the Clara model (Definition 3.2), produced by lowering a
/// MiniPy function (`clara-model::lower`) and consumed by the matching,
/// clustering and repair algorithms in `clara-core`.
#[derive(Debug, Clone, PartialEq)]
pub struct Program {
    /// Name of the function this program was lowered from.
    pub name: String,
    /// Parameter names (these are also ordinary variables).
    pub params: Vec<String>,
    /// Per-location metadata; the location set `L` is `0..locations.len()`.
    pub locations: Vec<LocInfo>,
    /// The initial location `ℓ_init`.
    pub init: Loc,
    /// All variables `V` (user variables, parameters and special variables).
    pub vars: Vec<String>,
    /// The control-flow skeleton used for structural matching.
    pub signature: Vec<StructSig>,
    updates: HashMap<usize, Vec<(String, Expr)>>,
    succ: Vec<(Succ, Succ)>,
    expr_lines: HashMap<(usize, String), u32>,
}

impl Program {
    /// Creates an empty program shell. Used by the lowering pass and by the
    /// repair algorithm when it constructs a repaired program.
    pub fn new(name: String, params: Vec<String>) -> Self {
        Program {
            name,
            params,
            locations: Vec::new(),
            init: Loc(0),
            vars: Vec::new(),
            signature: Vec::new(),
            updates: HashMap::new(),
            succ: Vec::new(),
            expr_lines: HashMap::new(),
        }
    }

    /// Adds a location and returns its identifier.
    pub fn add_location(&mut self, info: LocInfo) -> Loc {
        let loc = Loc(self.locations.len());
        self.locations.push(info);
        self.succ.push((Succ::End, Succ::End));
        loc
    }

    /// Sets the update expression `U(loc, var) = expr`.
    pub fn set_update(&mut self, loc: Loc, var: &str, expr: Expr, line: u32) {
        let entry = self.updates.entry(loc.0).or_default();
        if let Some(slot) = entry.iter_mut().find(|(name, _)| name == var) {
            slot.1 = expr;
        } else {
            entry.push((var.to_owned(), expr));
        }
        self.expr_lines.insert((loc.0, var.to_owned()), line);
    }

    /// Sets the successors of `loc`.
    pub fn set_succ(&mut self, loc: Loc, on_true: Succ, on_false: Succ) {
        self.succ[loc.0] = (on_true, on_false);
    }

    /// Registers a variable name (idempotent).
    pub fn add_var(&mut self, name: &str) {
        if !self.vars.iter().any(|v| v == name) {
            self.vars.push(name.to_owned());
        }
    }

    /// Removes the explicit update `U(loc, var)`, reverting it to the
    /// identity. Used when a repair deletes a variable.
    pub fn remove_update(&mut self, loc: Loc, var: &str) {
        if let Some(entries) = self.updates.get_mut(&loc.0) {
            entries.retain(|(name, _)| name != var);
        }
        self.expr_lines.remove(&(loc.0, var.to_owned()));
    }

    /// Removes a variable from the variable set (its updates should be
    /// removed first with [`Program::remove_update`]).
    pub fn remove_var(&mut self, name: &str) {
        self.vars.retain(|v| v != name);
    }

    /// The number of locations `|L|`.
    pub fn location_count(&self) -> usize {
        self.locations.len()
    }

    /// Iterates over all locations.
    pub fn locs(&self) -> impl Iterator<Item = Loc> + '_ {
        (0..self.locations.len()).map(Loc)
    }

    /// The update expression `U(loc, var)`. Variables without an explicit
    /// update keep their value, i.e. the update is the identity `var`.
    pub fn update(&self, loc: Loc, var: &str) -> Expr {
        self.explicit_update(loc, var).cloned().unwrap_or_else(|| Expr::Var(var.to_owned()))
    }

    /// The explicitly set update expression, if any (`None` means identity).
    pub fn explicit_update(&self, loc: Loc, var: &str) -> Option<&Expr> {
        self.updates
            .get(&loc.0)
            .and_then(|entries| entries.iter().find(|(name, _)| name == var))
            .map(|(_, expr)| expr)
    }

    /// All explicit updates at `loc`, in insertion order.
    pub fn updates_at(&self, loc: Loc) -> &[(String, Expr)] {
        self.updates.get(&loc.0).map(Vec::as_slice).unwrap_or(&[])
    }

    /// The successor `S(loc, branch)`.
    pub fn succ(&self, loc: Loc, branch: bool) -> Succ {
        let (on_true, on_false) = self.succ[loc.0];
        if branch {
            on_true
        } else {
            on_false
        }
    }

    /// Returns `true` if the two branch successors of `loc` differ, i.e. the
    /// value of `?` at `loc` actually decides control flow.
    pub fn is_branching(&self, loc: Loc) -> bool {
        let (on_true, on_false) = self.succ[loc.0];
        on_true != on_false
    }

    /// The source line an update was anchored at (for feedback).
    pub fn update_line(&self, loc: Loc, var: &str) -> Option<u32> {
        self.expr_lines.get(&(loc.0, var.to_owned())).copied()
    }

    /// Metadata of a location.
    pub fn loc_info(&self, loc: Loc) -> &LocInfo {
        &self.locations[loc.0]
    }

    /// Whether two programs have the same control flow (Definition 4.1):
    /// lowering is deterministic, so equality of the structural signatures is
    /// the structural-matching check, and locations then correspond
    /// positionally (the structural matching `π` is the identity).
    pub fn same_control_flow(&self, other: &Program) -> bool {
        self.signature == other.signature && self.location_count() == other.location_count()
    }

    /// The user-visible (non-special) variables.
    pub fn user_vars(&self) -> Vec<String> {
        self.vars.iter().filter(|v| !special::is_special(v)).cloned().collect()
    }

    /// Total number of expression AST nodes over all explicit updates;
    /// used as the program-size normaliser for relative repair size.
    pub fn ast_size(&self) -> usize {
        self.updates
            .values()
            .flat_map(|entries| entries.iter())
            .map(|(_, expr)| expr.size())
            .sum::<usize>()
            .max(1)
    }
}

impl fmt::Display for Program {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "program {}({}):", self.name, self.params.join(", "))?;
        writeln!(f, "  structure: {}", StructSig::sequence_key(&self.signature))?;
        for loc in self.locs() {
            let info = self.loc_info(loc);
            writeln!(f, "  {loc} ({}):", info.description)?;
            for (var, expr) in self.updates_at(loc) {
                writeln!(f, "    {var} := {}", expr_to_string(expr))?;
            }
            let (t, fls) = (self.succ(loc, true), self.succ(loc, false));
            let show = |s: Succ| match s {
                Succ::Loc(l) => l.to_string(),
                Succ::End => "end".to_owned(),
            };
            writeln!(f, "    succ: true -> {}, false -> {}", show(t), show(fls))?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn update_defaults_to_identity() {
        let mut p = Program::new("f".into(), vec!["x".into()]);
        let l0 = p.add_location(LocInfo { kind: LocKind::Block, line: 1, description: "entry".into() });
        p.add_var("x");
        assert_eq!(p.update(l0, "x"), Expr::var("x"));
        p.set_update(l0, "x", Expr::int(1), 1);
        assert_eq!(p.update(l0, "x"), Expr::int(1));
        assert_eq!(p.update_line(l0, "x"), Some(1));
    }

    #[test]
    fn successors_and_branching() {
        let mut p = Program::new("f".into(), vec![]);
        let l0 = p.add_location(LocInfo { kind: LocKind::Block, line: 1, description: "b".into() });
        let l1 = p.add_location(LocInfo { kind: LocKind::LoopCond, line: 2, description: "c".into() });
        p.set_succ(l0, Succ::Loc(l1), Succ::Loc(l1));
        p.set_succ(l1, Succ::Loc(l0), Succ::End);
        assert!(!p.is_branching(l0));
        assert!(p.is_branching(l1));
        assert_eq!(p.succ(l1, false), Succ::End);
    }

    #[test]
    fn signature_keys() {
        let sig = vec![StructSig::Block, StructSig::Loop(vec![StructSig::Block]), StructSig::Block];
        assert_eq!(StructSig::sequence_key(&sig), "BL(B)B");
        let branch = vec![StructSig::Branch(
            vec![StructSig::Block],
            vec![StructSig::Loop(vec![StructSig::Block]), StructSig::Block],
        )];
        assert_eq!(StructSig::sequence_key(&branch), "I(B|L(B)B)");
    }

    #[test]
    fn special_variable_predicates() {
        assert!(special::is_special("?"));
        assert!(special::is_special("return"));
        assert!(special::is_special("#it1"));
        assert!(!special::is_special("result"));
    }
}
