//! The language-agnostic frontend abstraction.
//!
//! CLARA (the original tool) handled both Python and C submissions by
//! lowering them into one program model (§3 of the paper). This module is
//! the seam that makes the same true here: a [`Frontend`] turns source text
//! into a [`ParsedSubmission`], which can be lowered into a model
//! [`Program`], structurally hashed for the server's result cache, and
//! graded against an assignment specification — all behind object-safe
//! traits, so clustering, matching, ILP repair and the feedback service
//! never know which language they are serving.
//!
//! The MiniPy frontend lives here (this crate already depends on
//! `clara-lang`); the MiniC frontend lives in the `clara-c` crate; the
//! `Lang → &dyn Frontend` registry lives in `clara-core::frontend`, the
//! lowest layer that can see every frontend crate. Adding language N+1 is a
//! one-crate job: implement the two traits, add a [`Lang`] variant and a
//! registry arm.

use std::fmt;

use clara_lang::{expr_to_string, parse_program, Expr, ProblemSpec, SourceProgram, TestCase};

use crate::builder::LowerError;
use crate::exec::{execute, Fuel, TraceStatus};
use crate::lower::lower_entry;
use crate::program::Program;
use crate::surface::SurfaceFunction;
use crate::unparse::minipy_source;

/// The source languages submissions can be written in.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Lang {
    /// MiniPy, the Python-ish language of `clara-lang`.
    MiniPy,
    /// MiniC, the C90-ish language of `clara-c`.
    MiniC,
}

impl Lang {
    /// The canonical wire/storage tag of the language (`"minipy"`,
    /// `"minic"`). Stable: persisted cluster indexes and the server protocol
    /// both use it.
    pub fn as_str(self) -> &'static str {
        match self {
            Lang::MiniPy => "minipy",
            Lang::MiniC => "minic",
        }
    }

    /// Parses a language tag, accepting common aliases (`"python"`/`"py"`
    /// for MiniPy, `"c"` for MiniC). Returns `None` for unknown tags.
    pub fn from_tag(tag: &str) -> Option<Lang> {
        match tag.to_ascii_lowercase().as_str() {
            "minipy" | "python" | "py" => Some(Lang::MiniPy),
            "minic" | "c" => Some(Lang::MiniC),
            _ => None,
        }
    }

    /// Every supported language, in a fixed order.
    pub fn all() -> [Lang; 2] {
        [Lang::MiniPy, Lang::MiniC]
    }
}

impl fmt::Display for Lang {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

/// A syntax error reported by a frontend.
///
/// The display string is frontend-chosen and already contains the position
/// (each language has its own error conventions); `line` is kept separately
/// for programmatic consumers.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FrontendError {
    /// 1-based source line of the problem.
    pub line: u32,
    /// Full human-readable description (including position).
    pub message: String,
}

impl FrontendError {
    /// Creates a frontend error at `line`.
    pub fn new(line: u32, message: impl Into<String>) -> Self {
        FrontendError { line, message: message.into() }
    }
}

impl fmt::Display for FrontendError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.message)
    }
}

impl std::error::Error for FrontendError {}

/// A successfully parsed submission, ready to be hashed, graded or lowered.
pub trait ParsedSubmission {
    /// Lowers the submission's `entry` function into the program model.
    ///
    /// # Errors
    ///
    /// Returns a [`LowerError`] when the submission uses constructs the
    /// model does not support.
    fn lower(&self, entry: &str) -> Result<Program, LowerError>;

    /// A formatting-insensitive hash of the submission: whitespace, comments
    /// and redundant parentheses do not change it, any structural difference
    /// does. The feedback service keys its result cache on this.
    fn structural_hash(&self) -> u64;

    /// Total number of expression AST nodes (the paper's "AST size").
    fn ast_size(&self) -> usize;

    /// Grades the submission against a specification using the
    /// language-appropriate execution engine.
    fn passes(&self, spec: &ProblemSpec) -> bool;

    /// Desugars the submission's `entry` function into the language-neutral
    /// surface IR *without* building the model — the representation the
    /// corpus mutation engine rewrites and renders back through
    /// [`Frontend::render_function`].
    ///
    /// # Errors
    ///
    /// Returns a [`LowerError`] when the entry function is missing or uses a
    /// construct without a surface-IR meaning.
    fn surface(&self, entry: &str) -> Result<SurfaceFunction, LowerError>;
}

/// A source-language frontend: parsing plus source-syntax rendering.
pub trait Frontend: Send + Sync {
    /// The language this frontend accepts.
    fn lang(&self) -> Lang;

    /// Parses source text.
    ///
    /// # Errors
    ///
    /// Returns a [`FrontendError`] describing the first syntax error.
    fn parse(&self, source: &str) -> Result<Box<dyn ParsedSubmission>, FrontendError>;

    /// Renders a model expression in this language's surface syntax, so
    /// feedback shows C students C expressions and Python students Python
    /// expressions. Model builtins (`ite`, `head`, ...) render in whatever
    /// form is most natural for the language.
    fn render_expr(&self, expr: &Expr) -> String;

    /// Renders a surface function as source text in this language — the
    /// inverse of [`ParsedSubmission::surface`]. The corpus mutation engine
    /// uses it to turn rewritten surface IR back into real source files
    /// that re-parse through [`Frontend::parse`].
    ///
    /// # Errors
    ///
    /// Returns a [`FrontendError`] when the function contains a construct
    /// the language cannot spell (e.g. an output statement whose pieces no
    /// longer form a valid `print`/`printf`); callers discard such variants.
    fn render_function(&self, function: &SurfaceFunction) -> Result<String, FrontendError>;
}

/// Grades an already-lowered model program against a specification by
/// executing the *model* (Definition 3.5) on every test input — the
/// language-agnostic grading path used by frontends without a dedicated
/// interpreter. Mirrors `ProblemSpec::is_correct`: it stops at the first
/// failing test.
pub fn model_passes(program: &Program, spec: &ProblemSpec) -> bool {
    let fuel = grading_fuel(spec);
    spec.tests.iter().all(|test| model_passes_test(program, test, fuel))
}

/// Grades one test case by model execution (see [`model_passes`]). The
/// acceptance rule is [`clara_lang::Expected::matches`] — the same one the
/// MiniPy interpreter grading applies.
pub fn model_passes_test(program: &Program, test: &TestCase, fuel: Fuel) -> bool {
    let trace = execute(program, &test.args, fuel);
    if trace.status != TraceStatus::Completed {
        return false;
    }
    test.expected.matches(&trace.return_value(), &trace.output())
}

/// The execution fuel corresponding to a specification's grading limits.
pub fn grading_fuel(spec: &ProblemSpec) -> Fuel {
    Fuel { max_steps: spec.limits.max_steps as usize, ..Fuel::default() }
}

/// The MiniPy frontend: wraps the `clara-lang` parser, pretty-printer and
/// interpreter-based grading behind the language-agnostic traits.
#[derive(Debug, Clone, Copy, Default)]
pub struct MiniPyFrontend;

/// The shared MiniPy frontend instance.
pub static MINIPY: MiniPyFrontend = MiniPyFrontend;

struct MiniPyParsed(SourceProgram);

impl ParsedSubmission for MiniPyParsed {
    fn lower(&self, entry: &str) -> Result<Program, LowerError> {
        lower_entry(&self.0, entry)
    }

    fn structural_hash(&self) -> u64 {
        self.0.structural_hash()
    }

    fn ast_size(&self) -> usize {
        self.0.ast_size()
    }

    fn passes(&self, spec: &ProblemSpec) -> bool {
        // MiniPy has a direct interpreter; grading through it (rather than
        // the model) also accepts submissions the model cannot lower, e.g.
        // ones with helper functions.
        spec.is_correct(&self.0)
    }

    fn surface(&self, entry: &str) -> Result<SurfaceFunction, LowerError> {
        let function = self
            .0
            .function(entry)
            .ok_or_else(|| LowerError::new(1, format!("entry function `{entry}` is not defined")))?;
        crate::lower::surface_function(function)
    }
}

impl Frontend for MiniPyFrontend {
    fn lang(&self) -> Lang {
        Lang::MiniPy
    }

    fn parse(&self, source: &str) -> Result<Box<dyn ParsedSubmission>, FrontendError> {
        match parse_program(source) {
            Ok(parsed) => Ok(Box::new(MiniPyParsed(parsed))),
            Err(e) => Err(FrontendError::new(e.line, e.to_string())),
        }
    }

    fn render_expr(&self, expr: &Expr) -> String {
        expr_to_string(expr)
    }

    fn render_function(&self, function: &SurfaceFunction) -> Result<String, FrontendError> {
        minipy_source(function).map_err(|e| FrontendError::new(e.line, e.to_string()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use clara_lang::Value;

    #[test]
    fn lang_tags_roundtrip() {
        for lang in Lang::all() {
            assert_eq!(Lang::from_tag(lang.as_str()), Some(lang));
        }
        assert_eq!(Lang::from_tag("c"), Some(Lang::MiniC));
        assert_eq!(Lang::from_tag("Python"), Some(Lang::MiniPy));
        assert_eq!(Lang::from_tag("fortran"), None);
        assert_eq!(Lang::MiniC.to_string(), "minic");
    }

    #[test]
    fn minipy_frontend_parses_hashes_and_lowers() {
        let frontend = &MINIPY;
        assert_eq!(frontend.lang(), Lang::MiniPy);
        let parsed = frontend.parse("def f(x):\n    return x + 1\n").unwrap();
        let reformatted = frontend.parse("def f(x):\n    # c\n    return (x + 1)\n").unwrap();
        assert_eq!(parsed.structural_hash(), reformatted.structural_hash());
        let program = parsed.lower("f").unwrap();
        assert_eq!(program.name, "f");
        assert!(parsed.ast_size() > 0);
        let err = frontend.parse("def f(:\n").err().expect("syntax error expected");
        assert!(err.to_string().contains("parse error"), "{err}");
    }

    #[test]
    fn model_grading_agrees_with_the_interpreter_on_a_simple_spec() {
        let spec =
            ProblemSpec::new("inc", "f", vec![TestCase::returning(vec![Value::Int(1)], Value::Int(2))]);
        let parsed = MINIPY.parse("def f(x):\n    return x + 1\n").unwrap();
        assert!(parsed.passes(&spec));
        let program = parsed.lower("f").unwrap();
        assert!(model_passes(&program, &spec));
        let wrong = MINIPY.parse("def f(x):\n    return x\n").unwrap();
        assert!(!wrong.passes(&spec));
        assert!(!model_passes(&wrong.lower("f").unwrap(), &spec));
    }
}
