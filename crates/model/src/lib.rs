//! # clara-model — the Clara program model
//!
//! This crate implements §3 of *"Automated Clustering and Program Repair for
//! Introductory Programming Assignments"* (PLDI 2018): programs as tuples
//! `(L, ℓ_init, V, U, S)` of locations, variables, update expressions and a
//! successor function, together with
//!
//! * [`lower`]: the front-end that turns a parsed MiniPy function into a
//!   model [`Program`] (loop-free regions collapse to single locations,
//!   loop-free branching becomes `ite` expressions, `for`-loops are desugared
//!   with explicit iterator variables, early returns / `print` / `break` are
//!   encoded with special variables), and
//! * [`exec`]: the dynamic semantics of Definition 3.5 producing [`Trace`]s,
//!   which the matching, clustering and repair algorithms of `clara-core`
//!   consume.
//!
//! ## Example
//!
//! ```rust
//! use clara_lang::{parse_program, Value};
//! use clara_model::{execute, lower_entry, Fuel};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let source = parse_program(
//!     "def computeDeriv(poly):\n    result = []\n    for e in range(1, len(poly)):\n        result.append(float(poly[e]*e))\n    if result == []:\n        return [0.0]\n    else:\n        return result\n",
//! )?;
//! let program = lower_entry(&source, "computeDeriv")?;
//! assert_eq!(program.location_count(), 4); // ℓ_before, ℓ_cond, ℓ_loop, ℓ_after
//! let trace = execute(
//!     &program,
//!     &[Value::list(vec![Value::Float(6.3), Value::Float(7.6), Value::Float(12.14)])],
//!     Fuel::default(),
//! );
//! assert_eq!(trace.return_value(), Value::list(vec![Value::Float(7.6), Value::Float(24.28)]));
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod builder;
pub mod exec;
pub mod frontend;
pub mod lower;
pub mod program;
pub mod surface;
pub mod unparse;

pub use builder::ModelBuilder;
pub use exec::{
    execute, execute_from, execute_on_inputs, initial_memory, Fuel, Memory, Step, Trace, TraceStatus,
};
pub use frontend::{Frontend, FrontendError, Lang, MiniPyFrontend, ParsedSubmission, MINIPY};
pub use lower::{lower_entry, lower_function, surface_function, LowerError};
pub use program::{special, Loc, LocInfo, LocKind, Program, StructSig, Succ};
pub use surface::{SurfaceFunction, SurfaceStmt};
pub use unparse::{minipy_function, minipy_source, UnparseError};

#[cfg(test)]
mod tests {
    use super::*;
    use clara_lang::{parse_program, run_function, Limits, Value};

    const C1: &str = "\
def computeDeriv(poly):
    result = []
    for e in range(1, len(poly)):
        result.append(float(poly[e]*e))
    if result == []:
        return [0.0]
    else:
        return result
";

    const C2: &str = "\
def computeDeriv(poly):
    deriv = []
    for i in xrange(1,len(poly)):
        deriv+=[float(i)*poly[i]]
    if len(deriv)==0:
        return [0.0]
    return deriv
";

    fn lower_src(src: &str, entry: &str) -> Program {
        lower_entry(&parse_program(src).unwrap(), entry).unwrap()
    }

    fn poly(xs: &[f64]) -> Value {
        Value::List(xs.iter().map(|x| Value::Float(*x)).collect())
    }

    #[test]
    fn c1_has_the_papers_four_locations() {
        let p = lower_src(C1, "computeDeriv");
        assert_eq!(p.location_count(), 4);
        assert_eq!(StructSig::sequence_key(&p.signature), "BL(B)B");
    }

    #[test]
    fn c1_trace_matches_the_paper() {
        let p = lower_src(C1, "computeDeriv");
        let trace = execute(&p, &[poly(&[6.3, 7.6, 12.14])], Fuel::default());
        assert_eq!(trace.status, TraceStatus::Completed);
        // result: [] before the loop, [7.6], [7.6, 24.28] inside, unchanged after.
        let result_values = trace.projection("result");
        assert_eq!(result_values[0], Value::list(vec![]));
        assert!(result_values.contains(&Value::list(vec![Value::Float(7.6)])));
        assert!(result_values.contains(&Value::list(vec![Value::Float(7.6), Value::Float(24.28)])));
        assert_eq!(trace.return_value(), Value::list(vec![Value::Float(7.6), Value::Float(24.28)]));
    }

    #[test]
    fn c1_and_c2_have_the_same_control_flow() {
        let p1 = lower_src(C1, "computeDeriv");
        let p2 = lower_src(C2, "computeDeriv");
        assert!(p1.same_control_flow(&p2));
    }

    #[test]
    fn model_and_interpreter_agree_on_correct_programs() {
        for src in [C1, C2] {
            let source = parse_program(src).unwrap();
            let program = lower_entry(&source, "computeDeriv").unwrap();
            for input in [poly(&[6.3, 7.6, 12.14]), poly(&[3.0]), poly(&[]), poly(&[1.0, 2.0, 3.0, 4.0])] {
                let trace = execute(&program, std::slice::from_ref(&input), Fuel::default());
                let direct = run_function(&source, "computeDeriv", &[input], Limits::default()).unwrap();
                assert_eq!(trace.return_value(), direct.return_value, "mismatch for {src}");
            }
        }
    }

    #[test]
    fn early_return_inside_loop_is_guarded() {
        let src = "\
def find(xs, x):
    for i in range(len(xs)):
        if xs[i] == x:
            return i
    return -1
";
        let source = parse_program(src).unwrap();
        let program = lower_entry(&source, "find").unwrap();
        let xs = Value::list(vec![Value::Int(5), Value::Int(7), Value::Int(9)]);
        for needle in [Value::Int(7), Value::Int(42)] {
            let trace = execute(&program, &[xs.clone(), needle.clone()], Fuel::default());
            let direct = run_function(&source, "find", &[xs.clone(), needle], Limits::default()).unwrap();
            assert_eq!(trace.return_value(), direct.return_value);
        }
    }

    #[test]
    fn while_loop_with_print_builds_output() {
        let src = "\
def main(n):
    i = 1
    while i <= n:
        print(i)
        i = i + 1
";
        let source = parse_program(src).unwrap();
        let program = lower_entry(&source, "main").unwrap();
        let trace = execute(&program, &[Value::Int(3)], Fuel::default());
        let direct = run_function(&source, "main", &[Value::Int(3)], Limits::default()).unwrap();
        assert_eq!(trace.output(), direct.output);
        assert_eq!(trace.output(), "1\n2\n3\n");
    }

    #[test]
    fn break_is_modelled_with_a_flag() {
        let src = "\
def first_even(xs):
    found = -1
    for x in xs:
        if x % 2 == 0:
            found = x
            break
    return found
";
        let source = parse_program(src).unwrap();
        let program = lower_entry(&source, "first_even").unwrap();
        let xs = Value::list(vec![Value::Int(3), Value::Int(4), Value::Int(5), Value::Int(6)]);
        let trace = execute(&program, std::slice::from_ref(&xs), Fuel::default());
        let direct = run_function(&source, "first_even", &[xs], Limits::default()).unwrap();
        assert_eq!(trace.return_value(), direct.return_value);
        assert_eq!(trace.return_value(), Value::Int(4));
    }

    #[test]
    fn nested_loops_produce_nested_signatures() {
        let src = "\
def rhombus(h):
    for i in range(h):
        row = ''
        for j in range(i + 1):
            row = row + str(j)
        print(row)
";
        let p = lower_src(src, "rhombus");
        assert_eq!(StructSig::sequence_key(&p.signature), "BL(BL(B)B)B");
        let source = parse_program(src).unwrap();
        let trace = execute(&p, &[Value::Int(3)], Fuel::default());
        let direct = run_function(&source, "rhombus", &[Value::Int(3)], Limits::default()).unwrap();
        assert_eq!(trace.output(), direct.output);
    }

    #[test]
    fn branch_containing_loop_creates_branch_structure() {
        let src = "\
def f(n):
    total = 0
    if n > 0:
        for i in range(n):
            total = total + i
    else:
        total = -1
    return total
";
        let p = lower_src(src, "f");
        assert_eq!(StructSig::sequence_key(&p.signature), "I(BL(B)B|B)B");
        let source = parse_program(src).unwrap();
        for n in [Value::Int(4), Value::Int(0), Value::Int(-2)] {
            let trace = execute(&p, std::slice::from_ref(&n), Fuel::default());
            let direct = run_function(&source, "f", &[n], Limits::default()).unwrap();
            assert_eq!(trace.return_value(), direct.return_value);
        }
    }

    #[test]
    fn loop_free_program_is_one_block() {
        let src = "\
def sign(x):
    if x > 0:
        return 1
    elif x == 0:
        return 0
    else:
        return -1
";
        let p = lower_src(src, "sign");
        assert_eq!(p.location_count(), 1);
        for x in [Value::Int(5), Value::Int(0), Value::Int(-3)] {
            let trace = execute(&p, std::slice::from_ref(&x), Fuel::default());
            let source = parse_program(src).unwrap();
            let direct = run_function(&source, "sign", &[x], Limits::default()).unwrap();
            assert_eq!(trace.return_value(), direct.return_value);
        }
    }

    #[test]
    fn infinite_loop_runs_out_of_fuel() {
        let src = "\
def f(n):
    while True:
        n = n + 1
    return n
";
        let p = lower_src(src, "f");
        let trace = execute(&p, &[Value::Int(0)], Fuel { max_steps: 100, ..Fuel::default() });
        assert_eq!(trace.status, TraceStatus::OutOfFuel);
    }

    #[test]
    fn undefined_branch_condition_gets_stuck() {
        let src = "\
def f(xs):
    while xs[10] > 0:
        xs = xs
    return xs
";
        let p = lower_src(src, "f");
        let trace = execute(&p, &[Value::list(vec![])], Fuel::default());
        assert_eq!(trace.status, TraceStatus::StuckBranch);
    }

    #[test]
    fn helper_functions_are_unsupported() {
        let src = "\
def helper(x):
    return x * 2

def f(n):
    return helper(n)
";
        let source = parse_program(src).unwrap();
        assert!(lower_entry(&source, "f").is_err());
    }

    #[test]
    fn incorrect_attempt_i2_still_lowers_and_runs() {
        // I2 from Fig. 2(f): crashes at runtime (index error) but must still
        // have a model trace, with ⊥ values where evaluation fails.
        let src = "\
def computeDeriv(poly):
    result = []
    for i in range(len(poly)):
        result[i]=float((i)*poly[i])
    return result
";
        let p = lower_src(src, "computeDeriv");
        assert_eq!(p.location_count(), 4);
        let trace = execute(&p, &[poly(&[1.0, 2.0, 3.0])], Fuel::default());
        assert_eq!(trace.status, TraceStatus::Completed);
        let result_values = trace.projection("result");
        assert!(result_values.contains(&Value::Undef));
    }

    #[test]
    fn projections_and_memories_at() {
        let p = lower_src(C1, "computeDeriv");
        let trace = execute(&p, &[poly(&[1.0, 2.0, 3.0])], Fuel::default());
        let cond_values = trace.projection(special::COND);
        assert!(cond_values.contains(&Value::Bool(true)));
        assert!(cond_values.contains(&Value::Bool(false)));
        // The loop body location (ℓ2) is visited twice for a 3-element input.
        assert_eq!(trace.memories_at(Loc(2)).count(), 2);
    }

    #[test]
    fn update_lines_point_at_source() {
        let p = lower_src(C1, "computeDeriv");
        // `result` is assigned at line 2 in the before-block (location 0).
        assert_eq!(p.update_line(Loc(0), "result"), Some(2));
        // The loop-body assignment to `result` is at line 4.
        assert_eq!(p.update_line(Loc(2), "result"), Some(4));
    }
}
