//! Trace execution of model programs (the semantics of Definition 3.5).
//!
//! Executing a [`Program`] on an input memory produces a [`Trace`]: the
//! sequence of location/memory pairs visited by the program. Every update
//! expression is evaluated on the *old* memory (the values at location
//! entry); evaluation errors produce the undefined value `⊥`, exactly as
//! prescribed by Definition 3.4.

use std::collections::HashMap;

use clara_lang::{eval_expr, Value};

use crate::program::{special, Loc, Program, Succ};

/// A memory `σ : V → D` (only the unprimed values are stored; the primed
/// values of a step are the `post` memory of that step).
pub type Memory = HashMap<String, Value>;

/// One element of a trace: the location and the memories before (`pre`,
/// the old values) and after (`post`, the new/primed values) evaluating it.
#[derive(Debug, Clone, PartialEq)]
pub struct Step {
    /// The location evaluated at this step.
    pub loc: Loc,
    /// Variable values before evaluating the location (`σ(v)`).
    pub pre: Memory,
    /// Variable values after evaluating the location (`σ(v')`).
    pub post: Memory,
}

/// Why a trace ended.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TraceStatus {
    /// The successor function reached `end`.
    Completed,
    /// The step budget was exhausted (the program most likely diverges).
    OutOfFuel,
    /// A branching location was reached but the branch condition `?`
    /// evaluated to `⊥`, so no successor could be chosen.
    StuckBranch,
}

/// The trace `⟦P⟧(ρ)` of a program on one input.
///
/// Construct traces with [`Trace::new`]: it precomputes a per-location index
/// over the steps, so [`Trace::memories_at`] — the inner loop of expression
/// matching (Definition 4.5) — is a slice walk instead of a scan over the
/// whole trace.
#[derive(Debug, Clone, PartialEq)]
pub struct Trace {
    /// The visited steps in order.
    pub steps: Vec<Step>,
    /// How the trace ended.
    pub status: TraceStatus,
    /// `loc_index[loc]` lists the indices of the steps at location `loc`, in
    /// visit order.
    loc_index: Vec<Vec<u32>>,
}

impl Trace {
    /// Builds a trace from its steps, precomputing the per-location step
    /// index.
    pub fn new(steps: Vec<Step>, status: TraceStatus) -> Self {
        let max_loc = steps.iter().map(|s| s.loc.0 + 1).max().unwrap_or(0);
        let mut loc_index: Vec<Vec<u32>> = vec![Vec::new(); max_loc];
        for (i, step) in steps.iter().enumerate() {
            loc_index[step.loc.0].push(i as u32);
        }
        Trace { steps, status, loc_index }
    }

    /// The projection `γ|v`: the sequence of new values of `var` along the
    /// trace (used by the matching algorithm, Fig. 4).
    pub fn projection(&self, var: &str) -> Vec<Value> {
        self.steps.iter().map(|s| s.post.get(var).cloned().unwrap_or(Value::Undef)).collect()
    }

    /// Indices (into [`Trace::steps`]) of the steps at `loc`, in visit order.
    pub fn step_indices_at(&self, loc: Loc) -> &[u32] {
        self.loc_index.get(loc.0).map(Vec::as_slice).unwrap_or(&[])
    }

    /// The sequence of visited locations.
    pub fn locations(&self) -> Vec<Loc> {
        self.steps.iter().map(|s| s.loc).collect()
    }

    /// The final value of the `return` variable, if the trace completed.
    pub fn return_value(&self) -> Value {
        self.steps.last().and_then(|s| s.post.get(special::RETURN).cloned()).unwrap_or(Value::Undef)
    }

    /// The final value of the output variable `#out`.
    pub fn output(&self) -> String {
        match self.steps.last().and_then(|s| s.post.get(special::OUT)) {
            Some(Value::Str(s)) => s.to_string(),
            _ => String::new(),
        }
    }

    /// The memories (old values) at a given location, in visit order; this is
    /// what expression matching (Definition 4.5) evaluates candidate
    /// expressions on.
    pub fn memories_at(&self, loc: Loc) -> impl Iterator<Item = &Memory> {
        self.step_indices_at(loc).iter().map(|&i| &self.steps[i as usize].pre)
    }
}

/// Execution budget for trace execution.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Fuel {
    /// Maximum number of trace steps (locations visited).
    pub max_steps: usize,
    /// Maximum size of any single value produced by an update, in
    /// [`value_size_units`]. Diverging programs that *grow* data every
    /// iteration (`out = out + line` in an infinite loop) would otherwise
    /// stay within `max_steps` while the per-step memory clones stored in the
    /// trace balloon to gigabytes.
    pub max_value_units: usize,
}

impl Default for Fuel {
    fn default() -> Self {
        Fuel { max_steps: 5_000, max_value_units: 64 * 1024 }
    }
}

/// Approximate size of a value: scalars count 1, strings their length, and
/// containers the sum over their elements (plus 1 for the container).
pub fn value_size_units(value: &Value) -> usize {
    match value {
        Value::Int(_) | Value::Float(_) | Value::Bool(_) | Value::None | Value::Undef => 1,
        Value::Str(s) => 1 + s.len(),
        Value::List(items) | Value::Tuple(items) => 1 + items.iter().map(value_size_units).sum::<usize>(),
    }
}

/// Builds the initial memory for `program` from positional argument values.
pub fn initial_memory(program: &Program, args: &[Value]) -> Memory {
    let mut memory = Memory::new();
    for var in &program.vars {
        memory.insert(var.clone(), Value::Undef);
    }
    memory.insert(special::COND.to_owned(), Value::Undef);
    memory.insert(special::RETURN.to_owned(), Value::Undef);
    memory.insert(special::RET_FLAG.to_owned(), Value::Bool(false));
    memory.insert(special::OUT.to_owned(), Value::str(""));
    for (param, value) in program.params.iter().zip(args) {
        memory.insert(param.clone(), value.clone());
    }
    memory
}

/// Executes `program` on positional arguments, producing its trace.
pub fn execute(program: &Program, args: &[Value], fuel: Fuel) -> Trace {
    execute_from(program, initial_memory(program, args), fuel)
}

/// Executes `program` starting from an explicit input memory `ρ`.
pub fn execute_from(program: &Program, input: Memory, fuel: Fuel) -> Trace {
    let mut steps = Vec::new();
    let mut memory = input;
    let mut loc = program.init;
    let mut status = TraceStatus::Completed;

    loop {
        if steps.len() >= fuel.max_steps {
            status = TraceStatus::OutOfFuel;
            break;
        }
        let pre = memory;
        let mut post = pre.clone();
        let mut oversized = false;
        for (var, expr) in program.updates_at(loc) {
            let value = eval_expr(expr, &pre).unwrap_or(Value::Undef);
            oversized |= value_size_units(&value) > fuel.max_value_units;
            post.insert(var.clone(), value);
        }
        steps.push(Step { loc, pre, post: post.clone() });
        if oversized {
            status = TraceStatus::OutOfFuel;
            break;
        }

        let branch = if program.is_branching(loc) {
            match post.get(special::COND).cloned().unwrap_or(Value::Undef).truthy() {
                Ok(b) => b,
                Err(_) => {
                    status = TraceStatus::StuckBranch;
                    break;
                }
            }
        } else {
            true
        };
        match program.succ(loc, branch) {
            Succ::End => break,
            Succ::Loc(next) => {
                memory = post;
                loc = next;
            }
        }
    }

    Trace::new(steps, status)
}

/// Executes `program` on every input of `inputs` (the set `I` of the paper).
pub fn execute_on_inputs(program: &Program, inputs: &[Vec<Value>], fuel: Fuel) -> Vec<Trace> {
    inputs.iter().map(|args| execute(program, args, fuel)).collect()
}
