//! The language-neutral surface IR consumed by the [`ModelBuilder`].
//!
//! A frontend (MiniPy in `clara-lang`, MiniC in `clara-c`, ...) parses source
//! text into its own AST and then *desugars* it into this small statement
//! language. Everything language-specific — augmented assignments, `print`
//! versus `printf`, C `for(init; cond; step)` loops, method-call effects like
//! `xs.append(e)` — is resolved by the frontend; everything model-specific —
//! block collapsing, loop desugaring, the `#ret`/`#out`/`#brk` special
//! variables, symbolic substitution — lives in the builder. Adding a new
//! source language therefore never touches the lowering machinery.
//!
//! Expressions reuse [`clara_lang::Expr`], which doubles as the expression
//! language of the program model itself (the model only adds builtins such as
//! `ite`, `head`, `tail`, `store` and `concat`).
//!
//! [`ModelBuilder`]: crate::builder::ModelBuilder

use clara_lang::ast::Expr;

/// A function in the surface IR: what a frontend hands to the builder.
#[derive(Debug, Clone, PartialEq)]
pub struct SurfaceFunction {
    /// Function name (becomes [`crate::Program::name`]).
    pub name: String,
    /// Parameter names, in declaration order.
    pub params: Vec<String>,
    /// The function body.
    pub body: Vec<SurfaceStmt>,
    /// 1-based source line of the function header.
    pub line: u32,
}

/// A statement of the language-neutral surface IR.
///
/// Every variant carries the 1-based source line it originates from; the
/// builder anchors model locations and update expressions at these lines so
/// feedback can point back into the student's source.
#[derive(Debug, Clone, PartialEq)]
pub enum SurfaceStmt {
    /// `var = value`. Augmented assignments, index assignments and
    /// effectful method calls are desugared into this form by the frontend
    /// (e.g. `x += e` → `x = x + e`, `a[i] = e` → `a = store(a, i, e)`,
    /// `xs.append(e)` → `xs = append(xs, e)`).
    Assign {
        /// Assigned variable.
        var: String,
        /// Right-hand side over the pre-statement values.
        value: Expr,
        /// Source line.
        line: u32,
    },
    /// A conditional with both branches (an absent `else` is an empty body).
    If {
        /// Branch condition.
        cond: Expr,
        /// Statements of the then branch.
        then_body: Vec<SurfaceStmt>,
        /// Statements of the else branch.
        else_body: Vec<SurfaceStmt>,
        /// Source line.
        line: u32,
    },
    /// A condition-controlled loop.
    While {
        /// Loop condition.
        cond: Expr,
        /// Loop body.
        body: Vec<SurfaceStmt>,
        /// Source line.
        line: u32,
    },
    /// An iterator-style loop over a sequence value (MiniPy `for x in e`).
    /// Frontends whose `for` is sugar for a `while` (MiniC) desugar it
    /// themselves and never emit this variant.
    ForEach {
        /// Loop variable.
        var: String,
        /// Iterated expression.
        iter: Expr,
        /// Loop body.
        body: Vec<SurfaceStmt>,
        /// Source line.
        line: u32,
    },
    /// `return value`; a frontend encodes a bare `return` as an explicit
    /// null literal.
    Return {
        /// Returned expression.
        value: Expr,
        /// Source line.
        line: u32,
    },
    /// Append the given pieces to the program output `#out`, in order.
    /// The frontend fully renders its output statement into pieces (string
    /// conversions, separators, trailing newline); the builder only prefixes
    /// the current output value and concatenates.
    Output {
        /// The appended string pieces.
        pieces: Vec<Expr>,
        /// Source line.
        line: u32,
    },
    /// `break` out of the innermost enclosing loop.
    Break {
        /// Source line.
        line: u32,
    },
    /// `continue` with the next iteration of the innermost enclosing loop.
    Continue {
        /// Source line.
        line: u32,
    },
    /// A statement with no observable effect in the model (`pass`, a bare
    /// expression statement, an uninitialised declaration). Kept — rather
    /// than dropped by the frontend — so block locations stay anchored at
    /// the first source line of their chunk.
    Nop {
        /// Source line.
        line: u32,
    },
}

impl SurfaceStmt {
    /// The 1-based source line the statement starts on.
    pub fn line(&self) -> u32 {
        match self {
            SurfaceStmt::Assign { line, .. }
            | SurfaceStmt::If { line, .. }
            | SurfaceStmt::While { line, .. }
            | SurfaceStmt::ForEach { line, .. }
            | SurfaceStmt::Return { line, .. }
            | SurfaceStmt::Output { line, .. }
            | SurfaceStmt::Break { line }
            | SurfaceStmt::Continue { line }
            | SurfaceStmt::Nop { line } => *line,
        }
    }

    /// Returns `true` if the statement contains a loop anywhere inside it
    /// (the builder splits location blocks at these statements).
    pub fn contains_loop(&self) -> bool {
        match self {
            SurfaceStmt::While { .. } | SurfaceStmt::ForEach { .. } => true,
            SurfaceStmt::If { then_body, else_body, .. } => {
                then_body.iter().any(SurfaceStmt::contains_loop)
                    || else_body.iter().any(SurfaceStmt::contains_loop)
            }
            _ => false,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn contains_loop_descends_into_branches() {
        let inner =
            SurfaceStmt::While { cond: Expr::bool(true), body: vec![SurfaceStmt::Nop { line: 3 }], line: 2 };
        let stmt =
            SurfaceStmt::If { cond: Expr::bool(true), then_body: vec![inner], else_body: vec![], line: 1 };
        assert!(stmt.contains_loop());
        assert!(!SurfaceStmt::Nop { line: 1 }.contains_loop());
        assert_eq!(stmt.line(), 1);
    }
}
