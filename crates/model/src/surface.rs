//! The language-neutral surface IR consumed by the [`ModelBuilder`].
//!
//! A frontend (MiniPy in `clara-lang`, MiniC in `clara-c`, ...) parses source
//! text into its own AST and then *desugars* it into this small statement
//! language. Everything language-specific — augmented assignments, `print`
//! versus `printf`, C `for(init; cond; step)` loops, method-call effects like
//! `xs.append(e)` — is resolved by the frontend; everything model-specific —
//! block collapsing, loop desugaring, the `#ret`/`#out`/`#brk` special
//! variables, symbolic substitution — lives in the builder. Adding a new
//! source language therefore never touches the lowering machinery.
//!
//! Expressions reuse [`clara_lang::Expr`], which doubles as the expression
//! language of the program model itself (the model only adds builtins such as
//! `ite`, `head`, `tail`, `store` and `concat`).
//!
//! [`ModelBuilder`]: crate::builder::ModelBuilder

use clara_lang::ast::Expr;

/// A function in the surface IR: what a frontend hands to the builder.
#[derive(Debug, Clone, PartialEq)]
pub struct SurfaceFunction {
    /// Function name (becomes [`crate::Program::name`]).
    pub name: String,
    /// Parameter names, in declaration order.
    pub params: Vec<String>,
    /// The function body.
    pub body: Vec<SurfaceStmt>,
    /// 1-based source line of the function header.
    pub line: u32,
}

/// A statement of the language-neutral surface IR.
///
/// Every variant carries the 1-based source line it originates from; the
/// builder anchors model locations and update expressions at these lines so
/// feedback can point back into the student's source.
#[derive(Debug, Clone, PartialEq)]
pub enum SurfaceStmt {
    /// `var = value`. Augmented assignments, index assignments and
    /// effectful method calls are desugared into this form by the frontend
    /// (e.g. `x += e` → `x = x + e`, `a[i] = e` → `a = store(a, i, e)`,
    /// `xs.append(e)` → `xs = append(xs, e)`).
    Assign {
        /// Assigned variable.
        var: String,
        /// Right-hand side over the pre-statement values.
        value: Expr,
        /// Source line.
        line: u32,
    },
    /// A conditional with both branches (an absent `else` is an empty body).
    If {
        /// Branch condition.
        cond: Expr,
        /// Statements of the then branch.
        then_body: Vec<SurfaceStmt>,
        /// Statements of the else branch.
        else_body: Vec<SurfaceStmt>,
        /// Source line.
        line: u32,
    },
    /// A condition-controlled loop.
    While {
        /// Loop condition.
        cond: Expr,
        /// Loop body.
        body: Vec<SurfaceStmt>,
        /// Source line.
        line: u32,
    },
    /// An iterator-style loop over a sequence value (MiniPy `for x in e`).
    /// Frontends whose `for` is sugar for a `while` (MiniC) desugar it
    /// themselves and never emit this variant.
    ForEach {
        /// Loop variable.
        var: String,
        /// Iterated expression.
        iter: Expr,
        /// Loop body.
        body: Vec<SurfaceStmt>,
        /// Source line.
        line: u32,
    },
    /// `return value`; a frontend encodes a bare `return` as an explicit
    /// null literal.
    Return {
        /// Returned expression.
        value: Expr,
        /// Source line.
        line: u32,
    },
    /// Append the given pieces to the program output `#out`, in order.
    /// The frontend fully renders its output statement into pieces (string
    /// conversions, separators, trailing newline); the builder only prefixes
    /// the current output value and concatenates.
    Output {
        /// The appended string pieces.
        pieces: Vec<Expr>,
        /// Source line.
        line: u32,
    },
    /// `break` out of the innermost enclosing loop.
    Break {
        /// Source line.
        line: u32,
    },
    /// `continue` with the next iteration of the innermost enclosing loop.
    Continue {
        /// Source line.
        line: u32,
    },
    /// A statement with no observable effect in the model (`pass`, a bare
    /// expression statement, an uninitialised declaration). Kept — rather
    /// than dropped by the frontend — so block locations stay anchored at
    /// the first source line of their chunk.
    Nop {
        /// Source line.
        line: u32,
    },
}

impl SurfaceStmt {
    /// The 1-based source line the statement starts on.
    pub fn line(&self) -> u32 {
        match self {
            SurfaceStmt::Assign { line, .. }
            | SurfaceStmt::If { line, .. }
            | SurfaceStmt::While { line, .. }
            | SurfaceStmt::ForEach { line, .. }
            | SurfaceStmt::Return { line, .. }
            | SurfaceStmt::Output { line, .. }
            | SurfaceStmt::Break { line }
            | SurfaceStmt::Continue { line }
            | SurfaceStmt::Nop { line } => *line,
        }
    }

    /// Returns `true` if the statement contains a loop anywhere inside it
    /// (the builder splits location blocks at these statements).
    pub fn contains_loop(&self) -> bool {
        match self {
            SurfaceStmt::While { .. } | SurfaceStmt::ForEach { .. } => true,
            SurfaceStmt::If { then_body, else_body, .. } => {
                then_body.iter().any(SurfaceStmt::contains_loop)
                    || else_body.iter().any(SurfaceStmt::contains_loop)
            }
            _ => false,
        }
    }
}

impl SurfaceFunction {
    /// Total number of statements in the function (nested blocks included).
    pub fn stmt_count(&self) -> usize {
        stmt_count(&self.body)
    }
}

/// Total number of statements in `body`, nested blocks included.
pub fn stmt_count(body: &[SurfaceStmt]) -> usize {
    body.iter()
        .map(|stmt| match stmt {
            SurfaceStmt::If { then_body, else_body, .. } => 1 + stmt_count(then_body) + stmt_count(else_body),
            SurfaceStmt::While { body, .. } | SurfaceStmt::ForEach { body, .. } => 1 + stmt_count(body),
            _ => 1,
        })
        .sum()
}

/// Calls `f` on `body` and on every nested statement block (branch and loop
/// bodies), outermost first. The statement-level mutation operators (drop,
/// reorder) use this to pick a block uniformly over the whole function.
pub fn for_each_block_mut(body: &mut Vec<SurfaceStmt>, f: &mut dyn FnMut(&mut Vec<SurfaceStmt>)) {
    f(body);
    for stmt in body {
        match stmt {
            SurfaceStmt::If { then_body, else_body, .. } => {
                for_each_block_mut(then_body, f);
                for_each_block_mut(else_body, f);
            }
            SurfaceStmt::While { body, .. } | SurfaceStmt::ForEach { body, .. } => {
                for_each_block_mut(body, f);
            }
            _ => {}
        }
    }
}

/// Collects mutable references to every expression slot of `body`, in source
/// order: assignment right-hand sides, branch and loop conditions, iterated
/// expressions, return values and output pieces. The expression-level
/// mutation operators rewrite through these slots.
pub fn expr_slots_mut<'a>(body: &'a mut [SurfaceStmt], out: &mut Vec<&'a mut Expr>) {
    for stmt in body {
        match stmt {
            SurfaceStmt::Assign { value, .. } => out.push(value),
            SurfaceStmt::If { cond, then_body, else_body, .. } => {
                out.push(cond);
                expr_slots_mut(then_body, out);
                expr_slots_mut(else_body, out);
            }
            SurfaceStmt::While { cond, body, .. } => {
                out.push(cond);
                expr_slots_mut(body, out);
            }
            SurfaceStmt::ForEach { iter, body, .. } => {
                out.push(iter);
                expr_slots_mut(body, out);
            }
            SurfaceStmt::Return { value, .. } => out.push(value),
            SurfaceStmt::Output { pieces, .. } => out.extend(pieces.iter_mut()),
            SurfaceStmt::Break { .. } | SurfaceStmt::Continue { .. } | SurfaceStmt::Nop { .. } => {}
        }
    }
}

/// The variables assigned anywhere in `body` (including loop variables), in
/// order of first assignment, deduplicated.
pub fn assigned_vars(body: &[SurfaceStmt], out: &mut Vec<String>) {
    let push = |name: &str, out: &mut Vec<String>| {
        if !out.iter().any(|v| v == name) {
            out.push(name.to_owned());
        }
    };
    for stmt in body {
        match stmt {
            SurfaceStmt::Assign { var, .. } => push(var, out),
            SurfaceStmt::If { then_body, else_body, .. } => {
                assigned_vars(then_body, out);
                assigned_vars(else_body, out);
            }
            SurfaceStmt::While { body, .. } => assigned_vars(body, out),
            SurfaceStmt::ForEach { var, body, .. } => {
                push(var, out);
                assigned_vars(body, out);
            }
            _ => {}
        }
    }
}

/// Line-insensitive structural equality of two statements. The derived
/// `PartialEq` compares source lines too, which is right for round-trip
/// tests but wrong for structural rewriting: the flexible-alignment
/// normalizer (clara-core) needs to recognise "same statement, different
/// provenance" — e.g. two adjacent loops with equal conditions that came
/// from different source lines.
pub fn stmt_struct_eq(a: &SurfaceStmt, b: &SurfaceStmt) -> bool {
    match (a, b) {
        (SurfaceStmt::Assign { var: va, value: ea, .. }, SurfaceStmt::Assign { var: vb, value: eb, .. }) => {
            va == vb && ea == eb
        }
        (
            SurfaceStmt::If { cond: ca, then_body: ta, else_body: fa, .. },
            SurfaceStmt::If { cond: cb, then_body: tb, else_body: fb, .. },
        ) => ca == cb && stmts_struct_eq(ta, tb) && stmts_struct_eq(fa, fb),
        (SurfaceStmt::While { cond: ca, body: ba, .. }, SurfaceStmt::While { cond: cb, body: bb, .. }) => {
            ca == cb && stmts_struct_eq(ba, bb)
        }
        (
            SurfaceStmt::ForEach { var: va, iter: ia, body: ba, .. },
            SurfaceStmt::ForEach { var: vb, iter: ib, body: bb, .. },
        ) => va == vb && ia == ib && stmts_struct_eq(ba, bb),
        (SurfaceStmt::Return { value: ea, .. }, SurfaceStmt::Return { value: eb, .. }) => ea == eb,
        (SurfaceStmt::Output { pieces: pa, .. }, SurfaceStmt::Output { pieces: pb, .. }) => pa == pb,
        (SurfaceStmt::Break { .. }, SurfaceStmt::Break { .. }) => true,
        (SurfaceStmt::Continue { .. }, SurfaceStmt::Continue { .. }) => true,
        (SurfaceStmt::Nop { .. }, SurfaceStmt::Nop { .. }) => true,
        _ => false,
    }
}

/// Line-insensitive structural equality of two statement blocks
/// (see [`stmt_struct_eq`]).
pub fn stmts_struct_eq(a: &[SurfaceStmt], b: &[SurfaceStmt]) -> bool {
    a.len() == b.len() && a.iter().zip(b).all(|(x, y)| stmt_struct_eq(x, y))
}

/// Applies a variable renaming to `body`: assignment targets, loop variables
/// and every variable occurrence inside expressions. The mapping need not be
/// injective — `{a → b, b → a}` swaps two variables in one pass (the
/// `swapped-variables` mutation operator).
pub fn rename_vars(body: &mut [SurfaceStmt], mapping: &std::collections::HashMap<String, String>) {
    let rename_name = |name: &mut String| {
        if let Some(new_name) = mapping.get(name.as_str()) {
            *name = new_name.clone();
        }
    };
    for stmt in body {
        match stmt {
            SurfaceStmt::Assign { var, value, .. } => {
                rename_name(var);
                *value = value.rename(mapping);
            }
            SurfaceStmt::If { cond, then_body, else_body, .. } => {
                *cond = cond.rename(mapping);
                rename_vars(then_body, mapping);
                rename_vars(else_body, mapping);
            }
            SurfaceStmt::While { cond, body, .. } => {
                *cond = cond.rename(mapping);
                rename_vars(body, mapping);
            }
            SurfaceStmt::ForEach { var, iter, body, .. } => {
                rename_name(var);
                *iter = iter.rename(mapping);
                rename_vars(body, mapping);
            }
            SurfaceStmt::Return { value, .. } => *value = value.rename(mapping),
            SurfaceStmt::Output { pieces, .. } => {
                for piece in pieces {
                    *piece = piece.rename(mapping);
                }
            }
            SurfaceStmt::Break { .. } | SurfaceStmt::Continue { .. } | SurfaceStmt::Nop { .. } => {}
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn contains_loop_descends_into_branches() {
        let inner =
            SurfaceStmt::While { cond: Expr::bool(true), body: vec![SurfaceStmt::Nop { line: 3 }], line: 2 };
        let stmt =
            SurfaceStmt::If { cond: Expr::bool(true), then_body: vec![inner], else_body: vec![], line: 1 };
        assert!(stmt.contains_loop());
        assert!(!SurfaceStmt::Nop { line: 1 }.contains_loop());
        assert_eq!(stmt.line(), 1);
    }

    fn sample_body() -> Vec<SurfaceStmt> {
        vec![
            SurfaceStmt::Assign { var: "a".into(), value: Expr::int(1), line: 2 },
            SurfaceStmt::While {
                cond: Expr::bin(clara_lang::BinOp::Lt, Expr::var("a"), Expr::var("k")),
                body: vec![
                    SurfaceStmt::If {
                        cond: Expr::var("a"),
                        then_body: vec![SurfaceStmt::Break { line: 5 }],
                        else_body: vec![],
                        line: 4,
                    },
                    SurfaceStmt::Assign {
                        var: "a".into(),
                        value: Expr::bin(clara_lang::BinOp::Add, Expr::var("a"), Expr::int(1)),
                        line: 6,
                    },
                ],
                line: 3,
            },
            SurfaceStmt::Return { value: Expr::var("a"), line: 7 },
        ]
    }

    #[test]
    fn visitors_cover_every_block_and_expression_slot() {
        let mut body = sample_body();
        assert_eq!(stmt_count(&body), 6);
        let mut blocks = 0;
        for_each_block_mut(&mut body, &mut |_| blocks += 1);
        // Function body + while body + then branch + else branch.
        assert_eq!(blocks, 4);
        let mut slots = Vec::new();
        expr_slots_mut(&mut body, &mut slots);
        // a=1, while cond, if cond, a=a+1, return a.
        assert_eq!(slots.len(), 5);
    }

    #[test]
    fn struct_eq_ignores_source_lines_only() {
        let a = sample_body();
        let mut b = sample_body();
        // Shift every line: still structurally equal.
        fn shift(body: &mut Vec<SurfaceStmt>) {
            for_each_block_mut(body, &mut |block| {
                for stmt in block.iter_mut() {
                    match stmt {
                        SurfaceStmt::Assign { line, .. }
                        | SurfaceStmt::If { line, .. }
                        | SurfaceStmt::While { line, .. }
                        | SurfaceStmt::ForEach { line, .. }
                        | SurfaceStmt::Return { line, .. }
                        | SurfaceStmt::Output { line, .. }
                        | SurfaceStmt::Break { line }
                        | SurfaceStmt::Continue { line }
                        | SurfaceStmt::Nop { line } => *line += 10,
                    }
                }
            });
        }
        shift(&mut b);
        assert_ne!(a, b, "derived equality sees the shifted lines");
        assert!(stmts_struct_eq(&a, &b), "struct equality must not");
        // But a real structural difference is still a difference.
        b.push(SurfaceStmt::Nop { line: 99 });
        assert!(!stmts_struct_eq(&a, &b));
    }

    #[test]
    fn assigned_vars_and_renaming() {
        let mut body = sample_body();
        let mut vars = Vec::new();
        assigned_vars(&body, &mut vars);
        assert_eq!(vars, vec!["a".to_owned()]);
        let mapping = std::collections::HashMap::from([("a".to_owned(), "x".to_owned())]);
        rename_vars(&mut body, &mapping);
        let mut renamed = Vec::new();
        assigned_vars(&body, &mut renamed);
        assert_eq!(renamed, vec!["x".to_owned()]);
        match &body[2] {
            SurfaceStmt::Return { value, .. } => assert_eq!(value, &Expr::var("x")),
            other => panic!("unexpected tail statement {other:?}"),
        }
    }
}
