//! The language-agnostic model builder: surface IR → Clara program model.
//!
//! The builder realises the modelling decisions of §2.1 and §3 of the paper
//! for *any* frontend that can express its programs in the surface IR
//! ([`crate::surface`]):
//!
//! * any maximal loop-free region becomes a single location (a *block*);
//!   loop-free conditionals inside a block are recursively converted into
//!   `ite(...)` expressions,
//! * iterator-style loops are desugared using an explicit iterator variable
//!   (`#it<n> = <iterable>` before the loop, `? = len(#it<n>) > 0` as the
//!   loop condition, and `x = head(#it<n>); #it<n> = tail(#it<n>)` at the top
//!   of the body),
//! * conditionals that contain loops become real branches in the control
//!   flow,
//! * early `return`s set the special variables `return` and `#ret`; loop
//!   conditions and later code are guarded by `#ret` so that the model's
//!   simultaneous-update semantics (Definition 3.5) coincides with ordinary
//!   sequential execution,
//! * output appends to the special output variable `#out`,
//! * `break` sets a per-loop flag `#brk<n>` that is conjoined into the loop
//!   condition; `continue` skips the remainder of the loop body.
//!
//! Within a block, statements are composed by symbolic substitution so that
//! every update expression ranges over the values *at block entry*; this is
//! exactly what makes the simultaneous semantics of Definition 3.5 agree with
//! sequential execution of the source program.

use std::collections::BTreeMap;
use std::fmt;

use clara_lang::ast::{BinOp, Expr, Lit, UnOp};

use crate::program::{special, Loc, LocInfo, LocKind, Program, StructSig, Succ};
use crate::surface::{SurfaceFunction, SurfaceStmt};

/// An error encountered while lowering a program into the model.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LowerError {
    /// 1-based source line the problem was detected at.
    pub line: u32,
    /// Description of the unsupported construct.
    pub message: String,
}

impl LowerError {
    /// Creates a lowering error at `line`; used by the builder and by the
    /// frontends' desugaring passes.
    pub fn new(line: u32, message: impl Into<String>) -> Self {
        LowerError { line, message: message.into() }
    }
}

impl fmt::Display for LowerError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "cannot model program (line {}): {}", self.line, self.message)
    }
}

impl std::error::Error for LowerError {}

const TRUE: Expr = Expr::Lit(Lit::Bool(true));
const FALSE: Expr = Expr::Lit(Lit::Bool(false));

fn is_true(e: &Expr) -> bool {
    matches!(e, Expr::Lit(Lit::Bool(true)))
}

fn is_false(e: &Expr) -> bool {
    matches!(e, Expr::Lit(Lit::Bool(false)))
}

fn make_not(e: Expr) -> Expr {
    if is_true(&e) {
        FALSE
    } else if is_false(&e) {
        TRUE
    } else if let Expr::Unary(UnOp::Not, inner) = e {
        *inner
    } else {
        Expr::Unary(UnOp::Not, Box::new(e))
    }
}

fn make_and(a: Expr, b: Expr) -> Expr {
    if is_true(&a) {
        b
    } else if is_true(&b) {
        a
    } else if is_false(&a) || is_false(&b) {
        FALSE
    } else {
        Expr::Binary(BinOp::And, Box::new(a), Box::new(b))
    }
}

fn make_ite(cond: Expr, then: Expr, otherwise: Expr) -> Expr {
    if is_true(&cond) {
        return then;
    }
    if is_false(&cond) {
        return otherwise;
    }
    if then == otherwise {
        return then;
    }
    // `ite(not c, a, b)` → `ite(c, b, a)`: keeps composed guards in the same
    // polarity as the source condition, which makes mined expressions and
    // repair costs match what a human would write.
    if let Expr::Unary(UnOp::Not, inner) = &cond {
        return make_ite((**inner).clone(), otherwise, then);
    }
    // Boolean-shaped conditionals collapse to the condition itself (or its
    // negation).
    if is_false(&then) && is_true(&otherwise) {
        return make_not(cond);
    }
    if is_true(&then) && is_false(&otherwise) {
        return cond;
    }
    // A nested conditional on the same (pure) condition is redundant:
    // `ite(c, ite(c, x, y), z)` → `ite(c, x, z)` and symmetrically.
    let then = match then {
        Expr::Call(ref name, ref args) if name == "ite" && args.len() == 3 && args[0] == cond => {
            args[1].clone()
        }
        other => other,
    };
    let otherwise = match otherwise {
        Expr::Call(ref name, ref args) if name == "ite" && args.len() == 3 && args[0] == cond => {
            args[2].clone()
        }
        other => other,
    };
    if then == otherwise {
        return then;
    }
    Expr::ite(cond, then, otherwise)
}

/// Maximum number of AST nodes an update expression may grow to during block
/// composition; beyond this the program is rejected as unsupported (this only
/// triggers for pathological inputs, never for realistic student programs).
const MAX_EXPR_SIZE: usize = 20_000;

#[derive(Debug, Clone)]
struct BlockCtx {
    /// Composed update expressions over block-entry values.
    env: BTreeMap<String, Expr>,
    /// Source line of the last statement assigning each variable.
    lines: BTreeMap<String, u32>,
    /// "Control is still flowing" guard, an expression over block-entry
    /// values.
    guard: Expr,
    /// Whether a `return` may have been executed in this block.
    maybe_returned: bool,
    /// The break flag of the innermost enclosing loop, if any.
    brk_flag: Option<String>,
}

impl BlockCtx {
    fn new(brk_flag: Option<String>) -> Self {
        BlockCtx {
            env: BTreeMap::new(),
            lines: BTreeMap::new(),
            guard: TRUE,
            maybe_returned: false,
            brk_flag,
        }
    }

    /// The current expression for `var` in terms of block-entry values.
    fn current(&self, var: &str) -> Expr {
        self.env.get(var).cloned().unwrap_or_else(|| Expr::Var(var.to_owned()))
    }

    /// Substitutes block-entry expressions into `expr`.
    fn subst(&self, expr: &Expr) -> Expr {
        expr.substitute(&|name| self.env.get(name).cloned())
    }

    /// Records the (guarded) assignment `var := value`.
    fn assign(&mut self, var: &str, value: Expr, line: u32) -> Result<(), LowerError> {
        let value =
            if is_true(&self.guard) { value } else { make_ite(self.guard.clone(), value, self.current(var)) };
        if value.size() > MAX_EXPR_SIZE {
            return Err(LowerError::new(line, "composed update expression grew too large"));
        }
        self.env.insert(var.to_owned(), value);
        self.lines.insert(var.to_owned(), line);
        Ok(())
    }
}

struct SeqOut {
    entry: Loc,
    exits: Vec<(Loc, bool)>,
    sigs: Vec<StructSig>,
    maybe_returned: bool,
}

/// Builds a model [`Program`] from a [`SurfaceFunction`].
///
/// One builder lowers one function; the per-loop counters behind the
/// generated `#it<n>`/`#brk<n>` names are builder state.
pub struct ModelBuilder {
    prog: Program,
    iter_count: usize,
    brk_count: usize,
}

impl ModelBuilder {
    /// Lowers a surface function into the Clara model.
    ///
    /// # Errors
    ///
    /// Returns a [`LowerError`] when the function uses a construct the model
    /// does not support (`break`/`continue` inside a loop body that itself
    /// contains loops, pathologically large composed expressions, ...).
    pub fn build(function: &SurfaceFunction) -> Result<Program, LowerError> {
        let builder = ModelBuilder {
            prog: Program::new(function.name.clone(), function.params.clone()),
            iter_count: 0,
            brk_count: 0,
        };
        builder.lower(function)
    }

    fn lower(mut self, function: &SurfaceFunction) -> Result<Program, LowerError> {
        for special_var in special::always_present() {
            self.prog.add_var(special_var);
        }
        for param in &function.params {
            self.prog.add_var(param);
        }
        let out = self.lower_seq(&function.body, false, Vec::new(), None, function.line)?;
        self.prog.init = out.entry;
        for (loc, branch) in out.exits {
            self.set_single_succ(loc, branch, Succ::End);
        }
        self.prog.signature = out.sigs;
        // Register every variable appearing in any update expression.
        let mut names = Vec::new();
        for loc in self.prog.locs().collect::<Vec<_>>() {
            for (var, expr) in self.prog.updates_at(loc) {
                names.push(var.clone());
                names.extend(expr.variables());
            }
        }
        for name in names {
            self.prog.add_var(&name);
        }
        Ok(self.prog)
    }

    fn set_single_succ(&mut self, loc: Loc, branch: bool, target: Succ) {
        let other = self.prog.succ(loc, !branch);
        if branch {
            self.prog.set_succ(loc, target, other);
        } else {
            self.prog.set_succ(loc, other, target);
        }
    }

    fn connect(&mut self, pending: &[(Loc, bool)], target: Loc) {
        for (loc, branch) in pending {
            self.set_single_succ(*loc, *branch, Succ::Loc(target));
        }
    }

    /// Lowers a statement sequence, returning its entry location and dangling
    /// exit edges.
    fn lower_seq(
        &mut self,
        stmts: &[SurfaceStmt],
        entry_maybe_returned: bool,
        first_prelude: Vec<(String, Expr, u32)>,
        brk_flag: Option<String>,
        anchor_line: u32,
    ) -> Result<SeqOut, LowerError> {
        let mut sigs = Vec::new();
        let mut entry: Option<Loc> = None;
        let mut pending: Vec<(Loc, bool)> = Vec::new();
        let mut maybe_returned = entry_maybe_returned;
        let mut prelude = first_prelude;
        let mut remaining = stmts;

        loop {
            let split = remaining.iter().position(SurfaceStmt::contains_loop);
            let (chunk, loopy, rest) = match split {
                Some(i) => (&remaining[..i], Some(&remaining[i]), &remaining[i + 1..]),
                None => (remaining, None, &remaining[..0]),
            };
            let chunk_line =
                chunk.first().map(SurfaceStmt::line).or(loopy.map(SurfaceStmt::line)).unwrap_or(anchor_line);

            match loopy {
                None => {
                    // Trailing block of the sequence.
                    let ctx = self.lower_block(
                        chunk,
                        std::mem::take(&mut prelude),
                        maybe_returned,
                        brk_flag.clone(),
                    )?;
                    let loc = self.emit_block(LocKind::Block, chunk_line, "block", &ctx);
                    self.connect(&pending, loc);
                    entry.get_or_insert(loc);
                    sigs.push(StructSig::Block);
                    maybe_returned |= ctx.maybe_returned;
                    return Ok(SeqOut {
                        entry: entry.expect("at least one location was emitted"),
                        exits: vec![(loc, true), (loc, false)],
                        sigs,
                        maybe_returned,
                    });
                }
                Some(stmt @ (SurfaceStmt::ForEach { .. } | SurfaceStmt::While { .. })) => {
                    let (loop_line, body) = match stmt {
                        SurfaceStmt::ForEach { line, body, .. } | SurfaceStmt::While { line, body, .. } => {
                            (*line, body)
                        }
                        _ => unreachable!("matched above"),
                    };
                    let body_has_loop = body.iter().any(SurfaceStmt::contains_loop);
                    let body_has_break = contains_break_or_continue(body);
                    if body_has_break && body_has_loop {
                        return Err(LowerError::new(
                            loop_line,
                            "break/continue inside a loop body that contains nested loops is not supported",
                        ));
                    }
                    let body_has_return = contains_return(body);

                    // Block before the loop.
                    let mut ctx = self.lower_block(
                        chunk,
                        std::mem::take(&mut prelude),
                        maybe_returned,
                        brk_flag.clone(),
                    )?;
                    let maybe_returned_before = maybe_returned || ctx.maybe_returned;

                    // Loop-specific initialisation appended to the before-block.
                    let (cond_expr, body_prelude) = match stmt {
                        SurfaceStmt::ForEach { var, iter, line, .. } => {
                            self.iter_count += 1;
                            let it = format!("#it{}", self.iter_count);
                            let iter_value = ctx.subst(iter);
                            ctx.assign(&it, iter_value, *line)?;
                            let cond = Expr::bin(
                                BinOp::Gt,
                                Expr::call("len", vec![Expr::var(it.clone())]),
                                Expr::int(0),
                            );
                            let prelude = vec![
                                (var.clone(), Expr::call("head", vec![Expr::var(it.clone())]), *line),
                                (it.clone(), Expr::call("tail", vec![Expr::var(it.clone())]), *line),
                            ];
                            (cond, prelude)
                        }
                        SurfaceStmt::While { cond, .. } => (cond.clone(), Vec::new()),
                        _ => unreachable!("matched above"),
                    };
                    let mut inner_brk = None;
                    if body_has_break {
                        self.brk_count += 1;
                        let flag = format!("#brk{}", self.brk_count);
                        ctx.assign(&flag, FALSE, loop_line)?;
                        inner_brk = Some(flag);
                    }

                    let before = self.emit_block(LocKind::Block, chunk_line, "before the loop", &ctx);
                    self.connect(&pending, before);
                    entry.get_or_insert(before);

                    // Loop-condition location.
                    let mut cond = cond_expr;
                    if let Some(flag) = &inner_brk {
                        cond = make_and(make_not(Expr::var(flag.clone())), cond);
                    }
                    if maybe_returned_before || body_has_return {
                        cond = make_and(make_not(Expr::var(special::RET_FLAG)), cond);
                    }
                    let cond_loc = self.prog.add_location(LocInfo {
                        kind: LocKind::LoopCond,
                        line: loop_line,
                        description: format!("the loop condition at line {loop_line}"),
                    });
                    self.prog.set_update(cond_loc, special::COND, cond, loop_line);
                    self.prog.set_succ(before, Succ::Loc(cond_loc), Succ::Loc(cond_loc));

                    // Loop body.
                    let body_out = self.lower_seq(body, false, body_prelude, inner_brk.clone(), loop_line)?;
                    self.set_single_succ(cond_loc, true, Succ::Loc(body_out.entry));
                    for (loc, branch) in &body_out.exits {
                        self.set_single_succ(*loc, *branch, Succ::Loc(cond_loc));
                    }

                    sigs.push(StructSig::Block);
                    sigs.push(StructSig::Loop(body_out.sigs));
                    pending = vec![(cond_loc, false)];
                    maybe_returned = maybe_returned_before || body_out.maybe_returned;
                    remaining = rest;
                }
                Some(SurfaceStmt::If { cond, then_body, else_body, line }) => {
                    let ctx = self.lower_block(
                        chunk,
                        std::mem::take(&mut prelude),
                        maybe_returned,
                        brk_flag.clone(),
                    )?;
                    let maybe_returned_here = maybe_returned || ctx.maybe_returned;
                    let mut branch_cond = ctx.subst(cond);
                    if !is_true(&ctx.guard) {
                        branch_cond = make_ite(ctx.guard.clone(), branch_cond, FALSE);
                    }
                    let branch_loc = self.emit_block(LocKind::Branch, chunk_line, "before the branch", &ctx);
                    self.prog.set_update(branch_loc, special::COND, branch_cond, *line);
                    self.connect(&pending, branch_loc);
                    entry.get_or_insert(branch_loc);

                    let then_out =
                        self.lower_seq(then_body, maybe_returned_here, Vec::new(), brk_flag.clone(), *line)?;
                    let else_out =
                        self.lower_seq(else_body, maybe_returned_here, Vec::new(), brk_flag.clone(), *line)?;
                    self.prog.set_succ(branch_loc, Succ::Loc(then_out.entry), Succ::Loc(else_out.entry));

                    sigs.push(StructSig::Branch(then_out.sigs, else_out.sigs));
                    pending = then_out.exits.into_iter().chain(else_out.exits).collect();
                    maybe_returned =
                        maybe_returned_here || then_out.maybe_returned || else_out.maybe_returned;
                    remaining = rest;
                }
                Some(other) => {
                    return Err(LowerError::new(other.line(), "unexpected loop-carrying statement"));
                }
            }
        }
    }

    /// Emits a block location with the updates accumulated in `ctx`.
    fn emit_block(&mut self, kind: LocKind, line: u32, what: &str, ctx: &BlockCtx) -> Loc {
        let loc =
            self.prog.add_location(LocInfo { kind, line, description: format!("{what} at line {line}") });
        for (var, expr) in &ctx.env {
            let stmt_line = ctx.lines.get(var).copied().unwrap_or(line);
            self.prog.set_update(loc, var, expr.clone(), stmt_line);
        }
        loc
    }

    /// Composes a loop-free statement chunk into a single symbolic update
    /// environment (one location of the model).
    fn lower_block(
        &mut self,
        chunk: &[SurfaceStmt],
        prelude: Vec<(String, Expr, u32)>,
        entry_maybe_returned: bool,
        brk_flag: Option<String>,
    ) -> Result<BlockCtx, LowerError> {
        let mut ctx = BlockCtx::new(brk_flag);
        if entry_maybe_returned {
            ctx.guard = make_not(Expr::var(special::RET_FLAG));
        }
        for (var, expr, line) in prelude {
            // Loop preludes (iterator advance) happen unconditionally: the
            // loop condition already encodes every reason not to enter the
            // body.
            let composed = ctx.subst(&expr);
            let saved_guard = std::mem::replace(&mut ctx.guard, TRUE);
            ctx.assign(&var, composed, line)?;
            ctx.guard = saved_guard;
        }
        self.lower_stmts(chunk, &mut ctx)?;
        Ok(ctx)
    }

    fn lower_stmts(&mut self, stmts: &[SurfaceStmt], ctx: &mut BlockCtx) -> Result<(), LowerError> {
        for stmt in stmts {
            self.lower_stmt(stmt, ctx)?;
        }
        Ok(())
    }

    fn lower_stmt(&mut self, stmt: &SurfaceStmt, ctx: &mut BlockCtx) -> Result<(), LowerError> {
        match stmt {
            SurfaceStmt::Assign { var, value, line } => {
                let composed = ctx.subst(value);
                ctx.assign(var, composed, *line)?;
            }
            SurfaceStmt::If { cond, then_body, else_body, line } => {
                // If control may already have left (earlier return/break), the
                // condition must not be evaluated: guard it so the composed
                // expression cannot introduce spurious evaluation errors.
                let mut branch_cond = ctx.subst(cond);
                if !is_true(&ctx.guard) {
                    branch_cond = make_ite(ctx.guard.clone(), branch_cond, FALSE);
                }
                let _ = line;
                let mut then_ctx = ctx.clone();
                let mut else_ctx = ctx.clone();
                self.lower_stmts(then_body, &mut then_ctx)?;
                self.lower_stmts(else_body, &mut else_ctx)?;
                // Merge the two branch environments with `ite`.
                let mut vars: Vec<String> = then_ctx.env.keys().cloned().collect();
                for var in else_ctx.env.keys() {
                    if !vars.contains(var) {
                        vars.push(var.clone());
                    }
                }
                for var in vars {
                    let then_value = then_ctx.current(&var);
                    let else_value = else_ctx.current(&var);
                    if then_value == else_value {
                        ctx.env.insert(var.clone(), then_value);
                    } else {
                        let merged = make_ite(branch_cond.clone(), then_value, else_value);
                        if merged.size() > MAX_EXPR_SIZE {
                            return Err(LowerError::new(
                                stmt.line(),
                                "composed update expression grew too large",
                            ));
                        }
                        ctx.env.insert(var.clone(), merged);
                    }
                    let line = then_ctx
                        .lines
                        .get(&var)
                        .or_else(|| else_ctx.lines.get(&var))
                        .copied()
                        .unwrap_or(stmt.line());
                    ctx.lines.insert(var, line);
                }
                ctx.guard = make_ite(branch_cond, then_ctx.guard, else_ctx.guard);
                ctx.maybe_returned |= then_ctx.maybe_returned || else_ctx.maybe_returned;
            }
            SurfaceStmt::Return { value, line } => {
                let rv = ctx.subst(value);
                ctx.assign(special::RETURN, rv, *line)?;
                ctx.assign(special::RET_FLAG, TRUE, *line)?;
                ctx.maybe_returned = true;
                ctx.guard = FALSE;
            }
            SurfaceStmt::Output { pieces, line } => {
                let mut composed = vec![ctx.current(special::OUT)];
                composed.extend(pieces.iter().map(|piece| ctx.subst(piece)));
                ctx.assign(special::OUT, Expr::call("concat", composed), *line)?;
            }
            SurfaceStmt::Nop { .. } => {}
            SurfaceStmt::Break { line } => {
                let flag =
                    ctx.brk_flag.clone().ok_or_else(|| LowerError::new(*line, "break outside of a loop"))?;
                ctx.assign(&flag, TRUE, *line)?;
                ctx.guard = FALSE;
            }
            SurfaceStmt::Continue { .. } => {
                ctx.guard = FALSE;
            }
            SurfaceStmt::While { line, .. } | SurfaceStmt::ForEach { line, .. } => {
                return Err(LowerError::new(*line, "internal error: loop statement reached block lowering"));
            }
        }
        Ok(())
    }
}

fn contains_return(stmts: &[SurfaceStmt]) -> bool {
    stmts.iter().any(|s| match s {
        SurfaceStmt::Return { .. } => true,
        SurfaceStmt::If { then_body, else_body, .. } => {
            contains_return(then_body) || contains_return(else_body)
        }
        SurfaceStmt::While { body, .. } | SurfaceStmt::ForEach { body, .. } => contains_return(body),
        _ => false,
    })
}

fn contains_break_or_continue(stmts: &[SurfaceStmt]) -> bool {
    stmts.iter().any(|s| match s {
        SurfaceStmt::Break { .. } | SurfaceStmt::Continue { .. } => true,
        SurfaceStmt::If { then_body, else_body, .. } => {
            contains_break_or_continue(then_body) || contains_break_or_continue(else_body)
        }
        // break/continue inside a *nested* loop belong to that loop.
        SurfaceStmt::While { .. } | SurfaceStmt::ForEach { .. } => false,
        _ => false,
    })
}
