//! Lowering of MiniPy functions into the Clara program model.
//!
//! Since the frontend refactor this module is a *thin client* of the
//! language-agnostic [`ModelBuilder`]: it desugars the MiniPy AST into the
//! neutral surface IR ([`crate::surface`]) — augmented assignments, index
//! assignments, `print`, and the effectful method calls `append`/`pop` all
//! become plain [`SurfaceStmt::Assign`]/[`SurfaceStmt::Output`] statements —
//! and the builder does the actual modelling work (block collapsing, loop
//! desugaring, `#ret`/`#out`/`#brk` encoding, symbolic substitution).
//!
//! The desugarings are chosen so that the built model is *identical*, node
//! for node, to what the historical monolithic lowering produced: composing
//! `x += e` as `x = x + e` and then substituting block-entry values yields
//! the same expression tree as substituting `e` first and wrapping it, and
//! likewise for `a[i] op= e` / `store`, `xs.append(e)` and `print(...)`.

use clara_lang::ast::{Expr, Function, Lit, SourceProgram, Stmt, Target};

pub use crate::builder::LowerError;
use crate::builder::ModelBuilder;
use crate::program::Program;
use crate::surface::{SurfaceFunction, SurfaceStmt};

/// Lowers the entry function of a parsed program into the Clara model.
///
/// # Errors
///
/// Returns a [`LowerError`] when the entry function is missing or the program
/// uses a construct the model does not support (helper function definitions,
/// `break`/`continue` inside a loop body that itself contains loops, ...).
/// These correspond to the "unsupported feature" failures reported for Clara
/// in §6.2 of the paper.
pub fn lower_entry(program: &SourceProgram, entry: &str) -> Result<Program, LowerError> {
    let function = program
        .function(entry)
        .ok_or_else(|| LowerError::new(1, format!("entry function `{entry}` is not defined")))?;
    if program.functions.len() > 1 {
        return Err(LowerError::new(
            program.functions[1].line,
            "helper function definitions are not supported by the program model",
        ));
    }
    lower_function(function)
}

/// Lowers a single MiniPy function into the Clara model.
///
/// # Errors
///
/// See [`lower_entry`].
pub fn lower_function(function: &Function) -> Result<Program, LowerError> {
    ModelBuilder::build(&surface_function(function)?)
}

/// Desugars a MiniPy function into the language-neutral surface IR.
///
/// # Errors
///
/// Returns a [`LowerError`] for MiniPy constructs without a surface-IR
/// meaning (effectful method calls on non-variable receivers).
pub fn surface_function(function: &Function) -> Result<SurfaceFunction, LowerError> {
    Ok(SurfaceFunction {
        name: function.name.clone(),
        params: function.params.clone(),
        body: surface_stmts(&function.body)?,
        line: function.line,
    })
}

fn surface_stmts(stmts: &[Stmt]) -> Result<Vec<SurfaceStmt>, LowerError> {
    stmts.iter().map(surface_stmt).collect()
}

fn surface_stmt(stmt: &Stmt) -> Result<SurfaceStmt, LowerError> {
    Ok(match stmt {
        Stmt::Assign { target, op, value, line } => match target {
            Target::Name(name) => {
                let rhs = match op {
                    Some(binop) => Expr::bin(*binop, Expr::var(name.clone()), value.clone()),
                    None => value.clone(),
                };
                SurfaceStmt::Assign { var: name.clone(), value: rhs, line: *line }
            }
            Target::Index(name, index) => {
                let stored = match op {
                    Some(binop) => Expr::bin(
                        *binop,
                        Expr::Index(Box::new(Expr::var(name.clone())), Box::new(index.clone())),
                        value.clone(),
                    ),
                    None => value.clone(),
                };
                let store = Expr::call("store", vec![Expr::var(name.clone()), index.clone(), stored]);
                SurfaceStmt::Assign { var: name.clone(), value: store, line: *line }
            }
        },
        Stmt::If { cond, then_body, else_body, line } => SurfaceStmt::If {
            cond: cond.clone(),
            then_body: surface_stmts(then_body)?,
            else_body: surface_stmts(else_body)?,
            line: *line,
        },
        Stmt::While { cond, body, line } => {
            SurfaceStmt::While { cond: cond.clone(), body: surface_stmts(body)?, line: *line }
        }
        Stmt::For { var, iter, body, line } => SurfaceStmt::ForEach {
            var: var.clone(),
            iter: iter.clone(),
            body: surface_stmts(body)?,
            line: *line,
        },
        Stmt::Return { value, line } => {
            let value = value.clone().unwrap_or(Expr::Lit(Lit::None));
            SurfaceStmt::Return { value, line: *line }
        }
        Stmt::Print { args, line } => {
            let mut pieces = Vec::with_capacity(2 * args.len() + 1);
            for (i, arg) in args.iter().enumerate() {
                if i > 0 {
                    pieces.push(Expr::str(" "));
                }
                pieces.push(Expr::call("str", vec![arg.clone()]));
            }
            pieces.push(Expr::str("\n"));
            SurfaceStmt::Output { pieces, line: *line }
        }
        Stmt::ExprStmt { expr, line } => match expr {
            Expr::Method(recv, method, args) if method == "append" && args.len() == 1 => {
                if let Expr::Var(name) = recv.as_ref() {
                    let appended = Expr::call("append", vec![Expr::var(name.clone()), args[0].clone()]);
                    SurfaceStmt::Assign { var: name.clone(), value: appended, line: *line }
                } else {
                    return Err(LowerError::new(*line, "append on a non-variable receiver"));
                }
            }
            Expr::Method(recv, method, args) if method == "pop" && args.is_empty() => {
                if let Expr::Var(name) = recv.as_ref() {
                    let popped =
                        Expr::Method(Box::new(Expr::var(name.clone())), "pop".to_owned(), Vec::new());
                    SurfaceStmt::Assign { var: name.clone(), value: popped, line: *line }
                } else {
                    return Err(LowerError::new(*line, "pop on a non-variable receiver"));
                }
            }
            // Other expression statements have no observable effect in the
            // model; they are dropped (their runtime errors, if any, are
            // still observed by the grading interpreter).
            _ => SurfaceStmt::Nop { line: *line },
        },
        Stmt::Pass { line } => SurfaceStmt::Nop { line: *line },
        Stmt::Break { line } => SurfaceStmt::Break { line: *line },
        Stmt::Continue { line } => SurfaceStmt::Continue { line: *line },
    })
}
