//! # clara-autograder — the AutoGrader-style baseline
//!
//! The paper compares Clara against AutoGrader (Singh et al., PLDI 2013),
//! which repairs an incorrect student attempt by searching over a teacher
//! provided *error model*: a set of expression rewrite rules that describe
//! typical student mistakes. This crate re-implements that approach at the
//! granularity needed for the Table 1 / Fig. 7 comparison:
//!
//! * an [`ErrorModel`] is a set of rewrite rules applied to the expressions
//!   of the incorrect attempt (the MOOC-scaled "weak" model omits the more
//!   expensive rules, exactly as described in §6.2.1);
//! * the search tries every combination of at most `max_edits` single-site
//!   rewrites and accepts the first candidate that passes the full test
//!   suite, preferring candidates that modify fewer expressions;
//! * like the original, the baseline can neither introduce fresh variables
//!   nor add new statements — the fundamental limitations discussed in
//!   Appendix B of the paper.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

use clara_lang::ast::{BinOp, Expr, Lit, SourceProgram, Stmt, Target};
use clara_lang::ProblemSpec;

/// Which rewrite rules the error model contains.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ErrorModel {
    /// The MOOC-scaled model used in the paper's comparison: cheap,
    /// single-token rewrites only (constants, comparison operators,
    /// `range` bounds, index offsets).
    Weak,
    /// The full model: additionally rewrites variables to other variables,
    /// wraps values in conversions, and perturbs arithmetic.
    Full,
}

/// Configuration of the baseline repair search.
#[derive(Debug, Clone)]
pub struct AutoGraderConfig {
    /// The error model to use.
    pub model: ErrorModel,
    /// Maximum number of simultaneously rewritten expression sites.
    pub max_edits: usize,
    /// Upper bound on the number of candidate programs graded before giving
    /// up (keeps the search interactive, as in the MOOC-scaled deployment).
    pub max_candidates: usize,
}

impl Default for AutoGraderConfig {
    fn default() -> Self {
        AutoGraderConfig { model: ErrorModel::Weak, max_edits: 2, max_candidates: 50_000 }
    }
}

/// One applied rewrite.
#[derive(Debug, Clone, PartialEq)]
pub struct AppliedRewrite {
    /// Source line of the rewritten expression.
    pub line: u32,
    /// The original expression.
    pub old: Expr,
    /// The replacement expression.
    pub new: Expr,
    /// Name of the rewrite rule that produced the replacement.
    pub rule: &'static str,
}

/// A successful baseline repair.
#[derive(Debug, Clone, PartialEq)]
pub struct AutoGraderRepair {
    /// The rewrites that were applied (one per modified expression).
    pub rewrites: Vec<AppliedRewrite>,
    /// The repaired program.
    pub repaired: SourceProgram,
    /// Number of candidate programs that were graded during the search.
    pub candidates_tried: usize,
}

impl AutoGraderRepair {
    /// Number of modified expressions (the Fig. 7 metric).
    pub fn modified_expression_count(&self) -> usize {
        self.rewrites.len()
    }
}

/// The AutoGrader-style baseline repairer.
#[derive(Debug, Clone, Default)]
pub struct AutoGrader {
    config: AutoGraderConfig,
}

impl AutoGrader {
    /// Creates a baseline repairer with the given configuration.
    pub fn new(config: AutoGraderConfig) -> Self {
        AutoGrader { config }
    }

    /// Creates the MOOC-scaled (weak error model) baseline used in the
    /// paper's comparison.
    pub fn mooc_scaled() -> Self {
        AutoGrader::new(AutoGraderConfig::default())
    }

    /// Attempts to repair `attempt` so that it passes every test of `spec`.
    ///
    /// Returns `None` when no combination of at most `max_edits` rewrites
    /// from the error model fixes the attempt (or the candidate budget runs
    /// out) — these are the "AutoGrader fails" cases of §6.2.1.
    pub fn repair(&self, attempt: &SourceProgram, spec: &ProblemSpec) -> Option<AutoGraderRepair> {
        if spec.is_correct(attempt) {
            return Some(AutoGraderRepair {
                rewrites: Vec::new(),
                repaired: attempt.clone(),
                candidates_tried: 0,
            });
        }
        let sites = collect_sites(attempt);
        let program_vars = collect_variables(attempt);
        // Candidate rewrites per site.
        let mut per_site: Vec<Vec<(Expr, &'static str)>> = Vec::with_capacity(sites.len());
        for site in &sites {
            per_site.push(expression_variants(&site.expr, self.config.model, &program_vars));
        }

        let mut tried = 0usize;

        // Breadth-first in the number of edits: single-site rewrites first,
        // then pairs, then triples.
        for edits in 1..=self.config.max_edits {
            let mut chosen: Vec<usize> = Vec::new();
            if let Some(repair) =
                self.search_combinations(attempt, spec, &sites, &per_site, 0, edits, &mut chosen, &mut tried)
            {
                return Some(repair);
            }
            if tried >= self.config.max_candidates {
                return None;
            }
        }
        None
    }

    #[allow(clippy::too_many_arguments)]
    fn search_combinations(
        &self,
        attempt: &SourceProgram,
        spec: &ProblemSpec,
        sites: &[Site],
        per_site: &[Vec<(Expr, &'static str)>],
        start: usize,
        remaining: usize,
        chosen: &mut Vec<usize>,
        tried: &mut usize,
    ) -> Option<AutoGraderRepair> {
        if remaining == 0 {
            return None;
        }
        for site_index in start..sites.len() {
            for (variant_index, (variant, rule)) in per_site[site_index].iter().enumerate() {
                if *tried >= self.config.max_candidates {
                    return None;
                }
                chosen.push(site_index);
                let mut replacements: Vec<(usize, Expr, &'static str)> = chosen
                    .iter()
                    .map(|&s| {
                        if s == site_index {
                            (s, variant.clone(), *rule)
                        } else {
                            // Placeholder, replaced below for previously chosen
                            // sites.
                            (s, Expr::int(0), "")
                        }
                    })
                    .collect();
                // For multi-edit combinations we recurse with the current
                // variant fixed; single-edit case applies it directly.
                if remaining == 1 {
                    replacements.truncate(0);
                    replacements.push((site_index, variant.clone(), *rule));
                    let candidate = apply_replacements(attempt, sites, &replacements);
                    *tried += 1;
                    if spec.is_correct(&candidate) {
                        let rewrites = replacements
                            .iter()
                            .map(|(s, new, rule)| AppliedRewrite {
                                line: sites[*s].line,
                                old: sites[*s].expr.clone(),
                                new: new.clone(),
                                rule,
                            })
                            .collect();
                        return Some(AutoGraderRepair {
                            rewrites,
                            repaired: candidate,
                            candidates_tried: *tried,
                        });
                    }
                } else {
                    // Fix this (site, variant) and search for the remaining
                    // edits among later sites.
                    if let Some(mut repair) = self.search_with_prefix(
                        attempt,
                        spec,
                        sites,
                        per_site,
                        site_index,
                        variant_index,
                        remaining - 1,
                        tried,
                    ) {
                        repair.candidates_tried = *tried;
                        chosen.pop();
                        return Some(repair);
                    }
                }
                chosen.pop();
            }
        }
        None
    }

    #[allow(clippy::too_many_arguments)]
    fn search_with_prefix(
        &self,
        attempt: &SourceProgram,
        spec: &ProblemSpec,
        sites: &[Site],
        per_site: &[Vec<(Expr, &'static str)>],
        fixed_site: usize,
        fixed_variant: usize,
        remaining: usize,
        tried: &mut usize,
    ) -> Option<AutoGraderRepair> {
        // Only pairs (and small triples) are searched; deeper nesting reuses
        // the same helper recursively.
        for site_index in (fixed_site + 1)..sites.len() {
            for (variant, rule) in &per_site[site_index] {
                if *tried >= self.config.max_candidates {
                    return None;
                }
                let mut replacements = vec![
                    (
                        fixed_site,
                        per_site[fixed_site][fixed_variant].0.clone(),
                        per_site[fixed_site][fixed_variant].1,
                    ),
                    (site_index, variant.clone(), *rule),
                ];
                if remaining > 1 {
                    // Three simultaneous edits: try every third site after
                    // this one.
                    for (third_site, third_variants) in per_site.iter().enumerate().skip(site_index + 1) {
                        for (third_variant, third_rule) in third_variants {
                            if *tried >= self.config.max_candidates {
                                return None;
                            }
                            let mut with_third = replacements.clone();
                            with_third.push((third_site, third_variant.clone(), *third_rule));
                            let candidate = apply_replacements(attempt, sites, &with_third);
                            *tried += 1;
                            if spec.is_correct(&candidate) {
                                return Some(make_repair(sites, &with_third, candidate, *tried));
                            }
                        }
                    }
                } else {
                    let candidate = apply_replacements(attempt, sites, &replacements);
                    *tried += 1;
                    if spec.is_correct(&candidate) {
                        return Some(make_repair(sites, &replacements, candidate, *tried));
                    }
                }
                replacements.clear();
            }
        }
        None
    }
}

fn make_repair(
    sites: &[Site],
    replacements: &[(usize, Expr, &'static str)],
    repaired: SourceProgram,
    tried: usize,
) -> AutoGraderRepair {
    AutoGraderRepair {
        rewrites: replacements
            .iter()
            .map(|(s, new, rule)| AppliedRewrite {
                line: sites[*s].line,
                old: sites[*s].expr.clone(),
                new: new.clone(),
                rule,
            })
            .collect(),
        repaired,
        candidates_tried: tried,
    }
}

/// An expression site that the error model may rewrite.
#[derive(Debug, Clone)]
struct Site {
    index: usize,
    line: u32,
    expr: Expr,
}

/// Collects every rewritable expression site of a program, in a deterministic
/// pre-order.
fn collect_sites(program: &SourceProgram) -> Vec<Site> {
    let mut sites = Vec::new();
    let mut counter = 0usize;
    let mut collect = |expr: &Expr, line: u32, sites: &mut Vec<Site>| {
        sites.push(Site { index: counter, line, expr: expr.clone() });
        counter += 1;
    };
    fn walk(stmts: &[Stmt], collect: &mut dyn FnMut(&Expr, u32, &mut Vec<Site>), sites: &mut Vec<Site>) {
        for stmt in stmts {
            match stmt {
                Stmt::Assign { value, target, line, .. } => {
                    if let Target::Index(_, index) = target {
                        collect(index, *line, sites);
                    }
                    collect(value, *line, sites);
                }
                Stmt::If { cond, then_body, else_body, line } => {
                    collect(cond, *line, sites);
                    walk(then_body, collect, sites);
                    walk(else_body, collect, sites);
                }
                Stmt::While { cond, body, line } => {
                    collect(cond, *line, sites);
                    walk(body, collect, sites);
                }
                Stmt::For { iter, body, line, .. } => {
                    collect(iter, *line, sites);
                    walk(body, collect, sites);
                }
                Stmt::Return { value: Some(value), line } => collect(value, *line, sites),
                Stmt::Print { args, line } => {
                    for arg in args {
                        collect(arg, *line, sites);
                    }
                }
                Stmt::ExprStmt { expr, line } => collect(expr, *line, sites),
                _ => {}
            }
        }
    }
    for function in &program.functions {
        walk(&function.body, &mut collect, &mut sites);
    }
    sites
}

/// Replaces the chosen sites and returns the rewritten program.
fn apply_replacements(
    program: &SourceProgram,
    sites: &[Site],
    replacements: &[(usize, Expr, &'static str)],
) -> SourceProgram {
    let mut result = program.clone();
    let mut counter = 0usize;
    fn walk(stmts: &mut [Stmt], counter: &mut usize, apply: &dyn Fn(usize, &Expr) -> Option<Expr>) {
        for stmt in stmts {
            match stmt {
                Stmt::Assign { value, target, .. } => {
                    if let Target::Index(_, index) = target {
                        if let Some(new) = apply(*counter, index) {
                            *index = new;
                        }
                        *counter += 1;
                    }
                    if let Some(new) = apply(*counter, value) {
                        *value = new;
                    }
                    *counter += 1;
                }
                Stmt::If { cond, then_body, else_body, .. } => {
                    if let Some(new) = apply(*counter, cond) {
                        *cond = new;
                    }
                    *counter += 1;
                    walk(then_body, counter, apply);
                    walk(else_body, counter, apply);
                }
                Stmt::While { cond, body, .. } => {
                    if let Some(new) = apply(*counter, cond) {
                        *cond = new;
                    }
                    *counter += 1;
                    walk(body, counter, apply);
                }
                Stmt::For { iter, body, .. } => {
                    if let Some(new) = apply(*counter, iter) {
                        *iter = new;
                    }
                    *counter += 1;
                    walk(body, counter, apply);
                }
                Stmt::Return { value: Some(value), .. } => {
                    if let Some(new) = apply(*counter, value) {
                        *value = new;
                    }
                    *counter += 1;
                }
                Stmt::Print { args, .. } => {
                    for arg in args {
                        if let Some(new) = apply(*counter, arg) {
                            *arg = new;
                        }
                        *counter += 1;
                    }
                }
                Stmt::ExprStmt { expr, .. } => {
                    if let Some(new) = apply(*counter, expr) {
                        *expr = new;
                    }
                    *counter += 1;
                }
                _ => {}
            }
        }
    }
    let apply = |index: usize, _old: &Expr| -> Option<Expr> {
        replacements.iter().find(|(s, _, _)| sites[*s].index == index).map(|(_, new, _)| new.clone())
    };
    for function in &mut result.functions {
        walk(&mut function.body, &mut counter, &apply);
    }
    result
}

/// Collects the variable names appearing anywhere in the program (used by the
/// full error model's variable-replacement rule).
fn collect_variables(program: &SourceProgram) -> Vec<String> {
    let mut vars = Vec::new();
    fn walk(stmts: &[Stmt], vars: &mut Vec<String>) {
        let push = |name: &str, vars: &mut Vec<String>| {
            if !vars.iter().any(|v| v == name) {
                vars.push(name.to_owned());
            }
        };
        for stmt in stmts {
            match stmt {
                Stmt::Assign { target, value, .. } => {
                    push(target.base_name(), vars);
                    for v in value.variables() {
                        push(&v, vars);
                    }
                }
                Stmt::If { cond, then_body, else_body, .. } => {
                    for v in cond.variables() {
                        push(&v, vars);
                    }
                    walk(then_body, vars);
                    walk(else_body, vars);
                }
                Stmt::While { cond, body, .. } => {
                    for v in cond.variables() {
                        push(&v, vars);
                    }
                    walk(body, vars);
                }
                Stmt::For { var, iter, body, .. } => {
                    push(var, vars);
                    for v in iter.variables() {
                        push(&v, vars);
                    }
                    walk(body, vars);
                }
                Stmt::Return { value: Some(value), .. } => {
                    for v in value.variables() {
                        push(&v, vars);
                    }
                }
                Stmt::Print { args, .. } => {
                    for arg in args {
                        for v in arg.variables() {
                            push(&v, vars);
                        }
                    }
                }
                Stmt::ExprStmt { expr, .. } => {
                    for v in expr.variables() {
                        push(&v, vars);
                    }
                }
                _ => {}
            }
        }
    }
    for function in &program.functions {
        for param in &function.params {
            if !vars.iter().any(|v| v == param) {
                vars.push(param.clone());
            }
        }
        walk(&function.body, &mut vars);
    }
    vars
}

/// All single-rule variants of an expression under the error model. Rules are
/// applied at every sub-expression position, each application yielding one
/// variant of the whole expression.
pub fn expression_variants(
    expr: &Expr,
    model: ErrorModel,
    program_vars: &[String],
) -> Vec<(Expr, &'static str)> {
    let mut variants: Vec<(Expr, &'static str)> = Vec::new();
    rewrite_positions(expr, &mut |sub| single_node_rewrites(sub, model, program_vars), &mut variants);
    // Whole-expression rules.
    variants.push((Expr::List(vec![expr.clone()]), "wrap-in-list"));
    if model == ErrorModel::Full {
        variants.push((Expr::call("float", vec![expr.clone()]), "wrap-in-float"));
        variants.push((Expr::Unary(clara_lang::UnOp::Not, Box::new(expr.clone())), "negate"));
    }
    // De-duplicate (keep first rule name) and drop no-op variants.
    let mut seen = std::collections::HashSet::new();
    variants
        .into_iter()
        .filter(|(v, _)| v != expr)
        .filter(|(v, _)| seen.insert(clara_lang::expr_to_string(v)))
        .collect()
}

/// Applies `rules` at every sub-expression position of `expr`, producing one
/// whole-expression variant per rewrite.
fn rewrite_positions(
    expr: &Expr,
    rules: &mut dyn FnMut(&Expr) -> Vec<(Expr, &'static str)>,
    out: &mut Vec<(Expr, &'static str)>,
) {
    // Rewrites of the node itself.
    for (new_node, rule) in rules(expr) {
        out.push((new_node, rule));
    }
    // Rewrites of children, spliced back into the parent.
    let rebuild = |children: Vec<Expr>| -> Expr { rebuild_with_children(expr, &children) };
    let children = expr_children(expr);
    for (child_index, child) in children.iter().enumerate() {
        let mut child_variants = Vec::new();
        rewrite_positions(child, rules, &mut child_variants);
        for (new_child, rule) in child_variants {
            let mut new_children = children.clone();
            new_children[child_index] = new_child;
            out.push((rebuild(new_children), rule));
        }
    }
}

fn expr_children(expr: &Expr) -> Vec<Expr> {
    match expr {
        Expr::Lit(_) | Expr::Var(_) => Vec::new(),
        Expr::List(items) | Expr::Tuple(items) => items.clone(),
        Expr::Unary(_, inner) => vec![(**inner).clone()],
        Expr::Binary(_, lhs, rhs) => vec![(**lhs).clone(), (**rhs).clone()],
        Expr::Index(base, idx) => vec![(**base).clone(), (**idx).clone()],
        Expr::Slice(base, lo, hi) => {
            let mut out = vec![(**base).clone()];
            if let Some(lo) = lo {
                out.push((**lo).clone());
            }
            if let Some(hi) = hi {
                out.push((**hi).clone());
            }
            out
        }
        Expr::Call(_, args) => args.clone(),
        Expr::Method(recv, _, args) => {
            let mut out = vec![(**recv).clone()];
            out.extend(args.clone());
            out
        }
    }
}

fn rebuild_with_children(expr: &Expr, children: &[Expr]) -> Expr {
    match expr {
        Expr::Lit(_) | Expr::Var(_) => expr.clone(),
        Expr::List(_) => Expr::List(children.to_vec()),
        Expr::Tuple(_) => Expr::Tuple(children.to_vec()),
        Expr::Unary(op, _) => Expr::Unary(*op, Box::new(children[0].clone())),
        Expr::Binary(op, _, _) => {
            Expr::Binary(*op, Box::new(children[0].clone()), Box::new(children[1].clone()))
        }
        Expr::Index(_, _) => Expr::Index(Box::new(children[0].clone()), Box::new(children[1].clone())),
        Expr::Slice(_, lo, hi) => {
            let mut index = 1;
            let new_lo = lo.as_ref().map(|_| {
                let value = Box::new(children[index].clone());
                index += 1;
                value
            });
            let new_hi = hi.as_ref().map(|_| Box::new(children[index].clone()));
            Expr::Slice(Box::new(children[0].clone()), new_lo, new_hi)
        }
        Expr::Call(name, _) => Expr::Call(name.clone(), children.to_vec()),
        Expr::Method(_, name, _) => {
            Expr::Method(Box::new(children[0].clone()), name.clone(), children[1..].to_vec())
        }
    }
}

/// The per-node rewrite rules of the error model.
fn single_node_rewrites(
    expr: &Expr,
    model: ErrorModel,
    program_vars: &[String],
) -> Vec<(Expr, &'static str)> {
    let mut out = Vec::new();
    match expr {
        Expr::Lit(Lit::Int(k)) => {
            out.push((Expr::int(k + 1), "constant+1"));
            out.push((Expr::int(k - 1), "constant-1"));
            if *k != 0 {
                out.push((Expr::int(0), "constant->0"));
            }
            if *k != 1 {
                out.push((Expr::int(1), "constant->1"));
            }
        }
        Expr::Lit(Lit::Float(f)) => {
            out.push((Expr::List(vec![Expr::float(*f)]), "float->list"));
        }
        Expr::Binary(op, lhs, rhs) if op.is_comparison() => {
            for new_op in [BinOp::Lt, BinOp::Le, BinOp::Gt, BinOp::Ge, BinOp::Eq, BinOp::Ne] {
                if new_op != *op {
                    out.push((Expr::Binary(new_op, lhs.clone(), rhs.clone()), "comparison-swap"));
                }
            }
        }
        Expr::Call(name, args) if (name == "range" || name == "xrange") && !args.is_empty() => {
            if args.len() == 1 {
                out.push((Expr::Call(name.clone(), vec![Expr::int(1), args[0].clone()]), "range-start-1"));
                out.push((
                    Expr::Call(
                        name.clone(),
                        vec![Expr::int(0), Expr::bin(BinOp::Add, args[0].clone(), Expr::int(1))],
                    ),
                    "range-stop+1",
                ));
            } else if args.len() == 2 {
                out.push((Expr::Call(name.clone(), vec![args[1].clone()]), "range-drop-start"));
                out.push((
                    Expr::Call(
                        name.clone(),
                        vec![args[0].clone(), Expr::bin(BinOp::Add, args[1].clone(), Expr::int(1))],
                    ),
                    "range-stop+1",
                ));
                out.push((
                    Expr::Call(
                        name.clone(),
                        vec![Expr::bin(BinOp::Add, args[0].clone(), Expr::int(1)), args[1].clone()],
                    ),
                    "range-start+1",
                ));
            }
        }
        Expr::Index(base, idx) => {
            out.push((
                Expr::Index(base.clone(), Box::new(Expr::bin(BinOp::Sub, (**idx).clone(), Expr::int(1)))),
                "index-1",
            ));
            out.push((
                Expr::Index(base.clone(), Box::new(Expr::bin(BinOp::Add, (**idx).clone(), Expr::int(1)))),
                "index+1",
            ));
        }
        Expr::Binary(
            op @ (BinOp::Add | BinOp::Sub | BinOp::Mul | BinOp::Div | BinOp::FloorDiv),
            lhs,
            rhs,
        ) if model == ErrorModel::Full => {
            let swapped = match op {
                BinOp::Add => BinOp::Sub,
                BinOp::Sub => BinOp::Add,
                BinOp::Mul => BinOp::Div,
                BinOp::Div | BinOp::FloorDiv => BinOp::Mul,
                _ => unreachable!("guarded by the pattern"),
            };
            out.push((Expr::Binary(swapped, lhs.clone(), rhs.clone()), "operator-swap"));
        }
        Expr::Var(name) if model == ErrorModel::Full => {
            for other in program_vars {
                if other != name {
                    out.push((Expr::var(other.clone()), "variable-swap"));
                }
            }
        }
        _ => {}
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use clara_lang::{parse_program, ProblemSpec, TestCase, Value};

    fn poly(xs: &[f64]) -> Value {
        Value::List(xs.iter().map(|x| Value::Float(*x)).collect())
    }

    fn derivatives_spec() -> ProblemSpec {
        ProblemSpec::new(
            "derivatives",
            "computeDeriv",
            vec![
                TestCase::returning(vec![poly(&[6.3, 7.6, 12.14])], poly(&[7.6, 24.28])),
                TestCase::returning(vec![poly(&[3.0])], poly(&[0.0])),
                TestCase::returning(vec![poly(&[1.0, 2.0, 3.0, 4.0])], poly(&[2.0, 6.0, 12.0])),
            ],
        )
    }

    #[test]
    fn repairs_a_single_token_mistake() {
        // Off-by-one range start: the weak model's bread and butter.
        let attempt = parse_program(
            "def computeDeriv(poly):\n    result = []\n    for e in range(len(poly)):\n        result.append(float(poly[e]*e))\n    if result == []:\n        return [0.0]\n    else:\n        return result\n",
        )
        .unwrap();
        let repair = AutoGrader::mooc_scaled().repair(&attempt, &derivatives_spec()).expect("repairable");
        assert_eq!(repair.modified_expression_count(), 1);
        assert!(repair.rewrites[0].rule.starts_with("range"));
        assert!(derivatives_spec().is_correct(&repair.repaired));
    }

    #[test]
    fn repairs_a_wrong_return_constant() {
        // Fig. 2(e): `return 0.0` instead of `return [0.0]`.
        let attempt = parse_program(
            "def computeDeriv(poly):\n    new = []\n    for i in xrange(1,len(poly)):\n        new.append(float(i*poly[i]))\n    if new==[]:\n        return 0.0\n    return new\n",
        )
        .unwrap();
        let repair = AutoGrader::mooc_scaled().repair(&attempt, &derivatives_spec()).expect("repairable");
        assert_eq!(repair.modified_expression_count(), 1);
        assert!(derivatives_spec().is_correct(&repair.repaired));
    }

    #[test]
    fn cannot_repair_structural_mistakes() {
        // Fig. 8: requires a fresh variable and new statements — beyond the
        // error model's power.
        let attempt = parse_program(
            "def computeDeriv(poly):\n    result = []\n    for e in range(1, len(poly)):\n        result = float(poly[e]*e)\n    return result\n",
        )
        .unwrap();
        assert!(AutoGrader::mooc_scaled().repair(&attempt, &derivatives_spec()).is_none());
    }

    #[test]
    fn correct_attempts_need_no_rewrites() {
        let attempt = parse_program(
            "def computeDeriv(poly):\n    result = []\n    for e in range(1, len(poly)):\n        result.append(float(poly[e]*e))\n    if result == []:\n        return [0.0]\n    else:\n        return result\n",
        )
        .unwrap();
        let repair = AutoGrader::mooc_scaled().repair(&attempt, &derivatives_spec()).unwrap();
        assert_eq!(repair.modified_expression_count(), 0);
    }

    #[test]
    fn two_site_repairs_are_found_with_two_edits() {
        // Both the range start and the return constant are wrong.
        let attempt = parse_program(
            "def computeDeriv(poly):\n    new = []\n    for i in xrange(len(poly)):\n        new.append(float(i*poly[i]))\n    if new==[]:\n        return 0.0\n    return new\n",
        )
        .unwrap();
        let grader = AutoGrader::new(AutoGraderConfig { max_edits: 2, ..AutoGraderConfig::default() });
        let repair = grader.repair(&attempt, &derivatives_spec()).expect("repairable with two edits");
        assert_eq!(repair.modified_expression_count(), 2);
        assert!(derivatives_spec().is_correct(&repair.repaired));
        // With a single edit it is not repairable.
        let single = AutoGrader::new(AutoGraderConfig { max_edits: 1, ..AutoGraderConfig::default() });
        assert!(single.repair(&attempt, &derivatives_spec()).is_none());
    }

    #[test]
    fn full_model_repairs_variable_misuse() {
        // `poly[n]` should have been `poly[e]`: a variable-for-variable swap,
        // which only the full error model contains.
        let attempt = parse_program(
            "def computeDeriv(poly):\n    result = []\n    n = len(poly)\n    for e in range(1, n):\n        result.append(float(poly[n]*e))\n    if result == []:\n        return [0.0]\n    else:\n        return result\n",
        )
        .unwrap();
        let weak = AutoGrader::mooc_scaled();
        assert!(weak.repair(&attempt, &derivatives_spec()).is_none());
        let full =
            AutoGrader::new(AutoGraderConfig { model: ErrorModel::Full, ..AutoGraderConfig::default() });
        let repair = full.repair(&attempt, &derivatives_spec()).expect("full model repairs variable misuse");
        assert!(derivatives_spec().is_correct(&repair.repaired));
    }

    #[test]
    fn variant_generation_is_deduplicated() {
        let expr = clara_lang::parse_expression("range(1, len(poly))").unwrap();
        let variants = expression_variants(&expr, ErrorModel::Weak, &[]);
        let rendered: Vec<String> = variants.iter().map(|(e, _)| clara_lang::expr_to_string(e)).collect();
        let unique: std::collections::HashSet<&String> = rendered.iter().collect();
        assert_eq!(rendered.len(), unique.len());
        assert!(!rendered.iter().any(|r| r == "range(1, len(poly))"));
    }
}
