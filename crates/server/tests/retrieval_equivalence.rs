//! Equivalence contract of candidate retrieval: the pre-search index is a
//! *performance* seam, never a *semantics* seam. For every problem in the
//! corpus — both languages — an engine with `use_candidate_index = true`
//! must reach the same repaired/not-repaired verdict as a full scan, even
//! under an adversarially tiny `candidate_top_k` that forces shortlisting
//! on pools the default configuration would scan outright. Feedback and
//! cost are additionally byte-identical whenever the shortlist did not
//! narrow the scan (the default configuration on seed-sized pools).

use proptest::prelude::*;

use clara_core::{Clara, ClaraConfig};
use clara_corpus::{all_problems_all_langs, derive_mutants, MutationConfig, Problem};

/// Builds an engine from the problem's seeds with the given retrieval
/// settings. Returns the engine and how many seeds were usable.
fn engine_for(problem: &Problem, use_index: bool, top_k: usize) -> (Clara, usize) {
    let mut config = ClaraConfig::default();
    config.repair.use_candidate_index = use_index;
    config.repair.candidate_top_k = top_k;
    let mut engine = Clara::new_in(problem.lang, problem.entry.to_owned(), problem.spec.inputs(), config);
    let mut usable = 0;
    for seed in &problem.seeds {
        if engine.add_correct_solution(seed).is_ok() {
            usable += 1;
        }
    }
    (engine, usable)
}

/// Repairs every derived mutant of `problem` through an indexed engine and
/// a full-scan engine and asserts verdict equivalence. `top_k = 1` forces
/// the shortlist path even on seed-sized cluster pools.
fn assert_verdicts_agree(problem: &Problem, mutation_seed: u64, top_k: usize) {
    let (indexed, usable_indexed) = engine_for(problem, true, top_k);
    let (full, usable_full) = engine_for(problem, false, top_k);
    // Ingestion must be oblivious to the retrieval flag.
    assert_eq!(usable_indexed, usable_full, "{}: usable seeds diverged", problem.name);
    assert_eq!(indexed.clusters().len(), full.clusters().len(), "{}: cluster pool diverged", problem.name);
    assert_eq!(
        indexed.candidate_index().len(),
        indexed.clusters().len(),
        "{}: index must cover every cluster",
        problem.name
    );

    let (mutants, _) = derive_mutants(
        problem,
        &MutationConfig { seed: mutation_seed, target_wrong_answer: 6, max_attempts: 800 },
    );
    let mut checked = 0usize;
    let mut retrieved = 0usize;
    for mutant in &mutants {
        let Ok(with_index) = indexed.repair_source(&mutant.source) else {
            assert!(
                full.repair_source(&mutant.source).is_err(),
                "{}: analysability diverged on a mutant",
                problem.name
            );
            continue;
        };
        let scan = full.repair_source(&mutant.source).expect("full scan must analyse the same source");
        checked += 1;

        // The contract: identical repaired/not-repaired verdict, identical
        // failure classification.
        assert_eq!(
            with_index.result.best.is_some(),
            scan.result.best.is_some(),
            "{}: verdict diverged (seed {mutation_seed}, top_k {top_k}) on:\n{}",
            problem.name,
            mutant.source
        );
        assert_eq!(with_index.result.failure, scan.result.failure, "{}: failure diverged", problem.name);

        if let Some(retrieval) = with_index.result.retrieval {
            retrieved += 1;
            assert!(
                retrieval.shortlisted <= retrieval.control_flow_candidates,
                "{}: shortlist larger than the candidate set",
                problem.name
            );
            // When the shortlist did not actually narrow the scan, the whole
            // outcome — cost and rendered feedback — must be byte-identical.
            if retrieval.shortlisted == retrieval.control_flow_candidates && !retrieval.fell_back {
                assert_eq!(
                    with_index.result.best.as_ref().map(|r| r.total_cost),
                    scan.result.best.as_ref().map(|r| r.total_cost),
                    "{}: cost diverged without shortlisting",
                    problem.name
                );
                assert_eq!(
                    with_index.feedback, scan.feedback,
                    "{}: feedback diverged without shortlisting",
                    problem.name
                );
            }
        }
        // The full-scan engine must never report a retrieval outcome.
        assert_eq!(scan.result.retrieval, None, "{}: full scan recorded retrieval", problem.name);
    }
    assert!(checked > 0, "{}: no analysable mutants were derived", problem.name);
    // With more than one cluster the indexed engine must have consulted the
    // index (small pools record a degenerate full-scan outcome, but an
    // outcome nonetheless).
    if indexed.clusters().len() > 1 {
        assert!(retrieved > 0, "{}: index was never consulted", problem.name);
    }
}

#[test]
fn indexed_and_full_scan_verdicts_agree_on_every_problem_both_languages() {
    let problems = all_problems_all_langs();
    assert_eq!(problems.len(), 12, "corpus should expose twelve problems across both frontends");
    for problem in &problems {
        // top_k = 1 squeezes the shortlist as hard as possible; the
        // empty-handed fallback is what keeps verdicts equal.
        assert_verdicts_agree(problem, 0x5EED_CAFE, 1);
    }
}

#[test]
fn default_configuration_is_byte_identical_on_seed_sized_pools() {
    // With the default top_k (larger than any seed pool) shortlisting never
    // engages, so the indexed engine must be indistinguishable — including
    // feedback bytes — from the full scan.
    for problem in all_problems_all_langs() {
        let (indexed, _) = engine_for(&problem, true, 16);
        let (full, _) = engine_for(&problem, false, 16);
        let (mutants, _) = derive_mutants(
            &problem,
            &MutationConfig { seed: 0xD0_0DAD, target_wrong_answer: 4, max_attempts: 600 },
        );
        for mutant in &mutants {
            let Ok(with_index) = indexed.repair_source(&mutant.source) else { continue };
            let Ok(scan) = full.repair_source(&mutant.source) else {
                panic!("{}: analysability diverged", problem.name)
            };
            assert_eq!(with_index.feedback, scan.feedback, "{}: feedback diverged", problem.name);
            assert_eq!(
                with_index.result.best.as_ref().map(|r| r.total_cost),
                scan.result.best.as_ref().map(|r| r.total_cost),
                "{}: cost diverged",
                problem.name
            );
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 6, ..ProptestConfig::default() })]

    /// Randomised seeds and shortlist widths on one problem per language:
    /// the verdict contract holds for any (seed, top_k), not just the
    /// hand-picked ones above.
    #[test]
    fn verdicts_agree_under_random_seeds_and_shortlist_widths(
        mutation_seed in 0u64..u64::from(u32::MAX),
        top_k in 1usize..6,
    ) {
        assert_verdicts_agree(&clara_corpus::mooc::derivatives(), mutation_seed, top_k);
        assert_verdicts_agree(&clara_corpus::minic::fibonacci_c(), mutation_seed, top_k);
    }
}
