//! Persistence contract of the cluster index: a warm-loaded store must be
//! indistinguishable — byte-for-byte in its feedback — from the cold-built
//! store it was serialized from, and incremental insertion must agree with
//! batch clustering.

use proptest::prelude::*;

use clara_core::{cluster_programs, clustering_stats, AnalyzedProgram, ClaraConfig};
use clara_corpus::mooc::derivatives;
use clara_corpus::{generate_dataset, DatasetConfig};
use clara_lang::parse_program;
use clara_model::Fuel;
use clara_server::{ClusterStore, FeedbackService, Request, ServiceConfig};

/// The smoke dataset of the bench harness (first problem, 10 correct + 5
/// incorrect).
fn smoke_dataset() -> clara_corpus::Dataset {
    generate_dataset(
        &derivatives(),
        DatasetConfig { correct_count: 10, incorrect_count: 5, ..DatasetConfig::default() },
    )
}

#[test]
fn warm_loaded_store_yields_byte_identical_feedback_on_the_smoke_dataset() {
    let dataset = smoke_dataset();
    let (cold, usable) = ClusterStore::build(
        &dataset.problem,
        dataset.correct.iter().map(|a| a.source.as_str()),
        ClaraConfig::default(),
    );
    assert!(usable >= 8, "most of the correct pool must be usable, got {usable}");

    let json = cold.to_json();
    let warm = ClusterStore::from_json(&json, &dataset.problem, ClaraConfig::default()).unwrap();
    assert_eq!(warm.stats(), cold.stats());

    let cold_service = FeedbackService::new(vec![cold], ServiceConfig::default());
    let warm_service = FeedbackService::new(vec![warm], ServiceConfig::default());
    for attempt in dataset.correct.iter().chain(&dataset.incorrect) {
        let request = Request {
            id: attempt.id as u64,
            problem: dataset.problem.name.to_owned(),
            lang: None,
            source: attempt.source.clone(),
            learn: None,
            trace: None,
        };
        let cold_response = cold_service.handle(&request);
        let warm_response = warm_service.handle(&request);
        assert_eq!(cold_response.status, warm_response.status, "status diverged on attempt {}", attempt.id);
        // The acceptance criterion: byte-identical feedback, warm vs cold.
        assert_eq!(
            cold_response.feedback, warm_response.feedback,
            "feedback diverged on attempt {}:\n{}",
            attempt.id, attempt.source
        );
        assert_eq!(cold_response.cost, warm_response.cost);
        assert_eq!(cold_response.error, warm_response.error);
    }
}

#[test]
fn stored_index_roundtrips_through_disk() {
    let dataset = smoke_dataset();
    let (store, _) = ClusterStore::build(
        &dataset.problem,
        dataset.correct.iter().map(|a| a.source.as_str()),
        ClaraConfig::default(),
    );
    let dir = std::env::temp_dir().join(format!("clara-persistence-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    store.save(&dir).unwrap();
    let loaded = ClusterStore::load(&dir, &dataset.problem, ClaraConfig::default())
        .unwrap()
        .expect("index file exists");
    assert_eq!(loaded.to_json(), store.to_json());
    let _ = std::fs::remove_dir_all(&dir);
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 8, .. ProptestConfig::default() })]

    /// Incremental insertion (the online path of `ClusterStore`) produces
    /// the same clustering as batch `cluster_programs` over any prefix and
    /// order of the correct pool: same cluster count, same sizes, same
    /// number of mined expressions.
    #[test]
    fn incremental_insertion_matches_batch_clustering(seed in 0u64..500, take in 2usize..10) {
        let problem = derivatives();
        let dataset = generate_dataset(
            &problem,
            DatasetConfig { correct_count: 10, incorrect_count: 0, seed, ..DatasetConfig::default() },
        );
        let sources: Vec<&str> = dataset.correct.iter().take(take).map(|a| a.source.as_str()).collect();

        // Batch: analyse everything, then cluster in one call.
        let inputs = problem.inputs();
        let analyzed: Vec<AnalyzedProgram> = sources
            .iter()
            .filter_map(|s| AnalyzedProgram::from_text(s, problem.entry, &inputs, Fuel::default()).ok())
            .collect();
        let batch = cluster_programs(analyzed);
        let batch_stats = clustering_stats(&batch);

        // Incremental: insert one at a time (the service's online path).
        let (store, usable) = ClusterStore::build(&problem, sources.iter().copied(), ClaraConfig::default());
        prop_assert_eq!(usable, batch_stats.program_count);
        let incremental_stats = store.stats();

        prop_assert_eq!(incremental_stats.cluster_count, batch_stats.cluster_count);
        prop_assert_eq!(incremental_stats.program_count, batch_stats.program_count);
        prop_assert_eq!(incremental_stats.largest_cluster, batch_stats.largest_cluster);
        prop_assert_eq!(incremental_stats.expression_count, batch_stats.expression_count);
    }

    /// Persistence round-trips under arbitrary corpus seeds, not just the
    /// smoke corpus: serialize → deserialize → identical serialization and
    /// identical repair feedback on a mutant attempt.
    #[test]
    fn roundtrip_feedback_matches_for_arbitrary_corpora(seed in 0u64..200) {
        let problem = derivatives();
        let dataset = generate_dataset(
            &problem,
            DatasetConfig { correct_count: 6, incorrect_count: 2, seed, ..DatasetConfig::default() },
        );
        let (cold, _) = ClusterStore::build(
            &problem,
            dataset.correct.iter().map(|a| a.source.as_str()),
            ClaraConfig::default(),
        );
        let json = cold.to_json();
        let warm = ClusterStore::from_json(&json, &problem, ClaraConfig::default()).unwrap();
        prop_assert_eq!(warm.to_json(), json);

        for attempt in &dataset.incorrect {
            if parse_program(&attempt.source).is_err() {
                continue;
            }
            let cold_outcome = cold.engine().repair_source(&attempt.source);
            let warm_outcome = warm.engine().repair_source(&attempt.source);
            match (cold_outcome, warm_outcome) {
                (Ok(cold_outcome), Ok(warm_outcome)) => {
                    prop_assert_eq!(
                        cold_outcome.feedback.lines(),
                        warm_outcome.feedback.lines(),
                        "feedback diverged on attempt {}", attempt.id
                    );
                }
                (Err(cold_error), Err(warm_error)) => {
                    prop_assert_eq!(cold_error.to_string(), warm_error.to_string());
                }
                (cold_outcome, warm_outcome) => {
                    panic!(
                        "cold/warm divergence on attempt {}: {:?} vs {:?}",
                        attempt.id,
                        cold_outcome.map(|o| o.feedback.lines()),
                        warm_outcome.map(|o| o.feedback.lines()),
                    );
                }
            }
        }
    }
}
