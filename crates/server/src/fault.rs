//! Deterministic fault injection for chaos testing the serving fleet.
//!
//! A [`FaultPlan`] is a seeded probability table parsed from a compact spec
//! string (CLI `--faults` / `CLARA_FAULTS` env), e.g.
//! `seed=7,drop=0.02,close=0.01,garble=0.02,delay=0.1,delay_ms=5`. The
//! event loop consults a [`FaultInjector`] once per parsed request and
//! applies the drawn [`FaultAction`] *before* the request reaches the
//! backend:
//!
//! * `drop` — swallow the request; the client sees silence and must rely on
//!   its timeout + retry,
//! * `close` — slam the connection shut, exercising reconnect paths,
//! * `garble` — answer with a non-JSON line, exercising parse-failure
//!   handling in routers and clients,
//! * `delay` — park the request for `delay_ms` before processing,
//!   exercising deadline propagation.
//!
//! Decisions come from a [`SplitMix64`] stream owned by the injector, so a
//! given `(seed, request sequence)` replays the exact same fault schedule —
//! chaos failures reproduce under the same seed.

use std::fmt;
use std::time::Duration;

use crate::retry::SplitMix64;

/// What the fault layer does to one incoming request.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultAction {
    /// No fault: process normally.
    None,
    /// Discard the request without replying.
    Drop,
    /// Close the connection without replying.
    Close,
    /// Reply with a garbage (non-JSON) line.
    Garble,
    /// Delay processing by the contained duration.
    Delay(Duration),
}

/// A seeded fault-probability table (see module docs for the spec syntax).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FaultPlan {
    /// RNG seed; identical seeds replay identical fault schedules.
    pub seed: u64,
    /// Probability a request is silently dropped.
    pub drop: f64,
    /// Probability the connection is closed without a reply.
    pub close: f64,
    /// Probability the reply is a garbage line.
    pub garble: f64,
    /// Probability a request is delayed by `delay_ms`.
    pub delay: f64,
    /// Length of an injected delay, in milliseconds.
    pub delay_ms: u64,
}

impl Default for FaultPlan {
    fn default() -> Self {
        FaultPlan { seed: 0, drop: 0.0, close: 0.0, garble: 0.0, delay: 0.0, delay_ms: 5 }
    }
}

/// Error parsing a fault-plan spec string.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FaultPlanError(String);

impl fmt::Display for FaultPlanError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "invalid fault plan {:?}: expected comma-separated seed=N, delay_ms=N, \
             and drop/close/garble/delay=P with P in [0,1]",
            self.0
        )
    }
}

impl std::error::Error for FaultPlanError {}

impl std::str::FromStr for FaultPlan {
    type Err = FaultPlanError;

    fn from_str(spec: &str) -> Result<Self, Self::Err> {
        let err = || FaultPlanError(spec.to_string());
        let mut plan = FaultPlan::default();
        for part in spec.split(',') {
            let part = part.trim();
            if part.is_empty() {
                continue;
            }
            let (key, value) = part.split_once('=').ok_or_else(err)?;
            let (key, value) = (key.trim(), value.trim());
            match key {
                "seed" => plan.seed = value.parse().map_err(|_| err())?,
                "delay_ms" => plan.delay_ms = value.parse().map_err(|_| err())?,
                "drop" | "close" | "garble" | "delay" => {
                    let p: f64 = value.parse().map_err(|_| err())?;
                    if !(0.0..=1.0).contains(&p) {
                        return Err(err());
                    }
                    match key {
                        "drop" => plan.drop = p,
                        "close" => plan.close = p,
                        "garble" => plan.garble = p,
                        _ => plan.delay = p,
                    }
                }
                _ => return Err(err()),
            }
        }
        Ok(plan)
    }
}

impl FaultPlan {
    /// `true` when every fault probability is zero.
    pub fn is_noop(&self) -> bool {
        self.drop == 0.0 && self.close == 0.0 && self.garble == 0.0 && self.delay == 0.0
    }

    /// The injector drawing this plan's fault schedule.
    pub fn injector(&self) -> FaultInjector {
        FaultInjector { plan: *self, rng: SplitMix64::new(self.seed), injected: 0 }
    }
}

/// Draws per-request [`FaultAction`]s from a [`FaultPlan`]'s seeded stream.
#[derive(Debug, Clone)]
pub struct FaultInjector {
    plan: FaultPlan,
    rng: SplitMix64,
    injected: u64,
}

impl FaultInjector {
    /// The action for the next request. Fault classes are checked in a fixed
    /// order (drop, close, garble, delay) against one uniform draw, so the
    /// per-request fault probability is their sum (capped at 1).
    pub fn decide(&mut self) -> FaultAction {
        let draw = self.rng.next_f64();
        let ladder = [
            (self.plan.drop, FaultAction::Drop),
            (self.plan.close, FaultAction::Close),
            (self.plan.garble, FaultAction::Garble),
            (self.plan.delay, FaultAction::Delay(Duration::from_millis(self.plan.delay_ms))),
        ];
        let mut threshold = 0.0;
        for (p, action) in ladder {
            threshold += p;
            if draw < threshold {
                self.injected += 1;
                return action;
            }
        }
        FaultAction::None
    }

    /// Faults injected so far.
    pub fn injected(&self) -> u64 {
        self.injected
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn specs_parse_and_validate() {
        let plan: FaultPlan = "seed=7,drop=0.25,close=0.1,garble=0.05,delay=0.2,delay_ms=12".parse().unwrap();
        assert_eq!(plan.seed, 7);
        assert_eq!(plan.delay_ms, 12);
        assert!((plan.drop - 0.25).abs() < 1e-9);
        assert!(!plan.is_noop());

        assert!("".parse::<FaultPlan>().unwrap().is_noop());
        assert!("seed=3".parse::<FaultPlan>().unwrap().is_noop());
        for bad in ["drop=1.5", "drop=-0.1", "bogus=1", "drop", "drop=x", "seed=-1"] {
            assert!(bad.parse::<FaultPlan>().is_err(), "{bad:?} should not parse");
        }
    }

    #[test]
    fn schedule_is_deterministic_under_a_seed() {
        let plan: FaultPlan = "seed=42,drop=0.2,close=0.2,garble=0.2,delay=0.2".parse().unwrap();
        let mut a = plan.injector();
        let mut b = plan.injector();
        let xs: Vec<FaultAction> = (0..256).map(|_| a.decide()).collect();
        let ys: Vec<FaultAction> = (0..256).map(|_| b.decide()).collect();
        assert_eq!(xs, ys);
        assert_eq!(a.injected(), b.injected());
        assert!(a.injected() > 0);
    }

    #[test]
    fn rates_land_near_their_probabilities() {
        let plan: FaultPlan = "seed=1,drop=0.1,close=0.1,garble=0.1,delay=0.1,delay_ms=3".parse().unwrap();
        let mut injector = plan.injector();
        let mut counts = [0usize; 5];
        for _ in 0..10_000 {
            let slot = match injector.decide() {
                FaultAction::None => 0,
                FaultAction::Drop => 1,
                FaultAction::Close => 2,
                FaultAction::Garble => 3,
                FaultAction::Delay(d) => {
                    assert_eq!(d, Duration::from_millis(3));
                    4
                }
            };
            counts[slot] += 1;
        }
        assert!((5_500..=6_500).contains(&counts[0]), "none: {counts:?}");
        for (name, count) in ["drop", "close", "garble", "delay"].iter().zip(&counts[1..]) {
            assert!((700..=1_300).contains(count), "{name} rate off: {counts:?}");
        }
    }

    #[test]
    fn noop_plan_never_injects() {
        let mut injector = FaultPlan::default().injector();
        for _ in 0..1_000 {
            assert_eq!(injector.decide(), FaultAction::None);
        }
        assert_eq!(injector.injected(), 0);
    }
}
