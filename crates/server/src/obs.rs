//! Hand-rolled observability: metrics registry, latency histograms,
//! request tracing and structured logs.
//!
//! The build environment is offline, so there is no prometheus client, no
//! tracing crate and no logging framework — everything here is `std` only:
//!
//! * [`Counter`] / [`Gauge`] / [`Histogram`] — atomic instruments held in
//!   the process-wide [`Registry`], registered by name + label set. The
//!   histogram uses **log-linear buckets** (exact below 8, four sub-buckets
//!   per power of two above, one overflow bucket past `2^30`): every
//!   histogram in the fleet shares the same fixed layout, so merging two of
//!   them is an element-wise add and a router can fold shard histograms
//!   into fleet-level views without resampling. Quantile estimates are
//!   bucket-upper-bound answers, i.e. `p ≤ estimate ≤ 1.25·p` above the
//!   linear range (property-tested below).
//! * [`MetricsDump`] — the JSON snapshot exchanged by `{"metrics":true}`
//!   NDJSON probes; [`render_prometheus`] renders a dump (local or merged)
//!   in Prometheus text format for `GET /metrics`.
//! * [`mint_trace_id`] — 16-hex-digit request trace ids from a seeded
//!   SplitMix64 stream, minted at ingress and threaded through the
//!   protocol.
//! * [`log`] — one-line JSON structured logs on stderr (`ts`, `level`,
//!   `event`, plus free-form fields), replacing ad-hoc `eprintln!`.
//!
//! The seam to the repair pipeline is [`install_stage_metrics`]: it plugs a
//! [`clara_core::timing::StageSink`] into the core crate so every
//! [`clara_core::timing::StageTimer`] sample lands in a
//! `clara_stage_duration_us{stage=…}` histogram here.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};
use std::sync::{Arc, Mutex, Once, OnceLock};
use std::time::{SystemTime, UNIX_EPOCH};

use clara_core::timing::{Stage, StageSink};
use serde::{Deserialize, Serialize};

use crate::retry::SplitMix64;

// ---------------------------------------------------------------------------
// Histogram bucket layout (shared, fixed — the precondition for merging)
// ---------------------------------------------------------------------------

/// Number of buckets in every [`Histogram`]: 8 exact buckets for values
/// 0–7, 27 octaves × 4 log-linear sub-buckets for values 8 to `2^30 - 1`,
/// and one overflow bucket.
pub const HISTOGRAM_BUCKETS: usize = 117;

/// Lower bound of the overflow bucket.
const OVERFLOW_LOWER: u64 = 1 << 30;

/// The bucket index recording `value`.
pub fn bucket_index(value: u64) -> usize {
    if value < 8 {
        return value as usize;
    }
    if value >= OVERFLOW_LOWER {
        return HISTOGRAM_BUCKETS - 1;
    }
    let k = 63 - u64::from(value.leading_zeros()); // floor(log2(value)), 3..=29
    let sub = (value >> (k - 2)) & 3;
    (8 + (k - 3) * 4 + sub) as usize
}

/// Smallest value landing in bucket `index`.
pub fn bucket_lower(index: usize) -> u64 {
    if index < 8 {
        return index as u64;
    }
    if index >= HISTOGRAM_BUCKETS - 1 {
        return OVERFLOW_LOWER;
    }
    let i = (index - 8) as u64;
    let k = i / 4 + 3;
    (1u64 << k) + (i % 4) * (1u64 << (k - 2))
}

/// Largest value landing in bucket `index` (inclusive).
pub fn bucket_max(index: usize) -> u64 {
    if index + 1 >= HISTOGRAM_BUCKETS {
        u64::MAX
    } else {
        bucket_lower(index + 1) - 1
    }
}

// ---------------------------------------------------------------------------
// Instruments
// ---------------------------------------------------------------------------

/// A monotonically increasing atomic counter.
#[derive(Debug, Default)]
pub struct Counter(AtomicU64);

impl Counter {
    /// Adds 1.
    pub fn inc(&self) {
        self.add(1);
    }

    /// Adds `n`.
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// A settable signed gauge.
#[derive(Debug, Default)]
pub struct Gauge(AtomicI64);

impl Gauge {
    /// Sets the gauge to `v`.
    pub fn set(&self, v: i64) {
        self.0.store(v, Ordering::Relaxed);
    }

    /// Adds `delta` (may be negative).
    pub fn add(&self, delta: i64) {
        self.0.fetch_add(delta, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> i64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// A mergeable log-linear-bucket latency histogram. Values are unit-free;
/// every histogram in this codebase records **microseconds**.
#[derive(Debug)]
pub struct Histogram {
    buckets: Vec<AtomicU64>,
    count: AtomicU64,
    sum: AtomicU64,
    max: AtomicU64,
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram {
            buckets: (0..HISTOGRAM_BUCKETS).map(|_| AtomicU64::new(0)).collect(),
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            max: AtomicU64::new(0),
        }
    }
}

impl Histogram {
    /// Records one observation.
    pub fn record(&self, value: u64) {
        self.buckets[bucket_index(value)].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(value, Ordering::Relaxed);
        self.max.fetch_max(value, Ordering::Relaxed);
    }

    /// A point-in-time copy (racy across buckets under concurrent writes,
    /// which is fine for monitoring).
    pub fn snapshot(&self) -> HistogramSnapshot {
        HistogramSnapshot {
            buckets: self.buckets.iter().map(|b| b.load(Ordering::Relaxed)).collect(),
            count: self.count.load(Ordering::Relaxed),
            sum: self.sum.load(Ordering::Relaxed),
            max: self.max.load(Ordering::Relaxed),
        }
    }
}

/// An immutable histogram snapshot: what dumps carry and quantiles are
/// computed from. Mergeable with any snapshot of the same layout.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct HistogramSnapshot {
    /// Per-bucket observation counts (layout: [`bucket_index`]).
    pub buckets: Vec<u64>,
    /// Total observations.
    pub count: u64,
    /// Sum of all observed values.
    pub sum: u64,
    /// Largest observed value.
    pub max: u64,
}

impl HistogramSnapshot {
    /// Upper-bound estimate of the `q`-quantile (0 < q ≤ 1): the inclusive
    /// upper edge of the bucket holding the rank-`⌈q·count⌉` observation,
    /// clamped to the observed maximum. 0 when empty.
    pub fn quantile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let target = ((q * self.count as f64).ceil() as u64).clamp(1, self.count);
        let mut cumulative = 0u64;
        for (index, &bucket) in self.buckets.iter().enumerate() {
            cumulative += bucket;
            if cumulative >= target {
                return bucket_max(index).min(self.max);
            }
        }
        self.max
    }

    /// Mean of the observations (0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// Folds `other` into `self` (element-wise bucket add). Layouts are
    /// fixed process-wide; a shorter foreign vector (older peer) is padded.
    pub fn merge(&mut self, other: &HistogramSnapshot) {
        if self.buckets.len() < other.buckets.len() {
            self.buckets.resize(other.buckets.len(), 0);
        }
        for (mine, theirs) in self.buckets.iter_mut().zip(&other.buckets) {
            *mine += theirs;
        }
        self.count += other.count;
        self.sum = self.sum.saturating_add(other.sum);
        self.max = self.max.max(other.max);
    }
}

// ---------------------------------------------------------------------------
// Registry
// ---------------------------------------------------------------------------

type MetricKey = (String, Vec<(String, String)>);

enum Metric {
    Counter(Arc<Counter>),
    Gauge(Arc<Gauge>),
    Histogram(Arc<Histogram>),
}

/// A process-wide registry of named, labelled instruments. Instrument
/// handles are `Arc`s: register once (cheap but locking), then record
/// lock-free on the hot path.
#[derive(Default)]
pub struct Registry {
    metrics: Mutex<BTreeMap<MetricKey, Metric>>,
}

fn metric_key(name: &str, labels: &[(&str, &str)]) -> MetricKey {
    (name.to_owned(), labels.iter().map(|(k, v)| ((*k).to_owned(), (*v).to_owned())).collect())
}

impl Registry {
    /// The process-wide registry.
    pub fn global() -> &'static Registry {
        static GLOBAL: OnceLock<Registry> = OnceLock::new();
        GLOBAL.get_or_init(Registry::default)
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, BTreeMap<MetricKey, Metric>> {
        self.metrics.lock().unwrap_or_else(|poisoned| poisoned.into_inner())
    }

    /// The counter registered under `name` + `labels` (created on first
    /// use). Panics if the key is already registered as another kind.
    pub fn counter(&self, name: &str, labels: &[(&str, &str)]) -> Arc<Counter> {
        let mut metrics = self.lock();
        let entry = metrics
            .entry(metric_key(name, labels))
            .or_insert_with(|| Metric::Counter(Arc::new(Counter::default())));
        match entry {
            Metric::Counter(counter) => Arc::clone(counter),
            _ => panic!("metric `{name}` is not a counter"),
        }
    }

    /// The gauge registered under `name` + `labels` (created on first use).
    pub fn gauge(&self, name: &str, labels: &[(&str, &str)]) -> Arc<Gauge> {
        let mut metrics = self.lock();
        let entry = metrics
            .entry(metric_key(name, labels))
            .or_insert_with(|| Metric::Gauge(Arc::new(Gauge::default())));
        match entry {
            Metric::Gauge(gauge) => Arc::clone(gauge),
            _ => panic!("metric `{name}` is not a gauge"),
        }
    }

    /// The histogram registered under `name` + `labels` (created on first
    /// use).
    pub fn histogram(&self, name: &str, labels: &[(&str, &str)]) -> Arc<Histogram> {
        let mut metrics = self.lock();
        let entry = metrics
            .entry(metric_key(name, labels))
            .or_insert_with(|| Metric::Histogram(Arc::new(Histogram::default())));
        match entry {
            Metric::Histogram(histogram) => Arc::clone(histogram),
            _ => panic!("metric `{name}` is not a histogram"),
        }
    }

    /// A JSON-serializable snapshot of every registered instrument, tagged
    /// with the probe correlation `id`.
    pub fn dump(&self, id: u64) -> MetricsDump {
        let metrics = self.lock();
        let mut dump = MetricsDump { metrics_dump: true, id, ..MetricsDump::default() };
        for ((name, labels), metric) in metrics.iter() {
            let labels: Vec<LabelDump> =
                labels.iter().map(|(k, v)| LabelDump { k: k.clone(), v: v.clone() }).collect();
            match metric {
                Metric::Counter(counter) => {
                    dump.counters.push(CounterDump { name: name.clone(), labels, value: counter.get() })
                }
                Metric::Gauge(gauge) => {
                    dump.gauges.push(GaugeDump { name: name.clone(), labels, value: gauge.get() })
                }
                Metric::Histogram(histogram) => dump.histograms.push(HistogramDump {
                    name: name.clone(),
                    labels,
                    hist: histogram.snapshot(),
                }),
            }
        }
        dump
    }
}

/// One label of a dumped metric.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct LabelDump {
    /// Label name.
    pub k: String,
    /// Label value.
    pub v: String,
}

/// A dumped counter.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct CounterDump {
    /// Metric family name.
    pub name: String,
    /// Label set.
    pub labels: Vec<LabelDump>,
    /// Counter value.
    pub value: u64,
}

/// A dumped gauge.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct GaugeDump {
    /// Metric family name.
    pub name: String,
    /// Label set.
    pub labels: Vec<LabelDump>,
    /// Gauge value.
    pub value: i64,
}

/// A dumped histogram.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct HistogramDump {
    /// Metric family name.
    pub name: String,
    /// Label set.
    pub labels: Vec<LabelDump>,
    /// The bucket snapshot.
    pub hist: HistogramSnapshot,
}

/// The full metrics snapshot of one process: the payload of
/// `{"metrics":true}` NDJSON probes. Mergeable across processes
/// ([`MetricsDump::merge`]), renderable as Prometheus text
/// ([`render_prometheus`]).
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct MetricsDump {
    /// Marker distinguishing this payload from feedback responses on the
    /// NDJSON stream (always `true`).
    pub metrics_dump: bool,
    /// Correlation id of the probe.
    pub id: u64,
    /// All counters.
    pub counters: Vec<CounterDump>,
    /// All gauges.
    pub gauges: Vec<GaugeDump>,
    /// All histograms.
    pub histograms: Vec<HistogramDump>,
}

impl MetricsDump {
    /// Folds `other` into `self`: counters and gauges add by
    /// (name, labels); histograms merge bucket-wise. Instruments only
    /// present in `other` are appended. This is how the router builds its
    /// fleet-level view from per-shard dumps.
    pub fn merge(&mut self, other: &MetricsDump) {
        for counter in &other.counters {
            match self.counters.iter_mut().find(|c| c.name == counter.name && c.labels == counter.labels) {
                Some(mine) => mine.value += counter.value,
                None => self.counters.push(counter.clone()),
            }
        }
        for gauge in &other.gauges {
            match self.gauges.iter_mut().find(|g| g.name == gauge.name && g.labels == gauge.labels) {
                Some(mine) => mine.value += gauge.value,
                None => self.gauges.push(gauge.clone()),
            }
        }
        for histogram in &other.histograms {
            match self
                .histograms
                .iter_mut()
                .find(|h| h.name == histogram.name && h.labels == histogram.labels)
            {
                Some(mine) => mine.hist.merge(&histogram.hist),
                None => self.histograms.push(histogram.clone()),
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Prometheus text rendering
// ---------------------------------------------------------------------------

/// The cumulative `le` bounds rendered for histograms: powers of four (all
/// of which are bucket boundaries of the fine layout, so no fine bucket is
/// ever split across rendered bounds), plus `+Inf`.
const RENDER_BOUNDS: [u64; 16] = [
    1,
    4,
    16,
    64,
    256,
    1_024,
    4_096,
    16_384,
    65_536,
    262_144,
    1_048_576,
    4_194_304,
    16_777_216,
    67_108_864,
    268_435_456,
    1_073_741_824,
];

fn escape_label(value: &str) -> String {
    value.replace('\\', "\\\\").replace('"', "\\\"").replace('\n', "\\n")
}

fn render_labels(labels: &[LabelDump], extra: Option<(&str, String)>) -> String {
    let mut parts: Vec<String> =
        labels.iter().map(|l| format!("{}=\"{}\"", l.k, escape_label(&l.v))).collect();
    if let Some((k, v)) = extra {
        parts.push(format!("{k}=\"{v}\""));
    }
    if parts.is_empty() {
        String::new()
    } else {
        format!("{{{}}}", parts.join(","))
    }
}

/// Renders a [`MetricsDump`] in the Prometheus text exposition format
/// (counters, gauges, and histograms with cumulative `le` buckets, `_sum`
/// and `_count` series).
pub fn render_prometheus(dump: &MetricsDump) -> String {
    let mut out = String::new();
    let mut typed: std::collections::BTreeSet<&str> = std::collections::BTreeSet::new();
    for counter in &dump.counters {
        if typed.insert(&counter.name) {
            out.push_str(&format!("# TYPE {} counter\n", counter.name));
        }
        out.push_str(&format!(
            "{}{} {}\n",
            counter.name,
            render_labels(&counter.labels, None),
            counter.value
        ));
    }
    for gauge in &dump.gauges {
        if typed.insert(&gauge.name) {
            out.push_str(&format!("# TYPE {} gauge\n", gauge.name));
        }
        out.push_str(&format!("{}{} {}\n", gauge.name, render_labels(&gauge.labels, None), gauge.value));
    }
    for histogram in &dump.histograms {
        if typed.insert(&histogram.name) {
            out.push_str(&format!("# TYPE {} histogram\n", histogram.name));
        }
        let mut cumulative = 0u64;
        let mut fine = histogram.hist.buckets.iter().enumerate().peekable();
        for bound in RENDER_BOUNDS {
            while let Some(&(index, &count)) = fine.peek() {
                if bucket_max(index) <= bound {
                    cumulative += count;
                    fine.next();
                } else {
                    break;
                }
            }
            out.push_str(&format!(
                "{}_bucket{} {}\n",
                histogram.name,
                render_labels(&histogram.labels, Some(("le", bound.to_string()))),
                cumulative
            ));
        }
        out.push_str(&format!(
            "{}_bucket{} {}\n",
            histogram.name,
            render_labels(&histogram.labels, Some(("le", "+Inf".to_owned()))),
            histogram.hist.count
        ));
        out.push_str(&format!(
            "{}_sum{} {}\n",
            histogram.name,
            render_labels(&histogram.labels, None),
            histogram.hist.sum
        ));
        out.push_str(&format!(
            "{}_count{} {}\n",
            histogram.name,
            render_labels(&histogram.labels, None),
            histogram.hist.count
        ));
    }
    out
}

// ---------------------------------------------------------------------------
// Stage seam: clara_core::timing -> per-stage histograms
// ---------------------------------------------------------------------------

struct StageMetricsSink {
    hists: Vec<Arc<Histogram>>,
}

impl StageSink for StageMetricsSink {
    fn record(&self, stage: Stage, nanos: u64) {
        let index = Stage::ALL.iter().position(|s| *s == stage).unwrap_or(0);
        self.hists[index].record(nanos / 1_000);
    }
}

/// Installs the process-wide stage sink: every [`clara_core::timing::StageTimer`]
/// sample lands in the `clara_stage_duration_us{stage=…}` histogram of the
/// global registry. Idempotent; called from every service/router
/// constructor so any embedding gets stage metrics without extra setup.
pub fn install_stage_metrics() {
    static ONCE: Once = Once::new();
    ONCE.call_once(|| {
        let hists: Vec<Arc<Histogram>> = Stage::ALL
            .iter()
            .map(|stage| {
                Registry::global().histogram("clara_stage_duration_us", &[("stage", stage.as_str())])
            })
            .collect();
        let sink: &'static StageMetricsSink = Box::leak(Box::new(StageMetricsSink { hists }));
        let _ = clara_core::timing::install_sink(sink);
    });
}

// ---------------------------------------------------------------------------
// Trace ids
// ---------------------------------------------------------------------------

/// Mints a 16-hex-digit trace id from a process-wide seeded SplitMix64
/// stream (seeded once from wall clock ⊕ pid, then advanced per mint — ids
/// are unique within a process and collide across processes with
/// probability 2^-64 per pair).
pub fn mint_trace_id() -> String {
    static SEED: OnceLock<u64> = OnceLock::new();
    static NEXT: AtomicU64 = AtomicU64::new(0);
    let seed = *SEED.get_or_init(|| {
        let nanos = SystemTime::now()
            .duration_since(UNIX_EPOCH)
            .map(|d| d.subsec_nanos() as u64 ^ d.as_secs())
            .unwrap_or(0);
        nanos ^ (u64::from(std::process::id()) << 32) ^ 0x9E37_79B9_7F4A_7C15
    });
    let n = NEXT.fetch_add(1, Ordering::Relaxed);
    let id = SplitMix64::new(seed.wrapping_add(n.wrapping_mul(0xA076_1D64_78BD_642F))).next_u64();
    format!("{id:016x}")
}

/// The request's trace id, or a freshly minted one when the client (or an
/// upstream router) did not supply one.
pub fn trace_or_mint(trace: Option<&str>) -> String {
    match trace {
        Some(t) if !t.is_empty() => t.to_owned(),
        _ => mint_trace_id(),
    }
}

// ---------------------------------------------------------------------------
// Structured logs
// ---------------------------------------------------------------------------

/// A one-line JSON log event under construction. Build with [`log`], add
/// fields, then [`LogEvent::emit`] to stderr.
#[derive(Debug)]
pub struct LogEvent {
    buf: String,
}

/// Starts a structured log event: `{"ts":<unix_ms>,"level":…,"event":…,…}`.
pub fn log(level: &str, event: &str) -> LogEvent {
    let ts = SystemTime::now().duration_since(UNIX_EPOCH).map(|d| d.as_millis()).unwrap_or(0);
    let mut buf = String::with_capacity(128);
    buf.push_str(&format!("{{\"ts\":{ts},\"level\":{},\"event\":{}", json_string(level), json_string(event)));
    LogEvent { buf }
}

fn json_string(value: &str) -> String {
    serde_json::to_string(&value.to_owned()).unwrap_or_else(|_| "\"\"".to_owned())
}

impl LogEvent {
    /// Adds a string field (JSON-escaped).
    pub fn str_field(mut self, key: &str, value: &str) -> Self {
        self.buf.push_str(&format!(",{}:{}", json_string(key), json_string(value)));
        self
    }

    /// Adds an unsigned numeric field.
    pub fn num_field(mut self, key: &str, value: u64) -> Self {
        self.buf.push_str(&format!(",{}:{value}", json_string(key)));
        self
    }

    /// Adds a pre-rendered JSON fragment (caller guarantees validity —
    /// used for span arrays).
    pub fn raw_field(mut self, key: &str, raw_json: &str) -> Self {
        self.buf.push_str(&format!(",{}:{raw_json}", json_string(key)));
        self
    }

    /// Finishes the object and writes it as one stderr line.
    pub fn emit(mut self) {
        self.buf.push('}');
        eprintln!("{}", self.buf);
    }

    /// Finishes the object and returns it (for tests).
    pub fn into_line(mut self) -> String {
        self.buf.push('}');
        self.buf
    }
}

/// Renders a span list as a compact JSON array fragment (microsecond
/// durations), for [`LogEvent::raw_field`].
pub fn spans_json(spans: &[clara_core::timing::Span]) -> String {
    let parts: Vec<String> = spans
        .iter()
        .map(|s| format!("{{\"stage\":\"{}\",\"us\":{}}}", s.stage.as_str(), s.nanos / 1_000))
        .collect();
    format!("[{}]", parts.join(","))
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn bucket_boundaries_partition_the_domain() {
        // Every bucket's [lower, max] range maps back to that bucket, and
        // consecutive buckets tile the domain with no gap or overlap.
        for index in 0..HISTOGRAM_BUCKETS {
            let lower = bucket_lower(index);
            assert_eq!(bucket_index(lower), index, "lower bound of bucket {index}");
            let max = bucket_max(index);
            assert_eq!(bucket_index(max), index, "upper bound of bucket {index}");
            if index + 1 < HISTOGRAM_BUCKETS {
                assert_eq!(bucket_lower(index + 1), max + 1, "gap after bucket {index}");
            }
        }
        // Spot checks of the log-linear layout.
        assert_eq!(bucket_index(0), 0);
        assert_eq!(bucket_index(7), 7);
        assert_eq!(bucket_index(8), 8, "first octave starts at 8");
        assert_eq!(bucket_index(15), 11, "values 14-15 share the last sub-bucket of octave 3");
        assert_eq!(bucket_index(16), 12);
        assert_eq!(bucket_index(OVERFLOW_LOWER), HISTOGRAM_BUCKETS - 1);
        assert_eq!(bucket_index(u64::MAX), HISTOGRAM_BUCKETS - 1);
    }

    #[test]
    fn relative_bucket_width_is_bounded_by_a_quarter() {
        for index in 8..HISTOGRAM_BUCKETS - 1 {
            let lower = bucket_lower(index);
            let max = bucket_max(index);
            assert!(
                (max - lower) as f64 <= lower as f64 / 4.0 + 1.0,
                "bucket {index} [{lower}, {max}] wider than 25%"
            );
        }
    }

    #[test]
    fn quantiles_of_exact_small_values_are_exact() {
        let h = Histogram::default();
        for v in [0u64, 1, 2, 3, 4, 5, 6, 7] {
            h.record(v);
        }
        let snap = h.snapshot();
        assert_eq!(snap.count, 8);
        assert_eq!(snap.quantile(0.5), 3);
        assert_eq!(snap.quantile(1.0), 7);
        assert_eq!(snap.max, 7);
        assert_eq!(snap.sum, 28);
    }

    #[test]
    fn quantile_is_an_upper_bound_within_the_bucket() {
        let h = Histogram::default();
        for _ in 0..99 {
            h.record(100);
        }
        h.record(10_000);
        let snap = h.snapshot();
        let p50 = snap.quantile(0.5);
        assert!((100..=125).contains(&p50), "p50 {p50} outside the bucket of 100");
        let p99 = snap.quantile(0.99);
        assert!((100..=125).contains(&p99), "p99 {p99} (rank 99 of 100 is still a 100)");
        assert_eq!(snap.quantile(1.0), 10_000, "p100 clamps to the observed max");
    }

    #[test]
    fn empty_histogram_is_all_zeros() {
        let snap = Histogram::default().snapshot();
        assert_eq!(snap.count, 0);
        assert_eq!(snap.quantile(0.99), 0);
        assert_eq!(snap.mean(), 0.0);
    }

    #[test]
    fn concurrent_recording_loses_nothing() {
        // 8 threads hammer one histogram; every observation must land.
        let h = std::sync::Arc::new(Histogram::default());
        let per_thread = 10_000u64;
        let handles: Vec<_> = (0..8u64)
            .map(|t| {
                let h = std::sync::Arc::clone(&h);
                std::thread::spawn(move || {
                    for i in 0..per_thread {
                        h.record(t * 1_000 + i % 997);
                    }
                })
            })
            .collect();
        for handle in handles {
            handle.join().expect("recorder thread");
        }
        let snap = h.snapshot();
        assert_eq!(snap.count, 8 * per_thread);
        assert_eq!(snap.buckets.iter().sum::<u64>(), 8 * per_thread, "bucket counts must sum to count");
        assert!(snap.max >= 7_000);
    }

    #[test]
    fn registry_reuses_instruments_and_dumps_them() {
        let registry = Registry::default();
        let a = registry.counter("clara_test_total", &[("kind", "x")]);
        let b = registry.counter("clara_test_total", &[("kind", "x")]);
        a.inc();
        b.add(2);
        assert_eq!(a.get(), 3, "same key must be the same instrument");
        registry.gauge("clara_test_gauge", &[]).set(-4);
        registry.histogram("clara_test_us", &[]).record(42);
        let dump = registry.dump(9);
        assert!(dump.metrics_dump);
        assert_eq!(dump.id, 9);
        assert_eq!(dump.counters.len(), 1);
        assert_eq!(dump.counters[0].value, 3);
        assert_eq!(dump.gauges[0].value, -4);
        assert_eq!(dump.histograms[0].hist.count, 1);
        // And the dump survives the NDJSON wire format.
        let line = serde_json::to_string(&dump).expect("dump serializes");
        assert!(!line.contains('\n'));
        let back: MetricsDump = serde_json::from_str(&line).expect("dump parses");
        assert_eq!(back.counters[0].value, 3);
        assert_eq!(back.histograms[0].hist.buckets.len(), HISTOGRAM_BUCKETS);
    }

    #[test]
    fn merged_dumps_add_counters_and_histograms() {
        let r1 = Registry::default();
        let r2 = Registry::default();
        r1.counter("c", &[]).add(5);
        r2.counter("c", &[]).add(7);
        r2.counter("only_here", &[]).inc();
        r1.histogram("h", &[]).record(10);
        r2.histogram("h", &[]).record(1_000);
        let mut merged = r1.dump(0);
        merged.merge(&r2.dump(0));
        assert_eq!(merged.counters.iter().find(|c| c.name == "c").unwrap().value, 12);
        assert_eq!(merged.counters.iter().find(|c| c.name == "only_here").unwrap().value, 1);
        let h = &merged.histograms.iter().find(|h| h.name == "h").unwrap().hist;
        assert_eq!(h.count, 2);
        assert_eq!(h.max, 1_000);
    }

    #[test]
    fn prometheus_rendering_is_wellformed() {
        let registry = Registry::default();
        registry.counter("clara_requests_total", &[("status", "correct")]).add(3);
        registry.gauge("clara_up", &[]).set(1);
        let h = registry.histogram("clara_stage_duration_us", &[("stage", "ilp")]);
        h.record(3);
        h.record(500);
        h.record(2_000_000);
        let text = render_prometheus(&registry.dump(0));
        assert!(text.contains("# TYPE clara_requests_total counter"));
        assert!(text.contains("clara_requests_total{status=\"correct\"} 3"));
        assert!(text.contains("clara_up 1"));
        assert!(text.contains("# TYPE clara_stage_duration_us histogram"));
        assert!(text.contains("clara_stage_duration_us_bucket{stage=\"ilp\",le=\"4\"} 1"));
        assert!(text.contains("clara_stage_duration_us_bucket{stage=\"ilp\",le=\"1024\"} 2"));
        assert!(text.contains("clara_stage_duration_us_bucket{stage=\"ilp\",le=\"+Inf\"} 3"));
        assert!(text.contains("clara_stage_duration_us_count{stage=\"ilp\"} 3"));
        // Cumulative bucket counts are monotonically non-decreasing.
        let mut last = 0u64;
        for line in text.lines().filter(|l| l.starts_with("clara_stage_duration_us_bucket")) {
            let count: u64 = line.rsplit(' ').next().unwrap().parse().unwrap();
            assert!(count >= last, "non-monotone cumulative count in {line}");
            last = count;
        }
    }

    #[test]
    fn trace_ids_are_distinct_hex() {
        let a = mint_trace_id();
        let b = mint_trace_id();
        assert_ne!(a, b);
        assert_eq!(a.len(), 16);
        assert!(a.chars().all(|c| c.is_ascii_hexdigit()));
        assert_eq!(trace_or_mint(Some("abc")), "abc");
        assert_eq!(trace_or_mint(Some("")).len(), 16, "empty trace mints a fresh id");
        assert_eq!(trace_or_mint(None).len(), 16);
    }

    #[test]
    fn structured_log_lines_are_single_line_json() {
        let line = log("warn", "index_quarantined")
            .str_field("path", "/tmp/with \"quotes\"\nand newline")
            .num_field("elapsed_us", 42)
            .raw_field("spans", "[{\"stage\":\"parse\",\"us\":7}]")
            .into_line();
        assert!(!line.contains('\n'), "one line: {line}");
        // The vendored serde_json has no dynamic `Value`; check the JSON
        // shape structurally instead.
        assert!(line.starts_with('{') && line.ends_with('}'), "{line}");
        assert!(line.contains("\"ts\":"), "{line}");
        assert!(line.contains("\"level\":\"warn\""), "{line}");
        assert!(line.contains("\"event\":\"index_quarantined\""), "{line}");
        assert!(line.contains(r#""path":"/tmp/with \"quotes\"\nand newline""#), "escaping: {line}");
        assert!(line.contains("\"elapsed_us\":42"), "{line}");
        assert!(line.contains("\"spans\":[{\"stage\":\"parse\",\"us\":7}]"), "raw field: {line}");
    }

    #[test]
    fn spans_render_compactly() {
        use clara_core::timing::{Span, Stage};
        let json = spans_json(&[
            Span { stage: Stage::Parse, nanos: 7_500 },
            Span { stage: Stage::Ilp, nanos: 1_000_000 },
        ]);
        assert_eq!(json, "[{\"stage\":\"parse\",\"us\":7},{\"stage\":\"ilp\",\"us\":1000}]");
    }

    proptest! {
        #![proptest_config(ProptestConfig { cases: 128, ..ProptestConfig::default() })]

        /// merge(h1, h2) must answer quantiles that bound the pooled
        /// stream: for each q, the estimate is ≥ the true pooled quantile
        /// and within the true value's bucket (≤ 25% relative error above
        /// the linear range).
        #[test]
        fn merged_quantiles_bound_the_pooled_stream(
            xs in proptest::collection::vec(0u64..5_000_000, 1..200),
            ys in proptest::collection::vec(0u64..5_000_000, 1..200),
        ) {
            let h1 = Histogram::default();
            let h2 = Histogram::default();
            for &x in &xs { h1.record(x); }
            for &y in &ys { h2.record(y); }
            let mut merged = h1.snapshot();
            merged.merge(&h2.snapshot());

            let mut pooled: Vec<u64> = xs.iter().chain(&ys).copied().collect();
            pooled.sort_unstable();
            prop_assert_eq!(merged.count, pooled.len() as u64);

            for q in [0.5, 0.9, 0.99] {
                let rank = ((q * pooled.len() as f64).ceil() as usize).clamp(1, pooled.len());
                let truth = pooled[rank - 1];
                let estimate = merged.quantile(q);
                prop_assert!(estimate >= truth, "q{q}: estimate {estimate} < true {truth}");
                let slack = truth / 4 + 1;
                prop_assert!(
                    estimate <= truth + slack,
                    "q{q}: estimate {estimate} above bucket of true {truth}"
                );
            }
            prop_assert_eq!(merged.max, *pooled.last().unwrap());
        }

        /// Recording order is irrelevant and merge equals pooled recording.
        #[test]
        fn merge_equals_pooled_recording(
            xs in proptest::collection::vec(0u64..10_000_000, 0..100),
            split in 0usize..100,
        ) {
            let split = split.min(xs.len());
            let h1 = Histogram::default();
            let h2 = Histogram::default();
            for &x in &xs[..split] { h1.record(x); }
            for &x in &xs[split..] { h2.record(x); }
            let pooled_hist = Histogram::default();
            for &x in &xs { pooled_hist.record(x); }
            let mut merged = h1.snapshot();
            merged.merge(&h2.snapshot());
            let pooled = pooled_hist.snapshot();
            prop_assert_eq!(merged.buckets, pooled.buckets);
            prop_assert_eq!(merged.count, pooled.count);
            prop_assert_eq!(merged.sum, pooled.sum);
            prop_assert_eq!(merged.max, pooled.max);
        }
    }
}
