//! Retry budgets and per-upstream health: the policy half of fault
//! tolerance.
//!
//! Two pieces, both deliberately dependency-free and deterministic under a
//! seed so chaos runs replay exactly:
//!
//! * [`RetryPolicy`] — bounded attempts with exponential backoff and full
//!   jitter, all fitted inside a per-request deadline. The deadline is
//!   threaded through the router's `forward()` path and becomes each
//!   attempt's socket timeout, replacing the old hard-coded 60 s read
//!   timeout.
//! * [`CircuitBreaker`] — per-upstream consecutive-failure health state.
//!   After `threshold` consecutive failures the breaker *opens* and the
//!   upstream is skipped (its ring successor serves instead). After
//!   `cooldown` it becomes *half-open* and admits exactly one probe; the
//!   probe's outcome closes the breaker or re-opens it for another
//!   cooldown.
//!
//! Jitter comes from [`SplitMix64`], a tiny hand-rolled PRNG (the server
//! crate takes no `rand` dependency); seeding it from the request id keeps
//! backoff schedules reproducible in tests and chaos runs.

use std::sync::Mutex;
use std::time::{Duration, Instant};

/// SplitMix64: a tiny, seedable, statistically solid PRNG (Steele et al.,
/// OOPSLA 2014). Used for backoff jitter and fault-injection decisions.
#[derive(Debug, Clone)]
pub struct SplitMix64(u64);

impl SplitMix64 {
    /// A generator whose stream is fully determined by `seed`.
    pub fn new(seed: u64) -> SplitMix64 {
        SplitMix64(seed)
    }

    /// The next 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// A uniform float in `[0, 1)`.
    pub fn next_f64(&mut self) -> f64 {
        // 53 mantissa bits, the standard u64 -> f64 construction.
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }

    /// A uniform value in `[0, bound)`; 0 when `bound` is 0.
    pub fn next_below(&mut self, bound: u64) -> u64 {
        if bound == 0 {
            0
        } else {
            // Modulo bias is irrelevant for jitter purposes.
            self.next_u64() % bound
        }
    }
}

/// Bounded retries with exponential backoff + full jitter under a deadline.
#[derive(Debug, Clone, Copy)]
pub struct RetryPolicy {
    /// Maximum attempts per upstream (first try included).
    pub max_attempts: u32,
    /// Backoff before the second attempt; doubles per subsequent attempt.
    pub base_backoff: Duration,
    /// Cap on any single backoff sleep.
    pub max_backoff: Duration,
    /// Total budget per client request, across all attempts and failovers.
    /// Also bounds each attempt's socket read timeout.
    pub deadline: Duration,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy {
            max_attempts: 3,
            base_backoff: Duration::from_millis(10),
            max_backoff: Duration::from_millis(250),
            deadline: Duration::from_secs(30),
        }
    }
}

impl RetryPolicy {
    /// The jittered sleep before attempt `attempt` (0-based; attempt 0 has
    /// no backoff). Full jitter: uniform in `[0, min(base * 2^(n-1), max)]`.
    pub fn backoff(&self, attempt: u32, rng: &mut SplitMix64) -> Duration {
        if attempt == 0 {
            return Duration::ZERO;
        }
        let exp = self.base_backoff.saturating_mul(1u32 << (attempt - 1).min(16)).min(self.max_backoff);
        Duration::from_micros(rng.next_below(exp.as_micros() as u64 + 1))
    }

    /// Time left of `deadline` since `start`, `None` once exhausted.
    pub fn remaining(&self, start: Instant) -> Option<Duration> {
        let spent = start.elapsed();
        if spent >= self.deadline {
            None
        } else {
            Some(self.deadline - spent)
        }
    }
}

/// Observable health of a [`CircuitBreaker`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BreakerState {
    /// Healthy: requests flow.
    Closed,
    /// Tripped: requests are rejected until the cooldown elapses.
    Open,
    /// Cooldown elapsed: exactly one probe request is admitted.
    HalfOpen,
}

impl BreakerState {
    /// Lower-case name for stats payloads.
    pub fn name(self) -> &'static str {
        match self {
            BreakerState::Closed => "closed",
            BreakerState::Open => "open",
            BreakerState::HalfOpen => "half-open",
        }
    }
}

#[derive(Debug)]
struct BreakerInner {
    state: BreakerState,
    consecutive_failures: u32,
    /// When an open breaker may admit its half-open probe.
    open_until: Option<Instant>,
    /// A half-open probe is in flight; hold further traffic until it lands.
    probe_inflight: bool,
}

/// Consecutive-failure circuit breaker with half-open probing.
///
/// All transitions are driven by the callers' clock (`Instant::now()` at
/// call sites, injectable in tests): no timer thread.
#[derive(Debug)]
pub struct CircuitBreaker {
    threshold: u32,
    cooldown: Duration,
    inner: Mutex<BreakerInner>,
}

impl CircuitBreaker {
    /// A breaker that opens after `threshold` consecutive failures and
    /// half-opens `cooldown` later.
    pub fn new(threshold: u32, cooldown: Duration) -> CircuitBreaker {
        CircuitBreaker {
            threshold: threshold.max(1),
            cooldown,
            inner: Mutex::new(BreakerInner {
                state: BreakerState::Closed,
                consecutive_failures: 0,
                open_until: None,
                probe_inflight: false,
            }),
        }
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, BreakerInner> {
        self.inner.lock().unwrap_or_else(|poisoned| poisoned.into_inner())
    }

    /// Whether a request may proceed at `now`. An open breaker whose
    /// cooldown has elapsed transitions to half-open and admits the caller
    /// as the single probe.
    pub fn allow_at(&self, now: Instant) -> bool {
        let mut inner = self.lock();
        match inner.state {
            BreakerState::Closed => true,
            BreakerState::Open => {
                if inner.open_until.is_some_and(|until| now >= until) {
                    inner.state = BreakerState::HalfOpen;
                    inner.probe_inflight = true;
                    true
                } else {
                    false
                }
            }
            BreakerState::HalfOpen => {
                if inner.probe_inflight {
                    false
                } else {
                    inner.probe_inflight = true;
                    true
                }
            }
        }
    }

    /// [`CircuitBreaker::allow_at`] with the real clock.
    pub fn allow(&self) -> bool {
        self.allow_at(Instant::now())
    }

    /// Records a successful exchange: closes the breaker and resets the
    /// failure count.
    pub fn on_success(&self) {
        let mut inner = self.lock();
        inner.state = BreakerState::Closed;
        inner.consecutive_failures = 0;
        inner.open_until = None;
        inner.probe_inflight = false;
    }

    /// Records a failed exchange at `now`: opens the breaker once the
    /// consecutive-failure threshold is reached, or immediately if this was
    /// the half-open probe.
    pub fn on_failure_at(&self, now: Instant) {
        let mut inner = self.lock();
        inner.consecutive_failures = inner.consecutive_failures.saturating_add(1);
        let trip = inner.state == BreakerState::HalfOpen || inner.consecutive_failures >= self.threshold;
        if trip {
            inner.state = BreakerState::Open;
            inner.open_until = Some(now + self.cooldown);
            inner.probe_inflight = false;
        }
    }

    /// [`CircuitBreaker::on_failure_at`] with the real clock.
    pub fn on_failure(&self) {
        self.on_failure_at(Instant::now());
    }

    /// Current state (for stats payloads; racy by nature).
    pub fn state(&self) -> BreakerState {
        self.lock().state
    }

    /// Current consecutive-failure count.
    pub fn consecutive_failures(&self) -> u32 {
        self.lock().consecutive_failures
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn splitmix_is_deterministic_and_spread() {
        let mut a = SplitMix64::new(7);
        let mut b = SplitMix64::new(7);
        let xs: Vec<u64> = (0..8).map(|_| a.next_u64()).collect();
        let ys: Vec<u64> = (0..8).map(|_| b.next_u64()).collect();
        assert_eq!(xs, ys);
        assert!(xs.windows(2).any(|w| w[0] != w[1]));
        for _ in 0..100 {
            let f = a.next_f64();
            assert!((0.0..1.0).contains(&f));
            assert!(a.next_below(10) < 10);
        }
        assert_eq!(a.next_below(0), 0);
    }

    #[test]
    fn backoff_grows_exponentially_and_respects_the_cap() {
        let policy = RetryPolicy {
            max_attempts: 5,
            base_backoff: Duration::from_millis(10),
            max_backoff: Duration::from_millis(40),
            deadline: Duration::from_secs(1),
        };
        let mut rng = SplitMix64::new(1);
        assert_eq!(policy.backoff(0, &mut rng), Duration::ZERO);
        for attempt in 1..8 {
            let cap = Duration::from_millis(10 * (1 << (attempt - 1))).min(Duration::from_millis(40));
            for _ in 0..32 {
                assert!(policy.backoff(attempt, &mut rng) <= cap, "attempt {attempt} exceeded {cap:?}");
            }
        }
    }

    #[test]
    fn deadline_remaining_shrinks_to_none() {
        let policy = RetryPolicy { deadline: Duration::from_millis(50), ..RetryPolicy::default() };
        let start = Instant::now();
        assert!(policy.remaining(start).is_some());
        let past = start - Duration::from_millis(100);
        assert!(policy.remaining(past).is_none());
    }

    #[test]
    fn breaker_opens_after_threshold_consecutive_failures() {
        let breaker = CircuitBreaker::new(3, Duration::from_secs(10));
        let now = Instant::now();
        assert_eq!(breaker.state(), BreakerState::Closed);
        breaker.on_failure_at(now);
        breaker.on_failure_at(now);
        assert_eq!(breaker.state(), BreakerState::Closed);
        assert!(breaker.allow_at(now));
        breaker.on_failure_at(now);
        assert_eq!(breaker.state(), BreakerState::Open);
        assert!(!breaker.allow_at(now), "open breaker rejects before cooldown");
        assert_eq!(breaker.consecutive_failures(), 3);
    }

    #[test]
    fn success_resets_the_failure_streak() {
        let breaker = CircuitBreaker::new(3, Duration::from_secs(10));
        let now = Instant::now();
        breaker.on_failure_at(now);
        breaker.on_failure_at(now);
        breaker.on_success();
        breaker.on_failure_at(now);
        breaker.on_failure_at(now);
        assert_eq!(breaker.state(), BreakerState::Closed, "streak must reset on success");
    }

    #[test]
    fn cooldown_half_opens_and_admits_exactly_one_probe() {
        let breaker = CircuitBreaker::new(1, Duration::from_millis(100));
        let now = Instant::now();
        breaker.on_failure_at(now);
        assert_eq!(breaker.state(), BreakerState::Open);
        assert!(!breaker.allow_at(now + Duration::from_millis(50)));
        let later = now + Duration::from_millis(150);
        assert!(breaker.allow_at(later), "cooldown elapsed: probe admitted");
        assert_eq!(breaker.state(), BreakerState::HalfOpen);
        assert!(!breaker.allow_at(later), "only one probe in flight");
    }

    #[test]
    fn probe_success_closes_and_probe_failure_reopens() {
        let breaker = CircuitBreaker::new(1, Duration::from_millis(100));
        let now = Instant::now();
        breaker.on_failure_at(now);
        let later = now + Duration::from_millis(150);
        assert!(breaker.allow_at(later));
        breaker.on_success();
        assert_eq!(breaker.state(), BreakerState::Closed);
        assert!(breaker.allow_at(later));

        breaker.on_failure_at(later);
        let again = later + Duration::from_millis(150);
        assert!(breaker.allow_at(again));
        breaker.on_failure_at(again);
        assert_eq!(breaker.state(), BreakerState::Open, "failed probe re-opens");
        assert!(!breaker.allow_at(again + Duration::from_millis(50)));
        assert!(breaker.allow_at(again + Duration::from_millis(150)), "re-opened breaker half-opens again");
    }
}
