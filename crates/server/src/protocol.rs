//! The newline-delimited JSON wire protocol of the feedback service.
//!
//! One request per line in, one response per line out; responses carry the
//! request `id` and may arrive out of order (the worker pool completes jobs
//! as they finish). The same bodies are served over the minimal HTTP
//! endpoint (`POST /repair`).
//!
//! ```text
//! → {"id":1,"problem":"derivatives","source":"def computeDeriv(poly):\n    ..."}
//! ← {"id":1,"status":"repaired","feedback":["In the return statement ..."],"cost":2,...}
//! ```

use serde::{Deserialize, Serialize};

use crate::service::{ServiceStats, ShardStat};

/// A feedback request: one student submission for one problem.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Request {
    /// Client-chosen correlation id, echoed in the response.
    pub id: u64,
    /// Problem name (see `clara-cli problems`).
    pub problem: String,
    /// Language tag of the submission (`"minipy"`/`"python"`/`"minic"`/
    /// `"c"`). Optional: each problem has exactly one language, so the tag
    /// is validation — a request whose tag contradicts the problem's
    /// language is rejected instead of producing a confusing syntax error.
    pub lang: Option<String>,
    /// The submission text.
    pub source: String,
    /// When `true` and the submission is correct, insert it into the
    /// cluster index (online clustering). Requires learning to be enabled
    /// service-side.
    pub learn: Option<bool>,
    /// Request trace id (16 hex digits). Minted at ingress when absent —
    /// by the router on forwards, or by the shard for direct traffic — and
    /// carried through retries and failovers so one request is traceable
    /// across the fleet's structured logs.
    pub trace: Option<String>,
}

/// Outcome category of a feedback request.
///
/// Serialized as the lowercase snake-case strings `"correct"`,
/// `"repaired"`, `"no_repair"` and `"error"` (via the manual rename below,
/// matching serde's `rename_all = "snake_case"`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Status {
    /// The submission passes the grading suite.
    Correct,
    /// A repair was found; `feedback` holds the suggestions.
    Repaired,
    /// The submission is analysable but no repair was found; `feedback`
    /// holds the generic strategy hint.
    NoRepair,
    /// The submission could not be processed (syntax error, unsupported
    /// features, unknown problem, malformed request).
    Error,
}

impl Status {
    /// The wire name of the status.
    pub fn as_str(self) -> &'static str {
        match self {
            Status::Correct => "correct",
            Status::Repaired => "repaired",
            Status::NoRepair => "no_repair",
            Status::Error => "error",
        }
    }
}

impl serde::Serialize for Status {
    fn to_content(&self) -> serde::Content {
        serde::Content::Str(self.as_str().to_owned())
    }
}

impl serde::Deserialize for Status {
    fn from_content(content: &serde::Content) -> Result<Self, serde::DeError> {
        let text = content.as_str().ok_or_else(|| serde::DeError::expected("status string", content))?;
        match text {
            "correct" => Ok(Status::Correct),
            "repaired" => Ok(Status::Repaired),
            "no_repair" => Ok(Status::NoRepair),
            "error" => Ok(Status::Error),
            other => Err(serde::DeError(format!("unknown status `{other}`"))),
        }
    }
}

/// A feedback response.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Response {
    /// The request's correlation id (0 when the request line itself was
    /// malformed).
    pub id: u64,
    /// Outcome category.
    pub status: Status,
    /// Feedback lines (repair suggestions, the generic strategy hint, or
    /// empty for correct submissions).
    pub feedback: Vec<String>,
    /// Total repair cost (tree edit distance), when a repair was found.
    pub cost: Option<i64>,
    /// Whether the answer came from the structural-hash result cache.
    pub cache_hit: bool,
    /// Whether the submission was inserted into the cluster index.
    pub learned: bool,
    /// Error description when `status` is `error`.
    pub error: Option<String>,
    /// Service-side processing time in microseconds (cache hits report the
    /// lookup time, not the original repair time). Error and shed responses
    /// report the real time spent before failing, never a placeholder 0.
    pub elapsed_us: u64,
    /// The trace id the request carried (or was assigned at ingress),
    /// echoed so clients can correlate responses with fleet logs.
    pub trace: Option<String>,
}

impl Response {
    /// A malformed-request / failed-submission response. Attach the real
    /// elapsed time and trace id with [`Response::with_elapsed`] /
    /// [`Response::with_trace`].
    pub fn error(id: u64, message: impl Into<String>) -> Response {
        Response {
            id,
            status: Status::Error,
            feedback: Vec::new(),
            cost: None,
            cache_hit: false,
            learned: false,
            error: Some(message.into()),
            elapsed_us: 0,
            trace: None,
        }
    }

    /// Sets the measured elapsed time (error paths report real latency so
    /// latency histograms are not polluted with zeros).
    pub fn with_elapsed(mut self, elapsed_us: u64) -> Response {
        self.elapsed_us = elapsed_us;
        self
    }

    /// Sets the echoed trace id.
    pub fn with_trace(mut self, trace: Option<String>) -> Response {
        self.trace = trace;
        self
    }
}

/// An operational-stats report: the payload of `GET /stats` and of NDJSON
/// `{"id":…,"stats":true}` control lines. One report describes one serve
/// process; fleet-wide numbers are aggregated client-side (the router and
/// the benchmark sum the per-shard reports).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct StatsReport {
    /// Correlation id of the stats request (0 over HTTP).
    pub id: u64,
    /// This process's fleet position as `i/N` (`0/1` when unsharded).
    pub shard: String,
    /// Highest index-snapshot generation across the problem shards; bumps
    /// on every online insertion.
    pub snapshot_generation: u64,
    /// Jobs currently waiting in the worker queues.
    pub queue_depth: u64,
    /// Worker threads serving this process.
    pub workers: u64,
    /// Result-cache hits since startup.
    pub cache_hits: u64,
    /// Result-cache misses since startup.
    pub cache_misses: u64,
    /// `hits / (hits + misses)`, 0 when idle.
    pub cache_hit_rate: f64,
    /// Jobs lost to handler panics.
    pub worker_panics: u64,
    /// Requests shed at the front door (event-loop pending ring and worker
    /// queues both full).
    pub shed_requests: u64,
    /// The monotonic service counters.
    pub service: ServiceStats,
    /// Per-problem request counts and index generations.
    pub problems: Vec<ShardStat>,
}

/// A parsed incoming NDJSON line: either a feedback request or a control
/// request.
#[derive(Debug, Clone)]
pub enum Incoming {
    /// A student submission to analyse.
    Feedback(Request),
    /// A `{"id":…,"stats":true}` probe answered with a [`StatsReport`].
    Stats {
        /// Correlation id echoed in the report.
        id: u64,
    },
    /// A `{"id":…,"metrics":true}` probe answered with a
    /// [`crate::obs::MetricsDump`] (full-resolution histograms; what the
    /// router merges into fleet-level views).
    Metrics {
        /// Correlation id echoed in the dump.
        id: u64,
    },
}

/// The shape probed before full request parsing: any line carrying
/// `"stats":true` or `"metrics":true` is a control request, whatever else
/// it contains.
#[derive(Debug, Deserialize)]
struct ControlProbe {
    id: Option<u64>,
    stats: Option<bool>,
    metrics: Option<bool>,
}

/// Parses one NDJSON request line.
///
/// # Errors
///
/// Returns a human-readable description of the malformation.
pub fn parse_request(line: &str) -> Result<Request, String> {
    serde_json::from_str(line).map_err(|e| e.to_string())
}

/// Parses one NDJSON line into a feedback or control request.
///
/// # Errors
///
/// Returns a human-readable description of the malformation.
pub fn parse_incoming(line: &str) -> Result<Incoming, String> {
    if let Ok(probe) = serde_json::from_str::<ControlProbe>(line) {
        if probe.stats == Some(true) {
            return Ok(Incoming::Stats { id: probe.id.unwrap_or(0) });
        }
        if probe.metrics == Some(true) {
            return Ok(Incoming::Metrics { id: probe.id.unwrap_or(0) });
        }
    }
    parse_request(line).map(Incoming::Feedback)
}

/// Renders a response as one NDJSON line (no trailing newline; compact JSON
/// never contains raw newlines, so the line framing is safe).
pub fn render_response(response: &Response) -> String {
    serde_json::to_string(response).expect("response serialization is infallible")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn request_roundtrip() {
        let line = r#"{"id":7,"problem":"derivatives","source":"def f(x):\n    return x\n","learn":true}"#;
        let request = parse_request(line).unwrap();
        assert_eq!(request.id, 7);
        assert_eq!(request.problem, "derivatives");
        assert!(request.source.contains('\n'));
        assert_eq!(request.learn, Some(true));
        let reparsed = parse_request(&serde_json::to_string(&request).unwrap()).unwrap();
        assert_eq!(reparsed.source, request.source);
    }

    #[test]
    fn learn_defaults_to_absent() {
        let request = parse_request(r#"{"id":1,"problem":"p","source":"s"}"#).unwrap();
        assert_eq!(request.learn, None);
        assert_eq!(request.trace, None, "trace is optional for old clients");
    }

    #[test]
    fn trace_ids_ride_along() {
        let request =
            parse_request(r#"{"id":1,"problem":"p","source":"s","trace":"00c0ffee00c0ffee"}"#).unwrap();
        assert_eq!(request.trace.as_deref(), Some("00c0ffee00c0ffee"));
        let line = serde_json::to_string(&request).unwrap();
        let back = parse_request(&line).unwrap();
        assert_eq!(back.trace, request.trace);
    }

    #[test]
    fn malformed_requests_error() {
        assert!(parse_request("").is_err());
        assert!(parse_request("{\"id\":}").is_err());
        assert!(parse_request(r#"{"problem":"p","source":"s"}"#).is_err(), "missing id");
    }

    #[test]
    fn stats_lines_parse_as_control_requests() {
        match parse_incoming(r#"{"id":9,"stats":true}"#).unwrap() {
            Incoming::Stats { id } => assert_eq!(id, 9),
            other => panic!("expected a stats request, got {other:?}"),
        }
        // `stats:false` (or absent) falls through to feedback parsing.
        assert!(parse_incoming(r#"{"id":1,"stats":false}"#).is_err(), "not a feedback request either");
        match parse_incoming(r#"{"id":2,"problem":"p","source":"s"}"#).unwrap() {
            Incoming::Feedback(request) => assert_eq!(request.problem, "p"),
            other => panic!("expected a feedback request, got {other:?}"),
        }
        // Malformed lines still error with a description.
        assert!(parse_incoming("not json").is_err());
    }

    #[test]
    fn metrics_lines_parse_as_control_requests() {
        match parse_incoming(r#"{"id":5,"metrics":true}"#).unwrap() {
            Incoming::Metrics { id } => assert_eq!(id, 5),
            other => panic!("expected a metrics request, got {other:?}"),
        }
        assert!(parse_incoming(r#"{"id":5,"metrics":false}"#).is_err(), "not a feedback request either");
    }

    #[test]
    fn stats_reports_roundtrip() {
        let report = StatsReport {
            id: 4,
            shard: "1/2".to_owned(),
            snapshot_generation: 3,
            queue_depth: 5,
            workers: 2,
            cache_hits: 10,
            cache_misses: 30,
            cache_hit_rate: 0.25,
            worker_panics: 0,
            shed_requests: 2,
            service: ServiceStats { requests: 40, ..ServiceStats::default() },
            problems: vec![ShardStat {
                problem: "derivatives".to_owned(),
                lang: "minipy".to_owned(),
                requests: 40,
                generation: 3,
            }],
        };
        let line = serde_json::to_string(&report).unwrap();
        assert!(!line.contains('\n'));
        let back: StatsReport = serde_json::from_str(&line).unwrap();
        assert_eq!(back.shard, "1/2");
        assert_eq!(back.problems.len(), 1);
        assert_eq!(back.problems[0].requests, 40);
        assert_eq!(back.service.requests, 40);
    }

    #[test]
    fn response_roundtrip_is_single_line() {
        let response = Response {
            id: 3,
            status: Status::Repaired,
            feedback: vec!["line one\nwith newline".to_owned()],
            cost: Some(2),
            cache_hit: true,
            learned: false,
            error: None,
            elapsed_us: 42,
            trace: Some("00c0ffee00c0ffee".to_owned()),
        };
        let line = render_response(&response);
        assert!(!line.contains('\n'), "NDJSON framing: {line}");
        assert!(line.contains("\"status\":\"repaired\""), "{line}");
        let back: Response = serde_json::from_str(&line).unwrap();
        assert_eq!(back.status, Status::Repaired);
        assert_eq!(back.feedback, response.feedback);
        assert_eq!(back.cost, Some(2));
        assert_eq!(back.trace, response.trace);
    }

    #[test]
    fn error_responses_carry_real_elapsed_and_trace() {
        let response = Response::error(1, "boom").with_elapsed(17).with_trace(Some("ff".to_owned()));
        assert_eq!(response.elapsed_us, 17);
        assert_eq!(response.trace.as_deref(), Some("ff"));
    }
}
