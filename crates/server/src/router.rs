//! The thin router: forwards each request to the shard owning its
//! problem×language key.
//!
//! A router process holds no cluster indexes. It derives the same
//! [`HashRing`] every shard derives from the fleet size, resolves each
//! request's canonical language from the problem catalog (clients may omit
//! or alias the `lang` tag, but ring keys must be canonical or router and
//! shard would disagree), and forwards the NDJSON line to the owning shard
//! over a persistent upstream connection. Responses come back on the same
//! line framing with the client's `id` intact, so the router never
//! rewrites payloads.
//!
//! Forwarding runs on the router's own [`WorkerPool`]; each upstream
//! connection is serialized by a mutex held across the write/read pair, so
//! exactly one request is in flight per upstream and the next line read is
//! its response. A dead upstream is reconnected once per job; if that also
//! fails the client gets an explicit error naming the shard.

use std::collections::HashMap;
use std::io::{self, BufRead, BufReader, Write};
use std::net::TcpStream;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Duration;

use serde::{Deserialize, Serialize};

use crate::pool::{PoolClosed, WorkerPool};
use crate::protocol::{render_response, Request, Response};
use crate::shard::HashRing;

/// Router tuning knobs.
#[derive(Debug, Clone, Copy)]
pub struct RouterConfig {
    /// Forwarding worker threads (each blocks on one upstream exchange).
    pub workers: usize,
    /// Per-worker queue capacity.
    pub queue_capacity: usize,
}

impl Default for RouterConfig {
    fn default() -> Self {
        RouterConfig { workers: 4, queue_capacity: 64 }
    }
}

/// One shard process the router forwards to.
struct Upstream {
    addr: String,
    /// The persistent connection, lazily (re)established. The mutex is held
    /// across the write/read pair: one request in flight per upstream.
    conn: Mutex<Option<BufReader<TcpStream>>>,
    forwarded: AtomicU64,
    errors: AtomicU64,
}

impl Upstream {
    fn new(addr: String) -> Upstream {
        Upstream { addr, conn: Mutex::new(None), forwarded: AtomicU64::new(0), errors: AtomicU64::new(0) }
    }
}

/// Stats payload of a router process (`GET /stats`, NDJSON `stats` probes).
/// The `router` marker distinguishes it from a shard's `StatsReport`.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct RouterReport {
    /// Correlation id of the stats request.
    pub id: u64,
    /// Always `true`: marks this process as a router.
    pub router: bool,
    /// Fleet size the ring was built for.
    pub shards: u64,
    /// Requests forwarded successfully since startup.
    pub forwarded: u64,
    /// Forwarding failures (upstream unreachable / broken exchange).
    pub upstream_errors: u64,
    /// Per-upstream forwarding counts.
    pub upstreams: Vec<UpstreamStat>,
}

/// Per-upstream slice of a [`RouterReport`].
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct UpstreamStat {
    /// The shard's NDJSON listen address.
    pub addr: String,
    /// Requests forwarded to this shard.
    pub forwarded: u64,
    /// Failed exchanges with this shard.
    pub errors: u64,
}

type RouterJob = (usize, Request, Box<dyn FnOnce(String) + Send>);

/// A forwarding router over a fleet of shard processes.
pub struct Router {
    upstreams: Arc<Vec<Upstream>>,
    ring: HashRing,
    /// problem name → canonical language tag, from the problem catalog.
    catalog: HashMap<String, String>,
    pool: WorkerPool<RouterJob>,
}

impl Router {
    /// Builds a router over shards listening at `addrs` (index = shard
    /// index). `catalog` maps every known problem to its canonical language
    /// tag; requests for unknown problems are still routed (deterministically
    /// by whatever tag the client sent) and answered by the owning shard's
    /// unknown-problem error.
    pub fn new(
        addrs: Vec<String>,
        catalog: impl IntoIterator<Item = (String, String)>,
        config: RouterConfig,
    ) -> Router {
        let upstreams: Arc<Vec<Upstream>> = Arc::new(addrs.into_iter().map(Upstream::new).collect());
        let ring = HashRing::new(upstreams.len());
        let pool_upstreams = Arc::clone(&upstreams);
        let pool = WorkerPool::new(
            config.workers.max(1),
            config.queue_capacity.max(1),
            move |(index, request, reply): RouterJob| {
                let upstream = &pool_upstreams[index];
                let line = serde_json::to_string(&request).expect("request serialization is infallible");
                match forward(upstream, &line) {
                    Ok(response) => {
                        upstream.forwarded.fetch_add(1, Ordering::Relaxed);
                        reply(response);
                    }
                    Err(e) => {
                        upstream.errors.fetch_add(1, Ordering::Relaxed);
                        reply(render_response(&Response::error(
                            request.id,
                            format!("shard {index} ({}) unreachable: {e}", upstream.addr),
                        )));
                    }
                }
            },
        );
        Router { upstreams, ring, catalog: catalog.into_iter().collect(), pool }
    }

    /// The shard index owning `request`'s problem×language key. The
    /// catalog's canonical tag wins over the client's alias — shards load
    /// their indexes under canonical tags, and router and shard must hash
    /// identical keys.
    pub fn route(&self, request: &Request) -> usize {
        let lang =
            self.catalog.get(&request.problem).map(String::as_str).or(request.lang.as_deref()).unwrap_or("");
        self.ring.owner(&request.problem, lang)
    }

    /// Queues `request` for forwarding; `reply` receives the upstream's
    /// response line (or a local error line). `Ok(false)` means every
    /// forwarding queue is full.
    ///
    /// # Errors
    ///
    /// [`PoolClosed`] after [`Router::shutdown`].
    pub fn try_submit(
        &self,
        request: Request,
        reply: Box<dyn FnOnce(String) + Send>,
    ) -> Result<bool, PoolClosed> {
        let index = self.route(&request);
        self.pool.try_submit((index, request, reply))
    }

    /// Blocking forward for synchronous callers (tests, CLI probes).
    ///
    /// # Errors
    ///
    /// [`PoolClosed`] after [`Router::shutdown`].
    pub fn submit(&self, request: Request, reply: Box<dyn FnOnce(String) + Send>) -> Result<(), PoolClosed> {
        let index = self.route(&request);
        self.pool.submit((index, request, reply))
    }

    /// The router's stats report.
    pub fn report(&self, id: u64) -> RouterReport {
        let upstreams: Vec<UpstreamStat> = self
            .upstreams
            .iter()
            .map(|u| UpstreamStat {
                addr: u.addr.clone(),
                forwarded: u.forwarded.load(Ordering::Relaxed),
                errors: u.errors.load(Ordering::Relaxed),
            })
            .collect();
        RouterReport {
            id,
            router: true,
            shards: self.upstreams.len() as u64,
            forwarded: upstreams.iter().map(|u| u.forwarded).sum(),
            upstream_errors: upstreams.iter().map(|u| u.errors).sum(),
            upstreams,
        }
    }

    /// The stats report as one JSON line.
    pub fn stats_line(&self, id: u64) -> String {
        serde_json::to_string(&self.report(id)).expect("report serialization is infallible")
    }

    /// Closes the forwarding queues and joins the workers.
    pub fn shutdown(&mut self) {
        self.pool.shutdown();
    }
}

/// One request/response exchange with a shard, reconnecting once on a
/// broken connection.
fn forward(upstream: &Upstream, line: &str) -> io::Result<String> {
    let mut guard = upstream.conn.lock().unwrap_or_else(|poisoned| poisoned.into_inner());
    let mut last_error = None;
    for _attempt in 0..2 {
        if guard.is_none() {
            match connect(&upstream.addr) {
                Ok(stream) => *guard = Some(BufReader::new(stream)),
                Err(e) => {
                    last_error = Some(e);
                    continue;
                }
            }
        }
        let reader = guard.as_mut().expect("connected above");
        match exchange(reader, line) {
            Ok(response) => return Ok(response),
            Err(e) => {
                // Broken pipe / EOF / timeout: drop the connection so the
                // next attempt reconnects fresh.
                *guard = None;
                last_error = Some(e);
            }
        }
    }
    Err(last_error.unwrap_or_else(|| io::Error::other("forwarding failed")))
}

fn connect(addr: &str) -> io::Result<TcpStream> {
    let stream = TcpStream::connect(addr)?;
    let _ = stream.set_nodelay(true);
    stream.set_read_timeout(Some(Duration::from_secs(60)))?;
    Ok(stream)
}

fn exchange(reader: &mut BufReader<TcpStream>, line: &str) -> io::Result<String> {
    let stream = reader.get_mut();
    stream.write_all(line.as_bytes())?;
    stream.write_all(b"\n")?;
    let mut response = String::new();
    if reader.read_line(&mut response)? == 0 {
        return Err(io::Error::new(io::ErrorKind::UnexpectedEof, "shard closed the connection"));
    }
    Ok(response.trim_end().to_owned())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::protocol::parse_request;
    use std::net::TcpListener;
    use std::sync::mpsc;

    fn request(id: u64, problem: &str) -> Request {
        Request {
            id,
            problem: problem.to_owned(),
            lang: None,
            source: "def f(x):\n    return x\n".to_owned(),
            learn: None,
        }
    }

    /// A fake shard: accepts connections, echoes every request line back as
    /// an error response tagged with the shard's name.
    fn fake_shard(name: &'static str) -> String {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap().to_string();
        std::thread::spawn(move || {
            for stream in listener.incoming() {
                let Ok(stream) = stream else { return };
                std::thread::spawn(move || {
                    let mut reader = BufReader::new(stream.try_clone().unwrap());
                    let mut writer = stream;
                    let mut line = String::new();
                    while reader.read_line(&mut line).map(|n| n > 0).unwrap_or(false) {
                        let id = parse_request(line.trim()).map(|r| r.id).unwrap_or(0);
                        let response = render_response(&Response::error(id, format!("answered by {name}")));
                        if writeln!(writer, "{response}").is_err() {
                            return;
                        }
                        line.clear();
                    }
                });
            }
        });
        addr
    }

    #[test]
    fn requests_reach_the_shard_owning_their_key() {
        let addrs = vec![fake_shard("shard-zero"), fake_shard("shard-one")];
        let catalog = vec![
            ("derivatives".to_owned(), "minipy".to_owned()),
            ("fibonacci_c".to_owned(), "minic".to_owned()),
        ];
        let router = Router::new(addrs, catalog, RouterConfig { workers: 2, queue_capacity: 8 });
        let ring = HashRing::new(2);

        for (id, problem, lang) in [(1, "derivatives", "minipy"), (2, "fibonacci_c", "minic")] {
            let expected = ring.owner(problem, lang);
            let (tx, rx) = mpsc::channel();
            router.submit(request(id, problem), Box::new(move |line| tx.send(line).unwrap())).unwrap();
            let line = rx.recv_timeout(Duration::from_secs(30)).unwrap();
            let response: Response = serde_json::from_str(&line).unwrap();
            assert_eq!(response.id, id);
            let expected_name = if expected == 0 { "shard-zero" } else { "shard-one" };
            assert!(
                response.error.as_deref().unwrap_or("").contains(expected_name),
                "request {id} should reach shard {expected}: {line}"
            );
        }

        let report = router.report(7);
        assert!(report.router);
        assert_eq!(report.id, 7);
        assert_eq!(report.shards, 2);
        assert_eq!(report.forwarded, 2);
        assert_eq!(report.upstream_errors, 0);
    }

    #[test]
    fn canonical_language_wins_over_client_aliases() {
        // Clients may tag MiniPy submissions "python"; the ring key must use
        // the canonical catalog tag or the router would hash a different key
        // than the shard that loaded the index.
        let catalog = vec![("derivatives".to_owned(), "minipy".to_owned())];
        let router = Router::new(
            vec!["127.0.0.1:1".to_owned(); 4],
            catalog,
            RouterConfig { workers: 1, queue_capacity: 1 },
        );
        let canonical = HashRing::new(4).owner("derivatives", "minipy");
        let mut aliased = request(1, "derivatives");
        aliased.lang = Some("python".to_owned());
        assert_eq!(router.route(&aliased), canonical);
        assert_eq!(router.route(&request(2, "derivatives")), canonical);
    }

    #[test]
    fn unreachable_shards_produce_explicit_errors() {
        // Nothing listens on this address (port 1 is reserved and unbound).
        let router = Router::new(
            vec!["127.0.0.1:1".to_owned()],
            Vec::new(),
            RouterConfig { workers: 1, queue_capacity: 2 },
        );
        let (tx, rx) = mpsc::channel();
        router.submit(request(9, "whatever"), Box::new(move |line| tx.send(line).unwrap())).unwrap();
        let line = rx.recv_timeout(Duration::from_secs(30)).unwrap();
        let response: Response = serde_json::from_str(&line).unwrap();
        assert_eq!(response.id, 9);
        assert!(response.error.as_deref().unwrap_or("").contains("unreachable"), "{line}");
        assert_eq!(router.report(0).upstream_errors, 1);
    }
}
