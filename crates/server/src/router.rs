//! The fault-tolerant router: forwards each request to the replica set
//! owning its problem×language key.
//!
//! A router process holds no cluster indexes. It derives the same
//! [`HashRing`] every shard derives from the fleet size, resolves each
//! request's canonical language from the problem catalog (clients may omit
//! or alias the `lang` tag, but ring keys must be canonical or router and
//! shard would disagree), and forwards the NDJSON line to the owning shard
//! over a pooled upstream connection. Responses come back on the same line
//! framing with the client's `id` intact, so the router never rewrites
//! payloads.
//!
//! Fault tolerance (see [`crate::retry`]):
//!
//! * every upstream has a small **connection pool** — one slow exchange no
//!   longer serializes the whole upstream behind a mutex;
//! * every exchange runs under a [`RetryPolicy`]: bounded attempts,
//!   exponential backoff with seeded jitter, and a per-request deadline
//!   that becomes each attempt's socket timeout;
//! * every upstream has a consecutive-failure [`CircuitBreaker`]; an open
//!   breaker short-circuits straight to the ring successor instead of
//!   burning the deadline on a shard known to be down;
//! * **reads fail over**: if the owner is down, the same key's first ring
//!   successor — which holds a replica of the index (see
//!   [`REPLICATION_FACTOR`]) — serves the request;
//! * **learns replicate**: a `learn` request is written to the owner *and*
//!   its successor, so a later owner crash loses no learned solutions.

use std::collections::HashMap;
use std::io::{self, BufRead, BufReader, Write};
use std::net::{TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

use clara_core::timing::{Stage, StageTimer};
use serde::{Deserialize, Serialize};

use crate::obs::{self, render_prometheus, CounterDump, LabelDump, MetricsDump, Registry};
use crate::pool::{PoolClosed, WorkerPool};
use crate::protocol::{render_response, Request, Response};
use crate::retry::{CircuitBreaker, RetryPolicy, SplitMix64};
use crate::shard::{HashRing, REPLICATION_FACTOR};

/// Router tuning knobs.
#[derive(Debug, Clone, Copy)]
pub struct RouterConfig {
    /// Forwarding worker threads (each blocks on one upstream exchange).
    pub workers: usize,
    /// Per-worker queue capacity.
    pub queue_capacity: usize,
    /// Retry/backoff/deadline budget for each client request.
    pub retry: RetryPolicy,
    /// Consecutive failures before an upstream's breaker opens.
    pub breaker_threshold: u32,
    /// How long an open breaker rejects before admitting a half-open probe.
    pub breaker_cooldown: Duration,
    /// Idle connections kept per upstream.
    pub pool_per_upstream: usize,
    /// Seed for backoff jitter (mixed with each request id).
    pub seed: u64,
    /// Connect/read/write timeout for each per-shard `/metrics` probe.
    /// Was hard-coded to 2s, which made fleet-wide metrics scrapes stall
    /// for `2s × shards` behind upstreams that accept but never answer.
    pub metrics_probe_timeout: Duration,
    /// Total wall-clock budget for one metrics aggregation pass across
    /// *all* upstreams. Probes that would start (or run) past the budget
    /// are cut short or skipped, so `/metrics` latency stays bounded no
    /// matter how many shards are wedged.
    pub metrics_probe_budget: Duration,
}

impl Default for RouterConfig {
    fn default() -> Self {
        RouterConfig {
            workers: 4,
            queue_capacity: 64,
            retry: RetryPolicy::default(),
            breaker_threshold: 3,
            breaker_cooldown: Duration::from_millis(500),
            pool_per_upstream: 4,
            seed: 0,
            metrics_probe_timeout: Duration::from_secs(2),
            metrics_probe_budget: Duration::from_secs(5),
        }
    }
}

/// One shard process the router forwards to.
struct Upstream {
    addr: String,
    /// Idle pooled connections; an exchange checks one out (or dials a new
    /// one) and returns it on success, so concurrent exchanges with the
    /// same shard proceed in parallel.
    idle: Mutex<Vec<BufReader<TcpStream>>>,
    breaker: CircuitBreaker,
    forwarded: AtomicU64,
    errors: AtomicU64,
    retries: AtomicU64,
}

impl Upstream {
    fn new(addr: String, config: &RouterConfig) -> Upstream {
        Upstream {
            addr,
            idle: Mutex::new(Vec::new()),
            breaker: CircuitBreaker::new(config.breaker_threshold, config.breaker_cooldown),
            forwarded: AtomicU64::new(0),
            errors: AtomicU64::new(0),
            retries: AtomicU64::new(0),
        }
    }

    fn checkout(&self) -> Option<BufReader<TcpStream>> {
        self.idle.lock().unwrap_or_else(|poisoned| poisoned.into_inner()).pop()
    }

    fn checkin(&self, conn: BufReader<TcpStream>, cap: usize) {
        let mut idle = self.idle.lock().unwrap_or_else(|poisoned| poisoned.into_inner());
        if idle.len() < cap {
            idle.push(conn);
        }
    }
}

/// Stats payload of a router process (`GET /stats`, NDJSON `stats` probes).
/// The `router` marker distinguishes it from a shard's `StatsReport`.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct RouterReport {
    /// Correlation id of the stats request.
    pub id: u64,
    /// Always `true`: marks this process as a router.
    pub router: bool,
    /// Fleet size the ring was built for.
    pub shards: u64,
    /// Requests forwarded successfully since startup.
    pub forwarded: u64,
    /// Forwarding failures (upstream unreachable / broken exchange).
    pub upstream_errors: u64,
    /// Re-attempts after a failed exchange (beyond each first try).
    pub retries: u64,
    /// Requests served by a ring successor after the owner failed.
    pub failovers: u64,
    /// Learn requests successfully written to a second replica.
    pub replicated_learns: u64,
    /// Learn requests whose replica write failed (primary still answered).
    pub replication_errors: u64,
    /// Requests shed at the front door (forwarding queues full).
    pub shed_requests: u64,
    /// Per-upstream forwarding counts and breaker state.
    pub upstreams: Vec<UpstreamStat>,
}

/// Per-upstream slice of a [`RouterReport`].
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct UpstreamStat {
    /// The shard's NDJSON listen address.
    pub addr: String,
    /// Requests forwarded to this shard.
    pub forwarded: u64,
    /// Failed exchanges with this shard.
    pub errors: u64,
    /// Re-attempts against this shard.
    pub retries: u64,
    /// Circuit-breaker state: `closed`, `open` or `half-open`.
    pub breaker: String,
    /// Consecutive failures currently recorded by the breaker.
    pub consecutive_failures: u64,
}

type RouterJob = (Request, Box<dyn FnOnce(String) + Send>);

/// Cross-upstream resilience counters.
#[derive(Default)]
struct RouterCounters {
    failovers: AtomicU64,
    replicated_learns: AtomicU64,
    replication_errors: AtomicU64,
    shed: AtomicU64,
}

/// A forwarding router over a fleet of shard processes.
pub struct Router {
    upstreams: Arc<Vec<Upstream>>,
    ring: HashRing,
    /// problem name → canonical language tag, from the problem catalog.
    catalog: HashMap<String, String>,
    counters: Arc<RouterCounters>,
    pool: WorkerPool<RouterJob>,
    config: RouterConfig,
}

/// Everything a forwarding worker needs, shared across workers.
struct Forwarder {
    upstreams: Arc<Vec<Upstream>>,
    ring: HashRing,
    catalog: HashMap<String, String>,
    counters: Arc<RouterCounters>,
    config: RouterConfig,
}

impl Router {
    /// Builds a router over shards listening at `addrs` (index = shard
    /// index). `catalog` maps every known problem to its canonical language
    /// tag; requests for unknown problems are still routed (deterministically
    /// by whatever tag the client sent) and answered by the owning shard's
    /// unknown-problem error.
    pub fn new(
        addrs: Vec<String>,
        catalog: impl IntoIterator<Item = (String, String)>,
        config: RouterConfig,
    ) -> Router {
        let upstreams: Arc<Vec<Upstream>> =
            Arc::new(addrs.into_iter().map(|addr| Upstream::new(addr, &config)).collect());
        let ring = HashRing::new(upstreams.len());
        let catalog: HashMap<String, String> = catalog.into_iter().collect();
        let counters = Arc::new(RouterCounters::default());
        let forwarder = Arc::new(Forwarder {
            upstreams: Arc::clone(&upstreams),
            ring: ring.clone(),
            catalog: catalog.clone(),
            counters: Arc::clone(&counters),
            config,
        });
        let pool = WorkerPool::new(
            config.workers.max(1),
            config.queue_capacity.max(1),
            move |(request, reply): RouterJob| {
                reply(forwarder.handle(request));
            },
        );
        obs::install_stage_metrics();
        Router { upstreams, ring, catalog, counters, pool, config }
    }

    /// The shard index owning `request`'s problem×language key. The
    /// catalog's canonical tag wins over the client's alias — shards load
    /// their indexes under canonical tags, and router and shard must hash
    /// identical keys.
    pub fn route(&self, request: &Request) -> usize {
        self.ring.owner(&request.problem, canonical_lang(&self.catalog, request))
    }

    /// The replica set for `request`'s key: owner first, then its distinct
    /// ring successors.
    pub fn replicas(&self, request: &Request) -> Vec<usize> {
        self.ring.owners(&request.problem, canonical_lang(&self.catalog, request), REPLICATION_FACTOR)
    }

    /// Queues `request` for forwarding; `reply` receives the upstream's
    /// response line (or a local error line). `Ok(false)` means every
    /// forwarding queue is full.
    ///
    /// # Errors
    ///
    /// [`PoolClosed`] after [`Router::shutdown`].
    pub fn try_submit(
        &self,
        request: Request,
        reply: Box<dyn FnOnce(String) + Send>,
    ) -> Result<bool, PoolClosed> {
        self.pool.try_submit((request, reply))
    }

    /// Blocking forward for synchronous callers (tests, CLI probes).
    ///
    /// # Errors
    ///
    /// [`PoolClosed`] after [`Router::shutdown`].
    pub fn submit(&self, request: Request, reply: Box<dyn FnOnce(String) + Send>) -> Result<(), PoolClosed> {
        self.pool.submit((request, reply))
    }

    /// Records a request shed at the front door (queues full). Called by
    /// the event loop so overload shows up in `/stats`.
    pub fn note_shed(&self) {
        self.counters.shed.fetch_add(1, Ordering::Relaxed);
    }

    /// The router's stats report.
    pub fn report(&self, id: u64) -> RouterReport {
        let upstreams: Vec<UpstreamStat> = self
            .upstreams
            .iter()
            .map(|u| UpstreamStat {
                addr: u.addr.clone(),
                forwarded: u.forwarded.load(Ordering::Relaxed),
                errors: u.errors.load(Ordering::Relaxed),
                retries: u.retries.load(Ordering::Relaxed),
                breaker: u.breaker.state().name().to_owned(),
                consecutive_failures: u64::from(u.breaker.consecutive_failures()),
            })
            .collect();
        RouterReport {
            id,
            router: true,
            shards: self.upstreams.len() as u64,
            forwarded: upstreams.iter().map(|u| u.forwarded).sum(),
            upstream_errors: upstreams.iter().map(|u| u.errors).sum(),
            retries: upstreams.iter().map(|u| u.retries).sum(),
            failovers: self.counters.failovers.load(Ordering::Relaxed),
            replicated_learns: self.counters.replicated_learns.load(Ordering::Relaxed),
            replication_errors: self.counters.replication_errors.load(Ordering::Relaxed),
            shed_requests: self.counters.shed.load(Ordering::Relaxed),
            upstreams,
        }
    }

    /// The stats report as one JSON line.
    pub fn stats_line(&self, id: u64) -> String {
        serde_json::to_string(&self.report(id)).expect("report serialization is infallible")
    }

    /// The fleet-level metrics view: this process's registry, the router's
    /// own resilience counters, and every reachable shard's dump merged in
    /// (histograms add bucket-wise — the shared fixed layout makes the
    /// merge exact). Unreachable shards are logged and skipped; the view
    /// stays useful in a degraded fleet.
    pub fn metrics_dump(&self, id: u64) -> MetricsDump {
        let mut dump = Registry::global().dump(id);
        let report = self.report(id);
        let fleet: [(&str, u64); 6] = [
            ("clara_router_forwarded_total", report.forwarded),
            ("clara_router_upstream_errors_total", report.upstream_errors),
            ("clara_router_retries_total", report.retries),
            ("clara_router_failovers_total", report.failovers),
            ("clara_router_replicated_learns_total", report.replicated_learns),
            ("clara_router_shed_total", report.shed_requests),
        ];
        for (name, value) in fleet {
            dump.counters.push(CounterDump { name: name.to_owned(), labels: Vec::new(), value });
        }
        for upstream_stat in &report.upstreams {
            dump.counters.push(CounterDump {
                name: "clara_router_upstream_forwarded_total".to_owned(),
                labels: vec![LabelDump { k: "upstream".to_owned(), v: upstream_stat.addr.clone() }],
                value: upstream_stat.forwarded,
            });
        }
        // Each probe gets the configured per-shard timeout, clipped to
        // whatever is left of the total budget; once the budget is spent
        // the remaining shards are skipped outright. Without the cap a
        // fleet of N wedged shards held every scrape for N × timeout.
        let probe_start = Instant::now();
        for upstream in self.upstreams.iter() {
            let remaining = self.config.metrics_probe_budget.saturating_sub(probe_start.elapsed());
            let timeout = self.config.metrics_probe_timeout.min(remaining);
            if timeout.is_zero() {
                obs::log("warn", "metrics_probe_budget_exhausted")
                    .str_field("upstream", &upstream.addr)
                    .emit();
                continue;
            }
            match probe_upstream_metrics(upstream, timeout, self.config.pool_per_upstream) {
                Ok(shard_dump) => dump.merge(&shard_dump),
                Err(e) => obs::log("warn", "metrics_probe_failed")
                    .str_field("upstream", &upstream.addr)
                    .str_field("error", &e.to_string())
                    .emit(),
            }
        }
        dump.metrics_dump = true;
        dump.id = id;
        dump
    }

    /// The merged metrics dump as one JSON line (NDJSON `{"metrics":true}`).
    pub fn metrics_line(&self, id: u64) -> String {
        serde_json::to_string(&self.metrics_dump(id))
            .unwrap_or_else(|e| render_response(&Response::error(id, format!("metrics failed: {e}"))))
    }

    /// The merged metrics dump in Prometheus text format (`GET /metrics`).
    pub fn metrics_text(&self) -> String {
        render_prometheus(&self.metrics_dump(0))
    }

    /// Closes the forwarding queues and joins the workers.
    pub fn shutdown(&mut self) {
        self.pool.shutdown();
    }
}

fn canonical_lang<'a>(catalog: &'a HashMap<String, String>, request: &'a Request) -> &'a str {
    catalog.get(&request.problem).map(String::as_str).or(request.lang.as_deref()).unwrap_or("")
}

impl Forwarder {
    /// Forwards one request to its replica set and renders the response
    /// line. Reads try the owner then fail over to successors; learns are
    /// written to every replica. The router is an ingress: a request
    /// arriving without a trace id is assigned one here, and the id rides
    /// the forwarded line so the owning shard (and any failover successor)
    /// logs the same id.
    fn handle(&self, mut request: Request) -> String {
        let trace = obs::trace_or_mint(request.trace.as_deref());
        request.trace = Some(trace.clone());
        let replicas =
            self.ring.owners(&request.problem, canonical_lang(&self.catalog, &request), REPLICATION_FACTOR);
        let line = serde_json::to_string(&request).expect("request serialization is infallible");
        let start = Instant::now();
        // Jitter stream is deterministic per (router seed, request id).
        let mut rng = SplitMix64::new(self.config.seed ^ request.id.wrapping_mul(0x9e37_79b9_7f4a_7c15));

        if request.learn == Some(true) {
            self.handle_learn(&request, &replicas, &line, start, &mut rng, &trace)
        } else {
            self.handle_read(&request, &replicas, &line, start, &mut rng, &trace)
        }
    }

    /// The all-replicas-unreachable error line, with the real elapsed time
    /// and the trace id attached.
    fn unreachable_response(
        &self,
        request: &Request,
        index: usize,
        replica_count: usize,
        error: &io::Error,
        start: Instant,
        trace: &str,
    ) -> String {
        obs::log("error", "upstream_unreachable")
            .str_field("trace_id", trace)
            .str_field("upstream", &self.upstreams[index].addr)
            .str_field("error", &error.to_string())
            .num_field("replicas", replica_count as u64)
            .emit();
        let response = Response::error(
            request.id,
            format!(
                "shard {index} ({}) unreachable after {replica_count} replica(s): {error}",
                self.upstreams[index].addr
            ),
        )
        .with_elapsed(start.elapsed().as_micros() as u64)
        .with_trace(Some(trace.to_owned()));
        render_response(&response)
    }

    /// Reads: first replica that answers wins; answering from a non-owner
    /// counts as a failover.
    fn handle_read(
        &self,
        request: &Request,
        replicas: &[usize],
        line: &str,
        start: Instant,
        rng: &mut SplitMix64,
        trace: &str,
    ) -> String {
        let mut last_error: Option<(usize, io::Error)> = None;
        for (rank, &index) in replicas.iter().enumerate() {
            match self.exchange_with_retries(index, line, start, rng, trace) {
                Ok(response) => {
                    if rank > 0 {
                        self.counters.failovers.fetch_add(1, Ordering::Relaxed);
                        obs::log("warn", "failover")
                            .str_field("trace_id", trace)
                            .str_field("upstream", &self.upstreams[index].addr)
                            .num_field("replica_rank", rank as u64)
                            .emit();
                    }
                    return response;
                }
                Err(e) => last_error = Some((index, e)),
            }
        }
        let (index, e) = last_error.expect("at least one replica attempted");
        self.unreachable_response(request, index, replicas.len(), &e, start, trace)
    }

    /// Learns: written to every replica so an owner crash loses nothing.
    /// The owner's response is preferred; any replica's success answers the
    /// client.
    fn handle_learn(
        &self,
        request: &Request,
        replicas: &[usize],
        line: &str,
        start: Instant,
        rng: &mut SplitMix64,
        trace: &str,
    ) -> String {
        let mut first_success: Option<(usize, String)> = None;
        let mut last_error: Option<(usize, io::Error)> = None;
        for (rank, &index) in replicas.iter().enumerate() {
            // Writes beyond the first successful replica are replication.
            let replicating = rank > 0 && first_success.is_some();
            let exchanged = if replicating {
                let _timer = StageTimer::start(Stage::Replicate);
                self.exchange_with_retries(index, line, start, rng, trace)
            } else {
                self.exchange_with_retries(index, line, start, rng, trace)
            };
            match exchanged {
                Ok(response) => {
                    if replicating {
                        self.counters.replicated_learns.fetch_add(1, Ordering::Relaxed);
                    }
                    if first_success.is_none() {
                        if rank > 0 {
                            self.counters.failovers.fetch_add(1, Ordering::Relaxed);
                            obs::log("warn", "failover")
                                .str_field("trace_id", trace)
                                .str_field("upstream", &self.upstreams[index].addr)
                                .num_field("replica_rank", rank as u64)
                                .emit();
                        }
                        first_success = Some((rank, response));
                    }
                }
                Err(e) => {
                    if first_success.is_some() {
                        self.counters.replication_errors.fetch_add(1, Ordering::Relaxed);
                        obs::log("warn", "replication_failed")
                            .str_field("trace_id", trace)
                            .str_field("upstream", &self.upstreams[index].addr)
                            .str_field("error", &e.to_string())
                            .emit();
                    }
                    last_error = Some((index, e));
                }
            }
        }
        match first_success {
            Some((_, response)) => response,
            None => {
                let (index, e) = last_error.expect("at least one replica attempted");
                self.unreachable_response(request, index, replicas.len(), &e, start, trace)
            }
        }
    }

    /// Runs the retry loop against one upstream: bounded attempts, jittered
    /// backoff, per-attempt socket timeouts carved from the remaining
    /// deadline, breaker consulted before every attempt.
    fn exchange_with_retries(
        &self,
        index: usize,
        line: &str,
        start: Instant,
        rng: &mut SplitMix64,
        trace: &str,
    ) -> io::Result<String> {
        let upstream = &self.upstreams[index];
        let policy = self.config.retry;
        let mut last_error: Option<io::Error> = None;
        for attempt in 0..policy.max_attempts {
            let Some(remaining) = policy.remaining(start) else {
                return Err(last_error.unwrap_or_else(|| {
                    io::Error::new(io::ErrorKind::TimedOut, "request deadline exhausted")
                }));
            };
            if attempt > 0 {
                std::thread::sleep(policy.backoff(attempt, rng).min(remaining));
                upstream.retries.fetch_add(1, Ordering::Relaxed);
                obs::log("info", "retry")
                    .str_field("trace_id", trace)
                    .str_field("upstream", &upstream.addr)
                    .num_field("attempt", u64::from(attempt))
                    .emit();
            }
            if !upstream.breaker.allow() {
                return Err(last_error.unwrap_or_else(|| {
                    io::Error::new(io::ErrorKind::ConnectionRefused, "circuit breaker open")
                }));
            }
            // Split the remaining budget over the attempts left so a hung
            // exchange (e.g. an injected drop) can't eat the whole deadline.
            let attempt_timeout = remaining / (policy.max_attempts - attempt);
            let exchange_timer = Instant::now();
            match self.exchange_once(upstream, line, attempt_timeout) {
                Ok(response) => {
                    upstream.breaker.on_success();
                    upstream.forwarded.fetch_add(1, Ordering::Relaxed);
                    Registry::global()
                        .histogram("clara_forward_duration_us", &[("upstream", &upstream.addr)])
                        .record(exchange_timer.elapsed().as_micros() as u64);
                    return Ok(response);
                }
                Err(e) => {
                    upstream.breaker.on_failure();
                    last_error = Some(e);
                }
            }
        }
        upstream.errors.fetch_add(1, Ordering::Relaxed);
        Err(last_error.unwrap_or_else(|| io::Error::other("forwarding failed")))
    }

    /// One request/response exchange over a pooled (or fresh) connection.
    /// The connection returns to the pool only after a clean round trip; any
    /// error discards it so the next attempt dials fresh.
    fn exchange_once(&self, upstream: &Upstream, line: &str, timeout: Duration) -> io::Result<String> {
        let timeout = timeout.max(Duration::from_millis(1));
        let mut conn = match upstream.checkout() {
            Some(conn) => conn,
            None => BufReader::new(connect(&upstream.addr, timeout)?),
        };
        conn.get_ref().set_read_timeout(Some(timeout))?;
        conn.get_ref().set_write_timeout(Some(timeout))?;
        match exchange(&mut conn, line) {
            Ok(response) => {
                // A response the fleet can't parse (e.g. injected garbage)
                // is a failed exchange, not a payload to forward.
                if serde_json::from_str::<Response>(&response).is_err() {
                    return Err(io::Error::new(io::ErrorKind::InvalidData, "unparseable upstream response"));
                }
                upstream.checkin(conn, self.config.pool_per_upstream);
                Ok(response)
            }
            Err(e) => Err(e),
        }
    }
}

/// One `{"metrics":true}` probe against a shard, over a pooled (or fresh)
/// connection.
fn probe_upstream_metrics(
    upstream: &Upstream,
    timeout: Duration,
    pool_cap: usize,
) -> io::Result<MetricsDump> {
    let mut conn = match upstream.checkout() {
        Some(conn) => conn,
        None => BufReader::new(connect(&upstream.addr, timeout)?),
    };
    conn.get_ref().set_read_timeout(Some(timeout))?;
    conn.get_ref().set_write_timeout(Some(timeout))?;
    let response = exchange(&mut conn, r#"{"id":0,"metrics":true}"#)?;
    let dump: MetricsDump = serde_json::from_str(&response)
        .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, format!("unparseable metrics dump: {e}")))?;
    upstream.checkin(conn, pool_cap);
    Ok(dump)
}

fn connect(addr: &str, timeout: Duration) -> io::Result<TcpStream> {
    let resolved = addr
        .to_socket_addrs()?
        .next()
        .ok_or_else(|| io::Error::new(io::ErrorKind::AddrNotAvailable, "address resolved to nothing"))?;
    let stream = TcpStream::connect_timeout(&resolved, timeout)?;
    let _ = stream.set_nodelay(true);
    Ok(stream)
}

fn exchange(reader: &mut BufReader<TcpStream>, line: &str) -> io::Result<String> {
    let stream = reader.get_mut();
    stream.write_all(line.as_bytes())?;
    stream.write_all(b"\n")?;
    let mut response = String::new();
    if reader.read_line(&mut response)? == 0 {
        return Err(io::Error::new(io::ErrorKind::UnexpectedEof, "shard closed the connection"));
    }
    Ok(response.trim_end().to_owned())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::protocol::parse_request;
    use std::net::TcpListener;
    use std::sync::mpsc;

    fn request(id: u64, problem: &str) -> Request {
        Request {
            id,
            problem: problem.to_owned(),
            lang: None,
            source: "def f(x):\n    return x\n".to_owned(),
            learn: None,
            trace: None,
        }
    }

    fn fast_config(workers: usize, queue_capacity: usize) -> RouterConfig {
        RouterConfig {
            workers,
            queue_capacity,
            retry: RetryPolicy {
                max_attempts: 2,
                base_backoff: Duration::from_millis(2),
                max_backoff: Duration::from_millis(10),
                deadline: Duration::from_secs(10),
            },
            ..RouterConfig::default()
        }
    }

    /// A fake shard: accepts connections, echoes every request line back as
    /// an error response tagged with the shard's name.
    fn fake_shard(name: &'static str) -> String {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap().to_string();
        std::thread::spawn(move || {
            for stream in listener.incoming() {
                let Ok(stream) = stream else { return };
                std::thread::spawn(move || {
                    let mut reader = BufReader::new(stream.try_clone().unwrap());
                    let mut writer = stream;
                    let mut line = String::new();
                    while reader.read_line(&mut line).map(|n| n > 0).unwrap_or(false) {
                        let id = parse_request(line.trim()).map(|r| r.id).unwrap_or(0);
                        let response = render_response(&Response::error(id, format!("answered by {name}")));
                        if writeln!(writer, "{response}").is_err() {
                            return;
                        }
                        line.clear();
                    }
                });
            }
        });
        addr
    }

    /// An upstream that accepts connections but never answers: the worst
    /// case for the metrics probe, which must rely on its read timeout.
    fn silent_shard() -> String {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap().to_string();
        std::thread::spawn(move || {
            let mut held = Vec::new();
            for stream in listener.incoming() {
                let Ok(stream) = stream else { return };
                held.push(stream);
            }
        });
        addr
    }

    #[test]
    fn metrics_probes_are_configurable_and_budgeted() {
        // Regression test: the per-shard probe timeout was hard-coded to
        // 2s, so three accepting-but-mute shards held every `/metrics`
        // scrape for 6s. With a configurable timeout and a total budget
        // the whole pass must finish well under the old single-shard cost
        // and still produce the router's own counters.
        let addrs = vec![silent_shard(), silent_shard(), silent_shard()];
        let catalog = vec![("derivatives".to_owned(), "minipy".to_owned())];
        let config = RouterConfig {
            metrics_probe_timeout: Duration::from_millis(150),
            metrics_probe_budget: Duration::from_millis(250),
            ..fast_config(1, 4)
        };
        let router = Router::new(addrs, catalog, config);
        let start = Instant::now();
        let line = router.metrics_line(7);
        let elapsed = start.elapsed();
        let dump: MetricsDump = serde_json::from_str(&line).unwrap_or_else(|e| panic!("{line}: {e}"));
        assert!(dump.metrics_dump);
        assert_eq!(dump.id, 7);
        assert!(
            dump.counters.iter().any(|c| c.name == "clara_router_forwarded_total"),
            "fleet counters must survive unprobeable shards"
        );
        assert!(elapsed < Duration::from_secs(2), "metrics pass blew its probe budget: {elapsed:?}");
    }

    #[test]
    fn requests_reach_the_shard_owning_their_key() {
        let addrs = vec![fake_shard("shard-zero"), fake_shard("shard-one")];
        let catalog = vec![
            ("derivatives".to_owned(), "minipy".to_owned()),
            ("fibonacci_c".to_owned(), "minic".to_owned()),
        ];
        let router = Router::new(addrs, catalog, fast_config(2, 8));
        let ring = HashRing::new(2);

        for (id, problem, lang) in [(1, "derivatives", "minipy"), (2, "fibonacci_c", "minic")] {
            let expected = ring.owner(problem, lang);
            let (tx, rx) = mpsc::channel();
            router.submit(request(id, problem), Box::new(move |line| tx.send(line).unwrap())).unwrap();
            let line = rx.recv_timeout(Duration::from_secs(30)).unwrap();
            let response: Response = serde_json::from_str(&line).unwrap();
            assert_eq!(response.id, id);
            let expected_name = if expected == 0 { "shard-zero" } else { "shard-one" };
            assert!(
                response.error.as_deref().unwrap_or("").contains(expected_name),
                "request {id} should reach shard {expected}: {line}"
            );
        }

        let report = router.report(7);
        assert!(report.router);
        assert_eq!(report.id, 7);
        assert_eq!(report.shards, 2);
        assert_eq!(report.forwarded, 2);
        assert_eq!(report.upstream_errors, 0);
        assert_eq!(report.failovers, 0);
        assert!(report.upstreams.iter().all(|u| u.breaker == "closed"));
    }

    #[test]
    fn canonical_language_wins_over_client_aliases() {
        // Clients may tag MiniPy submissions "python"; the ring key must use
        // the canonical catalog tag or the router would hash a different key
        // than the shard that loaded the index.
        let catalog = vec![("derivatives".to_owned(), "minipy".to_owned())];
        let router = Router::new(vec!["127.0.0.1:1".to_owned(); 4], catalog, fast_config(1, 1));
        let canonical = HashRing::new(4).owner("derivatives", "minipy");
        let mut aliased = request(1, "derivatives");
        aliased.lang = Some("python".to_owned());
        assert_eq!(router.route(&aliased), canonical);
        assert_eq!(router.route(&request(2, "derivatives")), canonical);
        let replicas = router.replicas(&aliased);
        assert_eq!(replicas.len(), REPLICATION_FACTOR);
        assert_eq!(replicas[0], canonical);
    }

    #[test]
    fn unreachable_shards_produce_explicit_errors() {
        // Nothing listens on this address (port 1 is reserved and unbound).
        let router = Router::new(vec!["127.0.0.1:1".to_owned()], Vec::new(), fast_config(1, 2));
        let (tx, rx) = mpsc::channel();
        router.submit(request(9, "whatever"), Box::new(move |line| tx.send(line).unwrap())).unwrap();
        let line = rx.recv_timeout(Duration::from_secs(30)).unwrap();
        let response: Response = serde_json::from_str(&line).unwrap();
        assert_eq!(response.id, 9);
        assert!(response.error.as_deref().unwrap_or("").contains("unreachable"), "{line}");
        let report = router.report(0);
        assert_eq!(report.upstream_errors, 1);
        assert!(report.retries >= 1, "a failed exchange must be retried before giving up");
    }

    #[test]
    fn reads_fail_over_to_the_ring_successor() {
        // Two-shard fleet where one shard is dead: every key's replica set
        // contains both shards, so the live one must answer regardless of
        // which is the owner.
        let live = fake_shard("survivor");
        let dead = "127.0.0.1:1".to_owned();
        for owner_is_dead in [true, false] {
            let addrs = if owner_is_dead {
                vec![dead.clone(), live.clone()]
            } else {
                vec![live.clone(), dead.clone()]
            };
            let router = Router::new(addrs, Vec::new(), fast_config(1, 4));
            // Find a problem owned by shard 0 so the scenario is forced.
            let ring = HashRing::new(2);
            let problem = (0..100)
                .map(|i| format!("p{i}"))
                .find(|p| ring.owner(p, "") == 0)
                .expect("some key lands on shard 0");
            let (tx, rx) = mpsc::channel();
            router.submit(request(5, &problem), Box::new(move |line| tx.send(line).unwrap())).unwrap();
            let line = rx.recv_timeout(Duration::from_secs(30)).unwrap();
            let response: Response = serde_json::from_str(&line).unwrap();
            assert!(
                response.error.as_deref().unwrap_or("").contains("answered by survivor"),
                "the live shard must answer: {line}"
            );
            let report = router.report(0);
            if owner_is_dead {
                assert_eq!(report.failovers, 1, "successor served: counts as failover");
            } else {
                assert_eq!(report.failovers, 0, "owner served: no failover");
            }
        }
    }

    #[test]
    fn learns_are_replicated_to_owner_and_successor() {
        let addrs = vec![fake_shard("a"), fake_shard("b")];
        let router = Router::new(addrs, Vec::new(), fast_config(1, 4));
        let mut learn = request(3, "some_problem");
        learn.learn = Some(true);
        let (tx, rx) = mpsc::channel();
        router.submit(learn, Box::new(move |line| tx.send(line).unwrap())).unwrap();
        rx.recv_timeout(Duration::from_secs(30)).unwrap();
        let report = router.report(0);
        assert_eq!(report.forwarded, 2, "learn must reach both replicas");
        assert_eq!(report.replicated_learns, 1);
        assert!(report.upstreams.iter().all(|u| u.forwarded == 1), "{report:?}");
    }

    #[test]
    fn breaker_opens_after_repeated_failures_and_skips_the_dead_shard() {
        let config = RouterConfig {
            breaker_threshold: 2,
            breaker_cooldown: Duration::from_secs(60),
            ..fast_config(1, 8)
        };
        let router = Router::new(vec!["127.0.0.1:1".to_owned()], Vec::new(), config);
        for id in 0..3 {
            let (tx, rx) = mpsc::channel();
            router.submit(request(id, "p"), Box::new(move |line| tx.send(line).unwrap())).unwrap();
            rx.recv_timeout(Duration::from_secs(30)).unwrap();
        }
        let report = router.report(0);
        assert_eq!(report.upstreams[0].breaker, "open", "{report:?}");
        assert!(report.upstreams[0].consecutive_failures >= 2);
    }

    #[test]
    fn metrics_dumps_survive_unprobeable_upstreams() {
        let addrs = vec![fake_shard("metrics-shard")];
        let catalog = vec![("derivatives".to_owned(), "minipy".to_owned())];
        let router = Router::new(addrs, catalog, fast_config(1, 4));
        let (tx, rx) = mpsc::channel();
        router.submit(request(1, "derivatives"), Box::new(move |line| tx.send(line).unwrap())).unwrap();
        rx.recv_timeout(Duration::from_secs(30)).unwrap();

        // The fake shard answers the `{"metrics":true}` probe with a plain
        // error response, not a dump: aggregation must degrade to the
        // router's own fleet counters instead of failing the request.
        let line = router.metrics_line(3);
        let dump: MetricsDump = serde_json::from_str(&line).unwrap_or_else(|e| panic!("{line}: {e}"));
        assert!(dump.metrics_dump);
        assert_eq!(dump.id, 3);
        let forwarded =
            dump.counters.iter().find(|c| c.name == "clara_router_forwarded_total").expect("fleet counter");
        assert!(forwarded.value >= 1, "{forwarded:?}");
        assert!(
            dump.counters.iter().any(|c| c.name == "clara_router_upstream_forwarded_total"),
            "per-upstream counters present"
        );

        let text = router.metrics_text();
        assert!(text.contains("# TYPE clara_router_forwarded_total counter"), "{text}");
    }
}
