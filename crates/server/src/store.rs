//! The persistent cluster index: per-problem cluster stores that serialize
//! to disk and warm-load at startup.
//!
//! Clustering the correct pool is the expensive part of bringing a problem
//! online (every solution is executed on every grading input, then matched
//! against representatives). A [`ClusterStore`] therefore persists the
//! *result* of clustering — one representative source plus the mined
//! expression slots per cluster — as JSON. Warm loading re-analyses only the
//! `K` representatives instead of re-clustering all `N ≫ K` solutions, and
//! reconstructs clusters whose repair behaviour is bit-identical to the
//! cold-built index (asserted by `tests/persistence.rs`).
//!
//! The store also supports *online* growth (§2 of the paper): newly verified
//! correct submissions are inserted incrementally via
//! [`ClusterStore::insert_correct`], which either joins an existing cluster
//! or opens a new one.

use std::fmt;
use std::path::{Path, PathBuf};

use clara_core::{
    frontend, AnalysisError, AnalyzedProgram, CandidateIndex, Clara, ClaraConfig, Cluster, ClusteringStats,
    QuerySignals,
};
use clara_corpus::Problem;
use clara_lang::Expr;
use serde::{Deserialize, Serialize};

/// On-disk format version; bumped when the stored shape changes.
/// Version 2 added the `lang` tag (multi-frontend indexes); version 3 added
/// the per-cluster retrieval signals (`retrieval`). Version-2 files still
/// load: their retrieval signals are rebuilt from the representatives.
pub const STORE_FORMAT_VERSION: u32 = 3;

/// The oldest on-disk format this build still reads.
pub const STORE_FORMAT_MIN_COMPAT: u32 = 2;

/// Why a store could not be saved or loaded.
#[derive(Debug)]
pub enum StoreError {
    /// Filesystem error.
    Io(std::io::Error),
    /// The file is not a valid stored index.
    Format(String),
    /// The stored index belongs to a different problem or format version.
    Mismatch(String),
    /// A stored representative no longer analyses (e.g. the language
    /// evolved); the index must be rebuilt.
    Analysis(String),
}

impl fmt::Display for StoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StoreError::Io(e) => write!(f, "index io error: {e}"),
            StoreError::Format(e) => write!(f, "malformed index: {e}"),
            StoreError::Mismatch(e) => write!(f, "index mismatch: {e}"),
            StoreError::Analysis(e) => write!(f, "stale index: {e}"),
        }
    }
}

impl std::error::Error for StoreError {}

impl From<std::io::Error> for StoreError {
    fn from(e: std::io::Error) -> Self {
        StoreError::Io(e)
    }
}

/// One expression slot `(ℓ, v) ↦ E_C(ℓ, v)` of a stored cluster.
#[derive(Debug, Clone, Serialize, Deserialize)]
struct StoredSlot {
    loc: usize,
    var: String,
    exprs: Vec<Expr>,
}

/// One cluster of the stored index.
#[derive(Debug, Clone, Serialize, Deserialize)]
struct StoredCluster {
    representative: String,
    member_ids: Vec<usize>,
    expressions: Vec<StoredSlot>,
}

/// One cluster's candidate-retrieval signals (format v3), parallel to
/// `clusters`. Persisting them matters because they accumulate over *every*
/// member at insertion time, while only representative sources survive a
/// round-trip — a warm start could not recompute them.
#[derive(Debug, Clone, Serialize, Deserialize)]
struct StoredSignals {
    structural: Vec<u64>,
    behaviour: Vec<u64>,
}

/// The serialized form of a [`ClusterStore`].
#[derive(Debug, Clone, Serialize, Deserialize)]
struct StoredIndex {
    format_version: u32,
    problem: String,
    /// The language tag of the indexed submissions (`"minipy"`/`"minic"`).
    lang: String,
    entry: String,
    correct_count: usize,
    clusters: Vec<StoredCluster>,
    /// Per-cluster retrieval signals; absent in v2 files (deserializes as
    /// `None`, in which case the signals are rebuilt from representatives).
    retrieval: Option<Vec<StoredSignals>>,
}

/// A per-problem cluster index: the [`Clara`] engine plus everything needed
/// to persist and reconstruct it.
#[derive(Debug, Clone)]
pub struct ClusterStore {
    problem: Problem,
    engine: Clara,
    /// Source text of each cluster's representative, parallel to
    /// `engine.clusters()`. Only representatives are persisted — members
    /// contribute their mined expressions, which live in the clusters.
    rep_sources: Vec<String>,
}

impl ClusterStore {
    /// Builds a store by incrementally clustering `sources`; solutions that
    /// fail analysis are skipped (they are unusable for repair). Returns the
    /// store and the number of usable solutions.
    pub fn build<'a>(
        problem: &Problem,
        sources: impl IntoIterator<Item = &'a str>,
        config: ClaraConfig,
    ) -> (Self, usize) {
        let mut store = ClusterStore {
            problem: problem.clone(),
            engine: Clara::new_in(problem.lang, problem.entry, problem.inputs(), config),
            rep_sources: Vec::new(),
        };
        let mut usable = 0usize;
        for source in sources {
            if store.insert_correct(source).is_ok() {
                usable += 1;
            }
        }
        (store, usable)
    }

    /// The problem this store serves.
    pub fn problem(&self) -> &Problem {
        &self.problem
    }

    /// The underlying repair engine.
    pub fn engine(&self) -> &Clara {
        &self.engine
    }

    /// Clustering summary statistics.
    pub fn stats(&self) -> ClusteringStats {
        self.engine.clustering_stats()
    }

    /// Inserts a correct solution online and returns the index of the
    /// cluster it joined (opening a new cluster if none matches).
    ///
    /// The caller is responsible for having *verified* the solution against
    /// the grading suite first — the store trusts it (the service layer
    /// grades before learning).
    ///
    /// # Errors
    ///
    /// Returns an [`AnalysisError`] when the solution cannot be analysed.
    pub fn insert_correct(&mut self, source: &str) -> Result<usize, AnalysisError> {
        let index = self.engine.add_correct_solution(source)?;
        if index == self.rep_sources.len() {
            // The solution opened a new cluster and is its representative.
            self.rep_sources.push(source.to_owned());
        }
        Ok(index)
    }

    /// Copy-on-write insertion: builds the *next* index containing `source`
    /// without mutating this one, returning the new store and the index of
    /// the cluster the solution joined. This is the snapshot writer's path:
    /// the clone and the matching run off the hot path while readers keep
    /// serving from the current snapshot, and the returned store is then
    /// published with one atomic pointer swap.
    ///
    /// # Errors
    ///
    /// Returns an [`AnalysisError`] when the solution cannot be analysed
    /// (no new store is built).
    pub fn with_learned(&self, source: &str) -> Result<(Self, usize), AnalysisError> {
        let mut next = self.clone();
        let cluster = next.insert_correct(source)?;
        Ok((next, cluster))
    }

    /// Serializes the index to a JSON string.
    pub fn to_json(&self) -> String {
        let stored = StoredIndex {
            format_version: STORE_FORMAT_VERSION,
            problem: self.problem.name.to_owned(),
            lang: self.problem.lang.as_str().to_owned(),
            entry: self.problem.entry.to_owned(),
            correct_count: self.engine.correct_count(),
            clusters: self
                .engine
                .clusters()
                .iter()
                .zip(&self.rep_sources)
                .map(|(cluster, source)| StoredCluster {
                    representative: source.clone(),
                    member_ids: cluster.member_ids.clone(),
                    expressions: cluster
                        .export_expressions()
                        .into_iter()
                        .map(|(loc, var, exprs)| StoredSlot { loc, var, exprs })
                        .collect(),
                })
                .collect(),
            retrieval: Some(
                self.engine
                    .candidate_index()
                    .export()
                    .into_iter()
                    .map(|(structural, behaviour)| StoredSignals { structural, behaviour })
                    .collect(),
            ),
        };
        serde_json::to_string(&stored).expect("index serialization is infallible")
    }

    /// Reconstructs a store from [`ClusterStore::to_json`] output. Only the
    /// cluster representatives are re-analysed (executed on the grading
    /// inputs); the mined expression slots are restored verbatim, so repair
    /// behaviour is identical to the cold-built index.
    ///
    /// # Errors
    ///
    /// Returns a [`StoreError`] on malformed JSON, a problem/format-version
    /// mismatch, or a representative that no longer analyses.
    pub fn from_json(json: &str, problem: &Problem, config: ClaraConfig) -> Result<Self, StoreError> {
        let stored: StoredIndex =
            serde_json::from_str(json).map_err(|e| StoreError::Format(e.to_string()))?;
        if stored.format_version < STORE_FORMAT_MIN_COMPAT || stored.format_version > STORE_FORMAT_VERSION {
            return Err(StoreError::Mismatch(format!(
                "format version {} (this build reads {STORE_FORMAT_MIN_COMPAT}..={STORE_FORMAT_VERSION})",
                stored.format_version
            )));
        }
        if stored.problem != problem.name || stored.entry != problem.entry {
            return Err(StoreError::Mismatch(format!(
                "index is for `{}`/`{}`, not `{}`/`{}`",
                stored.problem, stored.entry, problem.name, problem.entry
            )));
        }
        if stored.lang != problem.lang.as_str() {
            return Err(StoreError::Mismatch(format!(
                "index is for {} submissions, problem `{}` is {}",
                stored.lang, problem.name, problem.lang
            )));
        }
        let inputs = problem.inputs();
        let mut clusters = Vec::with_capacity(stored.clusters.len());
        let mut rep_sources = Vec::with_capacity(stored.clusters.len());
        for cluster in stored.clusters {
            let representative = AnalyzedProgram::from_text_in(
                problem.lang,
                &cluster.representative,
                problem.entry,
                &inputs,
                config.repair.fuel,
            )
            .map_err(|e| StoreError::Analysis(format!("representative of `{}`: {e}", stored.problem)))?;
            let slots =
                cluster.expressions.into_iter().map(|slot| (slot.loc, slot.var, slot.exprs)).collect();
            clusters.push(Cluster::from_parts(representative, cluster.member_ids, slots));
            rep_sources.push(cluster.representative);
        }
        let mut engine =
            Clara::restore_in(problem.lang, problem.entry, inputs, config, clusters, stored.correct_count);
        let stored_signals = stored.retrieval.filter(|signals| signals.len() == engine.clusters().len());
        let index = match stored_signals {
            // v3: the member-accumulated signals round-trip verbatim, so the
            // warm index retrieves exactly like the cold-built one.
            Some(signals) => {
                CandidateIndex::from_parts(signals.into_iter().map(|s| (s.structural, s.behaviour)).collect())
            }
            // v2 migration (or a truncated signal table): rebuild both
            // signals from the representatives — weaker than accumulated
            // signals but self-healing, and the next save writes v3.
            None => {
                let mut rebuilt = CandidateIndex::new();
                for (i, (cluster, source)) in engine.clusters().iter().zip(&rep_sources).enumerate() {
                    let surface =
                        frontend(problem.lang).parse(source).ok().and_then(|p| p.surface(problem.entry).ok());
                    rebuilt.record(i, &QuerySignals::for_program(&cluster.representative, surface.as_ref()));
                }
                rebuilt
            }
        };
        engine.install_candidate_index(index);
        Ok(ClusterStore { problem: problem.clone(), engine, rep_sources })
    }

    /// The index file path for `problem` under `dir`.
    pub fn index_path(dir: &Path, problem_name: &str) -> PathBuf {
        dir.join(format!("{problem_name}.clusters.json"))
    }

    /// Persists the index under `dir` (created if missing); the write is
    /// atomic (temp file + rename) so a crashed writer never leaves a
    /// half-written index behind.
    ///
    /// # Errors
    ///
    /// Returns a [`StoreError::Io`] when the directory or file cannot be
    /// written.
    pub fn save(&self, dir: &Path) -> Result<PathBuf, StoreError> {
        std::fs::create_dir_all(dir)?;
        let path = Self::index_path(dir, self.problem.name);
        let tmp = path.with_extension("json.tmp");
        std::fs::write(&tmp, self.to_json())?;
        std::fs::rename(&tmp, &path)?;
        Ok(path)
    }

    /// Loads the index for `problem` from `dir`. Returns `Ok(None)` when no
    /// index file exists (a cold start).
    ///
    /// # Errors
    ///
    /// Returns a [`StoreError`] when the file exists but cannot be read or
    /// reconstructed.
    pub fn load(dir: &Path, problem: &Problem, config: ClaraConfig) -> Result<Option<Self>, StoreError> {
        let path = Self::index_path(dir, problem.name);
        let json = match std::fs::read_to_string(&path) {
            Ok(json) => json,
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(None),
            Err(e) => return Err(StoreError::Io(e)),
        };
        Self::from_json(&json, problem, config).map(Some)
    }

    /// Crash-safe variant of [`ClusterStore::load`]: a truncated, corrupt or
    /// stale index file is *recovered from* instead of erroring — the bad
    /// file is quarantined as `<name>.clusters.json.corrupt` (best effort),
    /// a warning goes to stderr, and `None` is returned so the caller
    /// rebuilds from the seed pool exactly as on a cold start. Only a
    /// missing-but-unreadable filesystem (permission errors and the like)
    /// still returns an error, since rebuilding would not help.
    ///
    /// # Errors
    ///
    /// Returns a [`StoreError::Io`] for filesystem errors other than
    /// `NotFound`.
    pub fn load_or_recover(
        dir: &Path,
        problem: &Problem,
        config: ClaraConfig,
    ) -> Result<Option<Self>, StoreError> {
        match Self::load(dir, problem, config) {
            Ok(found) => Ok(found),
            Err(StoreError::Io(e)) => Err(StoreError::Io(e)),
            Err(e) => {
                let path = Self::index_path(dir, problem.name);
                let quarantine = path.with_extension("json.corrupt");
                let moved = std::fs::rename(&path, &quarantine).is_ok();
                crate::obs::log("warn", "index_quarantined")
                    .str_field("problem", problem.name)
                    .str_field("error", &e.to_string())
                    .str_field("path", &path.display().to_string())
                    .str_field(
                        "quarantined_as",
                        &if moved { quarantine.display().to_string() } else { String::new() },
                    )
                    .str_field("action", "rebuilding from seeds")
                    .emit();
                Ok(None)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use clara_corpus::mooc::derivatives;

    fn store_with_seeds() -> ClusterStore {
        let problem = derivatives();
        let seeds: Vec<&str> = problem.seeds.clone();
        let (store, usable) = ClusterStore::build(&problem, seeds, ClaraConfig::default());
        assert!(usable >= 2);
        store
    }

    #[test]
    fn json_roundtrip_preserves_clusters() {
        let store = store_with_seeds();
        let json = store.to_json();
        let restored = ClusterStore::from_json(&json, &derivatives(), ClaraConfig::default()).unwrap();
        assert_eq!(restored.stats(), store.stats());
        assert_eq!(restored.rep_sources, store.rep_sources);
        // Serialization is deterministic: a restored store serializes to the
        // identical JSON.
        assert_eq!(restored.to_json(), json);
    }

    #[test]
    fn v2_indexes_migrate_with_rebuilt_retrieval_signals() {
        let store = store_with_seeds();
        // Reconstruct the exact v2 shape: same clusters, no retrieval table.
        let mut stored: StoredIndex = serde_json::from_str(&store.to_json()).unwrap();
        stored.format_version = 2;
        stored.retrieval = None;
        let with_null = serde_json::to_string(&stored).unwrap();
        // A real v2 file has no `retrieval` key at all (it serializes last,
        // so stripping the null field reproduces the historical bytes).
        let v2_json = with_null.replace(",\"retrieval\":null}", "}");
        assert_ne!(v2_json, with_null, "retrieval field expected at the end of the JSON");

        for json in [with_null, v2_json] {
            let migrated = ClusterStore::from_json(&json, &derivatives(), ClaraConfig::default()).unwrap();
            assert_eq!(migrated.stats(), store.stats());
            // The retrieval signals were rebuilt from the representatives:
            // every cluster is indexed again.
            let index = migrated.engine().candidate_index();
            assert_eq!(index.len(), migrated.engine().clusters().len());
            // Saving the migrated store writes the current format.
            let upgraded = migrated.to_json();
            assert!(upgraded.contains("\"format_version\":3"), "{upgraded:.60}");
            assert!(upgraded.contains("\"retrieval\":["));
        }

        // Versions outside the compat window are still rejected.
        for bad in [1, STORE_FORMAT_VERSION + 1] {
            stored.format_version = bad;
            let json = serde_json::to_string(&stored).unwrap();
            let err = ClusterStore::from_json(&json, &derivatives(), ClaraConfig::default()).unwrap_err();
            assert!(matches!(err, StoreError::Mismatch(_)), "version {bad}: {err}");
        }
    }

    #[test]
    fn warm_loaded_retrieval_signals_round_trip_verbatim() {
        let store = store_with_seeds();
        let json = store.to_json();
        let restored = ClusterStore::from_json(&json, &derivatives(), ClaraConfig::default()).unwrap();
        assert_eq!(
            restored.engine().candidate_index().export(),
            store.engine().candidate_index().export(),
            "warm index must retrieve exactly like the cold-built one"
        );
    }

    #[test]
    fn save_and_load_via_directory() {
        let dir = std::env::temp_dir().join(format!("clara-store-test-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let problem = derivatives();
        assert!(ClusterStore::load(&dir, &problem, ClaraConfig::default()).unwrap().is_none());
        let store = store_with_seeds();
        let path = store.save(&dir).unwrap();
        assert!(path.exists());
        let loaded = ClusterStore::load(&dir, &problem, ClaraConfig::default()).unwrap().unwrap();
        assert_eq!(loaded.stats(), store.stats());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn mismatched_problem_is_rejected() {
        let store = store_with_seeds();
        let json = store.to_json();
        let other = clara_corpus::mooc::odd_tuples();
        let err = ClusterStore::from_json(&json, &other, ClaraConfig::default()).unwrap_err();
        assert!(matches!(err, StoreError::Mismatch(_)), "{err}");
        let err = ClusterStore::from_json("{]", &derivatives(), ClaraConfig::default()).unwrap_err();
        assert!(matches!(err, StoreError::Format(_)), "{err}");
    }

    #[test]
    fn corrupt_index_files_are_quarantined_and_rebuilt_from_cold() {
        let dir = std::env::temp_dir().join(format!("clara-store-corrupt-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        let problem = derivatives();
        let path = ClusterStore::index_path(&dir, problem.name);

        // A truncated write (simulated torn crash mid-save before the atomic
        // rename existed) must not brick startup: load errors, recover warns
        // and reports a cold start.
        let store = store_with_seeds();
        let json = store.to_json();
        std::fs::write(&path, &json[..json.len() / 2]).unwrap();
        let err = ClusterStore::load(&dir, &problem, ClaraConfig::default()).unwrap_err();
        assert!(matches!(err, StoreError::Format(_)), "{err}");
        let recovered = ClusterStore::load_or_recover(&dir, &problem, ClaraConfig::default()).unwrap();
        assert!(recovered.is_none(), "corrupt index reads as a cold start");
        assert!(!path.exists(), "the bad file is moved out of the way");
        assert!(path.with_extension("json.corrupt").exists(), "…and kept for post-mortem");

        // After the quarantine a rebuilt index saves and loads normally.
        store.save(&dir).unwrap();
        let reloaded = ClusterStore::load_or_recover(&dir, &problem, ClaraConfig::default())
            .unwrap()
            .expect("healthy index loads");
        assert_eq!(reloaded.stats(), store.stats());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn copy_on_write_insertion_leaves_the_source_store_untouched() {
        let problem = derivatives();
        let (store, _) = ClusterStore::build(&problem, [problem.seeds[0]], ClaraConfig::default());
        let before_json = store.to_json();
        let (next, cluster) = store.with_learned(problem.seeds[1]).unwrap();
        // The original is bit-identical; the successor has the insertion.
        assert_eq!(store.to_json(), before_json);
        assert_eq!(store.engine().correct_count(), 1);
        assert_eq!(next.engine().correct_count(), 2);
        assert!(cluster <= next.engine().clusters().len());
        // Unanalysable sources build no successor at all.
        assert!(store.with_learned("def broken(:\n").is_err());
        assert_eq!(store.to_json(), before_json);
    }

    #[test]
    fn online_insertion_tracks_new_representatives() {
        let problem = derivatives();
        let (mut store, _) = ClusterStore::build(&problem, [problem.seeds[0]], ClaraConfig::default());
        let before = store.engine.clusters().len();
        assert_eq!(store.rep_sources.len(), before);
        // Re-inserting the representative joins its own cluster.
        let index = store.insert_correct(problem.seeds[0]).unwrap();
        assert!(index < before);
        assert_eq!(store.rep_sources.len(), before);
        assert_eq!(store.engine.correct_count(), 2);
    }
}
