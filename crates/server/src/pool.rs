//! A hand-rolled worker pool over `std::thread` and channels.
//!
//! The build environment is offline, so there is no tokio; the serving
//! pipeline instead uses the classic shared-receiver pool: a bounded
//! [`sync_channel`](std::sync::mpsc::sync_channel) job queue (submission
//! blocks when the queue is full — natural backpressure toward the front
//! end) drained by `N` worker threads. Workers are panic-isolated: a job
//! whose handler panics is counted and dropped, and the worker keeps
//! serving subsequent jobs.

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::mpsc::{sync_channel, Receiver, SyncSender, TrySendError};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;

/// Error returned when submitting to a pool that has shut down.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PoolClosed;

impl std::fmt::Display for PoolClosed {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "worker pool is shut down")
    }
}

impl std::error::Error for PoolClosed {}

/// A fixed-size pool of panic-isolated worker threads draining a bounded
/// job queue.
pub struct WorkerPool<J: Send + 'static> {
    sender: Option<SyncSender<J>>,
    workers: Vec<JoinHandle<()>>,
    panics: Arc<AtomicU64>,
}

impl<J: Send + 'static> WorkerPool<J> {
    /// Spawns `workers` threads handling jobs with `handler`. At most
    /// `queue_capacity` jobs wait in the queue; further submissions block
    /// (backpressure).
    pub fn new(workers: usize, queue_capacity: usize, handler: impl Fn(J) + Send + Sync + 'static) -> Self {
        let workers = workers.max(1);
        let (sender, receiver) = sync_channel::<J>(queue_capacity.max(1));
        let receiver = Arc::new(Mutex::new(receiver));
        let handler = Arc::new(handler);
        let panics = Arc::new(AtomicU64::new(0));
        let handles = (0..workers)
            .map(|index| {
                let receiver = Arc::clone(&receiver);
                let handler = Arc::clone(&handler);
                let panics = Arc::clone(&panics);
                std::thread::Builder::new()
                    .name(format!("clara-worker-{index}"))
                    .spawn(move || worker_loop(&receiver, handler.as_ref(), &panics))
                    .expect("spawning a worker thread")
            })
            .collect();
        WorkerPool { sender: Some(sender), workers: handles, panics }
    }

    /// Submits a job, blocking while the queue is full.
    ///
    /// # Errors
    ///
    /// Returns [`PoolClosed`] when the pool has shut down.
    pub fn submit(&self, job: J) -> Result<(), PoolClosed> {
        match &self.sender {
            Some(sender) => sender.send(job).map_err(|_| PoolClosed),
            None => Err(PoolClosed),
        }
    }

    /// Submits a job without blocking; `Ok(false)` signals a full queue
    /// (the caller can shed load instead of waiting).
    ///
    /// # Errors
    ///
    /// Returns [`PoolClosed`] when the pool has shut down.
    pub fn try_submit(&self, job: J) -> Result<bool, PoolClosed> {
        match &self.sender {
            Some(sender) => match sender.try_send(job) {
                Ok(()) => Ok(true),
                Err(TrySendError::Full(_)) => Ok(false),
                Err(TrySendError::Disconnected(_)) => Err(PoolClosed),
            },
            None => Err(PoolClosed),
        }
    }

    /// Number of jobs whose handler panicked (the jobs were dropped, the
    /// workers survived).
    pub fn panic_count(&self) -> u64 {
        self.panics.load(Ordering::Relaxed)
    }

    /// Closes the queue, drains the remaining jobs and joins all workers.
    pub fn shutdown(&mut self) {
        self.sender = None;
        for handle in self.workers.drain(..) {
            let _ = handle.join();
        }
    }
}

impl<J: Send + 'static> Drop for WorkerPool<J> {
    fn drop(&mut self) {
        self.shutdown();
    }
}

fn worker_loop<J>(receiver: &Mutex<Receiver<J>>, handler: &(impl Fn(J) + ?Sized), panics: &AtomicU64) {
    loop {
        // Hold the lock only for the dequeue, never while handling.
        let job = match receiver.lock() {
            Ok(guard) => guard.recv(),
            Err(_) => return, // a sibling worker panicked *inside recv* — unreachable in practice
        };
        match job {
            Ok(job) => {
                if catch_unwind(AssertUnwindSafe(|| handler(job))).is_err() {
                    panics.fetch_add(1, Ordering::Relaxed);
                }
            }
            Err(_) => return, // queue closed and drained
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicUsize;
    use std::sync::mpsc::channel;

    #[test]
    fn jobs_are_processed_by_multiple_workers() {
        let counter = Arc::new(AtomicUsize::new(0));
        let seen = Arc::clone(&counter);
        let mut pool = WorkerPool::new(4, 8, move |n: usize| {
            seen.fetch_add(n, Ordering::SeqCst);
        });
        for _ in 0..100 {
            pool.submit(1).unwrap();
        }
        pool.shutdown();
        assert_eq!(counter.load(Ordering::SeqCst), 100);
        assert_eq!(pool.panic_count(), 0);
    }

    #[test]
    fn panicking_jobs_do_not_kill_the_pool() {
        let (reply, responses) = channel::<usize>();
        let mut pool = WorkerPool::new(2, 4, move |n: usize| {
            assert!(n != 13, "unlucky job");
            reply.send(n).unwrap();
        });
        for n in [1, 13, 2, 13, 3] {
            pool.submit(n).unwrap();
        }
        pool.shutdown();
        let mut survived: Vec<usize> = responses.iter().collect();
        survived.sort_unstable();
        assert_eq!(survived, vec![1, 2, 3]);
        assert_eq!(pool.panic_count(), 2);
    }

    #[test]
    fn try_submit_signals_a_full_queue() {
        let (release, gate) = channel::<()>();
        let gate = Mutex::new(gate);
        let mut pool = WorkerPool::new(1, 1, move |_: usize| {
            let _ = gate.lock().unwrap().recv();
        });
        // First job occupies the worker; the queue (capacity 1) then fills.
        pool.submit(0).unwrap();
        let mut accepted = 0;
        while pool.try_submit(1).unwrap() {
            accepted += 1;
            assert!(accepted < 100, "queue never filled");
        }
        for _ in 0..=accepted {
            release.send(()).unwrap();
        }
        pool.shutdown();
    }

    #[test]
    fn submitting_after_shutdown_errors() {
        let mut pool = WorkerPool::new(1, 1, |_: usize| {});
        pool.shutdown();
        assert_eq!(pool.submit(1), Err(PoolClosed));
        assert_eq!(pool.try_submit(1), Err(PoolClosed));
    }
}
