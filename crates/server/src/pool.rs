//! A hand-rolled worker pool over `std::thread` and channels.
//!
//! The build environment is offline, so there is no tokio; the serving
//! pipeline instead uses a fixed pool of panic-isolated worker threads.
//! Dispatch is **per-worker**: every worker owns its own bounded
//! [`sync_channel`](std::sync::mpsc::sync_channel) and submissions are
//! spread round-robin across them, skipping workers whose queue is full.
//! The earlier design funnelled all workers through one shared
//! `Arc<Mutex<Receiver>>` — every dequeue serialized the whole pool on that
//! lock, so idle workers woke up just to contend for it. With per-worker
//! queues a dequeue is lock-free from the pool's point of view and workers
//! only ever touch their own channel.
//!
//! Workers drain in **batches**: after blocking for the first job, a worker
//! opportunistically takes up to `max_batch - 1` more already-queued jobs
//! and hands the whole batch to the handler in one call. Batch handlers
//! amortise per-wakeup costs — the feedback service loads each problem's
//! index snapshot once per batch and deduplicates structurally identical
//! submissions within it.
//!
//! Workers are panic-isolated: a batch whose handler panics is counted and
//! dropped, and the worker keeps serving subsequent jobs.

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::mpsc::{sync_channel, Receiver, SyncSender, TrySendError};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::Duration;

/// Error returned when submitting to a pool that has shut down.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PoolClosed;

impl std::fmt::Display for PoolClosed {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "worker pool is shut down")
    }
}

impl std::error::Error for PoolClosed {}

/// Where submitters wait while every worker queue is full.
///
/// Workers bump the generation counter under the lock after draining jobs
/// from their queue, then notify. A submitter that re-offers *while holding
/// the lock* and still finds every queue full therefore cannot miss a
/// wakeup: any slot freed after its failed pass bumps the generation only
/// once the submitter is waiting on the condvar.
struct ParkLot {
    /// Generation counter of freed queue slots.
    slots_freed: Mutex<u64>,
    freed: Condvar,
}

/// First park interval when every queue is full. Doubles per consecutive
/// failed pass up to [`MAX_PARK`]; the condvar wakes parked submitters
/// early as soon as a worker drains its queue, so the timeout only bounds
/// recovery when a wakeup races shutdown.
const MIN_PARK: Duration = Duration::from_millis(1);
const MAX_PARK: Duration = Duration::from_millis(50);

/// A fixed-size pool of panic-isolated worker threads, each draining its
/// own bounded job queue in batches.
pub struct WorkerPool<J: Send + 'static> {
    /// One bounded sender per worker; `None` after shutdown.
    senders: Vec<SyncSender<J>>,
    /// Round-robin dispatch cursor.
    cursor: AtomicUsize,
    workers: Vec<JoinHandle<()>>,
    panics: Arc<AtomicU64>,
    /// Jobs submitted but not yet picked up by a worker (the queue-depth
    /// gauge exposed via `/stats`).
    queued: Arc<AtomicU64>,
    /// Condvar-backed waiting room for submitters that found every queue
    /// full.
    park: Arc<ParkLot>,
    /// Times a `submit` call parked because every queue was full.
    submit_parks: Arc<AtomicU64>,
}

impl<J: Send + 'static> WorkerPool<J> {
    /// Spawns `workers` threads handling one job per call with `handler`.
    /// At most `queue_capacity` jobs wait per worker; submissions prefer
    /// idle workers and block only when every queue is full (backpressure).
    pub fn new(workers: usize, queue_capacity: usize, handler: impl Fn(J) + Send + Sync + 'static) -> Self {
        // max_batch = 1 keeps the one-job-at-a-time contract (and its
        // per-job panic accounting) for callers that don't batch.
        Self::new_batched(workers, queue_capacity, 1, move |batch| {
            for job in batch {
                handler(job);
            }
        })
    }

    /// Spawns `workers` threads handling jobs in batches of up to
    /// `max_batch` with `handler`. A worker blocks for its first job, then
    /// drains whatever else is already queued (up to the batch limit) and
    /// hands the whole batch to one handler call.
    pub fn new_batched(
        workers: usize,
        queue_capacity: usize,
        max_batch: usize,
        handler: impl Fn(Vec<J>) + Send + Sync + 'static,
    ) -> Self {
        let workers = workers.max(1);
        let max_batch = max_batch.max(1);
        let handler = Arc::new(handler);
        let panics = Arc::new(AtomicU64::new(0));
        let queued = Arc::new(AtomicU64::new(0));
        let park = Arc::new(ParkLot { slots_freed: Mutex::new(0), freed: Condvar::new() });
        let mut senders = Vec::with_capacity(workers);
        let handles = (0..workers)
            .map(|index| {
                let (sender, receiver) = sync_channel::<J>(queue_capacity.max(1));
                senders.push(sender);
                let handler = Arc::clone(&handler);
                let panics = Arc::clone(&panics);
                let queued = Arc::clone(&queued);
                let park = Arc::clone(&park);
                std::thread::Builder::new()
                    .name(format!("clara-worker-{index}"))
                    .spawn(move || {
                        worker_loop(&receiver, max_batch, handler.as_ref(), &panics, &queued, &park)
                    })
                    .expect("spawning a worker thread")
            })
            .collect();
        WorkerPool {
            senders,
            cursor: AtomicUsize::new(0),
            workers: handles,
            panics,
            queued,
            park,
            submit_parks: Arc::new(AtomicU64::new(0)),
        }
    }

    /// One round-robin pass over every queue. `Ok(Err(job))` hands the job
    /// back when all queues are full.
    fn offer(&self, mut job: J) -> Result<Result<(), J>, PoolClosed> {
        if self.senders.is_empty() {
            return Err(PoolClosed);
        }
        let start = self.cursor.fetch_add(1, Ordering::Relaxed);
        for offset in 0..self.senders.len() {
            let sender = &self.senders[(start + offset) % self.senders.len()];
            match sender.try_send(job) {
                Ok(()) => {
                    self.queued.fetch_add(1, Ordering::Relaxed);
                    return Ok(Ok(()));
                }
                Err(TrySendError::Full(returned)) => job = returned,
                Err(TrySendError::Disconnected(_)) => return Err(PoolClosed),
            }
        }
        Ok(Err(job))
    }

    /// Submits a job: tries every worker queue round-robin starting at the
    /// dispatch cursor; while all are full, parks on a condvar until a
    /// worker drains its queue (with a bounded exponential timeout as a
    /// safety net) and retries across *all* queues. Committing to one
    /// specific queue would wait on one specific worker — if that worker is
    /// stuck on a slow job the submitter deadlocks against it even though
    /// its siblings drain. Parking instead of the earlier 200µs sleep loop
    /// matters when a handler wedges for seconds: a spinning submitter
    /// burned a core re-polling every queue thousands of times per second
    /// without making progress.
    ///
    /// # Errors
    ///
    /// Returns [`PoolClosed`] when the pool has shut down.
    pub fn submit(&self, job: J) -> Result<(), PoolClosed> {
        // Fast path: lock-free round-robin pass.
        let mut job = match self.offer(job)? {
            Ok(()) => return Ok(()),
            Err(returned) => returned,
        };
        let mut backoff = MIN_PARK;
        loop {
            // Re-offer under the park lock: a slot freed after the failed
            // lock-free pass bumps the generation under this same lock, so
            // either the retry here sees the free slot or the wait below
            // observes the bump — a wakeup cannot fall between the two.
            let mut slots = self.park.slots_freed.lock().expect("park lock poisoned");
            match self.offer(job)? {
                Ok(()) => return Ok(()),
                Err(returned) => job = returned,
            }
            let generation = *slots;
            self.submit_parks.fetch_add(1, Ordering::Relaxed);
            while *slots == generation {
                let (guard, timeout) =
                    self.park.freed.wait_timeout(slots, backoff).expect("park lock poisoned");
                slots = guard;
                if timeout.timed_out() {
                    break;
                }
            }
            drop(slots);
            backoff = (backoff * 2).min(MAX_PARK);
        }
    }

    /// Submits a job without blocking; `Ok(false)` signals that every
    /// worker queue is full (the caller can shed load instead of waiting —
    /// the job itself is dropped, so callers keep their own copy to retry).
    ///
    /// # Errors
    ///
    /// Returns [`PoolClosed`] when the pool has shut down.
    pub fn try_submit(&self, job: J) -> Result<bool, PoolClosed> {
        match self.offer(job)? {
            Ok(()) => Ok(true),
            Err(_dropped) => Ok(false),
        }
    }

    /// Number of jobs whose handler panicked (the jobs were dropped, the
    /// workers survived).
    pub fn panic_count(&self) -> u64 {
        self.panics.load(Ordering::Relaxed)
    }

    /// Jobs currently waiting in worker queues (submitted, not yet picked
    /// up). The queue-depth gauge of the `/stats` endpoint.
    pub fn queued(&self) -> u64 {
        self.queued.load(Ordering::Relaxed)
    }

    /// Times a [`submit`](Self::submit) call parked because every worker
    /// queue was full. A backpressure gauge: parks growing much faster
    /// than submissions means the pool is chronically undersized.
    pub fn submit_park_count(&self) -> u64 {
        self.submit_parks.load(Ordering::Relaxed)
    }

    /// Number of worker threads.
    pub fn worker_count(&self) -> usize {
        self.workers.len()
    }

    /// Closes the queues, drains the remaining jobs and joins all workers.
    pub fn shutdown(&mut self) {
        self.senders.clear();
        for handle in self.workers.drain(..) {
            let _ = handle.join();
        }
    }
}

impl<J: Send + 'static> Drop for WorkerPool<J> {
    fn drop(&mut self) {
        self.shutdown();
    }
}

fn worker_loop<J>(
    receiver: &Receiver<J>,
    max_batch: usize,
    handler: &(impl Fn(Vec<J>) + ?Sized),
    panics: &AtomicU64,
    queued: &AtomicU64,
    park: &ParkLot,
) {
    loop {
        // Block for the first job; queue closed and drained means exit.
        let Ok(first) = receiver.recv() else { return };
        let mut batch = Vec::with_capacity(max_batch.min(16));
        batch.push(first);
        // Opportunistic drain: whatever is already queued rides along in
        // this wakeup, up to the batch limit.
        while batch.len() < max_batch {
            match receiver.try_recv() {
                Ok(job) => batch.push(job),
                Err(_) => break,
            }
        }
        queued.fetch_sub(batch.len() as u64, Ordering::Relaxed);
        // Every received job freed a queue slot; wake submitters parked on
        // full queues. The generation bump must happen under the lock (see
        // `ParkLot`) or a submitter between its failed pass and its wait
        // would sleep through this notification.
        {
            let mut slots = park.slots_freed.lock().expect("park lock poisoned");
            *slots += 1;
        }
        park.freed.notify_all();
        let lost = batch.len() as u64;
        if catch_unwind(AssertUnwindSafe(|| handler(batch))).is_err() {
            panics.fetch_add(lost, Ordering::Relaxed);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicUsize;
    use std::sync::mpsc::channel;
    use std::sync::Mutex;

    #[test]
    fn jobs_are_processed_by_multiple_workers() {
        let counter = Arc::new(AtomicUsize::new(0));
        let seen = Arc::clone(&counter);
        let mut pool = WorkerPool::new(4, 8, move |n: usize| {
            seen.fetch_add(n, Ordering::SeqCst);
        });
        for _ in 0..100 {
            pool.submit(1).unwrap();
        }
        pool.shutdown();
        assert_eq!(counter.load(Ordering::SeqCst), 100);
        assert_eq!(pool.panic_count(), 0);
        assert_eq!(pool.queued(), 0);
    }

    #[test]
    fn panicking_jobs_do_not_kill_the_pool() {
        let (reply, responses) = channel::<usize>();
        let mut pool = WorkerPool::new(2, 4, move |n: usize| {
            assert!(n != 13, "unlucky job");
            reply.send(n).unwrap();
        });
        for n in [1, 13, 2, 13, 3] {
            pool.submit(n).unwrap();
        }
        pool.shutdown();
        let mut survived: Vec<usize> = responses.iter().collect();
        survived.sort_unstable();
        assert_eq!(survived, vec![1, 2, 3]);
        assert_eq!(pool.panic_count(), 2);
    }

    #[test]
    fn try_submit_signals_when_every_queue_is_full() {
        let (release, gate) = channel::<()>();
        let gate = Mutex::new(gate);
        let mut pool = WorkerPool::new(1, 1, move |_: usize| {
            let _ = gate.lock().unwrap().recv();
        });
        // First job occupies the worker; the queue (capacity 1) then fills.
        pool.submit(0).unwrap();
        let mut accepted = 0;
        while pool.try_submit(1).unwrap() {
            accepted += 1;
            assert!(accepted < 100, "queue never filled");
        }
        for _ in 0..=accepted {
            release.send(()).unwrap();
        }
        pool.shutdown();
    }

    #[test]
    fn submitting_after_shutdown_errors() {
        let mut pool = WorkerPool::new(1, 1, |_: usize| {});
        pool.shutdown();
        assert_eq!(pool.submit(1), Err(PoolClosed));
        assert_eq!(pool.try_submit(1), Err(PoolClosed));
    }

    #[test]
    fn full_queues_route_to_idle_workers() {
        // Per-worker queues trade the old shared queue's work-conservation
        // for contention-free dispatch; head-of-line blocking behind a slow
        // worker is bounded by its queue capacity. With capacity 1, at most
        // one quick job can sit behind the blocked worker — the rest must
        // route to the idle worker and finish while job 0 is still stuck.
        let (release, gate) = channel::<()>();
        let gate = Mutex::new(Some(gate));
        let (reply, done) = channel::<usize>();
        let mut pool = WorkerPool::new(2, 1, move |n: usize| {
            if n == 0 {
                // Only the first job blocks (takes the gate receiver).
                if let Some(gate) = gate.lock().unwrap().take() {
                    let _ = gate.recv();
                }
            }
            reply.send(n).unwrap();
        });
        pool.submit(0).unwrap();
        for n in 1..=5 {
            pool.submit(n).unwrap();
        }
        // At least four of the five quick jobs complete while job 0 blocks.
        let quick: Vec<usize> = (0..4)
            .map(|_| {
                done.recv_timeout(std::time::Duration::from_secs(10))
                    .expect("quick jobs must not starve behind the blocked worker")
            })
            .collect();
        assert!(!quick.contains(&0), "job 0 is still blocked: {quick:?}");
        release.send(()).unwrap();
        // The blocked job and any stragglers behind it drain on release.
        let mut all = quick;
        while all.len() < 6 {
            all.push(done.recv_timeout(std::time::Duration::from_secs(10)).unwrap());
        }
        all.sort_unstable();
        assert_eq!(all, vec![0, 1, 2, 3, 4, 5]);
        // The submits above may park briefly while the idle worker drains,
        // but must not degenerate into a poll loop.
        assert!(pool.submit_park_count() < 64, "submit is spinning: {} parks", pool.submit_park_count());
        pool.shutdown();
    }

    #[test]
    fn blocked_submitters_park_instead_of_spinning() {
        // Regression test: `submit` against a wedged pool used to retry
        // every 200µs — ~2000 full round-robin passes during the 400ms this
        // test holds the worker, all burning CPU without progress. The
        // condvar park reaches its 50ms timeout cap after ~6 doublings, so
        // a genuinely wedged wait accounts for at most ~a dozen wakeups.
        let (release, gate) = channel::<()>();
        let gate = Mutex::new(gate);
        let pool = Arc::new(WorkerPool::new(1, 1, move |_: usize| {
            let _ = gate.lock().unwrap().recv();
        }));
        pool.submit(0).unwrap();
        // Wait until the worker picked job 0 up, then fill its queue.
        while pool.queued() > 0 {
            std::thread::yield_now();
        }
        pool.submit(1).unwrap();
        assert_eq!(pool.submit_park_count(), 0, "uncontended submits must not park");
        let submitter = {
            let pool = Arc::clone(&pool);
            std::thread::spawn(move || pool.submit(2))
        };
        std::thread::sleep(std::time::Duration::from_millis(400));
        let parks = pool.submit_park_count();
        assert!(parks >= 1, "the third submit must park while the pool is wedged");
        assert!(parks <= 32, "submit is spinning, not parking: {parks} parks in 400ms");
        // Unwedge: the worker drains job 0 then job 1; freeing the slot
        // must wake the parked submitter so job 2 lands and completes.
        for _ in 0..3 {
            release.send(()).unwrap();
        }
        submitter.join().unwrap().unwrap();
        drop(release);
    }

    #[test]
    fn batched_workers_drain_queued_jobs_in_one_wakeup() {
        let batches: Arc<Mutex<Vec<usize>>> = Arc::default();
        let seen = Arc::clone(&batches);
        let (release, gate) = channel::<()>();
        let gate = Mutex::new(gate);
        let mut pool = WorkerPool::new_batched(1, 16, 8, move |batch: Vec<usize>| {
            seen.lock().unwrap().push(batch.len());
            let _ = gate.lock().unwrap().recv();
        });
        // First job wakes the worker (batch of 1, then blocks in the
        // handler); nine more queue up behind it and must drain as two
        // batches of 8 and 1.
        pool.submit(0).unwrap();
        while pool.queued() > 0 {
            std::thread::yield_now();
        }
        for n in 1..10 {
            pool.submit(n).unwrap();
        }
        for _ in 0..3 {
            release.send(()).unwrap();
        }
        pool.shutdown();
        let sizes = batches.lock().unwrap().clone();
        assert_eq!(sizes.iter().sum::<usize>(), 10, "every job handled: {sizes:?}");
        assert!(sizes.len() < 10, "queued jobs must coalesce into batches: {sizes:?}");
        assert!(sizes.iter().all(|s| *s <= 8), "batch limit respected: {sizes:?}");
    }

    #[test]
    fn queue_depth_gauge_tracks_waiting_jobs() {
        let (release, gate) = channel::<()>();
        let gate = Mutex::new(gate);
        let mut pool = WorkerPool::new(1, 8, move |_: usize| {
            let _ = gate.lock().unwrap().recv();
        });
        pool.submit(0).unwrap();
        // Wait until the worker picked the first job up.
        while pool.queued() > 0 {
            std::thread::yield_now();
        }
        for n in 1..=3 {
            pool.submit(n).unwrap();
        }
        assert_eq!(pool.queued(), 3, "three jobs waiting behind the blocked worker");
        for _ in 0..4 {
            release.send(()).unwrap();
        }
        pool.shutdown();
        assert_eq!(pool.queued(), 0);
    }
}
