//! A hand-rolled worker pool over `std::thread` and channels.
//!
//! The build environment is offline, so there is no tokio; the serving
//! pipeline instead uses a fixed pool of panic-isolated worker threads.
//! Dispatch is **per-worker**: every worker owns its own bounded
//! [`sync_channel`](std::sync::mpsc::sync_channel) and submissions are
//! spread round-robin across them, skipping workers whose queue is full.
//! The earlier design funnelled all workers through one shared
//! `Arc<Mutex<Receiver>>` — every dequeue serialized the whole pool on that
//! lock, so idle workers woke up just to contend for it. With per-worker
//! queues a dequeue is lock-free from the pool's point of view and workers
//! only ever touch their own channel.
//!
//! Workers drain in **batches**: after blocking for the first job, a worker
//! opportunistically takes up to `max_batch - 1` more already-queued jobs
//! and hands the whole batch to the handler in one call. Batch handlers
//! amortise per-wakeup costs — the feedback service loads each problem's
//! index snapshot once per batch and deduplicates structurally identical
//! submissions within it.
//!
//! Workers are panic-isolated: a batch whose handler panics is counted and
//! dropped, and the worker keeps serving subsequent jobs.

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::mpsc::{sync_channel, Receiver, SyncSender, TrySendError};
use std::sync::Arc;
use std::thread::JoinHandle;

/// Error returned when submitting to a pool that has shut down.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PoolClosed;

impl std::fmt::Display for PoolClosed {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "worker pool is shut down")
    }
}

impl std::error::Error for PoolClosed {}

/// A fixed-size pool of panic-isolated worker threads, each draining its
/// own bounded job queue in batches.
pub struct WorkerPool<J: Send + 'static> {
    /// One bounded sender per worker; `None` after shutdown.
    senders: Vec<SyncSender<J>>,
    /// Round-robin dispatch cursor.
    cursor: AtomicUsize,
    workers: Vec<JoinHandle<()>>,
    panics: Arc<AtomicU64>,
    /// Jobs submitted but not yet picked up by a worker (the queue-depth
    /// gauge exposed via `/stats`).
    queued: Arc<AtomicU64>,
}

impl<J: Send + 'static> WorkerPool<J> {
    /// Spawns `workers` threads handling one job per call with `handler`.
    /// At most `queue_capacity` jobs wait per worker; submissions prefer
    /// idle workers and block only when every queue is full (backpressure).
    pub fn new(workers: usize, queue_capacity: usize, handler: impl Fn(J) + Send + Sync + 'static) -> Self {
        // max_batch = 1 keeps the one-job-at-a-time contract (and its
        // per-job panic accounting) for callers that don't batch.
        Self::new_batched(workers, queue_capacity, 1, move |batch| {
            for job in batch {
                handler(job);
            }
        })
    }

    /// Spawns `workers` threads handling jobs in batches of up to
    /// `max_batch` with `handler`. A worker blocks for its first job, then
    /// drains whatever else is already queued (up to the batch limit) and
    /// hands the whole batch to one handler call.
    pub fn new_batched(
        workers: usize,
        queue_capacity: usize,
        max_batch: usize,
        handler: impl Fn(Vec<J>) + Send + Sync + 'static,
    ) -> Self {
        let workers = workers.max(1);
        let max_batch = max_batch.max(1);
        let handler = Arc::new(handler);
        let panics = Arc::new(AtomicU64::new(0));
        let queued = Arc::new(AtomicU64::new(0));
        let mut senders = Vec::with_capacity(workers);
        let handles = (0..workers)
            .map(|index| {
                let (sender, receiver) = sync_channel::<J>(queue_capacity.max(1));
                senders.push(sender);
                let handler = Arc::clone(&handler);
                let panics = Arc::clone(&panics);
                let queued = Arc::clone(&queued);
                std::thread::Builder::new()
                    .name(format!("clara-worker-{index}"))
                    .spawn(move || worker_loop(&receiver, max_batch, handler.as_ref(), &panics, &queued))
                    .expect("spawning a worker thread")
            })
            .collect();
        WorkerPool { senders, cursor: AtomicUsize::new(0), workers: handles, panics, queued }
    }

    /// One round-robin pass over every queue. `Ok(Err(job))` hands the job
    /// back when all queues are full.
    fn offer(&self, mut job: J) -> Result<Result<(), J>, PoolClosed> {
        if self.senders.is_empty() {
            return Err(PoolClosed);
        }
        let start = self.cursor.fetch_add(1, Ordering::Relaxed);
        for offset in 0..self.senders.len() {
            let sender = &self.senders[(start + offset) % self.senders.len()];
            match sender.try_send(job) {
                Ok(()) => {
                    self.queued.fetch_add(1, Ordering::Relaxed);
                    return Ok(Ok(()));
                }
                Err(TrySendError::Full(returned)) => job = returned,
                Err(TrySendError::Disconnected(_)) => return Err(PoolClosed),
            }
        }
        Ok(Err(job))
    }

    /// Submits a job: tries every worker queue round-robin starting at the
    /// dispatch cursor; while all are full, keeps retrying across *all*
    /// queues with a short backoff. Committing to one specific queue would
    /// wait on one specific worker — if that worker is stuck on a slow job
    /// the submitter deadlocks against it even though its siblings drain.
    ///
    /// # Errors
    ///
    /// Returns [`PoolClosed`] when the pool has shut down.
    pub fn submit(&self, job: J) -> Result<(), PoolClosed> {
        let mut job = job;
        loop {
            match self.offer(job)? {
                Ok(()) => return Ok(()),
                Err(returned) => {
                    job = returned;
                    std::thread::sleep(std::time::Duration::from_micros(200));
                }
            }
        }
    }

    /// Submits a job without blocking; `Ok(false)` signals that every
    /// worker queue is full (the caller can shed load instead of waiting —
    /// the job itself is dropped, so callers keep their own copy to retry).
    ///
    /// # Errors
    ///
    /// Returns [`PoolClosed`] when the pool has shut down.
    pub fn try_submit(&self, job: J) -> Result<bool, PoolClosed> {
        match self.offer(job)? {
            Ok(()) => Ok(true),
            Err(_dropped) => Ok(false),
        }
    }

    /// Number of jobs whose handler panicked (the jobs were dropped, the
    /// workers survived).
    pub fn panic_count(&self) -> u64 {
        self.panics.load(Ordering::Relaxed)
    }

    /// Jobs currently waiting in worker queues (submitted, not yet picked
    /// up). The queue-depth gauge of the `/stats` endpoint.
    pub fn queued(&self) -> u64 {
        self.queued.load(Ordering::Relaxed)
    }

    /// Number of worker threads.
    pub fn worker_count(&self) -> usize {
        self.workers.len()
    }

    /// Closes the queues, drains the remaining jobs and joins all workers.
    pub fn shutdown(&mut self) {
        self.senders.clear();
        for handle in self.workers.drain(..) {
            let _ = handle.join();
        }
    }
}

impl<J: Send + 'static> Drop for WorkerPool<J> {
    fn drop(&mut self) {
        self.shutdown();
    }
}

fn worker_loop<J>(
    receiver: &Receiver<J>,
    max_batch: usize,
    handler: &(impl Fn(Vec<J>) + ?Sized),
    panics: &AtomicU64,
    queued: &AtomicU64,
) {
    loop {
        // Block for the first job; queue closed and drained means exit.
        let Ok(first) = receiver.recv() else { return };
        let mut batch = Vec::with_capacity(max_batch.min(16));
        batch.push(first);
        // Opportunistic drain: whatever is already queued rides along in
        // this wakeup, up to the batch limit.
        while batch.len() < max_batch {
            match receiver.try_recv() {
                Ok(job) => batch.push(job),
                Err(_) => break,
            }
        }
        queued.fetch_sub(batch.len() as u64, Ordering::Relaxed);
        let lost = batch.len() as u64;
        if catch_unwind(AssertUnwindSafe(|| handler(batch))).is_err() {
            panics.fetch_add(lost, Ordering::Relaxed);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicUsize;
    use std::sync::mpsc::channel;
    use std::sync::Mutex;

    #[test]
    fn jobs_are_processed_by_multiple_workers() {
        let counter = Arc::new(AtomicUsize::new(0));
        let seen = Arc::clone(&counter);
        let mut pool = WorkerPool::new(4, 8, move |n: usize| {
            seen.fetch_add(n, Ordering::SeqCst);
        });
        for _ in 0..100 {
            pool.submit(1).unwrap();
        }
        pool.shutdown();
        assert_eq!(counter.load(Ordering::SeqCst), 100);
        assert_eq!(pool.panic_count(), 0);
        assert_eq!(pool.queued(), 0);
    }

    #[test]
    fn panicking_jobs_do_not_kill_the_pool() {
        let (reply, responses) = channel::<usize>();
        let mut pool = WorkerPool::new(2, 4, move |n: usize| {
            assert!(n != 13, "unlucky job");
            reply.send(n).unwrap();
        });
        for n in [1, 13, 2, 13, 3] {
            pool.submit(n).unwrap();
        }
        pool.shutdown();
        let mut survived: Vec<usize> = responses.iter().collect();
        survived.sort_unstable();
        assert_eq!(survived, vec![1, 2, 3]);
        assert_eq!(pool.panic_count(), 2);
    }

    #[test]
    fn try_submit_signals_when_every_queue_is_full() {
        let (release, gate) = channel::<()>();
        let gate = Mutex::new(gate);
        let mut pool = WorkerPool::new(1, 1, move |_: usize| {
            let _ = gate.lock().unwrap().recv();
        });
        // First job occupies the worker; the queue (capacity 1) then fills.
        pool.submit(0).unwrap();
        let mut accepted = 0;
        while pool.try_submit(1).unwrap() {
            accepted += 1;
            assert!(accepted < 100, "queue never filled");
        }
        for _ in 0..=accepted {
            release.send(()).unwrap();
        }
        pool.shutdown();
    }

    #[test]
    fn submitting_after_shutdown_errors() {
        let mut pool = WorkerPool::new(1, 1, |_: usize| {});
        pool.shutdown();
        assert_eq!(pool.submit(1), Err(PoolClosed));
        assert_eq!(pool.try_submit(1), Err(PoolClosed));
    }

    #[test]
    fn full_queues_route_to_idle_workers() {
        // Per-worker queues trade the old shared queue's work-conservation
        // for contention-free dispatch; head-of-line blocking behind a slow
        // worker is bounded by its queue capacity. With capacity 1, at most
        // one quick job can sit behind the blocked worker — the rest must
        // route to the idle worker and finish while job 0 is still stuck.
        let (release, gate) = channel::<()>();
        let gate = Mutex::new(Some(gate));
        let (reply, done) = channel::<usize>();
        let mut pool = WorkerPool::new(2, 1, move |n: usize| {
            if n == 0 {
                // Only the first job blocks (takes the gate receiver).
                if let Some(gate) = gate.lock().unwrap().take() {
                    let _ = gate.recv();
                }
            }
            reply.send(n).unwrap();
        });
        pool.submit(0).unwrap();
        for n in 1..=5 {
            pool.submit(n).unwrap();
        }
        // At least four of the five quick jobs complete while job 0 blocks.
        let quick: Vec<usize> = (0..4)
            .map(|_| {
                done.recv_timeout(std::time::Duration::from_secs(10))
                    .expect("quick jobs must not starve behind the blocked worker")
            })
            .collect();
        assert!(!quick.contains(&0), "job 0 is still blocked: {quick:?}");
        release.send(()).unwrap();
        // The blocked job and any stragglers behind it drain on release.
        let mut all = quick;
        while all.len() < 6 {
            all.push(done.recv_timeout(std::time::Duration::from_secs(10)).unwrap());
        }
        all.sort_unstable();
        assert_eq!(all, vec![0, 1, 2, 3, 4, 5]);
        pool.shutdown();
    }

    #[test]
    fn batched_workers_drain_queued_jobs_in_one_wakeup() {
        let batches: Arc<Mutex<Vec<usize>>> = Arc::default();
        let seen = Arc::clone(&batches);
        let (release, gate) = channel::<()>();
        let gate = Mutex::new(gate);
        let mut pool = WorkerPool::new_batched(1, 16, 8, move |batch: Vec<usize>| {
            seen.lock().unwrap().push(batch.len());
            let _ = gate.lock().unwrap().recv();
        });
        // First job wakes the worker (batch of 1, then blocks in the
        // handler); nine more queue up behind it and must drain as two
        // batches of 8 and 1.
        pool.submit(0).unwrap();
        while pool.queued() > 0 {
            std::thread::yield_now();
        }
        for n in 1..10 {
            pool.submit(n).unwrap();
        }
        for _ in 0..3 {
            release.send(()).unwrap();
        }
        pool.shutdown();
        let sizes = batches.lock().unwrap().clone();
        assert_eq!(sizes.iter().sum::<usize>(), 10, "every job handled: {sizes:?}");
        assert!(sizes.len() < 10, "queued jobs must coalesce into batches: {sizes:?}");
        assert!(sizes.iter().all(|s| *s <= 8), "batch limit respected: {sizes:?}");
    }

    #[test]
    fn queue_depth_gauge_tracks_waiting_jobs() {
        let (release, gate) = channel::<()>();
        let gate = Mutex::new(gate);
        let mut pool = WorkerPool::new(1, 8, move |_: usize| {
            let _ = gate.lock().unwrap().recv();
        });
        pool.submit(0).unwrap();
        // Wait until the worker picked the first job up.
        while pool.queued() > 0 {
            std::thread::yield_now();
        }
        for n in 1..=3 {
            pool.submit(n).unwrap();
        }
        assert_eq!(pool.queued(), 3, "three jobs waiting behind the blocked worker");
        for _ in 0..4 {
            release.send(()).unwrap();
        }
        pool.shutdown();
        assert_eq!(pool.queued(), 0);
    }
}
