//! # clara-server — the sharded, cache-fronted feedback service
//!
//! The paper's clustering amortises repair cost across thousands of MOOC
//! submissions; this crate turns the `clara-core` library into the
//! long-running service that realises the amortisation online:
//!
//! * [`store`] — the **persistent cluster index**: per-problem
//!   [`ClusterStore`]s built once from the correct pool, serialized to disk
//!   as JSON, warm-loaded at startup (re-analysing only the `K` cluster
//!   representatives instead of re-clustering all `N` solutions) and grown
//!   incrementally as newly verified correct submissions arrive;
//! * [`cache`] — an **LRU result cache** keyed by the formatting-insensitive
//!   structural program hash, answering duplicate submissions (the dominant
//!   case in MOOC traffic) in O(1);
//! * [`pool`] — a hand-rolled, panic-isolated **worker pool** over
//!   `std::thread` with a bounded job queue for backpressure (the build
//!   environment is offline: no tokio);
//! * [`service`] — the **sharded pipeline**: one independently locked shard
//!   per problem behind the shared cache;
//! * [`protocol`] / [`serve`] — the **front ends**: newline-delimited JSON
//!   over stdin/stdout and a minimal `TcpListener` HTTP endpoint
//!   (`POST /repair`, `GET /health`), both wired into `clara-cli` as the
//!   `serve` and `batch` subcommands.
//!
//! ```rust
//! use std::sync::Arc;
//! use clara_core::ClaraConfig;
//! use clara_corpus::mooc::derivatives;
//! use clara_server::{ClusterStore, FeedbackService, Request, ServiceConfig, Status};
//!
//! let problem = derivatives();
//! let seeds: Vec<&str> = problem.seeds.clone();
//! let (store, _) = ClusterStore::build(&problem, seeds, ClaraConfig::default());
//! let service = FeedbackService::new(vec![store], ServiceConfig::default());
//! let response = service.handle(&Request {
//!     id: 1,
//!     problem: "derivatives".into(),
//!     lang: None,
//!     source: "def computeDeriv(poly):\n    new = []\n    for i in xrange(1,len(poly)):\n        new.append(float(i*poly[i]))\n    if new==[]:\n        return 0.0\n    return new\n".into(),
//!     learn: None,
//!     trace: None,
//! });
//! assert_eq!(response.status, Status::Repaired);
//! assert!(!response.feedback.is_empty());
//! // The same submission again — reformatted — is a cache hit.
//! let dup = service.handle(&Request {
//!     id: 2,
//!     problem: "derivatives".into(),
//!     lang: None,
//!     source: "def computeDeriv(poly):\n\n    new = []\n    for i in xrange(1,len(poly)):\n        new.append(float(i*poly[i]))\n    if new==[]:\n        return 0.0\n    return new\n".into(),
//!     learn: None,
//!     trace: None,
//! });
//! assert!(dup.cache_hit);
//! assert_eq!(dup.feedback, response.feedback);
//! ```

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod cache;
pub mod fault;
pub mod net;
pub mod obs;
pub mod pool;
pub mod protocol;
pub mod retry;
pub mod router;
pub mod serve;
pub mod service;
pub mod shard;
pub mod store;

pub use cache::{LruCache, StripedCache};
pub use fault::{FaultAction, FaultInjector, FaultPlan, FaultPlanError};
pub use net::{Backend, EventLoop, EventLoopConfig, LoopHandle};
pub use obs::{
    mint_trace_id, render_prometheus, Counter, Gauge, Histogram, HistogramSnapshot, MetricsDump, Registry,
};
pub use pool::{PoolClosed, WorkerPool};
pub use protocol::{
    parse_incoming, parse_request, render_response, Incoming, Request, Response, StatsReport, Status,
};
pub use retry::{BreakerState, CircuitBreaker, RetryPolicy, SplitMix64};
pub use router::{Router, RouterConfig, RouterReport};
pub use serve::{default_workers, run_ndjson, serve_http, Server, ServerConfig};
pub use service::{FeedbackService, ServiceConfig, ServiceStats, ShardStat};
pub use shard::{HashRing, ShardSpec, ShardSpecError, REPLICATION_FACTOR};
pub use store::{ClusterStore, StoreError, STORE_FORMAT_VERSION};
