//! The sharded, cache-fronted feedback service.
//!
//! A [`FeedbackService`] owns one shard per problem — each shard an
//! independently locked [`ClusterStore`] — plus a shared LRU result cache
//! keyed by the structural program hash. Repairs take a shard read lock
//! (concurrent repairs on the same problem proceed in parallel); online
//! learning takes the write lock only when a verified-correct submission is
//! actually inserted. The cache sits in front of everything: duplicate
//! submissions — the dominant case in MOOC traffic — are answered in O(1)
//! without running analysis or repair.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Mutex, RwLock};
use std::time::Instant;

use clara_core::{frontend, ClaraConfig};
use clara_corpus::Problem;
use clara_model::frontend::Lang;
use serde::Serialize;

use crate::cache::LruCache;
use crate::protocol::{Request, Response, Status};
use crate::store::ClusterStore;

/// Service-wide configuration.
#[derive(Debug, Clone)]
pub struct ServiceConfig {
    /// Capacity of the structural-hash result cache (0 disables it).
    pub cache_capacity: usize,
    /// Whether `learn` requests may insert verified-correct submissions
    /// into the cluster index.
    pub learn: bool,
    /// Engine configuration used for analysis and repair.
    pub clara: ClaraConfig,
}

impl Default for ServiceConfig {
    fn default() -> Self {
        ServiceConfig { cache_capacity: 4096, learn: true, clara: ClaraConfig::default() }
    }
}

/// Monotonic service counters, exposed via `GET /health` and the benchmark
/// report.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize)]
pub struct ServiceStats {
    /// Requests handled (including malformed ones).
    pub requests: u64,
    /// Requests answered from the result cache.
    pub cache_hits: u64,
    /// Requests that ran the repair pipeline and produced a repair.
    pub repaired: u64,
    /// Requests whose submission was already correct.
    pub correct: u64,
    /// Analysable submissions for which no repair was found.
    pub no_repair: u64,
    /// Submissions rejected (syntax errors, unsupported features, unknown
    /// problems, malformed requests).
    pub errors: u64,
    /// Correct submissions inserted into the cluster index online.
    pub learned: u64,
}

#[derive(Default)]
struct Counters {
    requests: AtomicU64,
    cache_hits: AtomicU64,
    repaired: AtomicU64,
    correct: AtomicU64,
    no_repair: AtomicU64,
    errors: AtomicU64,
    learned: AtomicU64,
}

/// The cached portion of a response (everything except per-request fields).
#[derive(Debug, Clone)]
struct CachedOutcome {
    status: Status,
    feedback: Vec<String>,
    cost: Option<i64>,
    error: Option<String>,
}

/// One problem shard: the cluster store behind its own lock.
struct Shard {
    problem: Problem,
    store: RwLock<ClusterStore>,
}

/// The sharded, cache-fronted feedback service.
pub struct FeedbackService {
    shards: Vec<Shard>,
    by_problem: HashMap<String, usize>,
    cache: Mutex<LruCache<CachedOutcome>>,
    counters: Counters,
    config: ServiceConfig,
}

impl FeedbackService {
    /// Builds a service from per-problem cluster stores.
    pub fn new(stores: Vec<ClusterStore>, config: ServiceConfig) -> Self {
        let shards: Vec<Shard> = stores
            .into_iter()
            .map(|store| Shard { problem: store.problem().clone(), store: RwLock::new(store) })
            .collect();
        let by_problem = shards.iter().enumerate().map(|(i, s)| (s.problem.name.to_owned(), i)).collect();
        FeedbackService {
            shards,
            by_problem,
            cache: Mutex::new(LruCache::new(config.cache_capacity)),
            counters: Counters::default(),
            config,
        }
    }

    /// The problems this service can answer for.
    pub fn problems(&self) -> Vec<&Problem> {
        self.shards.iter().map(|s| &s.problem).collect()
    }

    /// Snapshot of the service counters.
    pub fn stats(&self) -> ServiceStats {
        ServiceStats {
            requests: self.counters.requests.load(Ordering::Relaxed),
            cache_hits: self.counters.cache_hits.load(Ordering::Relaxed),
            repaired: self.counters.repaired.load(Ordering::Relaxed),
            correct: self.counters.correct.load(Ordering::Relaxed),
            no_repair: self.counters.no_repair.load(Ordering::Relaxed),
            errors: self.counters.errors.load(Ordering::Relaxed),
            learned: self.counters.learned.load(Ordering::Relaxed),
        }
    }

    /// Persists every shard's cluster index under `dir`.
    ///
    /// # Errors
    ///
    /// Returns the first save failure.
    pub fn save_indexes(&self, dir: &std::path::Path) -> Result<(), crate::store::StoreError> {
        for shard in &self.shards {
            shard.store.read().expect("store lock poisoned").save(dir)?;
        }
        Ok(())
    }

    /// Handles one request synchronously (the worker-pool entry point).
    pub fn handle(&self, request: &Request) -> Response {
        let start = Instant::now();
        self.counters.requests.fetch_add(1, Ordering::Relaxed);
        let mut response = self.handle_inner(request);
        response.id = request.id;
        response.elapsed_us = start.elapsed().as_micros() as u64;
        match response.status {
            Status::Correct => &self.counters.correct,
            Status::Repaired => &self.counters.repaired,
            Status::NoRepair => &self.counters.no_repair,
            Status::Error => &self.counters.errors,
        }
        .fetch_add(1, Ordering::Relaxed);
        response
    }

    fn handle_inner(&self, request: &Request) -> Response {
        let Some(&shard_index) = self.by_problem.get(&request.problem) else {
            return Response::error(
                request.id,
                format!("unknown problem `{}` (see `clara-cli problems`)", request.problem),
            );
        };
        let shard = &self.shards[shard_index];
        let lang = shard.problem.lang;

        // The language tag is validation: each problem has exactly one
        // language, and a contradicting tag is a client error worth naming
        // (not a confusing downstream syntax error).
        if let Some(tag) = &request.lang {
            match Lang::from_tag(tag) {
                Some(requested) if requested == lang => {}
                Some(requested) => {
                    return Response::error(
                        request.id,
                        format!("problem `{}` expects {lang} submissions, not {requested}", request.problem),
                    );
                }
                None => {
                    return Response::error(request.id, format!("unknown language tag `{tag}`"));
                }
            }
        }

        // Unparseable submissions have no structural hash and bypass the
        // cache; parsing is also the cheapest stage, so this costs little.
        let parsed = match frontend(lang).parse(&request.source) {
            Ok(parsed) => parsed,
            Err(e) => return Response::error(request.id, format!("syntax error: {e}")),
        };
        let key = cache_key(shard_index, lang, parsed.structural_hash());

        if let Some(cached) = self.cache.lock().expect("cache lock poisoned").get(key).cloned() {
            self.counters.cache_hits.fetch_add(1, Ordering::Relaxed);
            // A cache hit answers the *feedback* question, but a learn
            // request must still reach the index — the first occurrence may
            // have been cached without the learn flag.
            let learned = cached.status == Status::Correct && self.learn_if_requested(request, shard);
            return Response {
                id: request.id,
                status: cached.status,
                feedback: cached.feedback,
                cost: cached.cost,
                cache_hit: true,
                learned,
                error: cached.error,
                elapsed_us: 0,
            };
        }

        let correct = parsed.passes(&shard.problem.spec);
        let mut learned = false;
        let outcome = if correct {
            // Online clustering (§2): verified-correct submissions grow the
            // index when the client asks for it and the service allows it.
            learned = self.learn_if_requested(request, shard);
            CachedOutcome { status: Status::Correct, feedback: Vec::new(), cost: None, error: None }
        } else {
            let result = {
                let store = shard.store.read().expect("store lock poisoned");
                store.engine().repair_source(&request.source)
            };
            match result {
                Ok(outcome) => {
                    let status =
                        if outcome.result.best.is_some() { Status::Repaired } else { Status::NoRepair };
                    CachedOutcome {
                        status,
                        feedback: outcome.feedback.lines(),
                        cost: outcome.result.best.as_ref().map(|r| r.total_cost),
                        error: None,
                    }
                }
                Err(err) => {
                    let label = if err.is_syntax_error() { "syntax error" } else { "unsupported" };
                    CachedOutcome {
                        status: Status::Error,
                        feedback: Vec::new(),
                        cost: None,
                        error: Some(format!("{label}: {err}")),
                    }
                }
            }
        };

        // Repair is deterministic given the index, so the outcome is safe to
        // cache. Feedback cached before an online insertion may reflect the
        // pre-insertion index — the same approximation a production service
        // makes (an insertion only ever *adds* candidate expressions).
        self.cache.lock().expect("cache lock poisoned").insert(key, outcome.clone());

        Response {
            id: request.id,
            status: outcome.status,
            feedback: outcome.feedback,
            cost: outcome.cost,
            cache_hit: false,
            learned,
            error: outcome.error,
            elapsed_us: 0,
        }
    }

    /// Inserts a verified-correct submission into the shard's cluster index
    /// when the request asks for it and learning is enabled. Returns whether
    /// an insertion happened.
    fn learn_if_requested(&self, request: &Request, shard: &Shard) -> bool {
        if !(self.config.learn && request.learn.unwrap_or(false)) {
            return false;
        }
        let mut store = shard.store.write().expect("store lock poisoned");
        if store.insert_correct(&request.source).is_ok() {
            self.counters.learned.fetch_add(1, Ordering::Relaxed);
            true
        } else {
            false
        }
    }

    /// Cache hit/miss counters of the result cache.
    pub fn cache_counters(&self) -> (u64, u64) {
        let cache = self.cache.lock().expect("cache lock poisoned");
        (cache.hits(), cache.misses())
    }
}

/// Combines the shard index, language and structural hash into one cache
/// key. The language participates so that a MiniPy and a MiniC submission
/// can never collide, whatever their per-frontend hashes do.
fn cache_key(shard_index: usize, lang: Lang, structural_hash: u64) -> u64 {
    // splitmix64-style mixing so that every input disturbs all bits.
    let salt = (shard_index as u64) ^ ((lang as u64 + 1) << 56);
    let mut x = structural_hash ^ salt.wrapping_mul(0x9E3779B97F4A7C15);
    x ^= x >> 30;
    x = x.wrapping_mul(0xBF58476D1CE4E5B9);
    x ^= x >> 27;
    x
}

#[cfg(test)]
mod tests {
    use super::*;
    use clara_corpus::mooc::derivatives;

    fn service() -> FeedbackService {
        let problem = derivatives();
        let seeds: Vec<&str> = problem.seeds.clone();
        let (store, _) = ClusterStore::build(&problem, seeds, ClaraConfig::default());
        FeedbackService::new(vec![store], ServiceConfig::default())
    }

    fn request(id: u64, source: &str) -> Request {
        Request { id, problem: "derivatives".to_owned(), lang: None, source: source.to_owned(), learn: None }
    }

    const INCORRECT: &str = "\
def computeDeriv(poly):
    new = []
    for i in xrange(1,len(poly)):
        new.append(float(i*poly[i]))
    if new==[]:
        return 0.0
    return new
";

    #[test]
    fn incorrect_attempts_get_repair_feedback() {
        let service = service();
        let response = service.handle(&request(1, INCORRECT));
        assert_eq!(response.status, Status::Repaired);
        assert!(!response.feedback.is_empty());
        assert!(response.cost.unwrap() > 0);
        assert!(!response.cache_hit);
    }

    #[test]
    fn duplicate_submissions_hit_the_cache_with_identical_feedback() {
        let service = service();
        let first = service.handle(&request(1, INCORRECT));
        // Same program, different formatting — structurally identical.
        let reformatted = INCORRECT.replace("    if new==[]:", "\n    if new==[]:");
        let second = service.handle(&request(2, &reformatted));
        assert!(second.cache_hit, "structural duplicate must hit the cache");
        assert_eq!(second.feedback, first.feedback);
        assert_eq!(second.cost, first.cost);
        assert_eq!(second.id, 2);
        let stats = service.stats();
        assert_eq!(stats.cache_hits, 1);
        assert_eq!(stats.requests, 2);
    }

    #[test]
    fn correct_submissions_are_recognised_and_learned() {
        let service = service();
        let problem = derivatives();
        let mut learn_request = request(1, problem.seeds[1]);
        learn_request.learn = Some(true);
        let response = service.handle(&learn_request);
        assert_eq!(response.status, Status::Correct);
        assert!(response.learned);
        assert_eq!(service.stats().learned, 1);
    }

    #[test]
    fn learn_requests_reach_the_index_even_on_cache_hits() {
        // Regression: the first occurrence is cached *without* the learn
        // flag; a later structurally identical request with learn:true must
        // still be inserted.
        let service = service();
        let problem = derivatives();
        let plain = service.handle(&request(1, problem.seeds[1]));
        assert_eq!(plain.status, Status::Correct);
        assert!(!plain.learned);
        let mut learn_request = request(2, problem.seeds[1]);
        learn_request.learn = Some(true);
        let hit = service.handle(&learn_request);
        assert!(hit.cache_hit);
        assert!(hit.learned, "learn must not be swallowed by the cache");
        assert_eq!(service.stats().learned, 1);
    }

    #[test]
    fn minic_shards_serve_c_submissions_with_c_feedback() {
        let problem = clara_corpus::minic::fibonacci_c();
        let seeds: Vec<&str> = problem.seeds.clone();
        let (store, usable) = ClusterStore::build(&problem, seeds, ClaraConfig::default());
        assert!(usable >= 2, "C seeds must cluster");
        let service = FeedbackService::new(vec![store], ServiceConfig::default());
        let buggy = clara_corpus::minic::fibonacci_c_incorrect()[0];
        let response = service.handle(&Request {
            id: 1,
            problem: "fibonacci_c".to_owned(),
            lang: Some("c".to_owned()),
            source: buggy.to_owned(),
            learn: None,
        });
        assert_eq!(response.status, Status::Repaired, "{:?}", response.error);
        let text = response.feedback.join("\n");
        assert!(text.contains("<="), "feedback should show the C condition repair: {text}");
        assert!(!text.contains(" and "), "C feedback must not use Python operators: {text}");
        // Correct submissions are recognised through model-execution grading.
        let correct = service.handle(&Request {
            id: 2,
            problem: "fibonacci_c".to_owned(),
            lang: None,
            source: problem.seeds[1].to_owned(),
            learn: None,
        });
        assert_eq!(correct.status, Status::Correct);
        // Structural duplicates (reformatted C) hit the cache.
        let dup = service.handle(&Request {
            id: 3,
            problem: "fibonacci_c".to_owned(),
            lang: None,
            source: buggy.replace("    int a = 1;", "    /* init */\n    int a = 1;"),
            learn: None,
        });
        assert!(dup.cache_hit, "reformatted C submission must hit the cache");
        assert_eq!(dup.feedback, response.feedback);
    }

    #[test]
    fn matching_language_tags_pass_validation() {
        let service = service();
        let mut request = request(1, "def computeDeriv(poly):\n    return poly\n");
        request.lang = Some("python".to_owned());
        let response = service.handle(&request);
        assert_ne!(response.status, Status::Error, "{:?}", response.error);
    }

    #[test]
    fn contradicting_or_unknown_language_tags_are_rejected() {
        let service = service();
        let mut request = request(1, "def computeDeriv(poly):\n    return poly\n");
        request.lang = Some("c".to_owned());
        let response = service.handle(&request);
        assert_eq!(response.status, Status::Error);
        assert!(response.error.unwrap().contains("expects minipy submissions"), "wrong-lang error");
        request.lang = Some("cobol".to_owned());
        let response = service.handle(&request);
        assert_eq!(response.status, Status::Error);
        assert!(response.error.unwrap().contains("unknown language tag"));
    }

    #[test]
    fn cache_keys_are_lang_salted_and_shard_salted() {
        // Two structurally identical programs in different languages must
        // never share a cache entry: the per-frontend structural hashes are
        // independent hash spaces, so even an accidental collision between a
        // MiniPy and a MiniC hash must be separated by the language salt.
        for hash in [0u64, 1, 0xDEADBEEF, u64::MAX] {
            assert_ne!(
                cache_key(0, Lang::MiniPy, hash),
                cache_key(0, Lang::MiniC, hash),
                "lang salt missing for hash {hash:#x}"
            );
            // Different shards (problems) never share entries either.
            assert_ne!(cache_key(0, Lang::MiniPy, hash), cache_key(1, Lang::MiniPy, hash));
        }
        // The key still depends on the hash itself.
        assert_ne!(cache_key(0, Lang::MiniPy, 1), cache_key(0, Lang::MiniPy, 2));
    }

    #[test]
    fn result_cache_eviction_is_observable_and_correct() {
        // A capacity-1 cache: the second distinct submission evicts the
        // first, so resubmitting the first misses (and recomputes the same
        // feedback); resubmitting the still-cached entry hits.
        let problem = derivatives();
        let seeds: Vec<&str> = problem.seeds.clone();
        let (store, _) = ClusterStore::build(&problem, seeds, ClaraConfig::default());
        let config = ServiceConfig { cache_capacity: 1, ..ServiceConfig::default() };
        let service = FeedbackService::new(vec![store], config);

        let other = "def computeDeriv(poly):\n    return poly\n";
        let first = service.handle(&request(1, INCORRECT));
        assert!(!first.cache_hit);
        let second = service.handle(&request(2, other));
        assert!(!second.cache_hit);
        // INCORRECT was evicted by `other`.
        let third = service.handle(&request(3, INCORRECT));
        assert!(!third.cache_hit, "evicted entry must not hit");
        assert_eq!(third.feedback, first.feedback, "recomputed feedback is identical");
        assert_eq!(third.cost, first.cost);
        // `other` was evicted in turn by the INCORRECT recomputation.
        let fourth = service.handle(&request(4, other));
        assert!(!fourth.cache_hit);
        // ... and INCORRECT again misses, but an immediate duplicate hits.
        let fifth = service.handle(&request(5, INCORRECT));
        assert!(!fifth.cache_hit);
        let sixth = service.handle(&request(6, INCORRECT));
        assert!(sixth.cache_hit);
        assert_eq!(service.stats().cache_hits, 1);
    }

    #[test]
    fn pathological_submissions_are_rejected_not_crashed() {
        let service = service();
        let garbage = service.handle(&request(1, "def broken(:\n    return ][\n"));
        assert_eq!(garbage.status, Status::Error);
        assert!(garbage.error.unwrap().contains("syntax error"));
        let unknown = service.handle(&Request {
            id: 2,
            problem: "nope".to_owned(),
            lang: None,
            source: "def f(x):\n    return x\n".to_owned(),
            learn: None,
        });
        assert_eq!(unknown.status, Status::Error);
        assert!(unknown.error.unwrap().contains("unknown problem"));
        let unsupported = service.handle(&request(
            3,
            "def helper(x):\n    return x\n\ndef computeDeriv(poly):\n    return helper(poly)\n",
        ));
        assert_eq!(unsupported.status, Status::Error);
        assert!(unsupported.error.unwrap().contains("unsupported"));
    }
}
