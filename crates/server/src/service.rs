//! The snapshot-fronted, sharded feedback service.
//!
//! A [`FeedbackService`] owns one shard per problem. Each shard publishes
//! its [`ClusterStore`] through a [`SnapshotCell`]: readers (`handle` /
//! `handle_batch`) grab an immutable `Arc` snapshot and run the whole
//! repair pipeline against it **without holding any lock** — a learn that
//! republishes the index never stalls an in-flight repair, and a repair
//! never delays a learn. Writers serialize on a small per-shard mutex,
//! clone-and-extend the store off-path ([`ClusterStore::with_learned`]) and
//! publish the successor with one atomic pointer swap.
//!
//! The result cache in front is a [`StripedCache`]: independently locked
//! LRU segments keyed by a splitmix-mixed combination of shard, language,
//! **snapshot generation** and structural program hash. Folding the
//! generation into the key makes cache invalidation free: publishing a new
//! index rotates that shard's keys, so stale feedback simply stops being
//! addressable and ages out of the LRU — no scan, no epoch bookkeeping.
//!
//! Batches amortise the remaining per-request costs: a worker draining `K`
//! queued requests resolves each shard's snapshot once and answers
//! structurally identical submissions within the batch from the first
//! computation.

use std::collections::hash_map::Entry;
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex, MutexGuard};
use std::time::Instant;

use clara_core::timing::{self, Stage, StageTimer};
use clara_core::{frontend, ClaraConfig, Snapshot, SnapshotCell};
use clara_corpus::Problem;
use clara_model::frontend::Lang;
use serde::{Deserialize, Serialize};

use crate::cache::StripedCache;
use crate::obs::{self, Registry};
use crate::protocol::{Request, Response, Status};
use crate::shard::ShardSpec;
use crate::store::ClusterStore;

/// Service-wide configuration.
#[derive(Debug, Clone)]
pub struct ServiceConfig {
    /// Approximate capacity of the structural-hash result cache (0 disables
    /// it; rounded up to a multiple of `cache_stripes`).
    pub cache_capacity: usize,
    /// Lock stripes of the result cache (rounded up to a power of two).
    pub cache_stripes: usize,
    /// Whether `learn` requests may insert verified-correct submissions
    /// into the cluster index.
    pub learn: bool,
    /// This process's position in the fleet; requests for problems owned by
    /// another shard are rejected with a routing error.
    pub shard: ShardSpec,
    /// Engine configuration used for analysis and repair.
    pub clara: ClaraConfig,
    /// Slow-request threshold in milliseconds: requests at or above it —
    /// and failed requests — dump their full span tree as a structured log
    /// line. `Some(0)` dumps every request; `None` disables dumps.
    pub slow_ms: Option<u64>,
}

impl Default for ServiceConfig {
    fn default() -> Self {
        ServiceConfig {
            cache_capacity: 4096,
            cache_stripes: 8,
            learn: true,
            shard: ShardSpec::solo(),
            clara: ClaraConfig::default(),
            slow_ms: None,
        }
    }
}

/// Monotonic service counters, exposed via `GET /health`, `GET /stats` and
/// the benchmark report.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct ServiceStats {
    /// Requests handled (including malformed ones).
    pub requests: u64,
    /// Requests answered from the result cache (including batch-local
    /// duplicates).
    pub cache_hits: u64,
    /// Duplicates answered within one worker batch without a cache probe.
    pub batch_dedup: u64,
    /// Concurrent duplicates that waited for an in-flight computation
    /// instead of recomputing it (single-flight coalescing).
    pub coalesced: u64,
    /// Requests that ran the repair pipeline and produced a repair.
    pub repaired: u64,
    /// Requests whose submission was already correct.
    pub correct: u64,
    /// Analysable submissions for which no repair was found.
    pub no_repair: u64,
    /// Submissions rejected (syntax errors, unsupported features, unknown
    /// problems, malformed requests).
    pub errors: u64,
    /// Correct submissions inserted into the cluster index online (each
    /// insertion publishes a new index snapshot).
    pub learned: u64,
    /// Repairs that consulted the candidate retrieval index (pre-search).
    pub index_retrievals: u64,
    /// Retrievals that fell back to the full candidate scan (low overlap
    /// confidence, or the shortlist produced no repair).
    pub index_fallbacks: u64,
}

/// Per-problem counters for the stats endpoints.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ShardStat {
    /// Problem name.
    pub problem: String,
    /// Language of the problem's submissions.
    pub lang: String,
    /// Requests routed to this problem shard.
    pub requests: u64,
    /// Snapshot generation of the problem's cluster index (bumps on every
    /// online insertion).
    pub generation: u64,
}

#[derive(Default)]
struct Counters {
    requests: AtomicU64,
    cache_hits: AtomicU64,
    batch_dedup: AtomicU64,
    coalesced: AtomicU64,
    repaired: AtomicU64,
    correct: AtomicU64,
    no_repair: AtomicU64,
    errors: AtomicU64,
    learned: AtomicU64,
    index_retrievals: AtomicU64,
    index_fallbacks: AtomicU64,
}

/// The cached portion of a response (everything except per-request fields).
#[derive(Debug, Clone)]
struct CachedOutcome {
    status: Status,
    feedback: Vec<String>,
    cost: Option<i64>,
    error: Option<String>,
}

/// State of one in-flight computation slot.
enum FlightState {
    /// The leader is still computing.
    Pending,
    /// The leader finished; followers take the outcome.
    Done(CachedOutcome),
    /// The leader died (panicked) without completing; followers re-join and
    /// one of them becomes the new leader.
    Abandoned,
}

struct FlightSlot {
    state: Mutex<FlightState>,
    ready: Condvar,
}

/// Single-flight registry: at most one computation per cache key is in
/// flight at a time. Concurrent structural duplicates of a *novel*
/// submission — the measured cause of serve throughput bimodality, each one
/// recomputing the same ~1 s repair — instead wait for the leader's result.
#[derive(Default)]
struct Flights {
    inflight: Mutex<HashMap<u64, Arc<FlightSlot>>>,
}

/// What [`Flights::join`] resolved to.
enum Flight<'a> {
    /// This caller computes; it MUST settle the guard (drop = abandoned).
    Leader(FlightGuard<'a>),
    /// Another caller computed; here is its outcome.
    Coalesced(CachedOutcome),
}

/// The leader's obligation to publish an outcome. Dropping without
/// [`FlightGuard::complete`] (e.g. a panic unwinding through the repair
/// pipeline) marks the slot abandoned so waiting followers recompute
/// instead of hanging.
struct FlightGuard<'a> {
    flights: &'a Flights,
    key: u64,
    slot: Arc<FlightSlot>,
    settled: bool,
}

impl Flights {
    fn lock_map(&self) -> MutexGuard<'_, HashMap<u64, Arc<FlightSlot>>> {
        self.inflight.lock().unwrap_or_else(|poisoned| poisoned.into_inner())
    }

    /// Joins the flight for `key`: the first caller becomes the leader,
    /// later callers block until the leader settles. An abandoned flight is
    /// re-joined until some leader completes.
    fn join(&self, key: u64) -> Flight<'_> {
        loop {
            let slot = {
                let mut map = self.lock_map();
                match map.entry(key) {
                    Entry::Vacant(entry) => {
                        let slot = Arc::new(FlightSlot {
                            state: Mutex::new(FlightState::Pending),
                            ready: Condvar::new(),
                        });
                        entry.insert(Arc::clone(&slot));
                        return Flight::Leader(FlightGuard { flights: self, key, slot, settled: false });
                    }
                    Entry::Occupied(entry) => Arc::clone(entry.get()),
                }
            };
            let mut state = slot.state.lock().unwrap_or_else(|poisoned| poisoned.into_inner());
            loop {
                match &*state {
                    FlightState::Pending => {
                        state = slot.ready.wait(state).unwrap_or_else(|poisoned| poisoned.into_inner());
                    }
                    FlightState::Done(outcome) => return Flight::Coalesced(outcome.clone()),
                    FlightState::Abandoned => break,
                }
            }
        }
    }
}

impl FlightGuard<'_> {
    /// Publishes the leader's outcome and releases every follower.
    fn complete(mut self, outcome: CachedOutcome) {
        self.settle(FlightState::Done(outcome));
    }

    fn settle(&mut self, state: FlightState) {
        self.settled = true;
        // Unregister first: a caller arriving after this point starts a
        // fresh flight (and will hit the result cache anyway).
        self.flights.lock_map().remove(&self.key);
        *self.slot.state.lock().unwrap_or_else(|poisoned| poisoned.into_inner()) = state;
        self.slot.ready.notify_all();
    }
}

impl Drop for FlightGuard<'_> {
    fn drop(&mut self) {
        if !self.settled {
            self.settle(FlightState::Abandoned);
        }
    }
}

/// One problem shard: the cluster store published through a snapshot cell.
/// Readers load the current snapshot lock-free; writers serialize on
/// `write`, build the successor store off-path and publish it.
struct ProblemShard {
    problem: Problem,
    cell: SnapshotCell<ClusterStore>,
    write: Mutex<()>,
    requests: AtomicU64,
}

/// The snapshot-fronted, sharded feedback service.
pub struct FeedbackService {
    shards: Vec<ProblemShard>,
    by_problem: HashMap<String, usize>,
    cache: StripedCache<CachedOutcome>,
    flights: Flights,
    counters: Counters,
    config: ServiceConfig,
}

impl FeedbackService {
    /// Builds a service from per-problem cluster stores.
    pub fn new(stores: Vec<ClusterStore>, config: ServiceConfig) -> Self {
        let shards: Vec<ProblemShard> = stores
            .into_iter()
            .map(|store| ProblemShard {
                problem: store.problem().clone(),
                cell: SnapshotCell::new(store),
                write: Mutex::new(()),
                requests: AtomicU64::new(0),
            })
            .collect();
        let by_problem = shards.iter().enumerate().map(|(i, s)| (s.problem.name.to_owned(), i)).collect();
        // Stage timers in the core pipeline feed the process-wide latency
        // histograms from here on.
        obs::install_stage_metrics();
        FeedbackService {
            shards,
            by_problem,
            cache: StripedCache::new(config.cache_capacity, config.cache_stripes),
            flights: Flights::default(),
            counters: Counters::default(),
            config,
        }
    }

    /// The problems this service can answer for.
    pub fn problems(&self) -> Vec<&Problem> {
        self.shards.iter().map(|s| &s.problem).collect()
    }

    /// This process's position in the fleet.
    pub fn shard_spec(&self) -> ShardSpec {
        self.config.shard
    }

    /// Snapshot of the service counters.
    pub fn stats(&self) -> ServiceStats {
        ServiceStats {
            requests: self.counters.requests.load(Ordering::Relaxed),
            cache_hits: self.counters.cache_hits.load(Ordering::Relaxed),
            batch_dedup: self.counters.batch_dedup.load(Ordering::Relaxed),
            coalesced: self.counters.coalesced.load(Ordering::Relaxed),
            repaired: self.counters.repaired.load(Ordering::Relaxed),
            correct: self.counters.correct.load(Ordering::Relaxed),
            no_repair: self.counters.no_repair.load(Ordering::Relaxed),
            errors: self.counters.errors.load(Ordering::Relaxed),
            learned: self.counters.learned.load(Ordering::Relaxed),
            index_retrievals: self.counters.index_retrievals.load(Ordering::Relaxed),
            index_fallbacks: self.counters.index_fallbacks.load(Ordering::Relaxed),
        }
    }

    /// Per-problem request counts and index generations.
    pub fn shard_stats(&self) -> Vec<ShardStat> {
        self.shards
            .iter()
            .map(|shard| ShardStat {
                problem: shard.problem.name.to_owned(),
                lang: shard.problem.lang.to_string(),
                requests: shard.requests.load(Ordering::Relaxed),
                generation: shard.cell.generation(),
            })
            .collect()
    }

    /// The highest index-snapshot generation across the problem shards
    /// (0 until the first online insertion).
    pub fn snapshot_generation(&self) -> u64 {
        self.shards.iter().map(|s| s.cell.generation()).max().unwrap_or(0)
    }

    /// Persists every shard's cluster index under `dir`.
    ///
    /// # Errors
    ///
    /// Returns the first save failure.
    pub fn save_indexes(&self, dir: &std::path::Path) -> Result<(), crate::store::StoreError> {
        for shard in &self.shards {
            shard.cell.load().data().save(dir)?;
        }
        Ok(())
    }

    /// Handles one request synchronously (a batch of one).
    pub fn handle(&self, request: &Request) -> Response {
        self.handle_batch(std::slice::from_ref(request)).pop().expect("one response per request")
    }

    /// Handles a batch of requests, answering each in order. A worker
    /// draining `K` queued requests calls this once: each shard's snapshot
    /// is resolved once for the whole batch, and structurally identical
    /// submissions within the batch are computed once (the duplicates are
    /// answered from the first result and marked as cache hits).
    pub fn handle_batch(&self, requests: &[Request]) -> Vec<Response> {
        // Snapshots resolved so far in this batch, by shard index. Loading
        // is cheap (two atomics) but not free; a batch of duplicates for a
        // hot problem resolves it once.
        let mut snapshots: HashMap<usize, Arc<Snapshot<ClusterStore>>> = HashMap::new();
        // Cache key -> index into `responses` of the first computation.
        let mut computed: HashMap<u64, usize> = HashMap::new();
        let mut responses: Vec<Response> = Vec::with_capacity(requests.len());

        for request in requests {
            let start = Instant::now();
            self.counters.requests.fetch_add(1, Ordering::Relaxed);
            // The trace id arrives with the request (router-forwarded or
            // client-chosen) or is minted here at ingress for direct traffic.
            let trace = obs::trace_or_mint(request.trace.as_deref());
            let (mut response, spans) =
                timing::collect(|| self.handle_one(request, &mut snapshots, &mut computed, &responses));
            response.id = request.id;
            response.elapsed_us = start.elapsed().as_micros() as u64;
            response.trace = Some(trace.clone());
            match response.status {
                Status::Correct => &self.counters.correct,
                Status::Repaired => &self.counters.repaired,
                Status::NoRepair => &self.counters.no_repair,
                Status::Error => &self.counters.errors,
            }
            .fetch_add(1, Ordering::Relaxed);
            self.observe(request, &response, &spans, &trace);
            responses.push(response);
        }
        responses
    }

    /// Records the request in the metrics registry and dumps its span tree
    /// when it was slow or failed (per `slow_ms`).
    fn observe(&self, request: &Request, response: &Response, spans: &[timing::Span], trace: &str) {
        let registry = Registry::global();
        registry
            .counter(
                "clara_requests_total",
                &[("problem", &request.problem), ("status", response.status.as_str())],
            )
            .inc();
        registry
            .histogram("clara_request_duration_us", &[("status", response.status.as_str())])
            .record(response.elapsed_us);
        let failed = response.status == Status::Error;
        let dump =
            self.config.slow_ms.is_some_and(|ms| failed || response.elapsed_us >= ms.saturating_mul(1_000));
        if dump {
            obs::log(if failed { "warn" } else { "info" }, "slow_request")
                .str_field("trace_id", trace)
                .str_field("problem", &request.problem)
                .str_field("status", response.status.as_str())
                .num_field("elapsed_us", response.elapsed_us)
                .raw_field("cache_hit", if response.cache_hit { "true" } else { "false" })
                .raw_field("spans", &obs::spans_json(spans))
                .emit();
        }
    }

    fn handle_one(
        &self,
        request: &Request,
        snapshots: &mut HashMap<usize, Arc<Snapshot<ClusterStore>>>,
        computed: &mut HashMap<u64, usize>,
        responses: &[Response],
    ) -> Response {
        let Some(&shard_index) = self.by_problem.get(&request.problem) else {
            let spec = self.config.shard;
            let detail = if spec.is_solo() {
                String::from("see `clara-cli problems`")
            } else {
                format!("not loaded on shard {spec}; check the fleet routing")
            };
            return Response::error(request.id, format!("unknown problem `{}` ({detail})", request.problem));
        };
        let shard = &self.shards[shard_index];
        shard.requests.fetch_add(1, Ordering::Relaxed);
        let lang = shard.problem.lang;

        // The language tag is validation: each problem has exactly one
        // language, and a contradicting tag is a client error worth naming
        // (not a confusing downstream syntax error).
        if let Some(tag) = &request.lang {
            match Lang::from_tag(tag) {
                Some(requested) if requested == lang => {}
                Some(requested) => {
                    return Response::error(
                        request.id,
                        format!("problem `{}` expects {lang} submissions, not {requested}", request.problem),
                    );
                }
                None => {
                    return Response::error(request.id, format!("unknown language tag `{tag}`"));
                }
            }
        }

        // Unparseable submissions have no structural hash and bypass the
        // cache; parsing is also the cheapest stage, so this costs little.
        let parsed = {
            let _timer = StageTimer::start(Stage::Parse);
            frontend(lang).parse(&request.source)
        };
        let parsed = match parsed {
            Ok(parsed) => parsed,
            Err(e) => return Response::error(request.id, format!("syntax error: {e}")),
        };

        // One snapshot resolution per shard per batch; everything below runs
        // against this immutable index without any lock.
        let snapshot = {
            let _timer = StageTimer::start(Stage::SnapshotResolve);
            Arc::clone(snapshots.entry(shard_index).or_insert_with(|| self.shards[shard_index].cell.load()))
        };
        let key = cache_key(shard_index, snapshot.generation(), lang, parsed.structural_hash());

        // Batch-local dedup: a structurally identical submission earlier in
        // this batch already computed the outcome — answer from it without
        // even probing the cache. Learn requests fall through (the index
        // insertion must still happen).
        if !request.learn.unwrap_or(false) {
            if let Some(&first) = computed.get(&key) {
                let first = &responses[first];
                self.counters.batch_dedup.fetch_add(1, Ordering::Relaxed);
                self.counters.cache_hits.fetch_add(1, Ordering::Relaxed);
                return Response {
                    id: request.id,
                    status: first.status,
                    feedback: first.feedback.clone(),
                    cost: first.cost,
                    cache_hit: true,
                    learned: false,
                    error: first.error.clone(),
                    elapsed_us: 0,
                    trace: None,
                };
            }
        }

        let probed = {
            let _timer = StageTimer::start(Stage::CacheProbe);
            self.cache.get(key)
        };
        if let Some(cached) = probed {
            self.counters.cache_hits.fetch_add(1, Ordering::Relaxed);
            // A cache hit answers the *feedback* question, but a learn
            // request must still reach the index — the first occurrence may
            // have been cached without the learn flag.
            let learned = cached.status == Status::Correct && self.learn_if_requested(request, shard);
            return Response {
                id: request.id,
                status: cached.status,
                feedback: cached.feedback,
                cost: cached.cost,
                cache_hit: true,
                learned,
                error: cached.error,
                elapsed_us: 0,
                trace: None,
            };
        }

        let compute = || {
            if parsed.passes(&shard.problem.spec) {
                CachedOutcome { status: Status::Correct, feedback: Vec::new(), cost: None, error: None }
            } else {
                // The repair runs against the immutable snapshot: no read
                // lock, so a concurrent learn (publishing a successor index)
                // never stalls this — the answer reflects the snapshot's
                // generation.
                match snapshot.data().engine().repair_source(&request.source) {
                    Ok(outcome) => {
                        self.record_retrieval(&outcome.result);
                        let status =
                            if outcome.result.best.is_some() { Status::Repaired } else { Status::NoRepair };
                        CachedOutcome {
                            status,
                            feedback: outcome.feedback.lines(),
                            cost: outcome.result.best.as_ref().map(|r| r.total_cost),
                            error: None,
                        }
                    }
                    Err(err) => {
                        let label = if err.is_syntax_error() { "syntax error" } else { "unsupported" };
                        CachedOutcome {
                            status: Status::Error,
                            feedback: Vec::new(),
                            cost: None,
                            error: Some(format!("{label}: {err}")),
                        }
                    }
                }
            }
        };

        // Single-flight: concurrent workers computing the same key share
        // one computation. The first joiner leads and computes; the rest
        // block on the slot (the ~1 s repair dominates the wait) and take
        // the leader's outcome instead of recomputing it.
        let (outcome, coalesced) = match self.flights.join(key) {
            Flight::Coalesced(outcome) => {
                self.counters.coalesced.fetch_add(1, Ordering::Relaxed);
                (outcome, true)
            }
            Flight::Leader(guard) => {
                let outcome = compute();
                guard.complete(outcome.clone());
                (outcome, false)
            }
        };

        // Online clustering (§2): verified-correct submissions grow the
        // index when the client asks for it and the service allows it. Runs
        // per request, never under the flight slot: a coalesced learn must
        // still insert, and the leader must not hold followers hostage to
        // the writer mutex.
        let learned = outcome.status == Status::Correct && self.learn_if_requested(request, shard);

        if !coalesced {
            // Repair is deterministic given the index snapshot, and the
            // generation is part of the key: feedback computed against
            // generation `g` is only ever served to requests that resolved
            // generation `g`. A learn that published `g+1` (possibly our
            // own, just above) leaves entries keyed at `g` unreachable —
            // they age out of the LRU instead of serving stale feedback.
            let insert_key = if learned {
                cache_key(shard_index, shard.cell.generation(), lang, parsed.structural_hash())
            } else {
                key
            };
            self.cache.insert(insert_key, outcome.clone());
            computed.insert(insert_key, responses.len());
        }

        Response {
            id: request.id,
            status: outcome.status,
            feedback: outcome.feedback,
            cost: outcome.cost,
            cache_hit: coalesced,
            learned,
            error: outcome.error,
            elapsed_us: 0,
            trace: None,
        }
    }

    /// Reports how the candidate pre-search behaved on one computed repair:
    /// service counters for `/stats`, plus a labelled counter and the
    /// examined-candidate-set-size histogram in the global registry (both
    /// fleet-mergeable, rendered by `GET /metrics`).
    fn record_retrieval(&self, result: &clara_core::RepairResult) {
        let Some(retrieval) = &result.retrieval else { return };
        self.counters.index_retrievals.fetch_add(1, Ordering::Relaxed);
        if retrieval.fell_back {
            self.counters.index_fallbacks.fetch_add(1, Ordering::Relaxed);
        }
        let outcome = if retrieval.fell_back {
            "fallback"
        } else if retrieval.shortlisted < retrieval.control_flow_candidates {
            "shortlisted"
        } else {
            "full_scan"
        };
        Registry::global().counter("clara_index_retrievals_total", &[("outcome", outcome)]).inc();
        Registry::global()
            .histogram("clara_index_candidates_examined", &[])
            .record(result.candidate_clusters as u64);
    }

    /// Inserts a verified-correct submission into the shard's cluster index
    /// when the request asks for it and learning is enabled. The insertion
    /// is copy-on-write: the successor store is built off-path under the
    /// shard's writer mutex and published with one pointer swap, so readers
    /// never block. Returns whether an insertion happened.
    fn learn_if_requested(&self, request: &Request, shard: &ProblemShard) -> bool {
        if !(self.config.learn && request.learn.unwrap_or(false)) {
            return false;
        }
        let _timer = StageTimer::start(Stage::Learn);
        // Writers serialize here; the snapshot cell itself only orders
        // publishes, not the read-modify-write around them. A poisoned lock
        // (a panicked writer) must not take the shard's learns down with it:
        // the store itself is copy-on-write, so the guard data is always
        // consistent.
        let _writer = shard.write.lock().unwrap_or_else(|poisoned| poisoned.into_inner());
        let current = shard.cell.load();
        match current.data().with_learned(&request.source) {
            Ok((next, _cluster)) => {
                shard.cell.publish(next);
                self.counters.learned.fetch_add(1, Ordering::Relaxed);
                true
            }
            Err(_) => false,
        }
    }

    /// Cache hit/miss counters of the result cache (misses exclude the
    /// batch-local duplicates answered without a probe).
    pub fn cache_counters(&self) -> (u64, u64) {
        self.cache.counters()
    }
}

/// Combines the shard index, index-snapshot generation, language and
/// structural hash into one cache key. The language participates so that a
/// MiniPy and a MiniC submission can never collide, whatever their
/// per-frontend hashes do; the generation participates so that publishing a
/// new index invalidates the shard's entries by construction.
fn cache_key(shard_index: usize, generation: u64, lang: Lang, structural_hash: u64) -> u64 {
    // splitmix64-style mixing so that every input disturbs all bits.
    let salt =
        (shard_index as u64) ^ ((lang as u64 + 1) << 56) ^ generation.wrapping_mul(0xD1B5_4A32_D192_ED03);
    let mut x = structural_hash ^ salt.wrapping_mul(0x9E37_79B9_7F4A_7C15);
    x ^= x >> 30;
    x = x.wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x ^= x >> 27;
    x
}

#[cfg(test)]
mod tests {
    use super::*;
    use clara_corpus::mooc::derivatives;

    fn service() -> FeedbackService {
        let problem = derivatives();
        let seeds: Vec<&str> = problem.seeds.clone();
        let (store, _) = ClusterStore::build(&problem, seeds, ClaraConfig::default());
        FeedbackService::new(vec![store], ServiceConfig::default())
    }

    fn request(id: u64, source: &str) -> Request {
        Request {
            id,
            problem: "derivatives".to_owned(),
            lang: None,
            source: source.to_owned(),
            learn: None,
            trace: None,
        }
    }

    const INCORRECT: &str = "\
def computeDeriv(poly):
    new = []
    for i in xrange(1,len(poly)):
        new.append(float(i*poly[i]))
    if new==[]:
        return 0.0
    return new
";

    #[test]
    fn incorrect_attempts_get_repair_feedback() {
        let service = service();
        let response = service.handle(&request(1, INCORRECT));
        assert_eq!(response.status, Status::Repaired);
        assert!(!response.feedback.is_empty());
        assert!(response.cost.unwrap() > 0);
        assert!(!response.cache_hit);
    }

    #[test]
    fn duplicate_submissions_hit_the_cache_with_identical_feedback() {
        let service = service();
        let first = service.handle(&request(1, INCORRECT));
        // Same program, different formatting — structurally identical.
        let reformatted = INCORRECT.replace("    if new==[]:", "\n    if new==[]:");
        let second = service.handle(&request(2, &reformatted));
        assert!(second.cache_hit, "structural duplicate must hit the cache");
        assert_eq!(second.feedback, first.feedback);
        assert_eq!(second.cost, first.cost);
        assert_eq!(second.id, 2);
        let stats = service.stats();
        assert_eq!(stats.cache_hits, 1);
        assert_eq!(stats.requests, 2);
    }

    #[test]
    fn correct_submissions_are_recognised_and_learned() {
        let service = service();
        let problem = derivatives();
        let mut learn_request = request(1, problem.seeds[1]);
        learn_request.learn = Some(true);
        let response = service.handle(&learn_request);
        assert_eq!(response.status, Status::Correct);
        assert!(response.learned);
        assert_eq!(service.stats().learned, 1);
        // The insertion published a new index snapshot.
        assert_eq!(service.snapshot_generation(), 1);
    }

    #[test]
    fn learn_requests_reach_the_index_even_on_cache_hits() {
        // Regression: the first occurrence is cached *without* the learn
        // flag; a later structurally identical request with learn:true must
        // still be inserted.
        let service = service();
        let problem = derivatives();
        let plain = service.handle(&request(1, problem.seeds[1]));
        assert_eq!(plain.status, Status::Correct);
        assert!(!plain.learned);
        let mut learn_request = request(2, problem.seeds[1]);
        learn_request.learn = Some(true);
        let hit = service.handle(&learn_request);
        assert!(hit.cache_hit);
        assert!(hit.learned, "learn must not be swallowed by the cache");
        assert_eq!(service.stats().learned, 1);
    }

    #[test]
    fn learning_publishes_a_new_snapshot_and_rotates_cache_keys() {
        // The generation participates in the cache key: after an online
        // insertion the shard's cached outcomes stop being addressable, so
        // later duplicates recompute against the new index instead of
        // serving feedback from the superseded one.
        let service = service();
        let problem = derivatives();
        let first = service.handle(&request(1, INCORRECT));
        assert!(!first.cache_hit);
        let hit = service.handle(&request(2, INCORRECT));
        assert!(hit.cache_hit, "pre-learn duplicate hits");

        let mut learn = request(3, problem.seeds[1]);
        learn.learn = Some(true);
        assert!(service.handle(&learn).learned);
        assert_eq!(service.snapshot_generation(), 1);

        let after = service.handle(&request(4, INCORRECT));
        assert!(!after.cache_hit, "the learn must invalidate the shard's cached outcomes");
        let again = service.handle(&request(5, INCORRECT));
        assert!(again.cache_hit, "the recomputed outcome is cached under the new generation");
    }

    #[test]
    fn batches_compute_structural_duplicates_once() {
        let service = service();
        let reformatted = INCORRECT.replace("    if new==[]:", "\n    if new==[]:");
        let other = "def computeDeriv(poly):\n    return poly\n";
        let batch =
            [request(1, INCORRECT), request(2, &reformatted), request(3, other), request(4, INCORRECT)];
        let responses = service.handle_batch(&batch);
        assert_eq!(responses.len(), 4);
        assert_eq!(responses.iter().map(|r| r.id).collect::<Vec<_>>(), vec![1, 2, 3, 4]);
        assert!(!responses[0].cache_hit);
        assert!(responses[1].cache_hit, "batch-local duplicate");
        assert!(!responses[2].cache_hit, "distinct program computes");
        assert!(responses[3].cache_hit);
        assert_eq!(responses[1].feedback, responses[0].feedback);
        assert_eq!(responses[3].feedback, responses[0].feedback);
        let stats = service.stats();
        assert_eq!(stats.requests, 4);
        assert_eq!(stats.cache_hits, 2);
        assert!(stats.batch_dedup >= 1, "at least one duplicate answered batch-locally");
    }

    #[test]
    fn concurrent_duplicates_of_a_novel_submission_coalesce() {
        // Four threads submit the same novel incorrect program at once. The
        // leader runs the ~1 s repair; the other three must share it via
        // single-flight (or, if they lose the race entirely, via the result
        // cache) — the repair pipeline runs exactly once.
        let service = Arc::new(service());
        let barrier = Arc::new(std::sync::Barrier::new(4));
        let handles: Vec<_> = (0..4u64)
            .map(|t| {
                let service = Arc::clone(&service);
                let barrier = Arc::clone(&barrier);
                std::thread::spawn(move || {
                    barrier.wait();
                    service.handle(&request(t, INCORRECT))
                })
            })
            .collect();
        let responses: Vec<Response> = handles.into_iter().map(|h| h.join().unwrap()).collect();
        for response in &responses {
            assert_eq!(response.status, Status::Repaired, "{:?}", response.error);
            assert_eq!(response.feedback, responses[0].feedback);
        }
        let stats = service.stats();
        assert_eq!(stats.coalesced + stats.cache_hits, 3, "exactly one computation for four requests");
        assert!(stats.coalesced >= 1, "concurrent duplicates must coalesce: {stats:?}");
        assert_eq!(responses.iter().filter(|r| !r.cache_hit).count(), 1);
    }

    #[test]
    fn abandoned_flights_release_their_followers() {
        // A leader that dies without completing (panic in the repair
        // pipeline) must not strand followers: they re-join and recompute.
        let flights = Arc::new(Flights::default());
        let Flight::Leader(guard) = flights.join(7) else {
            panic!("first joiner must lead");
        };
        let follower = std::thread::spawn({
            let flights = Arc::clone(&flights);
            move || match flights.join(7) {
                Flight::Leader(guard) => {
                    guard.complete(CachedOutcome {
                        status: Status::Correct,
                        feedback: Vec::new(),
                        cost: None,
                        error: None,
                    });
                    true
                }
                Flight::Coalesced(_) => false,
            }
        });
        std::thread::sleep(std::time::Duration::from_millis(50));
        drop(guard); // leader dies without completing
        assert!(follower.join().unwrap(), "follower must take over an abandoned flight");
        assert!(flights.lock_map().is_empty(), "settled flights unregister");
    }

    #[test]
    fn responses_echo_or_mint_trace_ids_and_report_elapsed() {
        let service = service();
        let mut traced = request(1, INCORRECT);
        traced.trace = Some("00c0ffee00c0ffee".to_owned());
        let response = service.handle(&traced);
        assert_eq!(response.trace.as_deref(), Some("00c0ffee00c0ffee"), "client trace ids are echoed");
        assert!(response.elapsed_us > 0, "a real repair takes measurable time");

        let minted = service.handle(&request(2, INCORRECT)).trace.expect("a trace id is always assigned");
        assert_eq!(minted.len(), 16);
        assert!(minted.chars().all(|c| c.is_ascii_hexdigit()), "minted ids are hex: {minted}");

        // Error responses carry a trace and a real elapsed time too.
        let error = service.handle(&request(3, "def broken(:\n"));
        assert_eq!(error.status, Status::Error);
        assert!(error.trace.is_some());
    }

    #[test]
    fn per_shard_request_counts_are_tracked() {
        let service = service();
        let _ = service.handle(&request(1, INCORRECT));
        let _ = service.handle(&request(2, INCORRECT));
        let shard_stats = service.shard_stats();
        assert_eq!(shard_stats.len(), 1);
        assert_eq!(shard_stats[0].problem, "derivatives");
        assert_eq!(shard_stats[0].requests, 2);
        assert_eq!(shard_stats[0].generation, 0);
    }

    #[test]
    fn minic_shards_serve_c_submissions_with_c_feedback() {
        let problem = clara_corpus::minic::fibonacci_c();
        let seeds: Vec<&str> = problem.seeds.clone();
        let (store, usable) = ClusterStore::build(&problem, seeds, ClaraConfig::default());
        assert!(usable >= 2, "C seeds must cluster");
        let service = FeedbackService::new(vec![store], ServiceConfig::default());
        let buggy = clara_corpus::minic::fibonacci_c_incorrect()[0];
        let response = service.handle(&Request {
            id: 1,
            problem: "fibonacci_c".to_owned(),
            lang: Some("c".to_owned()),
            source: buggy.to_owned(),
            learn: None,
            trace: None,
        });
        assert_eq!(response.status, Status::Repaired, "{:?}", response.error);
        let text = response.feedback.join("\n");
        assert!(text.contains("<="), "feedback should show the C condition repair: {text}");
        assert!(!text.contains(" and "), "C feedback must not use Python operators: {text}");
        // Correct submissions are recognised through model-execution grading.
        let correct = service.handle(&Request {
            id: 2,
            problem: "fibonacci_c".to_owned(),
            lang: None,
            source: problem.seeds[1].to_owned(),
            learn: None,
            trace: None,
        });
        assert_eq!(correct.status, Status::Correct);
        // Structural duplicates (reformatted C) hit the cache.
        let dup = service.handle(&Request {
            id: 3,
            problem: "fibonacci_c".to_owned(),
            lang: None,
            source: buggy.replace("    int a = 1;", "    /* init */\n    int a = 1;"),
            learn: None,
            trace: None,
        });
        assert!(dup.cache_hit, "reformatted C submission must hit the cache");
        assert_eq!(dup.feedback, response.feedback);
    }

    #[test]
    fn matching_language_tags_pass_validation() {
        let service = service();
        let mut request = request(1, "def computeDeriv(poly):\n    return poly\n");
        request.lang = Some("python".to_owned());
        let response = service.handle(&request);
        assert_ne!(response.status, Status::Error, "{:?}", response.error);
    }

    #[test]
    fn contradicting_or_unknown_language_tags_are_rejected() {
        let service = service();
        let mut request = request(1, "def computeDeriv(poly):\n    return poly\n");
        request.lang = Some("c".to_owned());
        let response = service.handle(&request);
        assert_eq!(response.status, Status::Error);
        assert!(response.error.unwrap().contains("expects minipy submissions"), "wrong-lang error");
        request.lang = Some("cobol".to_owned());
        let response = service.handle(&request);
        assert_eq!(response.status, Status::Error);
        assert!(response.error.unwrap().contains("unknown language tag"));
    }

    #[test]
    fn cache_keys_are_salted_by_shard_lang_and_generation() {
        // Two structurally identical programs in different languages must
        // never share a cache entry: the per-frontend structural hashes are
        // independent hash spaces, so even an accidental collision between a
        // MiniPy and a MiniC hash must be separated by the language salt.
        for hash in [0u64, 1, 0xDEADBEEF, u64::MAX] {
            assert_ne!(
                cache_key(0, 0, Lang::MiniPy, hash),
                cache_key(0, 0, Lang::MiniC, hash),
                "lang salt missing for hash {hash:#x}"
            );
            // Different shards (problems) never share entries either.
            assert_ne!(cache_key(0, 0, Lang::MiniPy, hash), cache_key(1, 0, Lang::MiniPy, hash));
            // Publishing a new index generation rotates the keys.
            assert_ne!(cache_key(0, 0, Lang::MiniPy, hash), cache_key(0, 1, Lang::MiniPy, hash));
        }
        // The key still depends on the hash itself.
        assert_ne!(cache_key(0, 0, Lang::MiniPy, 1), cache_key(0, 0, Lang::MiniPy, 2));
    }

    #[test]
    fn result_cache_eviction_is_observable_and_correct() {
        // A capacity-1, single-stripe cache: the second distinct submission
        // evicts the first, so resubmitting the first misses (and recomputes
        // the same feedback); resubmitting the still-cached entry hits.
        let problem = derivatives();
        let seeds: Vec<&str> = problem.seeds.clone();
        let (store, _) = ClusterStore::build(&problem, seeds, ClaraConfig::default());
        let config = ServiceConfig { cache_capacity: 1, cache_stripes: 1, ..ServiceConfig::default() };
        let service = FeedbackService::new(vec![store], config);

        let other = "def computeDeriv(poly):\n    return poly\n";
        let first = service.handle(&request(1, INCORRECT));
        assert!(!first.cache_hit);
        let second = service.handle(&request(2, other));
        assert!(!second.cache_hit);
        // INCORRECT was evicted by `other`.
        let third = service.handle(&request(3, INCORRECT));
        assert!(!third.cache_hit, "evicted entry must not hit");
        assert_eq!(third.feedback, first.feedback, "recomputed feedback is identical");
        assert_eq!(third.cost, first.cost);
        // `other` was evicted in turn by the INCORRECT recomputation.
        let fourth = service.handle(&request(4, other));
        assert!(!fourth.cache_hit);
        // ... and INCORRECT again misses, but an immediate duplicate hits.
        let fifth = service.handle(&request(5, INCORRECT));
        assert!(!fifth.cache_hit);
        let sixth = service.handle(&request(6, INCORRECT));
        assert!(sixth.cache_hit);
        assert_eq!(service.stats().cache_hits, 1);
    }

    #[test]
    fn sharded_services_name_the_shard_in_routing_errors() {
        let problem = derivatives();
        let seeds: Vec<&str> = problem.seeds.clone();
        let (store, _) = ClusterStore::build(&problem, seeds, ClaraConfig::default());
        let config = ServiceConfig { shard: ShardSpec { index: 1, count: 4 }, ..ServiceConfig::default() };
        let service = FeedbackService::new(vec![store], config);
        let response = service.handle(&Request {
            id: 1,
            problem: "not_here".to_owned(),
            lang: None,
            source: "def f(x):\n    return x\n".to_owned(),
            learn: None,
            trace: None,
        });
        assert_eq!(response.status, Status::Error);
        let message = response.error.unwrap();
        assert!(message.contains("shard 1/4"), "routing errors name the shard: {message}");
    }

    #[test]
    fn pathological_submissions_are_rejected_not_crashed() {
        let service = service();
        let garbage = service.handle(&request(1, "def broken(:\n    return ][\n"));
        assert_eq!(garbage.status, Status::Error);
        assert!(garbage.error.unwrap().contains("syntax error"));
        let unknown = service.handle(&Request {
            id: 2,
            problem: "nope".to_owned(),
            lang: None,
            source: "def f(x):\n    return x\n".to_owned(),
            learn: None,
            trace: None,
        });
        assert_eq!(unknown.status, Status::Error);
        assert!(unknown.error.unwrap().contains("unknown problem"));
        let unsupported = service.handle(&request(
            3,
            "def helper(x):\n    return x\n\ndef computeDeriv(poly):\n    return helper(poly)\n",
        ));
        assert_eq!(unsupported.status, Status::Error);
        assert!(unsupported.error.unwrap().contains("unsupported"));
    }

    #[test]
    fn concurrent_learns_and_repairs_do_not_block_each_other() {
        // Readers run repairs against immutable snapshots while a writer
        // thread publishes successive index generations; every response must
        // be well-formed and the final generation must count every learn.
        let problem = derivatives();
        let seeds: Vec<&str> = problem.seeds.clone();
        let (store, _) = ClusterStore::build(&problem, seeds[..2].iter().copied(), ClaraConfig::default());
        let service = Arc::new(FeedbackService::new(vec![store], ServiceConfig::default()));

        let writer = {
            let service = Arc::clone(&service);
            let sources: Vec<String> = seeds.iter().skip(2).take(3).map(|s| (*s).to_owned()).collect();
            std::thread::spawn(move || {
                for (i, source) in sources.iter().enumerate() {
                    let mut learn = Request {
                        id: 100 + i as u64,
                        problem: "derivatives".to_owned(),
                        lang: None,
                        source: source.clone(),
                        learn: Some(true),
                        trace: None,
                    };
                    learn.learn = Some(true);
                    let response = service.handle(&learn);
                    assert_ne!(response.status, Status::Error, "{:?}", response.error);
                }
            })
        };
        let readers: Vec<_> = (0..2)
            .map(|t| {
                let service = Arc::clone(&service);
                std::thread::spawn(move || {
                    for i in 0..4u64 {
                        let response = service.handle(&request(t * 10 + i, INCORRECT));
                        assert!(
                            matches!(response.status, Status::Repaired | Status::NoRepair),
                            "{:?}",
                            response.error
                        );
                    }
                })
            })
            .collect();
        writer.join().expect("writer panicked");
        for reader in readers {
            reader.join().expect("reader panicked");
        }
        let generation = service.snapshot_generation();
        assert_eq!(generation as usize, service.stats().learned as usize);
        assert!(generation >= 1, "at least one learn must land");
    }
}
