//! An LRU result cache keyed by the structural program hash.
//!
//! Duplicate submissions dominate MOOC traffic (students resubmit unchanged
//! code, and popular buggy attempts are copy-pasted), so the service fronts
//! the repair pipeline with a cache keyed on the formatting-insensitive
//! [`structural hash`](clara_lang::SourceProgram::structural_hash) of the
//! submission, combined with the problem it targets. A hit answers in O(1)
//! without touching the cluster index.
//!
//! The implementation is a classic hand-rolled LRU over `std` only: a
//! `HashMap` for lookup plus a lazily compacted access queue (each access
//! pushes a fresh `(key, stamp)` ticket; stale tickets are skipped during
//! eviction). Eviction is amortised O(1).
//!
//! For concurrent serving the cache is wrapped in a [`StripedCache`]: `N`
//! independently locked LRU segments selected by key bits, so workers
//! handling unrelated submissions never contend on one global cache mutex
//! (the pre-sharding design funnelled every request through a single
//! `Mutex<LruCache>`; under 8 workers that lock was the top contention
//! point after the store `RwLock`).

use std::collections::{HashMap, VecDeque};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

/// A bounded least-recently-used map from `u64` keys to `V`.
#[derive(Debug)]
pub struct LruCache<V> {
    capacity: usize,
    map: HashMap<u64, Entry<V>>,
    /// Access tickets, oldest first; only a ticket whose stamp matches the
    /// entry's current stamp is live, all others are stale and skipped.
    queue: VecDeque<(u64, u64)>,
    next_stamp: u64,
    hits: u64,
    misses: u64,
}

#[derive(Debug)]
struct Entry<V> {
    value: V,
    stamp: u64,
}

impl<V> LruCache<V> {
    /// Creates a cache holding at most `capacity` entries; a capacity of 0
    /// disables caching (every lookup misses).
    pub fn new(capacity: usize) -> Self {
        LruCache { capacity, map: HashMap::new(), queue: VecDeque::new(), next_stamp: 0, hits: 0, misses: 0 }
    }

    /// Number of live entries.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// `true` when no entries are cached.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// Lookups served from the cache so far.
    pub fn hits(&self) -> u64 {
        self.hits
    }

    /// Lookups that fell through to the pipeline so far.
    pub fn misses(&self) -> u64 {
        self.misses
    }

    /// Looks up `key`, marking it most-recently-used on a hit.
    pub fn get(&mut self, key: u64) -> Option<&V> {
        if self.capacity == 0 || !self.map.contains_key(&key) {
            self.misses += 1;
            return None;
        }
        self.hits += 1;
        let stamp = self.touch(key);
        let entry = self.map.get_mut(&key).expect("checked above");
        entry.stamp = stamp;
        Some(&entry.value)
    }

    /// Inserts (or refreshes) `key`, evicting the least-recently-used entry
    /// when the cache is full.
    pub fn insert(&mut self, key: u64, value: V) {
        if self.capacity == 0 {
            return;
        }
        let stamp = self.touch(key);
        self.map.insert(key, Entry { value, stamp });
        while self.map.len() > self.capacity {
            let Some((old_key, old_stamp)) = self.queue.pop_front() else { break };
            if self.map.get(&old_key).is_some_and(|e| e.stamp == old_stamp) {
                self.map.remove(&old_key);
            }
        }
    }

    /// Issues a fresh access ticket for `key` and compacts the queue when
    /// stale tickets outnumber live entries too far.
    fn touch(&mut self, key: u64) -> u64 {
        let stamp = self.next_stamp;
        self.next_stamp += 1;
        self.queue.push_back((key, stamp));
        if self.queue.len() > self.map.len().saturating_mul(4) + 16 {
            let map = &self.map;
            // The just-issued ticket is exempt: the caller records `stamp` in
            // the map only after `touch` returns, so the retain below would
            // otherwise drop it and leave the entry unevictable forever.
            self.queue.retain(|(k, s)| *s == stamp || map.get(k).is_some_and(|e| e.stamp == *s));
        }
        stamp
    }
}

/// A lock-striped result cache: `N` independent [`LruCache`] segments, each
/// behind its own mutex, selected by the key's low bits. The per-key
/// structural hashes are splitmix-style mixed upstream, so the low bits
/// distribute uniformly and each segment sees ~1/N of the traffic.
///
/// Values are cloned out on hit (they are `Arc`-light response outcomes),
/// so segment locks are held only for the map operation itself — never
/// while a repair runs.
#[derive(Debug)]
pub struct StripedCache<V> {
    segments: Vec<Mutex<LruCache<V>>>,
    /// Segment-selection mask (`segments.len() - 1`; length is a power of
    /// two).
    mask: u64,
    hits: AtomicU64,
    misses: AtomicU64,
}

impl<V: Clone> StripedCache<V> {
    /// Creates a cache of `capacity` total entries split over `stripes`
    /// segments. `stripes` is rounded up to a power of two; a capacity of 0
    /// disables caching entirely.
    pub fn new(capacity: usize, stripes: usize) -> Self {
        let stripes = stripes.max(1).next_power_of_two();
        let per_segment = capacity.div_ceil(stripes);
        let segments = (0..stripes)
            .map(|_| Mutex::new(LruCache::new(if capacity == 0 { 0 } else { per_segment })))
            .collect();
        StripedCache {
            segments,
            mask: (stripes - 1) as u64,
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
        }
    }

    fn segment(&self, key: u64) -> &Mutex<LruCache<V>> {
        &self.segments[(key & self.mask) as usize]
    }

    /// Looks up `key`, cloning the value out on a hit.
    pub fn get(&self, key: u64) -> Option<V> {
        let value = self.segment(key).lock().expect("cache segment poisoned").get(key).cloned();
        match value {
            Some(v) => {
                self.hits.fetch_add(1, Ordering::Relaxed);
                Some(v)
            }
            None => {
                self.misses.fetch_add(1, Ordering::Relaxed);
                None
            }
        }
    }

    /// Inserts (or refreshes) `key` in its segment.
    pub fn insert(&self, key: u64, value: V) {
        self.segment(key).lock().expect("cache segment poisoned").insert(key, value);
    }

    /// Total live entries across all segments.
    pub fn len(&self) -> usize {
        self.segments.iter().map(|s| s.lock().expect("cache segment poisoned").len()).sum()
    }

    /// `true` when every segment is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Number of segments (always a power of two).
    pub fn stripes(&self) -> usize {
        self.segments.len()
    }

    /// Cache-wide (hits, misses) counters.
    pub fn counters(&self) -> (u64, u64) {
        (self.hits.load(Ordering::Relaxed), self.misses.load(Ordering::Relaxed))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hits_and_misses_are_counted() {
        let mut cache = LruCache::new(4);
        assert!(cache.get(1).is_none());
        cache.insert(1, "one");
        assert_eq!(cache.get(1), Some(&"one"));
        assert_eq!(cache.hits(), 1);
        assert_eq!(cache.misses(), 1);
    }

    #[test]
    fn least_recently_used_entry_is_evicted() {
        let mut cache = LruCache::new(2);
        cache.insert(1, 1);
        cache.insert(2, 2);
        // Touch 1 so that 2 becomes the LRU entry.
        assert!(cache.get(1).is_some());
        cache.insert(3, 3);
        assert_eq!(cache.len(), 2);
        assert!(cache.get(2).is_none(), "2 was the LRU entry");
        assert!(cache.get(1).is_some());
        assert!(cache.get(3).is_some());
    }

    #[test]
    fn refreshing_a_key_does_not_grow_the_cache() {
        let mut cache = LruCache::new(2);
        for _ in 0..10 {
            cache.insert(7, ());
        }
        assert_eq!(cache.len(), 1);
    }

    #[test]
    fn zero_capacity_disables_caching() {
        let mut cache = LruCache::new(0);
        cache.insert(1, ());
        assert!(cache.is_empty());
        assert!(cache.get(1).is_none());
    }

    #[test]
    fn entry_last_touched_during_compaction_is_still_evictable() {
        // Regression: the compaction pass inside `touch` must not drop the
        // ticket it just issued — the entry's map stamp is written only after
        // `touch` returns, so dropping it would pin the entry forever.
        let mut cache = LruCache::new(4);
        for key in 0..4 {
            cache.insert(key, ());
        }
        // 4 insert tickets + 29 get tickets = 33 > 4*4+16: the compaction
        // fires exactly on the *final* access to key 0.
        for _ in 0..29 {
            let _ = cache.get(0);
        }
        // 8 newer inserts must push key 0 (now the LRU entry) out.
        for key in 10..18 {
            cache.insert(key, ());
        }
        assert_eq!(cache.len(), 4);
        assert!(cache.get(0).is_none(), "key 0 was pinned by a dropped ticket");
    }

    #[test]
    fn long_access_patterns_stay_bounded() {
        let mut cache = LruCache::new(8);
        for i in 0..10_000u64 {
            cache.insert(i % 16, i);
            let _ = cache.get(i % 5);
        }
        assert!(cache.len() <= 8);
        // The lazily compacted queue must not grow with the access count.
        assert!(cache.queue.len() <= 8 * 4 + 16, "queue grew to {}", cache.queue.len());
    }

    #[test]
    fn striped_cache_routes_keys_to_independent_segments() {
        let cache = StripedCache::new(64, 4);
        assert_eq!(cache.stripes(), 4);
        for key in 0..32u64 {
            cache.insert(key, key * 10);
        }
        assert_eq!(cache.len(), 32);
        for key in 0..32u64 {
            assert_eq!(cache.get(key), Some(key * 10));
        }
        assert_eq!(cache.get(999), None);
        assert_eq!(cache.counters(), (32, 1));
    }

    #[test]
    fn striped_capacity_is_split_across_segments() {
        // 8 entries over 4 stripes: each segment holds 2; keys that share a
        // segment (same low bits) evict each other, unrelated keys do not.
        let cache = StripedCache::new(8, 4);
        for round in 0..4u64 {
            cache.insert(round * 4, round); // all land in segment 0
        }
        assert!(cache.len() <= 8);
        assert_eq!(cache.get(0), None, "oldest same-segment key evicted");
        assert_eq!(cache.get(12), Some(3));
    }

    #[test]
    fn striped_zero_capacity_disables_caching() {
        let cache: StripedCache<()> = StripedCache::new(0, 8);
        cache.insert(7, ());
        assert!(cache.is_empty());
        assert_eq!(cache.get(7), None);
    }

    #[test]
    fn striped_stripe_counts_round_up_to_powers_of_two() {
        assert_eq!(StripedCache::<()>::new(16, 3).stripes(), 4);
        assert_eq!(StripedCache::<()>::new(16, 1).stripes(), 1);
        assert_eq!(StripedCache::<()>::new(16, 0).stripes(), 1);
    }

    #[test]
    fn striped_cache_is_coherent_under_concurrent_access() {
        use std::sync::Arc;
        let cache = Arc::new(StripedCache::new(1024, 8));
        let workers: Vec<_> = (0..4u64)
            .map(|t| {
                let cache = Arc::clone(&cache);
                std::thread::spawn(move || {
                    for i in 0..2_000u64 {
                        let key = (t * 2_000 + i) % 512;
                        cache.insert(key, key);
                        if let Some(v) = cache.get(key) {
                            assert_eq!(v, key, "value under wrong key");
                        }
                    }
                })
            })
            .collect();
        for w in workers {
            w.join().expect("cache worker panicked");
        }
        assert!(cache.len() <= 1024);
    }
}
