//! Front ends: the batched server wrapper, the stdin/stdout NDJSON loop and
//! the HTTP endpoint (served by the poll(2) event loop in [`crate::net`]).
//!
//! All front ends funnel requests through the same [`WorkerPool`] into the
//! shared [`FeedbackService`]; the bounded per-worker queues give the
//! service backpressure (a flooding client blocks or is shed instead of
//! ballooning memory). Workers drain requests in batches, so the service
//! amortises snapshot resolution and deduplicates identical submissions
//! arriving close together.

use std::io::{BufRead, BufWriter, Write};
use std::net::TcpListener;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::mpsc::{channel, Sender, TryRecvError};
use std::sync::Arc;

use crate::pool::{PoolClosed, WorkerPool};
use crate::protocol::{parse_incoming, render_response, Incoming, Request, Response, StatsReport};
use crate::service::FeedbackService;

/// Worker-pool sizing of a [`Server`].
#[derive(Debug, Clone, Copy)]
pub struct ServerConfig {
    /// Number of worker threads.
    pub workers: usize,
    /// Bounded job-queue capacity **per worker** (submission blocks or is
    /// shed when every queue is full).
    pub queue_capacity: usize,
    /// Most requests one worker drains per wakeup; the whole batch is
    /// answered with one service call (one snapshot resolution per shard,
    /// batch-local dedup of identical submissions).
    pub max_batch: usize,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig { workers: default_workers(), queue_capacity: 64, max_batch: 16 }
    }
}

/// The default worker count: the `CLARA_WORKERS` environment variable when
/// set (and a positive integer), otherwise the detected core count capped at
/// 8. The default is clamped to the cores actually present — on a 1-core
/// box one worker, not a hardcoded floor of two threads contending for the
/// same core. `serve --workers N` overrides both.
pub fn default_workers() -> usize {
    if let Some(n) =
        std::env::var("CLARA_WORKERS").ok().and_then(|v| v.parse::<usize>().ok()).filter(|n| *n > 0)
    {
        return n;
    }
    std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1).min(8)
}

type Job = (Request, Box<dyn FnOnce(Response) + Send>);

/// A [`FeedbackService`] behind a panic-isolated, batch-draining worker
/// pool.
pub struct Server {
    service: Arc<FeedbackService>,
    pool: WorkerPool<Job>,
    shed: AtomicU64,
}

impl Server {
    /// Spawns the worker pool over `service`.
    pub fn new(service: Arc<FeedbackService>, config: ServerConfig) -> Self {
        let handler_service = Arc::clone(&service);
        let pool = WorkerPool::new_batched(
            config.workers,
            config.queue_capacity,
            config.max_batch,
            move |jobs: Vec<Job>| {
                let (requests, replies): (Vec<Request>, Vec<_>) = jobs.into_iter().unzip();
                let responses = handler_service.handle_batch(&requests);
                for (reply, response) in replies.into_iter().zip(responses) {
                    reply(response);
                }
            },
        );
        Server { service, pool, shed: AtomicU64::new(0) }
    }

    /// The underlying service (for stats and persistence).
    pub fn service(&self) -> &Arc<FeedbackService> {
        &self.service
    }

    /// Enqueues a request; `on_response` runs on a worker thread when the
    /// request completes. Blocks while every worker queue is full.
    ///
    /// # Errors
    ///
    /// Returns [`PoolClosed`] after [`Server::shutdown`].
    pub fn submit(
        &self,
        request: Request,
        on_response: impl FnOnce(Response) + Send + 'static,
    ) -> Result<(), PoolClosed> {
        self.pool.submit((request, Box::new(on_response)))
    }

    /// Enqueues a request without blocking; `Ok(false)` signals that every
    /// worker queue is full (the caller sheds or retries — the event loop
    /// parks the request in its pending ring).
    ///
    /// # Errors
    ///
    /// Returns [`PoolClosed`] after [`Server::shutdown`].
    pub fn try_submit(
        &self,
        request: Request,
        on_response: impl FnOnce(Response) + Send + 'static,
    ) -> Result<bool, PoolClosed> {
        self.pool.try_submit((request, Box::new(on_response)))
    }

    /// Handles a request synchronously on the calling thread (bypasses the
    /// queue; used by tests and one-shot tooling).
    pub fn handle_sync(&self, request: &Request) -> Response {
        self.service.handle(request)
    }

    /// Number of jobs lost to handler panics (workers survive them).
    pub fn panic_count(&self) -> u64 {
        self.pool.panic_count()
    }

    /// Jobs currently waiting in the worker queues.
    pub fn queued(&self) -> u64 {
        self.pool.queued()
    }

    /// Records a request shed at the front door (pending ring overflow).
    /// Called by the event loop so overload shows up in `/stats`.
    pub fn note_shed(&self) {
        self.shed.fetch_add(1, Ordering::Relaxed);
    }

    /// Requests shed so far.
    pub fn shed_count(&self) -> u64 {
        self.shed.load(Ordering::Relaxed)
    }

    /// Builds the operational-stats report served by `GET /stats` and the
    /// NDJSON `{"stats":true}` control request.
    pub fn stats_report(&self, id: u64) -> StatsReport {
        let service = self.service.stats();
        let (hits, misses) = self.service.cache_counters();
        let probes = hits + misses;
        StatsReport {
            id,
            shard: self.service.shard_spec().to_string(),
            snapshot_generation: self.service.snapshot_generation(),
            queue_depth: self.pool.queued(),
            workers: self.pool.worker_count() as u64,
            cache_hits: hits,
            cache_misses: misses,
            cache_hit_rate: if probes == 0 { 0.0 } else { hits as f64 / probes as f64 },
            worker_panics: self.pool.panic_count(),
            shed_requests: self.shed.load(Ordering::Relaxed),
            service,
            problems: self.service.shard_stats(),
        }
    }

    /// Drains the queues and joins the workers.
    pub fn shutdown(&mut self) {
        self.pool.shutdown();
    }
}

/// Runs the NDJSON protocol: one request per `reader` line, one response
/// per `writer` line (possibly out of order; correlate by `id`). A
/// `{"id":…,"stats":true}` line is answered inline with a [`StatsReport`].
/// Returns after EOF once every in-flight request has been answered.
///
/// Responses are written by a dedicated writer thread through a
/// [`BufWriter`]: workers hand finished lines to a channel instead of
/// contending on a shared `Mutex<dyn Write>` and syscall-flushing per line;
/// the writer flushes when the channel runs momentarily dry, so bursts of
/// responses coalesce into few `write(2)` calls.
///
/// # Errors
///
/// Returns the first I/O error of the reader.
pub fn run_ndjson(
    server: &mut Server,
    reader: impl BufRead,
    writer: impl Write + Send + 'static,
) -> std::io::Result<()> {
    let (line_tx, line_rx) = channel::<String>();
    let writer_thread = std::thread::Builder::new()
        .name("clara-ndjson-writer".to_owned())
        .spawn(move || {
            let mut out = BufWriter::new(writer);
            // Block for the next response, then drain whatever else is
            // ready before flushing once.
            while let Ok(line) = line_rx.recv() {
                let _ = writeln!(out, "{line}");
                loop {
                    match line_rx.try_recv() {
                        Ok(line) => {
                            let _ = writeln!(out, "{line}");
                        }
                        Err(TryRecvError::Empty) => break,
                        Err(TryRecvError::Disconnected) => {
                            let _ = out.flush();
                            return;
                        }
                    }
                }
                let _ = out.flush();
            }
            let _ = out.flush();
        })
        .expect("spawning the writer thread");

    let send_line = |tx: &Sender<String>, line: String| {
        let _ = tx.send(line);
    };

    let mut result = Ok(());
    for line in reader.lines() {
        let line = match line {
            Ok(line) => line,
            Err(e) => {
                result = Err(e);
                break;
            }
        };
        if line.trim().is_empty() {
            continue;
        }
        match parse_incoming(&line) {
            Ok(Incoming::Stats { id }) => {
                let report = server.stats_report(id);
                send_line(&line_tx, serde_json::to_string(&report).expect("stats serialize"));
            }
            Ok(Incoming::Metrics { id }) => {
                let dump = crate::obs::Registry::global().dump(id);
                send_line(&line_tx, serde_json::to_string(&dump).expect("metrics serialize"));
            }
            Ok(Incoming::Feedback(request)) => {
                let tx = line_tx.clone();
                let submitted = server.submit(request, move |response| {
                    let _ = tx.send(render_response(&response));
                });
                if submitted.is_err() {
                    break;
                }
            }
            Err(message) => {
                send_line(
                    &line_tx,
                    render_response(&Response::error(0, format!("malformed request: {message}"))),
                );
            }
        }
    }
    // EOF: wait for in-flight requests so the client sees every response
    // before the stream closes.
    server.shutdown();
    drop(line_tx);
    let _ = writer_thread.join();
    result
}

/// Serves the HTTP API on `listener` through the nonblocking poll(2) event
/// loop until shutdown is requested:
///
/// * `POST /repair` with a request body → a response body (handled on the
///   worker pool, concurrently across connections),
/// * `GET /health` → service counters,
/// * `GET /stats` → the full [`StatsReport`].
///
/// # Errors
///
/// Returns the event-loop I/O error that terminated serving.
pub fn serve_http(server: Arc<Server>, listener: TcpListener) -> std::io::Result<()> {
    let backend = crate::net::Backend::local(server);
    crate::net::EventLoop::new(backend, crate::net::EventLoopConfig::default())?
        .with_http_listener(listener)?
        .run()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::service::ServiceConfig;
    use crate::store::ClusterStore;
    use clara_core::ClaraConfig;
    use clara_corpus::mooc::derivatives;
    use std::io::Read;
    use std::net::TcpStream;
    use std::sync::mpsc::{channel, Sender};
    use std::sync::Mutex;

    fn test_server(config: ServerConfig) -> Server {
        let problem = derivatives();
        let seeds: Vec<&str> = problem.seeds.clone();
        let (store, _) = ClusterStore::build(&problem, seeds, ClaraConfig::default());
        let service = Arc::new(FeedbackService::new(vec![store], ServiceConfig::default()));
        Server::new(service, config)
    }

    fn ndjson_request(id: u64, source: &str) -> String {
        render_request(&Request {
            id,
            problem: "derivatives".to_owned(),
            lang: None,
            source: source.to_owned(),
            learn: None,
            trace: None,
        })
    }

    fn render_request(request: &Request) -> String {
        serde_json::to_string(request).unwrap()
    }

    /// A `Write` handle appending into a shared buffer, for capturing the
    /// writer thread's output.
    struct SharedBuf(Arc<Mutex<Vec<u8>>>);
    impl Write for SharedBuf {
        fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
            self.0.lock().unwrap().extend_from_slice(buf);
            Ok(buf.len())
        }
        fn flush(&mut self) -> std::io::Result<()> {
            Ok(())
        }
    }

    #[test]
    fn ndjson_round_trip_over_in_memory_pipes() {
        let mut server = test_server(ServerConfig { workers: 2, queue_capacity: 4, max_batch: 4 });
        let input = [
            ndjson_request(1, "def computeDeriv(poly):\n    return poly\n"),
            "not json".to_owned(),
            ndjson_request(2, derivatives().seeds[0]),
            r#"{"id":77,"stats":true}"#.to_owned(),
        ]
        .join("\n");
        let output: Arc<Mutex<Vec<u8>>> = Arc::default();
        run_ndjson(&mut server, input.as_bytes(), SharedBuf(Arc::clone(&output))).unwrap();
        let text = String::from_utf8(output.lock().unwrap().clone()).unwrap();
        let mut responses = Vec::new();
        let mut stats = Vec::new();
        for line in text.lines() {
            if line.contains("\"snapshot_generation\"") {
                stats.push(serde_json::from_str::<StatsReport>(line).expect(line));
            } else {
                responses.push(serde_json::from_str::<Response>(line).expect(line));
            }
        }
        assert_eq!(responses.len(), 3);
        // The malformed line gets id 0; the real requests echo their ids.
        let mut ids: Vec<u64> = responses.iter().map(|r| r.id).collect();
        ids.sort_unstable();
        assert_eq!(ids, vec![0, 1, 2]);
        let by_id = |id: u64| responses.iter().find(|r| r.id == id).unwrap();
        assert_eq!(by_id(2).status, crate::protocol::Status::Correct);
        assert_eq!(by_id(0).status, crate::protocol::Status::Error);
        // The stats control line got a report with its id echoed.
        assert_eq!(stats.len(), 1);
        assert_eq!(stats[0].id, 77);
        assert_eq!(stats[0].workers, 2);
        assert_eq!(stats[0].problems.len(), 1);
    }

    #[test]
    fn submit_delivers_responses_through_the_pool() {
        let mut server = test_server(ServerConfig { workers: 2, queue_capacity: 8, max_batch: 4 });
        let (reply, responses) = channel::<Response>();
        for id in 0..6u64 {
            let reply: Sender<Response> = reply.clone();
            server
                .submit(
                    Request {
                        id,
                        problem: "derivatives".to_owned(),
                        lang: None,
                        source: derivatives().seeds[0].to_owned(),
                        learn: None,
                        trace: None,
                    },
                    move |response| {
                        let _ = reply.send(response);
                    },
                )
                .unwrap();
        }
        drop(reply);
        server.shutdown();
        let collected: Vec<Response> = responses.iter().collect();
        assert_eq!(collected.len(), 6);
        assert!(collected.iter().all(|r| r.status == crate::protocol::Status::Correct));
        // All but the first are structural duplicates → cache or batch hits.
        assert_eq!(collected.iter().filter(|r| r.cache_hit).count(), 5);
    }

    #[test]
    fn http_endpoint_answers_repair_health_and_stats() {
        let server = Arc::new(test_server(ServerConfig { workers: 1, queue_capacity: 4, max_batch: 4 }));
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let loop_server = Arc::clone(&server);
        std::thread::spawn(move || {
            let _ = serve_http(loop_server, listener);
        });

        let body = ndjson_request(9, "def computeDeriv(poly):\n    return poly\n");
        let mut stream = TcpStream::connect(addr).unwrap();
        write!(
            stream,
            "POST /repair HTTP/1.1\r\nHost: localhost\r\nContent-Length: {}\r\n\r\n{body}",
            body.len()
        )
        .unwrap();
        let mut reply = String::new();
        stream.read_to_string(&mut reply).unwrap();
        assert!(reply.starts_with("HTTP/1.1 200 OK"), "{reply}");
        let json = reply.split("\r\n\r\n").nth(1).unwrap();
        let response: Response = serde_json::from_str(json).unwrap();
        assert_eq!(response.id, 9);

        let mut stream = TcpStream::connect(addr).unwrap();
        write!(stream, "GET /health HTTP/1.1\r\nHost: localhost\r\n\r\n").unwrap();
        let mut reply = String::new();
        stream.read_to_string(&mut reply).unwrap();
        assert!(reply.starts_with("HTTP/1.1 200 OK"), "{reply}");
        assert!(reply.contains("\"requests\""), "{reply}");

        let mut stream = TcpStream::connect(addr).unwrap();
        write!(stream, "GET /stats HTTP/1.1\r\nHost: localhost\r\n\r\n").unwrap();
        let mut reply = String::new();
        stream.read_to_string(&mut reply).unwrap();
        assert!(reply.starts_with("HTTP/1.1 200 OK"), "{reply}");
        let json = reply.split("\r\n\r\n").nth(1).unwrap();
        let report: StatsReport = serde_json::from_str(json).unwrap();
        assert_eq!(report.shard, "0/1");
        assert_eq!(report.problems.len(), 1);
        assert!(report.service.requests >= 1, "the repair above is counted");

        let mut stream = TcpStream::connect(addr).unwrap();
        write!(stream, "GET /metrics HTTP/1.1\r\nHost: localhost\r\n\r\n").unwrap();
        let mut reply = String::new();
        stream.read_to_string(&mut reply).unwrap();
        assert!(reply.starts_with("HTTP/1.1 200 OK"), "{reply}");
        assert!(reply.contains("text/plain"), "Prometheus content type: {reply}");
        let body = reply.split("\r\n\r\n").nth(1).unwrap();
        assert!(body.contains("# TYPE clara_requests_total counter"), "{body}");
        assert!(body.contains("# TYPE clara_request_duration_us histogram"), "{body}");
        assert!(body.contains("clara_stage_duration_us_bucket{stage=\"parse\""), "{body}");

        let mut stream = TcpStream::connect(addr).unwrap();
        write!(stream, "GET /nope HTTP/1.1\r\nHost: localhost\r\n\r\n").unwrap();
        let mut reply = String::new();
        stream.read_to_string(&mut reply).unwrap();
        assert!(reply.starts_with("HTTP/1.1 404"), "{reply}");
    }

    #[test]
    fn http_connections_are_served_concurrently() {
        // The old front end accepted sequentially: a slow client blocked
        // everyone behind it. The event loop multiplexes: a connection that
        // has sent only half its request must not delay a complete one.
        let server = Arc::new(test_server(ServerConfig { workers: 1, queue_capacity: 4, max_batch: 4 }));
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let loop_server = Arc::clone(&server);
        std::thread::spawn(move || {
            let _ = serve_http(loop_server, listener);
        });

        // A slow connection: headers announced, body never sent.
        let mut slow = TcpStream::connect(addr).unwrap();
        write!(slow, "POST /repair HTTP/1.1\r\nHost: x\r\nContent-Length: 500\r\n\r\n").unwrap();

        // A complete request right behind it must be answered promptly.
        let mut fast = TcpStream::connect(addr).unwrap();
        fast.set_read_timeout(Some(std::time::Duration::from_secs(30))).unwrap();
        write!(fast, "GET /health HTTP/1.1\r\nHost: x\r\n\r\n").unwrap();
        let mut reply = String::new();
        fast.read_to_string(&mut reply).unwrap();
        assert!(reply.starts_with("HTTP/1.1 200 OK"), "slow client starved the loop: {reply}");
        drop(slow);
    }

    #[test]
    fn http_malformed_requests_get_clean_400s() {
        let server = Arc::new(test_server(ServerConfig { workers: 1, queue_capacity: 4, max_batch: 4 }));
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let loop_server = Arc::clone(&server);
        std::thread::spawn(move || {
            let _ = serve_http(loop_server, listener);
        });

        let roundtrip = |raw: &str| -> String {
            let mut stream = TcpStream::connect(addr).unwrap();
            stream.write_all(raw.as_bytes()).unwrap();
            // Half-close the write side so truncated bodies hit EOF instead
            // of the idle timeout.
            stream.shutdown(std::net::Shutdown::Write).unwrap();
            let mut reply = String::new();
            stream.read_to_string(&mut reply).unwrap();
            reply
        };
        let json_error = |reply: &str| -> Response {
            let json = reply.split("\r\n\r\n").nth(1).expect("a body");
            serde_json::from_str(json).expect("a JSON error body")
        };

        // Malformed JSON body.
        let reply = roundtrip("POST /repair HTTP/1.1\r\nContent-Length: 8\r\n\r\nnot json");
        assert!(reply.starts_with("HTTP/1.1 400"), "{reply}");
        assert!(json_error(&reply).error.unwrap().contains("malformed request"));

        // Truncated body: fewer bytes than announced.
        let reply = roundtrip("POST /repair HTTP/1.1\r\nContent-Length: 500\r\n\r\n{\"id\":1");
        assert!(reply.starts_with("HTTP/1.1 400"), "{reply}");
        assert!(json_error(&reply).error.unwrap().contains("truncated body"));

        // An absurd Content-Length that does not even parse as usize.
        let reply = roundtrip("POST /repair HTTP/1.1\r\nContent-Length: 99999999999999999999999\r\n\r\n{}");
        assert!(reply.starts_with("HTTP/1.1 400"), "{reply}");
        assert!(json_error(&reply).error.unwrap().contains("invalid Content-Length"));

        // A parseable but oversized Content-Length is bounded, not allocated.
        let reply = roundtrip("POST /repair HTTP/1.1\r\nContent-Length: 1073741824\r\n\r\n{}");
        assert!(reply.starts_with("HTTP/1.1 413"), "{reply}");

        // Missing Content-Length entirely.
        let reply = roundtrip("POST /repair HTTP/1.1\r\nHost: localhost\r\n\r\n{}");
        assert!(reply.starts_with("HTTP/1.1 400"), "{reply}");
        assert!(json_error(&reply).error.unwrap().contains("missing Content-Length"));
    }

    #[test]
    fn stats_report_tracks_queue_and_cache() {
        let server = test_server(ServerConfig { workers: 1, queue_capacity: 4, max_batch: 4 });
        let request = Request {
            id: 1,
            problem: "derivatives".to_owned(),
            lang: None,
            source: derivatives().seeds[0].to_owned(),
            learn: None,
            trace: None,
        };
        let _ = server.handle_sync(&request);
        let _ = server.handle_sync(&request);
        let report = server.stats_report(5);
        assert_eq!(report.id, 5);
        assert_eq!(report.service.requests, 2);
        assert_eq!(report.cache_hits, 1);
        assert!(report.cache_hit_rate > 0.0 && report.cache_hit_rate < 1.0);
        assert_eq!(report.queue_depth, 0);
        assert_eq!(report.problems[0].requests, 2);
    }

    #[test]
    fn default_worker_count_respects_the_machine() {
        let workers = ServerConfig::default().workers;
        let cores = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1);
        assert!(workers >= 1);
        // CLARA_WORKERS may raise it in exotic environments; without the
        // env var the default never exceeds min(cores, 8).
        if std::env::var("CLARA_WORKERS").is_err() {
            assert!(workers <= cores.min(8), "workers {workers} vs cores {cores}");
        }
    }
}
