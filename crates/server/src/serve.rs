//! Front ends: the pooled server wrapper, the stdin/stdout NDJSON loop and
//! a minimal HTTP endpoint over `std::net::TcpListener`.
//!
//! Both front ends funnel requests through the same [`WorkerPool`] into the
//! shared [`FeedbackService`]; the bounded job queue gives the service
//! backpressure (a flooding client blocks instead of ballooning memory).

use std::io::{BufRead, BufReader, Read, Write};
use std::net::{TcpListener, TcpStream};
use std::sync::{Arc, Mutex};

use crate::pool::{PoolClosed, WorkerPool};
use crate::protocol::{parse_request, render_response, Request, Response};
use crate::service::FeedbackService;

/// Worker-pool sizing of a [`Server`].
#[derive(Debug, Clone, Copy)]
pub struct ServerConfig {
    /// Number of worker threads.
    pub workers: usize,
    /// Bounded job-queue capacity (submission blocks when full).
    pub queue_capacity: usize,
}

impl Default for ServerConfig {
    fn default() -> Self {
        let workers = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(2);
        ServerConfig { workers: workers.clamp(2, 8), queue_capacity: 64 }
    }
}

type Job = (Request, Box<dyn FnOnce(Response) + Send>);

/// A [`FeedbackService`] behind a panic-isolated worker pool.
pub struct Server {
    service: Arc<FeedbackService>,
    pool: WorkerPool<Job>,
}

impl Server {
    /// Spawns the worker pool over `service`.
    pub fn new(service: Arc<FeedbackService>, config: ServerConfig) -> Self {
        let handler_service = Arc::clone(&service);
        let pool = WorkerPool::new(config.workers, config.queue_capacity, move |(request, reply): Job| {
            reply(handler_service.handle(&request));
        });
        Server { service, pool }
    }

    /// The underlying service (for stats and persistence).
    pub fn service(&self) -> &Arc<FeedbackService> {
        &self.service
    }

    /// Enqueues a request; `on_response` runs on a worker thread when the
    /// request completes. Blocks while the job queue is full.
    ///
    /// # Errors
    ///
    /// Returns [`PoolClosed`] after [`Server::shutdown`].
    pub fn submit(
        &self,
        request: Request,
        on_response: impl FnOnce(Response) + Send + 'static,
    ) -> Result<(), PoolClosed> {
        self.pool.submit((request, Box::new(on_response)))
    }

    /// Handles a request synchronously on the calling thread (bypasses the
    /// queue; used by the HTTP front end for its request/response shape).
    pub fn handle_sync(&self, request: &Request) -> Response {
        self.service.handle(request)
    }

    /// Number of jobs lost to handler panics (workers survive them).
    pub fn panic_count(&self) -> u64 {
        self.pool.panic_count()
    }

    /// Drains the queue and joins the workers.
    pub fn shutdown(&mut self) {
        self.pool.shutdown();
    }
}

/// Runs the NDJSON protocol: one request per `reader` line, one response
/// per `writer` line (possibly out of order; correlate by `id`). Returns
/// after EOF once every in-flight request has been answered.
///
/// # Errors
///
/// Returns the first I/O error of the reader.
pub fn run_ndjson(
    server: &mut Server,
    reader: impl BufRead,
    writer: Arc<Mutex<dyn Write + Send>>,
) -> std::io::Result<()> {
    for line in reader.lines() {
        let line = line?;
        if line.trim().is_empty() {
            continue;
        }
        match parse_request(&line) {
            Ok(request) => {
                let writer = Arc::clone(&writer);
                let submitted = server.submit(request, move |response| {
                    write_line(&writer, &response);
                });
                if submitted.is_err() {
                    break;
                }
            }
            Err(message) => {
                write_line(&writer, &Response::error(0, format!("malformed request: {message}")));
            }
        }
    }
    // EOF: wait for in-flight requests so the client sees every response
    // before the stream closes.
    server.shutdown();
    Ok(())
}

fn write_line(writer: &Mutex<dyn Write + Send>, response: &Response) {
    let mut guard = writer.lock().expect("writer lock poisoned");
    let _ = writeln!(guard, "{}", render_response(response));
    let _ = guard.flush();
}

/// Serves the minimal HTTP API on `listener` until accept fails:
///
/// * `POST /repair` with a request body → a response body,
/// * `GET /health` → service stats.
///
/// Connections are handled sequentially (the endpoint exists for
/// curl-ability and health checks; bulk traffic belongs on the NDJSON
/// protocol).
///
/// # Errors
///
/// Returns the accept-loop I/O error that terminated serving.
pub fn serve_http(service: &FeedbackService, listener: TcpListener) -> std::io::Result<()> {
    for stream in listener.incoming() {
        let stream = stream?;
        // A hung client must not wedge the accept loop.
        let _ = stream.set_read_timeout(Some(std::time::Duration::from_secs(10)));
        let _ = handle_http_connection(service, stream);
    }
    Ok(())
}

fn handle_http_connection(service: &FeedbackService, stream: TcpStream) -> std::io::Result<()> {
    let mut reader = BufReader::new(stream);
    let mut request_line = String::new();
    if reader.read_line(&mut request_line)? == 0 {
        return Ok(());
    }
    let mut parts = request_line.split_whitespace();
    let (method, path) = (parts.next().unwrap_or(""), parts.next().unwrap_or(""));

    let mut content_length = 0usize;
    loop {
        let mut header = String::new();
        if reader.read_line(&mut header)? == 0 || header.trim().is_empty() {
            break;
        }
        if let Some(value) = header.to_ascii_lowercase().strip_prefix("content-length:") {
            content_length = value.trim().parse().unwrap_or(0);
        }
    }

    const MAX_BODY: usize = 1 << 20;
    let (status, body) = match (method, path) {
        ("GET", "/health") => {
            let stats = service.stats();
            ("200 OK", serde_json::to_string(&stats).expect("stats serialize"))
        }
        ("POST", "/repair") if content_length > MAX_BODY => {
            ("413 Payload Too Large", render_response(&Response::error(0, "body too large")))
        }
        ("POST", "/repair") => {
            let mut body = vec![0u8; content_length];
            reader.read_exact(&mut body)?;
            match std::str::from_utf8(&body)
                .map_err(|e| e.to_string())
                .and_then(|s| parse_request(s).map_err(|e| e.to_string()))
            {
                Ok(request) => ("200 OK", render_response(&service.handle(&request))),
                Err(message) => (
                    "400 Bad Request",
                    render_response(&Response::error(0, format!("malformed request: {message}"))),
                ),
            }
        }
        _ => ("404 Not Found", render_response(&Response::error(0, format!("no route {method} {path}")))),
    };

    let mut stream = reader.into_inner();
    write!(
        stream,
        "HTTP/1.1 {status}\r\nContent-Type: application/json\r\nContent-Length: {}\r\nConnection: close\r\n\r\n{body}",
        body.len()
    )?;
    stream.flush()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::service::ServiceConfig;
    use crate::store::ClusterStore;
    use clara_core::ClaraConfig;
    use clara_corpus::mooc::derivatives;
    use std::sync::mpsc::{channel, Sender};

    fn test_server(config: ServerConfig) -> Server {
        let problem = derivatives();
        let seeds: Vec<&str> = problem.seeds.clone();
        let (store, _) = ClusterStore::build(&problem, seeds, ClaraConfig::default());
        let service = Arc::new(FeedbackService::new(vec![store], ServiceConfig::default()));
        Server::new(service, config)
    }

    fn ndjson_request(id: u64, source: &str) -> String {
        render_request(&Request {
            id,
            problem: "derivatives".to_owned(),
            source: source.to_owned(),
            learn: None,
        })
    }

    fn render_request(request: &Request) -> String {
        serde_json::to_string(request).unwrap()
    }

    #[test]
    fn ndjson_round_trip_over_in_memory_pipes() {
        let mut server = test_server(ServerConfig { workers: 2, queue_capacity: 4 });
        let input = [
            ndjson_request(1, "def computeDeriv(poly):\n    return poly\n"),
            "not json".to_owned(),
            ndjson_request(2, derivatives().seeds[0]),
        ]
        .join("\n");
        let output: Arc<Mutex<Vec<u8>>> = Arc::default();
        struct SharedBuf(Arc<Mutex<Vec<u8>>>);
        impl Write for SharedBuf {
            fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
                self.0.lock().unwrap().extend_from_slice(buf);
                Ok(buf.len())
            }
            fn flush(&mut self) -> std::io::Result<()> {
                Ok(())
            }
        }
        let sink: Arc<Mutex<dyn Write + Send>> = Arc::new(Mutex::new(SharedBuf(Arc::clone(&output))));
        run_ndjson(&mut server, input.as_bytes(), sink).unwrap();
        let text = String::from_utf8(output.lock().unwrap().clone()).unwrap();
        let responses: Vec<Response> =
            text.lines().map(|line| serde_json::from_str(line).expect(line)).collect();
        assert_eq!(responses.len(), 3);
        // The malformed line gets id 0; the real requests echo their ids.
        let mut ids: Vec<u64> = responses.iter().map(|r| r.id).collect();
        ids.sort_unstable();
        assert_eq!(ids, vec![0, 1, 2]);
        let by_id = |id: u64| responses.iter().find(|r| r.id == id).unwrap();
        assert_eq!(by_id(2).status, crate::protocol::Status::Correct);
        assert_eq!(by_id(0).status, crate::protocol::Status::Error);
    }

    #[test]
    fn submit_delivers_responses_through_the_pool() {
        let mut server = test_server(ServerConfig { workers: 2, queue_capacity: 8 });
        let (reply, responses) = channel::<Response>();
        for id in 0..6u64 {
            let reply: Sender<Response> = reply.clone();
            server
                .submit(
                    Request {
                        id,
                        problem: "derivatives".to_owned(),
                        source: derivatives().seeds[0].to_owned(),
                        learn: None,
                    },
                    move |response| {
                        let _ = reply.send(response);
                    },
                )
                .unwrap();
        }
        drop(reply);
        server.shutdown();
        let collected: Vec<Response> = responses.iter().collect();
        assert_eq!(collected.len(), 6);
        assert!(collected.iter().all(|r| r.status == crate::protocol::Status::Correct));
        // All but the first are structural duplicates → cache hits.
        assert_eq!(collected.iter().filter(|r| r.cache_hit).count(), 5);
    }

    #[test]
    fn http_endpoint_answers_repair_and_health() {
        let server = test_server(ServerConfig { workers: 1, queue_capacity: 4 });
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let service = Arc::clone(server.service());
        std::thread::spawn(move || {
            let _ = serve_http(&service, listener);
        });

        let body = ndjson_request(9, "def computeDeriv(poly):\n    return poly\n");
        let mut stream = TcpStream::connect(addr).unwrap();
        write!(
            stream,
            "POST /repair HTTP/1.1\r\nHost: localhost\r\nContent-Length: {}\r\n\r\n{body}",
            body.len()
        )
        .unwrap();
        let mut reply = String::new();
        stream.read_to_string(&mut reply).unwrap();
        assert!(reply.starts_with("HTTP/1.1 200 OK"), "{reply}");
        let json = reply.split("\r\n\r\n").nth(1).unwrap();
        let response: Response = serde_json::from_str(json).unwrap();
        assert_eq!(response.id, 9);

        let mut stream = TcpStream::connect(addr).unwrap();
        write!(stream, "GET /health HTTP/1.1\r\nHost: localhost\r\n\r\n").unwrap();
        let mut reply = String::new();
        stream.read_to_string(&mut reply).unwrap();
        assert!(reply.starts_with("HTTP/1.1 200 OK"), "{reply}");
        assert!(reply.contains("\"requests\""), "{reply}");

        let mut stream = TcpStream::connect(addr).unwrap();
        write!(stream, "GET /nope HTTP/1.1\r\nHost: localhost\r\n\r\n").unwrap();
        let mut reply = String::new();
        stream.read_to_string(&mut reply).unwrap();
        assert!(reply.starts_with("HTTP/1.1 404"), "{reply}");
    }
}
