//! Front ends: the pooled server wrapper, the stdin/stdout NDJSON loop and
//! a minimal HTTP endpoint over `std::net::TcpListener`.
//!
//! Both front ends funnel requests through the same [`WorkerPool`] into the
//! shared [`FeedbackService`]; the bounded job queue gives the service
//! backpressure (a flooding client blocks instead of ballooning memory).

use std::io::{BufRead, BufReader, Read, Write};
use std::net::{TcpListener, TcpStream};
use std::sync::{Arc, Mutex};

use crate::pool::{PoolClosed, WorkerPool};
use crate::protocol::{parse_request, render_response, Request, Response};
use crate::service::FeedbackService;

/// Worker-pool sizing of a [`Server`].
#[derive(Debug, Clone, Copy)]
pub struct ServerConfig {
    /// Number of worker threads.
    pub workers: usize,
    /// Bounded job-queue capacity (submission blocks when full).
    pub queue_capacity: usize,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig { workers: default_workers(), queue_capacity: 64 }
    }
}

/// The default worker count: the `CLARA_WORKERS` environment variable when
/// set (and a positive integer), otherwise the detected core count capped at
/// 8. The default is clamped to the cores actually present — on a 1-core
/// box one worker, not a hardcoded floor of two threads contending for the
/// same core. `serve --workers N` overrides both.
pub fn default_workers() -> usize {
    if let Some(n) =
        std::env::var("CLARA_WORKERS").ok().and_then(|v| v.parse::<usize>().ok()).filter(|n| *n > 0)
    {
        return n;
    }
    std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1).min(8)
}

type Job = (Request, Box<dyn FnOnce(Response) + Send>);

/// A [`FeedbackService`] behind a panic-isolated worker pool.
pub struct Server {
    service: Arc<FeedbackService>,
    pool: WorkerPool<Job>,
}

impl Server {
    /// Spawns the worker pool over `service`.
    pub fn new(service: Arc<FeedbackService>, config: ServerConfig) -> Self {
        let handler_service = Arc::clone(&service);
        let pool = WorkerPool::new(config.workers, config.queue_capacity, move |(request, reply): Job| {
            reply(handler_service.handle(&request));
        });
        Server { service, pool }
    }

    /// The underlying service (for stats and persistence).
    pub fn service(&self) -> &Arc<FeedbackService> {
        &self.service
    }

    /// Enqueues a request; `on_response` runs on a worker thread when the
    /// request completes. Blocks while the job queue is full.
    ///
    /// # Errors
    ///
    /// Returns [`PoolClosed`] after [`Server::shutdown`].
    pub fn submit(
        &self,
        request: Request,
        on_response: impl FnOnce(Response) + Send + 'static,
    ) -> Result<(), PoolClosed> {
        self.pool.submit((request, Box::new(on_response)))
    }

    /// Handles a request synchronously on the calling thread (bypasses the
    /// queue; used by the HTTP front end for its request/response shape).
    pub fn handle_sync(&self, request: &Request) -> Response {
        self.service.handle(request)
    }

    /// Number of jobs lost to handler panics (workers survive them).
    pub fn panic_count(&self) -> u64 {
        self.pool.panic_count()
    }

    /// Drains the queue and joins the workers.
    pub fn shutdown(&mut self) {
        self.pool.shutdown();
    }
}

/// Runs the NDJSON protocol: one request per `reader` line, one response
/// per `writer` line (possibly out of order; correlate by `id`). Returns
/// after EOF once every in-flight request has been answered.
///
/// # Errors
///
/// Returns the first I/O error of the reader.
pub fn run_ndjson(
    server: &mut Server,
    reader: impl BufRead,
    writer: Arc<Mutex<dyn Write + Send>>,
) -> std::io::Result<()> {
    for line in reader.lines() {
        let line = line?;
        if line.trim().is_empty() {
            continue;
        }
        match parse_request(&line) {
            Ok(request) => {
                let writer = Arc::clone(&writer);
                let submitted = server.submit(request, move |response| {
                    write_line(&writer, &response);
                });
                if submitted.is_err() {
                    break;
                }
            }
            Err(message) => {
                write_line(&writer, &Response::error(0, format!("malformed request: {message}")));
            }
        }
    }
    // EOF: wait for in-flight requests so the client sees every response
    // before the stream closes.
    server.shutdown();
    Ok(())
}

fn write_line(writer: &Mutex<dyn Write + Send>, response: &Response) {
    let mut guard = writer.lock().expect("writer lock poisoned");
    let _ = writeln!(guard, "{}", render_response(response));
    let _ = guard.flush();
}

/// Serves the minimal HTTP API on `listener` until accept fails:
///
/// * `POST /repair` with a request body → a response body,
/// * `GET /health` → service stats.
///
/// Connections are handled sequentially (the endpoint exists for
/// curl-ability and health checks; bulk traffic belongs on the NDJSON
/// protocol).
///
/// # Errors
///
/// Returns the accept-loop I/O error that terminated serving.
pub fn serve_http(service: &FeedbackService, listener: TcpListener) -> std::io::Result<()> {
    for stream in listener.incoming() {
        let stream = stream?;
        // A hung client must not wedge the accept loop.
        let _ = stream.set_read_timeout(Some(std::time::Duration::from_secs(10)));
        let _ = handle_http_connection(service, stream);
    }
    Ok(())
}

fn handle_http_connection(service: &FeedbackService, stream: TcpStream) -> std::io::Result<()> {
    let mut reader = BufReader::new(stream);
    let mut request_line = String::new();
    if reader.read_line(&mut request_line)? == 0 {
        return Ok(());
    }
    let mut parts = request_line.split_whitespace();
    let (method, path) = (parts.next().unwrap_or(""), parts.next().unwrap_or(""));

    // Header parsing is bounded and strict: an absurd or malformed
    // Content-Length is a client error answered with a clean 400 JSON body,
    // never a zero-length fallback or an unbounded allocation.
    const MAX_HEADERS: usize = 100;
    let mut content_length: Option<Result<usize, ()>> = None;
    for _ in 0..=MAX_HEADERS {
        let mut header = String::new();
        if reader.read_line(&mut header)? == 0 || header.trim().is_empty() {
            break;
        }
        if let Some(value) = header.to_ascii_lowercase().strip_prefix("content-length:") {
            content_length = Some(value.trim().parse::<usize>().map_err(|_| ()));
        }
    }

    const MAX_BODY: usize = 1 << 20;
    let bad_request = |message: String| ("400 Bad Request", render_response(&Response::error(0, message)));
    let (status, body) = match (method, path) {
        ("GET", "/health") => {
            let stats = service.stats();
            ("200 OK", serde_json::to_string(&stats).expect("stats serialize"))
        }
        ("POST", "/repair") => match content_length {
            None => bad_request("missing Content-Length header".to_owned()),
            Some(Err(())) => bad_request("invalid Content-Length header".to_owned()),
            Some(Ok(n)) if n > MAX_BODY => {
                ("413 Payload Too Large", render_response(&Response::error(0, "body too large")))
            }
            Some(Ok(n)) => {
                // Bounded read that tolerates short bodies: a client that
                // announces more bytes than it sends gets a 400, not a
                // hung connection torn down without a response.
                let mut body = Vec::with_capacity(n.min(MAX_BODY));
                let read = (&mut reader).take(n as u64).read_to_end(&mut body);
                match read {
                    Ok(got) if got == n => match std::str::from_utf8(&body)
                        .map_err(|e| e.to_string())
                        .and_then(|s| parse_request(s).map_err(|e| e.to_string()))
                    {
                        Ok(request) => ("200 OK", render_response(&service.handle(&request))),
                        Err(message) => bad_request(format!("malformed request: {message}")),
                    },
                    Ok(got) => bad_request(format!("truncated body: got {got} of {n} bytes")),
                    Err(_) => bad_request(format!("truncated body: fewer than {n} bytes arrived")),
                }
            }
        },
        _ => ("404 Not Found", render_response(&Response::error(0, format!("no route {method} {path}")))),
    };

    let mut stream = reader.into_inner();
    write!(
        stream,
        "HTTP/1.1 {status}\r\nContent-Type: application/json\r\nContent-Length: {}\r\nConnection: close\r\n\r\n{body}",
        body.len()
    )?;
    stream.flush()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::service::ServiceConfig;
    use crate::store::ClusterStore;
    use clara_core::ClaraConfig;
    use clara_corpus::mooc::derivatives;
    use std::sync::mpsc::{channel, Sender};

    fn test_server(config: ServerConfig) -> Server {
        let problem = derivatives();
        let seeds: Vec<&str> = problem.seeds.clone();
        let (store, _) = ClusterStore::build(&problem, seeds, ClaraConfig::default());
        let service = Arc::new(FeedbackService::new(vec![store], ServiceConfig::default()));
        Server::new(service, config)
    }

    fn ndjson_request(id: u64, source: &str) -> String {
        render_request(&Request {
            id,
            problem: "derivatives".to_owned(),
            lang: None,
            source: source.to_owned(),
            learn: None,
        })
    }

    fn render_request(request: &Request) -> String {
        serde_json::to_string(request).unwrap()
    }

    #[test]
    fn ndjson_round_trip_over_in_memory_pipes() {
        let mut server = test_server(ServerConfig { workers: 2, queue_capacity: 4 });
        let input = [
            ndjson_request(1, "def computeDeriv(poly):\n    return poly\n"),
            "not json".to_owned(),
            ndjson_request(2, derivatives().seeds[0]),
        ]
        .join("\n");
        let output: Arc<Mutex<Vec<u8>>> = Arc::default();
        struct SharedBuf(Arc<Mutex<Vec<u8>>>);
        impl Write for SharedBuf {
            fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
                self.0.lock().unwrap().extend_from_slice(buf);
                Ok(buf.len())
            }
            fn flush(&mut self) -> std::io::Result<()> {
                Ok(())
            }
        }
        let sink: Arc<Mutex<dyn Write + Send>> = Arc::new(Mutex::new(SharedBuf(Arc::clone(&output))));
        run_ndjson(&mut server, input.as_bytes(), sink).unwrap();
        let text = String::from_utf8(output.lock().unwrap().clone()).unwrap();
        let responses: Vec<Response> =
            text.lines().map(|line| serde_json::from_str(line).expect(line)).collect();
        assert_eq!(responses.len(), 3);
        // The malformed line gets id 0; the real requests echo their ids.
        let mut ids: Vec<u64> = responses.iter().map(|r| r.id).collect();
        ids.sort_unstable();
        assert_eq!(ids, vec![0, 1, 2]);
        let by_id = |id: u64| responses.iter().find(|r| r.id == id).unwrap();
        assert_eq!(by_id(2).status, crate::protocol::Status::Correct);
        assert_eq!(by_id(0).status, crate::protocol::Status::Error);
    }

    #[test]
    fn submit_delivers_responses_through_the_pool() {
        let mut server = test_server(ServerConfig { workers: 2, queue_capacity: 8 });
        let (reply, responses) = channel::<Response>();
        for id in 0..6u64 {
            let reply: Sender<Response> = reply.clone();
            server
                .submit(
                    Request {
                        id,
                        problem: "derivatives".to_owned(),
                        lang: None,
                        source: derivatives().seeds[0].to_owned(),
                        learn: None,
                    },
                    move |response| {
                        let _ = reply.send(response);
                    },
                )
                .unwrap();
        }
        drop(reply);
        server.shutdown();
        let collected: Vec<Response> = responses.iter().collect();
        assert_eq!(collected.len(), 6);
        assert!(collected.iter().all(|r| r.status == crate::protocol::Status::Correct));
        // All but the first are structural duplicates → cache hits.
        assert_eq!(collected.iter().filter(|r| r.cache_hit).count(), 5);
    }

    #[test]
    fn http_endpoint_answers_repair_and_health() {
        let server = test_server(ServerConfig { workers: 1, queue_capacity: 4 });
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let service = Arc::clone(server.service());
        std::thread::spawn(move || {
            let _ = serve_http(&service, listener);
        });

        let body = ndjson_request(9, "def computeDeriv(poly):\n    return poly\n");
        let mut stream = TcpStream::connect(addr).unwrap();
        write!(
            stream,
            "POST /repair HTTP/1.1\r\nHost: localhost\r\nContent-Length: {}\r\n\r\n{body}",
            body.len()
        )
        .unwrap();
        let mut reply = String::new();
        stream.read_to_string(&mut reply).unwrap();
        assert!(reply.starts_with("HTTP/1.1 200 OK"), "{reply}");
        let json = reply.split("\r\n\r\n").nth(1).unwrap();
        let response: Response = serde_json::from_str(json).unwrap();
        assert_eq!(response.id, 9);

        let mut stream = TcpStream::connect(addr).unwrap();
        write!(stream, "GET /health HTTP/1.1\r\nHost: localhost\r\n\r\n").unwrap();
        let mut reply = String::new();
        stream.read_to_string(&mut reply).unwrap();
        assert!(reply.starts_with("HTTP/1.1 200 OK"), "{reply}");
        assert!(reply.contains("\"requests\""), "{reply}");

        let mut stream = TcpStream::connect(addr).unwrap();
        write!(stream, "GET /nope HTTP/1.1\r\nHost: localhost\r\n\r\n").unwrap();
        let mut reply = String::new();
        stream.read_to_string(&mut reply).unwrap();
        assert!(reply.starts_with("HTTP/1.1 404"), "{reply}");
    }

    #[test]
    fn http_malformed_requests_get_clean_400s() {
        let server = test_server(ServerConfig { workers: 1, queue_capacity: 4 });
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let service = Arc::clone(server.service());
        std::thread::spawn(move || {
            let _ = serve_http(&service, listener);
        });

        let roundtrip = |raw: &str| -> String {
            let mut stream = TcpStream::connect(addr).unwrap();
            stream.write_all(raw.as_bytes()).unwrap();
            // Half-close the write side so truncated bodies hit EOF instead
            // of the 10s read timeout.
            stream.shutdown(std::net::Shutdown::Write).unwrap();
            let mut reply = String::new();
            stream.read_to_string(&mut reply).unwrap();
            reply
        };
        let json_error = |reply: &str| -> Response {
            let json = reply.split("\r\n\r\n").nth(1).expect("a body");
            serde_json::from_str(json).expect("a JSON error body")
        };

        // Malformed JSON body.
        let reply = roundtrip("POST /repair HTTP/1.1\r\nContent-Length: 8\r\n\r\nnot json");
        assert!(reply.starts_with("HTTP/1.1 400"), "{reply}");
        assert!(json_error(&reply).error.unwrap().contains("malformed request"));

        // Truncated body: fewer bytes than announced.
        let reply = roundtrip("POST /repair HTTP/1.1\r\nContent-Length: 500\r\n\r\n{\"id\":1");
        assert!(reply.starts_with("HTTP/1.1 400"), "{reply}");
        assert!(json_error(&reply).error.unwrap().contains("truncated body"));

        // An absurd Content-Length that does not even parse as usize.
        let reply = roundtrip("POST /repair HTTP/1.1\r\nContent-Length: 99999999999999999999999\r\n\r\n{}");
        assert!(reply.starts_with("HTTP/1.1 400"), "{reply}");
        assert!(json_error(&reply).error.unwrap().contains("invalid Content-Length"));

        // A parseable but oversized Content-Length is bounded, not allocated.
        let reply = roundtrip("POST /repair HTTP/1.1\r\nContent-Length: 1073741824\r\n\r\n{}");
        assert!(reply.starts_with("HTTP/1.1 413"), "{reply}");

        // Missing Content-Length entirely.
        let reply = roundtrip("POST /repair HTTP/1.1\r\nHost: localhost\r\n\r\n{}");
        assert!(reply.starts_with("HTTP/1.1 400"), "{reply}");
        assert!(json_error(&reply).error.unwrap().contains("missing Content-Length"));
    }

    #[test]
    fn default_worker_count_respects_the_machine() {
        let workers = ServerConfig::default().workers;
        let cores = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1);
        assert!(workers >= 1);
        // CLARA_WORKERS may raise it in exotic environments; without the
        // env var the default never exceeds min(cores, 8).
        if std::env::var("CLARA_WORKERS").is_err() {
            assert!(workers <= cores.min(8), "workers {workers} vs cores {cores}");
        }
    }
}
