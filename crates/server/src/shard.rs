//! Consistent-hash sharding of problem×language keys across serve processes.
//!
//! A fleet deployment runs `N` shard processes (`clara-cli serve --shard
//! i/N`), each holding only the cluster indexes it owns, plus optional thin
//! routers that forward requests to the owning shard. Ownership is decided
//! by a consistent-hash ring: every shard contributes
//! [`VIRTUAL_NODES`] points on a `u64` circle, and a key belongs to the
//! shard owning the first point at or clockwise of the key's hash.
//!
//! Consistent hashing (rather than `hash % N`) keeps assignment *stable*
//! under fleet resizes: growing from `N` to `N + 1` shards only moves the
//! keys claimed by the new shard's points — everything else stays put, so
//! existing shards keep their warm indexes and caches. The property is
//! pinned down by a proptest in this module.
//!
//! Hashing is FNV-1a over the raw key/point bytes: stable across processes
//! and platforms (unlike `DefaultHasher`, whose seeds are randomized per
//! process — router and shard must agree on every hash).

use std::fmt;
use std::str::FromStr;

/// Points each shard contributes to the ring. More points smooth the load
/// split (the std-dev of per-shard key share shrinks with `1/sqrt(points)`)
/// at the cost of a larger sorted table; 64 keeps the imbalance under a few
/// percent for small fleets.
pub const VIRTUAL_NODES: usize = 64;

/// Copies of each problem×language index the fleet keeps: the ring owner
/// plus its first distinct clockwise successor. The router replicates
/// `learn`s to all holders and fails reads over to the successor when the
/// owner is down.
pub const REPLICATION_FACTOR: usize = 2;

/// This process's position in a fleet: shard `index` of `count`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ShardSpec {
    /// Zero-based index of this shard.
    pub index: usize,
    /// Total shard processes in the fleet.
    pub count: usize,
}

impl ShardSpec {
    /// A single-process deployment (shard 0 of 1, owns everything).
    pub fn solo() -> Self {
        ShardSpec { index: 0, count: 1 }
    }

    /// `true` when this spec describes the whole fleet.
    pub fn is_solo(&self) -> bool {
        self.count == 1
    }

    /// `true` when this shard owns the given problem×language key.
    pub fn owns(&self, problem: &str, lang: &str) -> bool {
        self.count == 1 || HashRing::new(self.count).owner(problem, lang) == self.index
    }

    /// `true` when this shard holds a replica of the key: it is the ring
    /// owner or one of the `replicas - 1` distinct clockwise successors.
    /// Shards load every index they hold so failover reads can be served
    /// locally.
    pub fn holds(&self, problem: &str, lang: &str, replicas: usize) -> bool {
        self.count == 1 || HashRing::new(self.count).owners(problem, lang, replicas).contains(&self.index)
    }
}

impl fmt::Display for ShardSpec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}/{}", self.index, self.count)
    }
}

/// Error parsing a `--shard i/N` argument.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ShardSpecError(String);

impl fmt::Display for ShardSpecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invalid shard spec {:?}: expected i/N with 0 <= i < N", self.0)
    }
}

impl std::error::Error for ShardSpecError {}

impl FromStr for ShardSpec {
    type Err = ShardSpecError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let err = || ShardSpecError(s.to_string());
        let (index, count) = s.split_once('/').ok_or_else(err)?;
        let index: usize = index.trim().parse().map_err(|_| err())?;
        let count: usize = count.trim().parse().map_err(|_| err())?;
        if count == 0 || index >= count {
            return Err(err());
        }
        Ok(ShardSpec { index, count })
    }
}

/// A consistent-hash ring mapping problem×language keys to shard indexes.
#[derive(Debug, Clone)]
pub struct HashRing {
    shards: usize,
    /// `(point, shard)` sorted by point; ties broken toward the lower shard
    /// index so every process builds the identical table.
    points: Vec<(u64, usize)>,
}

impl HashRing {
    /// Builds the ring for a fleet of `shards` processes. Deterministic:
    /// every router and shard process derives the same ring from `N` alone.
    pub fn new(shards: usize) -> Self {
        let shards = shards.max(1);
        let mut points = Vec::with_capacity(shards * VIRTUAL_NODES);
        for shard in 0..shards {
            for replica in 0..VIRTUAL_NODES {
                points.push((point_hash(shard, replica), shard));
            }
        }
        points.sort_unstable();
        HashRing { shards, points }
    }

    /// Number of shards in the fleet.
    pub fn shards(&self) -> usize {
        self.shards
    }

    /// The shard owning `problem` in `lang`: the first ring point at or
    /// clockwise of the key hash (wrapping to the lowest point).
    pub fn owner(&self, problem: &str, lang: &str) -> usize {
        let key = key_hash(problem, lang);
        let at = self.points.partition_point(|(point, _)| *point < key);
        self.points[at % self.points.len()].1
    }

    /// The first `replicas` *distinct* shards at or clockwise of the key:
    /// the owner first, then each successor shard in ring order. Walking
    /// clockwise past every point visits all shards, so the result has
    /// `min(replicas, N)` entries. This is the fleet's replica placement:
    /// stable under resize for the same reason [`HashRing::owner`] is.
    pub fn owners(&self, problem: &str, lang: &str, replicas: usize) -> Vec<usize> {
        let key = key_hash(problem, lang);
        let start = self.points.partition_point(|(point, _)| *point < key);
        let mut owners = Vec::with_capacity(replicas.min(self.shards));
        for step in 0..self.points.len() {
            let shard = self.points[(start + step) % self.points.len()].1;
            if !owners.contains(&shard) {
                owners.push(shard);
                if owners.len() >= replicas.min(self.shards) {
                    break;
                }
            }
        }
        owners
    }
}

/// FNV-1a over the key bytes; a NUL separator keeps `("ab","c")` and
/// `("a","bc")` distinct.
fn key_hash(problem: &str, lang: &str) -> u64 {
    let mut hash = fnv(FNV_OFFSET, problem.as_bytes());
    hash = fnv(hash, &[0]);
    fnv(hash, lang.as_bytes())
}

fn point_hash(shard: usize, replica: usize) -> u64 {
    let mut hash = fnv(FNV_OFFSET, &(shard as u64).to_le_bytes());
    hash = fnv(hash, &(replica as u64).to_le_bytes());
    hash
}

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

fn fnv(mut hash: u64, bytes: &[u8]) -> u64 {
    for byte in bytes {
        hash ^= u64::from(*byte);
        hash = hash.wrapping_mul(FNV_PRIME);
    }
    hash
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn shard_specs_parse_and_validate() {
        assert_eq!("0/1".parse::<ShardSpec>().unwrap(), ShardSpec::solo());
        assert_eq!("2/4".parse::<ShardSpec>().unwrap(), ShardSpec { index: 2, count: 4 });
        for bad in ["", "1", "4/4", "5/4", "-1/4", "a/b", "1/0", "1/"] {
            assert!(bad.parse::<ShardSpec>().is_err(), "{bad:?} should not parse");
        }
    }

    #[test]
    fn every_process_derives_the_same_ring() {
        let a = HashRing::new(4);
        let b = HashRing::new(4);
        for (problem, lang) in [("max3", "minipy"), ("max3", "minic"), ("sumto", "minipy")] {
            assert_eq!(a.owner(problem, lang), b.owner(problem, lang));
        }
    }

    #[test]
    fn languages_of_one_problem_may_live_on_different_shards() {
        // The key is problem×lang, not problem alone: a sharded fleet splits
        // a problem's MiniPy and MiniC indexes independently.
        let ring = HashRing::new(8);
        let mut split = false;
        for problem in ["max3", "sumto", "absdiff", "clamp", "median5"] {
            if ring.owner(problem, "minipy") != ring.owner(problem, "minic") {
                split = true;
            }
        }
        assert!(split, "with 8 shards some problem should split across languages");
    }

    #[test]
    fn load_split_is_roughly_balanced() {
        let ring = HashRing::new(4);
        let mut counts = [0usize; 4];
        for i in 0..4_000 {
            counts[ring.owner(&format!("problem-{i}"), "minipy")] += 1;
        }
        for (shard, count) in counts.iter().enumerate() {
            assert!((500..=1_600).contains(count), "shard {shard} owns {count} of 4000 keys: {counts:?}");
        }
    }

    #[test]
    fn solo_spec_owns_everything() {
        let spec = ShardSpec::solo();
        assert!(spec.owns("anything", "minipy"));
        assert!(spec.is_solo());
    }

    #[test]
    fn replica_owners_are_distinct_and_led_by_the_owner() {
        let ring = HashRing::new(4);
        for problem in ["max3", "sumto", "absdiff", "clamp"] {
            for lang in ["minipy", "minic"] {
                let owners = ring.owners(problem, lang, REPLICATION_FACTOR);
                assert_eq!(owners.len(), 2);
                assert_eq!(owners[0], ring.owner(problem, lang));
                assert_ne!(owners[0], owners[1], "{problem}/{lang} replicas must differ");
            }
        }
        // Asking for more replicas than shards yields every shard once.
        let mut all = ring.owners("max3", "minipy", 10);
        all.sort_unstable();
        assert_eq!(all, vec![0, 1, 2, 3]);
        assert_eq!(HashRing::new(1).owners("max3", "minipy", REPLICATION_FACTOR), vec![0]);
    }

    #[test]
    fn exactly_replication_factor_shards_hold_each_key() {
        let specs: Vec<ShardSpec> = (0..4).map(|index| ShardSpec { index, count: 4 }).collect();
        for problem in ["max3", "sumto", "absdiff"] {
            for lang in ["minipy", "minic"] {
                let holders = specs.iter().filter(|s| s.holds(problem, lang, REPLICATION_FACTOR)).count();
                assert_eq!(holders, REPLICATION_FACTOR, "{problem}/{lang} must have exactly 2 holders");
                let owner = HashRing::new(4).owner(problem, lang);
                assert!(specs[owner].holds(problem, lang, REPLICATION_FACTOR), "owner always holds");
            }
        }
    }

    #[test]
    fn exactly_one_shard_owns_each_key() {
        let specs: Vec<ShardSpec> = (0..4).map(|index| ShardSpec { index, count: 4 }).collect();
        for problem in ["max3", "sumto", "absdiff"] {
            for lang in ["minipy", "minic"] {
                let owners = specs.iter().filter(|s| s.owns(problem, lang)).count();
                assert_eq!(owners, 1, "{problem}/{lang} must have exactly one owner");
            }
        }
    }

    proptest! {
        /// Consistent hashing's defining property: growing the fleet from N
        /// to N+1 shards moves a key only if the *new* shard claims it —
        /// never between two pre-existing shards.
        #[test]
        fn growing_the_fleet_only_moves_keys_to_the_new_shard(
            key in 0u64..1_000_000,
            lang in prop::sample::select(vec!["minipy", "minic"]),
            shards in 1usize..12,
        ) {
            let problem = format!("problem_{key}");
            let before = HashRing::new(shards).owner(&problem, lang);
            let after = HashRing::new(shards + 1).owner(&problem, lang);
            prop_assert!(
                after == before || after == shards,
                "key moved between old shards: {before} -> {after} at N={shards}"
            );
        }

        /// Assignment is a pure function of (key, N): repeated lookups and
        /// independently built rings always agree.
        #[test]
        fn assignment_is_deterministic(
            key in 0u64..1_000_000,
            shards in 1usize..12,
        ) {
            let problem = format!("problem_{key}");
            let ring = HashRing::new(shards);
            let owner = ring.owner(&problem, "minipy");
            prop_assert!(owner < shards);
            prop_assert_eq!(owner, HashRing::new(shards).owner(&problem, "minipy"));
        }
    }
}
