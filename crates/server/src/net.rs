//! The nonblocking accept loop: `poll(2)`-driven socket multiplexing over a
//! hand-declared two-symbol FFI surface (the offline build has no
//! `libc`/`mio`/`tokio`).
//!
//! One thread owns every socket: the NDJSON and HTTP listeners (accepted
//! nonblocking), all client connections (per-connection read/write buffers)
//! and a loopback waker pair. Parsed requests are handed to the worker pool
//! with `try_submit` — never a blocking call, so one flooding client cannot
//! wedge the loop — and finished responses come back through a completion
//! queue plus a waker byte. When every worker queue is full, requests park
//! in a bounded pending ring (retried each iteration); past that bound the
//! loop sheds load with an explicit `overloaded` error instead of buffering
//! without limit.
//!
//! The same loop serves two protocols and two deployment roles:
//!
//! * **NDJSON over TCP** — the fleet protocol: one request per line, one
//!   response per line, out-of-order completion correlated by `id`.
//! * **HTTP** — `POST /repair`, `GET /health`, `GET /stats`, parsed
//!   incrementally (a half-sent request never blocks other connections).
//! * The [`Backend`] is either a local [`Server`] (a shard process) or a
//!   [`Router`] forwarding each request to the shard owning its
//!   problem×language key.

use std::collections::{HashMap, VecDeque};
use std::io::{self, Read, Write};
use std::net::{TcpListener, TcpStream};
use std::os::fd::AsRawFd;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

use crate::fault::{FaultAction, FaultInjector, FaultPlan};
use crate::obs::{render_prometheus, Registry};
use crate::pool::PoolClosed;
use crate::protocol::{parse_incoming, render_response, Incoming, Request, Response};
use crate::router::Router;
use crate::serve::Server;

/// `struct pollfd` from `<poll.h>`.
#[repr(C)]
#[derive(Debug, Clone, Copy)]
pub struct PollFd {
    /// File descriptor to watch (negative entries are ignored by the kernel).
    pub fd: i32,
    /// Requested events ([`POLLIN`] / [`POLLOUT`]).
    pub events: i16,
    /// Returned events (may include [`POLLERR`] / [`POLLHUP`] unrequested).
    pub revents: i16,
}

/// Data may be read without blocking.
pub const POLLIN: i16 = 0x001;
/// Data may be written without blocking.
pub const POLLOUT: i16 = 0x004;
/// An error condition is pending on the descriptor.
pub const POLLERR: i16 = 0x008;
/// The peer hung up.
pub const POLLHUP: i16 = 0x010;

unsafe extern "C" {
    /// `nfds_t` is `unsigned long` on Linux.
    fn poll(fds: *mut PollFd, nfds: u64, timeout: i32) -> i32;
}

/// Blocks until one of `fds` is ready or `timeout_ms` elapses; returns the
/// number of descriptors with non-zero `revents` (0 on timeout). `EINTR` is
/// surfaced as `Ok(0)` — callers loop anyway.
///
/// # Errors
///
/// Propagates the OS error for anything other than `EINTR`.
pub fn poll_fds(fds: &mut [PollFd], timeout_ms: i32) -> io::Result<usize> {
    // SAFETY: `fds` is a valid, exclusively borrowed slice of `#[repr(C)]`
    // pollfd-layout structs, and the kernel writes only to `revents`.
    let rc = unsafe { poll(fds.as_mut_ptr(), fds.len() as u64, timeout_ms) };
    if rc >= 0 {
        return Ok(rc as usize);
    }
    let err = io::Error::last_os_error();
    if err.kind() == io::ErrorKind::Interrupted {
        Ok(0)
    } else {
        Err(err)
    }
}

/// Tuning knobs of the event loop.
#[derive(Debug, Clone, Copy)]
pub struct EventLoopConfig {
    /// Per-connection input-buffer cap; an NDJSON line or HTTP request
    /// larger than this is rejected and the connection closed.
    pub max_buffer: usize,
    /// Parsed requests parked while every worker queue is full; past this
    /// the loop sheds with an `overloaded` error response.
    pub max_pending: usize,
    /// Connections idle longer than this mid-request are dropped.
    pub idle_timeout: Duration,
    /// Deterministic fault injection applied to parsed NDJSON feedback
    /// requests (chaos testing); `None` serves faithfully.
    pub faults: Option<FaultPlan>,
}

impl Default for EventLoopConfig {
    fn default() -> Self {
        EventLoopConfig {
            max_buffer: 1 << 20,
            max_pending: 256,
            idle_timeout: Duration::from_secs(10),
            faults: None,
        }
    }
}

/// What the event loop serves: a local shard process or a forwarding
/// router. All request handling below the socket layer goes through this.
pub enum Backend {
    /// A local [`Server`]: requests run on this process's worker pool.
    Local(Arc<Server>),
    /// A [`Router`]: requests are forwarded to the shard owning their key.
    Router(Arc<Router>),
}

impl Backend {
    /// Wraps a local server.
    pub fn local(server: Arc<Server>) -> Backend {
        Backend::Local(server)
    }

    /// Wraps a router.
    pub fn router(router: Arc<Router>) -> Backend {
        Backend::Router(router)
    }

    /// Submits a request without blocking; the callback receives the
    /// rendered NDJSON response line. `Ok(false)` means every queue is full.
    fn try_submit(
        &self,
        request: Request,
        reply: Box<dyn FnOnce(String) + Send>,
    ) -> Result<bool, PoolClosed> {
        match self {
            Backend::Local(server) => {
                server.try_submit(request, move |response| reply(render_response(&response)))
            }
            Backend::Router(router) => router.try_submit(request, reply),
        }
    }

    /// The one-line JSON stats report (NDJSON `{"stats":true}` and
    /// `GET /stats`).
    fn stats_line(&self, id: u64) -> String {
        match self {
            Backend::Local(server) => {
                serde_json::to_string(&server.stats_report(id)).unwrap_or_else(|e| stats_error_line(id, &e))
            }
            Backend::Router(router) => router.stats_line(id),
        }
    }

    /// The `GET /health` body: service counters for a shard, the routing
    /// report for a router.
    fn health_line(&self) -> String {
        match self {
            Backend::Local(server) => {
                serde_json::to_string(&server.service().stats()).unwrap_or_else(|e| stats_error_line(0, &e))
            }
            Backend::Router(router) => router.stats_line(0),
        }
    }

    /// The one-line JSON metrics dump (NDJSON `{"metrics":true}`): this
    /// process's registry for a shard, the merged fleet view for a router.
    fn metrics_line(&self, id: u64) -> String {
        match self {
            Backend::Local(_) => serde_json::to_string(&Registry::global().dump(id))
                .unwrap_or_else(|e| stats_error_line(id, &e)),
            Backend::Router(router) => router.metrics_line(id),
        }
    }

    /// The `GET /metrics` body in Prometheus text format.
    fn metrics_text(&self) -> String {
        match self {
            Backend::Local(_) => render_prometheus(&Registry::global().dump(0)),
            Backend::Router(router) => router.metrics_text(),
        }
    }

    /// Records one request shed at the front door (pending ring full).
    fn note_shed(&self) {
        match self {
            Backend::Local(server) => server.note_shed(),
            Backend::Router(router) => router.note_shed(),
        }
    }
}

/// A well-formed fallback line when a stats report fails to serialize (our
/// own structs never should, but the front door must not panic for it).
fn stats_error_line(id: u64, error: &impl std::fmt::Display) -> String {
    render_response(&Response::error(id, format!("stats serialization failed: {error}")))
}

/// Wakes the event loop from worker threads: one byte down a loopback TCP
/// pair whose read end sits in the poll set. Writes are nonblocking — a
/// full socket buffer already guarantees a pending wakeup, so `WouldBlock`
/// is a success.
struct Waker {
    tx: TcpStream,
}

impl Waker {
    fn wake(&self) {
        let _ = (&self.tx).write(&[1]);
    }
}

/// Finished responses on their way back to the loop thread: rendered
/// payloads tagged with the owning connection.
struct Completions {
    ready: Mutex<Vec<(u64, String)>>,
    waker: Waker,
    shutdown: AtomicBool,
}

impl Completions {
    fn push(&self, conn: u64, payload: String) {
        // A worker that panicked while holding the lock left a usable queue
        // behind; losing completions is worse than seeing its partial state.
        self.ready.lock().unwrap_or_else(|poisoned| poisoned.into_inner()).push((conn, payload));
        self.waker.wake();
    }
}

/// A handle for requesting event-loop shutdown from another thread (the
/// stdio anchor of `clara-cli serve` uses this on stdin EOF).
#[derive(Clone)]
pub struct LoopHandle {
    completions: Arc<Completions>,
}

impl LoopHandle {
    /// Asks the loop to stop accepting, finish in-flight work and return.
    pub fn request_shutdown(&self) {
        self.completions.shutdown.store(true, Ordering::SeqCst);
        self.completions.waker.wake();
    }
}

#[derive(Clone, Copy, PartialEq, Eq)]
enum Proto {
    Ndjson,
    Http,
}

/// Incremental HTTP request state.
#[derive(Default)]
struct HttpState {
    /// Byte offset where the body starts (headers parsed), if known.
    body_start: Option<usize>,
    method: String,
    path: String,
    /// `Some(Ok(n))` parsed, `Some(Err(()))` malformed, `None` absent.
    content_length: Option<Result<usize, ()>>,
    /// A response has been produced (queued or in flight); input ignored.
    responded: bool,
}

struct Conn {
    stream: TcpStream,
    proto: Proto,
    read_buf: Vec<u8>,
    write_buf: Vec<u8>,
    write_pos: usize,
    /// Requests submitted or parked whose responses have not been written.
    inflight: usize,
    /// Peer half-closed, or the connection is committed to closing.
    input_done: bool,
    http: HttpState,
    last_activity: Instant,
}

impl Conn {
    fn new(stream: TcpStream, proto: Proto) -> Conn {
        Conn {
            stream,
            proto,
            read_buf: Vec::new(),
            write_buf: Vec::new(),
            write_pos: 0,
            inflight: 0,
            input_done: false,
            http: HttpState::default(),
            last_activity: Instant::now(),
        }
    }

    fn has_unwritten(&self) -> bool {
        self.write_pos < self.write_buf.len()
    }

    fn wants_read(&self) -> bool {
        !(self.input_done || self.proto == Proto::Http && self.http.responded)
    }

    /// A connection can be dropped when nothing remains to write and no
    /// response is still owed. HTTP connections close after their response
    /// (`Connection: close`); NDJSON connections close on peer EOF.
    fn can_close(&self) -> bool {
        !self.has_unwritten()
            && self.inflight == 0
            && (self.input_done || (self.proto == Proto::Http && self.http.responded))
    }
}

/// The poll(2) event loop. See the module docs for the architecture.
pub struct EventLoop {
    backend: Backend,
    config: EventLoopConfig,
    ndjson: Option<TcpListener>,
    http: Option<TcpListener>,
    wake_rx: TcpStream,
    completions: Arc<Completions>,
    conns: HashMap<u64, Conn>,
    next_conn: u64,
    /// Requests parked while the pool was full, retried each iteration
    /// (tagged with their accept instant so shed/shutdown errors report the
    /// real time the request spent waiting).
    pending: VecDeque<(u64, Instant, Request)>,
    /// The seeded fault schedule, when chaos testing is enabled.
    injector: Option<FaultInjector>,
    /// Fault-delayed requests waiting for their release instant.
    delayed: VecDeque<(Instant, u64, Request)>,
}

/// A connected loopback TCP pair (the poll waker; `pipe(2)` would need a
/// third FFI symbol, and a localhost socket pair behaves identically here).
fn tcp_pair() -> io::Result<(TcpStream, TcpStream)> {
    let listener = TcpListener::bind("127.0.0.1:0")?;
    let tx = TcpStream::connect(listener.local_addr()?)?;
    let (rx, _) = listener.accept()?;
    Ok((tx, rx))
}

impl EventLoop {
    /// Creates a loop over `backend` with no listeners attached yet.
    ///
    /// # Errors
    ///
    /// Fails when the loopback waker pair cannot be created.
    pub fn new(backend: Backend, config: EventLoopConfig) -> io::Result<EventLoop> {
        let (tx, rx) = tcp_pair()?;
        tx.set_nonblocking(true)?;
        tx.set_nodelay(true)?;
        rx.set_nonblocking(true)?;
        let completions = Arc::new(Completions {
            ready: Mutex::new(Vec::new()),
            waker: Waker { tx },
            shutdown: AtomicBool::new(false),
        });
        let injector = config.faults.filter(|plan| !plan.is_noop()).map(|plan| plan.injector());
        Ok(EventLoop {
            backend,
            config,
            ndjson: None,
            http: None,
            wake_rx: rx,
            completions,
            conns: HashMap::new(),
            next_conn: 0,
            pending: VecDeque::new(),
            injector,
            delayed: VecDeque::new(),
        })
    }

    /// Attaches the NDJSON-over-TCP listener (the fleet protocol).
    ///
    /// # Errors
    ///
    /// Fails when the listener cannot be made nonblocking.
    pub fn with_ndjson_listener(mut self, listener: TcpListener) -> io::Result<EventLoop> {
        listener.set_nonblocking(true)?;
        self.ndjson = Some(listener);
        Ok(self)
    }

    /// Attaches the HTTP listener.
    ///
    /// # Errors
    ///
    /// Fails when the listener cannot be made nonblocking.
    pub fn with_http_listener(mut self, listener: TcpListener) -> io::Result<EventLoop> {
        listener.set_nonblocking(true)?;
        self.http = Some(listener);
        Ok(self)
    }

    /// A handle for requesting shutdown from another thread.
    pub fn handle(&self) -> LoopHandle {
        LoopHandle { completions: Arc::clone(&self.completions) }
    }

    /// Runs the loop until shutdown is requested and in-flight work has
    /// drained.
    ///
    /// # Errors
    ///
    /// Returns a fatal `poll(2)` error; per-connection I/O errors only drop
    /// that connection.
    pub fn run(mut self) -> io::Result<()> {
        loop {
            let shutting_down = self.completions.shutdown.load(Ordering::SeqCst);
            if shutting_down {
                // Stop taking input; drop connections as their in-flight
                // work drains. Exit once nothing is owed to anyone.
                for conn in self.conns.values_mut() {
                    conn.input_done = true;
                }
                self.conns.retain(|_, c| !c.can_close());
                if self.conns.is_empty() && self.pending.is_empty() {
                    return Ok(());
                }
            }

            // (pollfd, what it maps to) — ids resolved after poll returns.
            let mut fds: Vec<PollFd> = Vec::with_capacity(3 + self.conns.len());
            let mut tags: Vec<Tag> = Vec::with_capacity(fds.capacity());
            fds.push(PollFd { fd: self.wake_rx.as_raw_fd(), events: POLLIN, revents: 0 });
            tags.push(Tag::Waker);
            if !shutting_down {
                if let Some(listener) = &self.ndjson {
                    fds.push(PollFd { fd: listener.as_raw_fd(), events: POLLIN, revents: 0 });
                    tags.push(Tag::NdjsonListener);
                }
                if let Some(listener) = &self.http {
                    fds.push(PollFd { fd: listener.as_raw_fd(), events: POLLIN, revents: 0 });
                    tags.push(Tag::HttpListener);
                }
            }
            for (&id, conn) in &self.conns {
                let mut events = 0i16;
                if conn.wants_read() {
                    events |= POLLIN;
                }
                if conn.has_unwritten() {
                    events |= POLLOUT;
                }
                if events != 0 {
                    fds.push(PollFd { fd: conn.stream.as_raw_fd(), events, revents: 0 });
                    tags.push(Tag::Conn(id));
                }
            }

            let mut timeout = if self.pending.is_empty() { 200 } else { 20 };
            if let Some(due) = self.delayed.iter().map(|(at, _, _)| *at).min() {
                let until = due.saturating_duration_since(Instant::now()).as_millis() as i32;
                timeout = timeout.min(until.max(1));
            }
            poll_fds(&mut fds, timeout)?;

            // Waker bytes: drain and discard (their meaning is "look at the
            // completion queue / shutdown flag").
            if fds[0].revents & (POLLIN | POLLERR | POLLHUP) != 0 {
                let mut sink = [0u8; 64];
                while matches!(self.wake_rx.read(&mut sink), Ok(n) if n > 0) {}
            }

            self.drain_completions();
            self.release_due_delays();
            self.retry_pending();

            for (fd, tag) in fds.iter().zip(&tags).skip(1) {
                if fd.revents == 0 {
                    continue;
                }
                match tag {
                    Tag::Waker => {}
                    Tag::NdjsonListener => self.accept_all(Proto::Ndjson),
                    Tag::HttpListener => self.accept_all(Proto::Http),
                    Tag::Conn(id) => {
                        let id = *id;
                        if fd.revents & (POLLIN | POLLHUP | POLLERR) != 0 {
                            self.read_conn(id);
                        }
                        if fd.revents & POLLOUT != 0 {
                            if let Some(conn) = self.conns.get_mut(&id) {
                                flush_conn(conn);
                            }
                        }
                    }
                }
            }

            self.sweep(shutting_down);
        }
    }

    fn accept_all(&mut self, proto: Proto) {
        loop {
            let listener = match proto {
                Proto::Ndjson => self.ndjson.as_ref(),
                Proto::Http => self.http.as_ref(),
            };
            let Some(listener) = listener else { return };
            match listener.accept() {
                Ok((stream, _addr)) => {
                    if stream.set_nonblocking(true).is_err() {
                        continue;
                    }
                    let _ = stream.set_nodelay(true);
                    let id = self.next_conn;
                    self.next_conn += 1;
                    self.conns.insert(id, Conn::new(stream, proto));
                }
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => return,
                Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
                // Transient accept errors (ECONNABORTED, EMFILE…): skip this
                // round rather than killing the loop.
                Err(_) => return,
            }
        }
    }

    fn drain_completions(&mut self) {
        let ready = {
            let mut queue = self.completions.ready.lock().unwrap_or_else(|poisoned| poisoned.into_inner());
            std::mem::take(&mut *queue)
        };
        for (id, payload) in ready {
            let Some(conn) = self.conns.get_mut(&id) else { continue };
            conn.inflight = conn.inflight.saturating_sub(1);
            match conn.proto {
                Proto::Ndjson => {
                    conn.write_buf.extend_from_slice(payload.as_bytes());
                    conn.write_buf.push(b'\n');
                }
                Proto::Http => append_http(conn, "200 OK", &payload),
            }
            flush_conn(conn);
        }
    }

    /// Retries parked requests against the pool; what still doesn't fit
    /// stays parked.
    fn retry_pending(&mut self) {
        while let Some((id, accepted, request)) = self.pending.pop_front() {
            if !self.conns.contains_key(&id) {
                continue;
            }
            match self.submit(id, accepted, request) {
                Submitted::Yes => {}
                Submitted::Parked(request) => {
                    self.pending.push_front((id, accepted, request));
                    return;
                }
                Submitted::Closed => return,
            }
        }
    }

    fn submit(&mut self, conn_id: u64, accepted: Instant, request: Request) -> Submitted {
        let completions = Arc::clone(&self.completions);
        let reply: Box<dyn FnOnce(String) + Send> = Box::new(move |line| completions.push(conn_id, line));
        match self.backend.try_submit(request.clone(), reply) {
            Ok(true) => Submitted::Yes,
            Ok(false) => Submitted::Parked(request),
            Err(PoolClosed) => {
                if let Some(conn) = self.conns.get_mut(&conn_id) {
                    conn.inflight = conn.inflight.saturating_sub(1);
                    let error = Response::error(request.id, "service is shutting down")
                        .with_elapsed(accepted.elapsed().as_micros() as u64)
                        .with_trace(request.trace.clone());
                    respond(conn, "503 Service Unavailable", &render_response(&error));
                }
                Submitted::Closed
            }
        }
    }

    /// Re-enqueues fault-delayed requests whose release instant has passed.
    fn release_due_delays(&mut self) {
        let now = Instant::now();
        for _ in 0..self.delayed.len() {
            let Some((due, conn_id, request)) = self.delayed.pop_front() else { break };
            if due > now {
                self.delayed.push_back((due, conn_id, request));
                continue;
            }
            if let Some(conn) = self.conns.get_mut(&conn_id) {
                // Drop the park-time hold; `enqueue` re-counts the request.
                conn.inflight = conn.inflight.saturating_sub(1);
                self.enqueue(conn_id, request);
            }
        }
    }

    /// Applies the fault schedule to a freshly parsed feedback request.
    /// Returns `true` when the request was consumed by a fault.
    fn inject_fault(&mut self, conn_id: u64, request: &Request) -> bool {
        let Some(injector) = self.injector.as_mut() else { return false };
        match injector.decide() {
            FaultAction::None => false,
            FaultAction::Drop => true, // swallowed: the client sees silence
            FaultAction::Close => {
                if let Some(conn) = self.conns.get_mut(&conn_id) {
                    // Abrupt close: pending output and owed responses are
                    // abandoned, exactly like a crash mid-exchange.
                    conn.input_done = true;
                    conn.read_buf.clear();
                    conn.write_buf.clear();
                    conn.write_pos = 0;
                    conn.inflight = 0;
                }
                true
            }
            FaultAction::Garble => {
                if let Some(conn) = self.conns.get_mut(&conn_id) {
                    respond(conn, "200 OK", "{\"garbled\":tru"); // deliberately unparseable
                }
                true
            }
            FaultAction::Delay(by) => {
                if let Some(conn) = self.conns.get_mut(&conn_id) {
                    // Hold the connection open while the request is parked.
                    conn.inflight += 1;
                    self.delayed.push_back((Instant::now() + by, conn_id, request.clone()));
                }
                true
            }
        }
    }

    /// Enqueues a freshly parsed request: submit, park, or shed.
    fn enqueue(&mut self, conn_id: u64, request: Request) {
        let accepted = Instant::now();
        if let Some(conn) = self.conns.get_mut(&conn_id) {
            conn.inflight += 1;
        }
        if self.pending.len() >= self.config.max_pending {
            // The pending ring is the overload buffer; past it, shed with an
            // explicit error so clients can back off.
            self.backend.note_shed();
            if let Some(conn) = self.conns.get_mut(&conn_id) {
                conn.inflight = conn.inflight.saturating_sub(1);
                let error = Response::error(request.id, "server overloaded, retry later")
                    .with_elapsed(accepted.elapsed().as_micros() as u64)
                    .with_trace(request.trace.clone());
                respond(conn, "503 Service Unavailable", &render_response(&error));
            }
            return;
        }
        if !self.pending.is_empty() {
            // Preserve submission order behind already-parked requests.
            self.pending.push_back((conn_id, accepted, request));
            return;
        }
        if let Submitted::Parked(request) = self.submit(conn_id, accepted, request) {
            self.pending.push_back((conn_id, accepted, request));
        }
    }

    fn read_conn(&mut self, id: u64) {
        let Some(conn) = self.conns.get_mut(&id) else { return };
        let mut chunk = [0u8; 16 * 1024];
        loop {
            match conn.stream.read(&mut chunk) {
                Ok(0) => {
                    conn.input_done = true;
                    break;
                }
                Ok(n) => {
                    conn.read_buf.extend_from_slice(&chunk[..n]);
                    conn.last_activity = Instant::now();
                    if conn.read_buf.len() > self.config.max_buffer {
                        respond(
                            conn,
                            "413 Payload Too Large",
                            &render_response(&Response::error(0, "request too large")),
                        );
                        conn.input_done = true;
                        conn.read_buf.clear();
                        break;
                    }
                }
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => break,
                Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
                Err(_) => {
                    conn.input_done = true;
                    break;
                }
            }
        }
        match conn.proto {
            Proto::Ndjson => self.process_ndjson(id),
            Proto::Http => self.process_http(id),
        }
    }

    fn process_ndjson(&mut self, id: u64) {
        loop {
            let Some(conn) = self.conns.get_mut(&id) else { return };
            let Some(newline) = conn.read_buf.iter().position(|&b| b == b'\n') else { return };
            let line_bytes: Vec<u8> = conn.read_buf.drain(..=newline).collect();
            let line = String::from_utf8_lossy(&line_bytes[..newline]);
            let line = line.trim();
            if line.is_empty() {
                continue;
            }
            match parse_incoming(line) {
                Ok(Incoming::Stats { id: request_id }) => {
                    let stats = self.backend.stats_line(request_id);
                    let Some(conn) = self.conns.get_mut(&id) else { return };
                    conn.write_buf.extend_from_slice(stats.as_bytes());
                    conn.write_buf.push(b'\n');
                    flush_conn(conn);
                }
                // Metrics probes, like stats, bypass fault injection: the
                // fleet must stay observable under chaos.
                Ok(Incoming::Metrics { id: request_id }) => {
                    let dump = self.backend.metrics_line(request_id);
                    let Some(conn) = self.conns.get_mut(&id) else { return };
                    conn.write_buf.extend_from_slice(dump.as_bytes());
                    conn.write_buf.push(b'\n');
                    flush_conn(conn);
                }
                Ok(Incoming::Feedback(request)) => {
                    if !self.inject_fault(id, &request) {
                        self.enqueue(id, request);
                    }
                }
                Err(message) => {
                    let error = render_response(&Response::error(0, format!("malformed request: {message}")));
                    let Some(conn) = self.conns.get_mut(&id) else { return };
                    conn.write_buf.extend_from_slice(error.as_bytes());
                    conn.write_buf.push(b'\n');
                    flush_conn(conn);
                }
            }
        }
    }

    fn process_http(&mut self, id: u64) {
        const MAX_BODY: usize = 1 << 20;
        let Some(conn) = self.conns.get_mut(&id) else { return };
        if conn.http.responded {
            return;
        }
        if conn.http.body_start.is_none() {
            let Some(headers_end) = find_subsequence(&conn.read_buf, b"\r\n\r\n") else {
                // Headers incomplete; EOF here means the client gave up.
                if conn.input_done && !conn.read_buf.is_empty() {
                    respond(
                        conn,
                        "400 Bad Request",
                        &render_response(&Response::error(0, "truncated request head")),
                    );
                }
                return;
            };
            let head = String::from_utf8_lossy(&conn.read_buf[..headers_end]).into_owned();
            conn.http.body_start = Some(headers_end + 4);
            let mut lines = head.split("\r\n");
            let request_line = lines.next().unwrap_or("");
            let mut parts = request_line.split_whitespace();
            conn.http.method = parts.next().unwrap_or("").to_owned();
            conn.http.path = parts.next().unwrap_or("").to_owned();
            for header in lines {
                if let Some(value) = header.to_ascii_lowercase().strip_prefix("content-length:") {
                    conn.http.content_length = Some(value.trim().parse::<usize>().map_err(|_| ()));
                }
            }
        }

        let body_start = conn.http.body_start.expect("set above");
        let bad_request =
            |message: String| ("400 Bad Request", render_response(&Response::error(0, message)));
        match (conn.http.method.as_str(), conn.http.path.as_str()) {
            ("GET", "/health") => {
                let body = self.backend.health_line();
                let Some(conn) = self.conns.get_mut(&id) else { return };
                respond(conn, "200 OK", &body);
            }
            ("GET", "/stats") => {
                let body = self.backend.stats_line(0);
                let Some(conn) = self.conns.get_mut(&id) else { return };
                respond(conn, "200 OK", &body);
            }
            ("GET", "/metrics") => {
                let body = self.backend.metrics_text();
                let Some(conn) = self.conns.get_mut(&id) else { return };
                append_http_with_type(conn, "200 OK", "text/plain; version=0.0.4", &body);
                flush_conn(conn);
            }
            ("POST", "/repair") => match conn.http.content_length {
                None => {
                    let (status, body) = bad_request("missing Content-Length header".to_owned());
                    respond(conn, status, &body);
                }
                Some(Err(())) => {
                    let (status, body) = bad_request("invalid Content-Length header".to_owned());
                    respond(conn, status, &body);
                }
                Some(Ok(n)) if n > MAX_BODY => {
                    respond(
                        conn,
                        "413 Payload Too Large",
                        &render_response(&Response::error(0, "body too large")),
                    );
                }
                Some(Ok(n)) => {
                    let received = conn.read_buf.len().saturating_sub(body_start);
                    if received < n {
                        if conn.input_done {
                            let (status, body) =
                                bad_request(format!("truncated body: got {received} of {n} bytes"));
                            respond(conn, status, &body);
                        }
                        return; // keep waiting for the rest of the body
                    }
                    let body = &conn.read_buf[body_start..body_start + n];
                    match std::str::from_utf8(body)
                        .map_err(|e| e.to_string())
                        .and_then(|s| crate::protocol::parse_request(s).map_err(|e| e.to_string()))
                    {
                        Ok(request) => {
                            conn.http.responded = true; // the completion writes the response
                            self.enqueue(id, request);
                        }
                        Err(message) => {
                            let (status, body) = bad_request(format!("malformed request: {message}"));
                            respond(conn, status, &body);
                        }
                    }
                }
            },
            (method, path) => {
                let body = render_response(&Response::error(0, format!("no route {method} {path}")));
                respond(conn, "404 Not Found", &body);
            }
        }
    }

    /// Drops finished, broken and idle connections.
    fn sweep(&mut self, shutting_down: bool) {
        let idle_timeout = self.config.idle_timeout;
        self.conns.retain(|_, conn| {
            if conn.can_close() {
                return false;
            }
            // Mid-request idle connections (e.g. an HTTP client that never
            // sends its announced body) are dropped after the timeout; a
            // connection with work in flight is never dropped.
            if conn.inflight == 0
                && !conn.has_unwritten()
                && conn.last_activity.elapsed() > idle_timeout
                && (conn.proto == Proto::Http || shutting_down)
            {
                return false;
            }
            true
        });
    }
}

enum Submitted {
    Yes,
    Parked(Request),
    Closed,
}

enum Tag {
    Waker,
    NdjsonListener,
    HttpListener,
    Conn(u64),
}

/// Appends an HTTP response envelope around `body` and marks the exchange
/// finished.
fn append_http(conn: &mut Conn, status: &str, body: &str) {
    append_http_with_type(conn, status, "application/json", body);
}

/// [`append_http`] with an explicit content type (`GET /metrics` serves
/// Prometheus text, not JSON).
fn append_http_with_type(conn: &mut Conn, status: &str, content_type: &str, body: &str) {
    let head = format!(
        "HTTP/1.1 {status}\r\nContent-Type: {content_type}\r\nContent-Length: {}\r\nConnection: close\r\n\r\n",
        body.len()
    );
    conn.write_buf.extend_from_slice(head.as_bytes());
    conn.write_buf.extend_from_slice(body.as_bytes());
    conn.http.responded = true;
}

/// Queues a response on the right protocol framing and flushes
/// opportunistically. For NDJSON the HTTP status is ignored.
fn respond(conn: &mut Conn, http_status: &str, payload: &str) {
    match conn.proto {
        Proto::Ndjson => {
            conn.write_buf.extend_from_slice(payload.as_bytes());
            conn.write_buf.push(b'\n');
        }
        Proto::Http => append_http(conn, http_status, payload),
    }
    flush_conn(conn);
}

/// Writes as much buffered output as the socket accepts; compacts the
/// buffer when fully drained. Write errors mark the connection closed.
fn flush_conn(conn: &mut Conn) {
    while conn.write_pos < conn.write_buf.len() {
        match conn.stream.write(&conn.write_buf[conn.write_pos..]) {
            Ok(0) => {
                conn.input_done = true;
                conn.write_buf.clear();
                conn.write_pos = 0;
                return;
            }
            Ok(n) => conn.write_pos += n,
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => return,
            Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
            Err(_) => {
                conn.input_done = true;
                conn.write_buf.clear();
                conn.write_pos = 0;
                conn.inflight = 0;
                return;
            }
        }
    }
    conn.write_buf.clear();
    conn.write_pos = 0;
}

fn find_subsequence(haystack: &[u8], needle: &[u8]) -> Option<usize> {
    haystack.windows(needle.len()).position(|window| window == needle)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::serve::{Server, ServerConfig};
    use crate::service::{FeedbackService, ServiceConfig};
    use crate::store::ClusterStore;
    use clara_core::ClaraConfig;
    use clara_corpus::mooc::derivatives;
    use std::io::{BufRead, BufReader};

    fn tcp_pair_for_test() -> (TcpStream, TcpStream) {
        tcp_pair().unwrap()
    }

    #[test]
    fn poll_times_out_on_idle_sockets() {
        let (client, _server) = tcp_pair_for_test();
        let mut fds = [PollFd { fd: client.as_raw_fd(), events: POLLIN, revents: 0 }];
        assert_eq!(poll_fds(&mut fds, 50).unwrap(), 0);
        assert_eq!(fds[0].revents, 0);
    }

    #[test]
    fn poll_reports_readable_after_a_write() {
        let (client, mut server) = tcp_pair_for_test();
        server.write_all(b"ping").unwrap();
        let mut fds = [PollFd { fd: client.as_raw_fd(), events: POLLIN, revents: 0 }];
        assert_eq!(poll_fds(&mut fds, 1_000).unwrap(), 1);
        assert_ne!(fds[0].revents & POLLIN, 0);
        let mut buf = [0u8; 4];
        let mut client = client;
        client.read_exact(&mut buf).unwrap();
        assert_eq!(&buf, b"ping");
    }

    #[test]
    fn poll_reports_hangup_or_readable_eof_on_close() {
        let (client, server) = tcp_pair_for_test();
        drop(server);
        let mut fds = [PollFd { fd: client.as_raw_fd(), events: POLLIN, revents: 0 }];
        assert_eq!(poll_fds(&mut fds, 1_000).unwrap(), 1);
        // A closed peer shows up as POLLIN (read returns 0) and/or POLLHUP.
        assert_ne!(fds[0].revents & (POLLIN | POLLHUP), 0);
    }

    fn spawn_ndjson_server() -> (std::net::SocketAddr, LoopHandle) {
        let problem = derivatives();
        let seeds: Vec<&str> = problem.seeds.clone();
        let (store, _) = ClusterStore::build(&problem, seeds, ClaraConfig::default());
        let service = Arc::new(FeedbackService::new(vec![store], ServiceConfig::default()));
        let server =
            Arc::new(Server::new(service, ServerConfig { workers: 2, queue_capacity: 8, max_batch: 4 }));
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let event_loop = EventLoop::new(Backend::local(server), EventLoopConfig::default())
            .unwrap()
            .with_ndjson_listener(listener)
            .unwrap();
        let handle = event_loop.handle();
        std::thread::spawn(move || {
            let _ = event_loop.run();
        });
        (addr, handle)
    }

    #[test]
    fn ndjson_over_tcp_round_trips_requests_stats_and_errors() {
        let (addr, handle) = spawn_ndjson_server();
        let stream = TcpStream::connect(addr).unwrap();
        stream.set_read_timeout(Some(Duration::from_secs(60))).unwrap();
        let mut writer = stream.try_clone().unwrap();
        let mut reader = BufReader::new(stream);

        let request = serde_json::to_string(&Request {
            id: 1,
            problem: "derivatives".to_owned(),
            lang: None,
            source: "def computeDeriv(poly):\n    return poly\n".to_owned(),
            learn: None,
            trace: None,
        })
        .unwrap();
        writeln!(writer, "{request}").unwrap();
        writeln!(writer, r#"{{"id":50,"stats":true}}"#).unwrap();
        writeln!(writer, "oops not json").unwrap();

        let mut lines = Vec::new();
        for _ in 0..3 {
            let mut line = String::new();
            reader.read_line(&mut line).unwrap();
            lines.push(line);
        }
        let mut saw_response = false;
        let mut saw_stats = false;
        let mut saw_malformed = false;
        for line in &lines {
            if line.contains("\"snapshot_generation\"") {
                saw_stats = true;
                assert!(line.contains("\"id\":50"), "{line}");
            } else if line.contains("malformed request") {
                saw_malformed = true;
            } else {
                let response: Response = serde_json::from_str(line).unwrap();
                assert_eq!(response.id, 1);
                saw_response = true;
            }
        }
        assert!(saw_response && saw_stats && saw_malformed, "{lines:?}");

        // Several connections multiplex over the same loop.
        let second = TcpStream::connect(addr).unwrap();
        second.set_read_timeout(Some(Duration::from_secs(60))).unwrap();
        let mut second_writer = second.try_clone().unwrap();
        writeln!(second_writer, "{request}").unwrap();
        let mut line = String::new();
        BufReader::new(second).read_line(&mut line).unwrap();
        let response: Response = serde_json::from_str(&line).unwrap();
        assert!(response.cache_hit, "same submission over a second connection hits the cache");

        handle.request_shutdown();
    }

    #[test]
    fn shutdown_drains_and_stops_the_loop() {
        let (addr, handle) = spawn_ndjson_server();
        // Connect, then ask for shutdown: the loop must close our idle
        // connection and exit rather than hang on it.
        let stream = TcpStream::connect(addr).unwrap();
        stream.set_read_timeout(Some(Duration::from_secs(60))).unwrap();
        handle.request_shutdown();
        // The loop closes the connection: read sees EOF — or, when shutdown
        // wins the race with accept, the dying listener resets it. Either
        // way the loop exits instead of hanging on the idle connection.
        let mut reader = BufReader::new(stream);
        let mut line = String::new();
        match reader.read_line(&mut line) {
            Ok(n) => assert_eq!(n, 0, "idle connection closed on shutdown, got {line:?}"),
            Err(e) => assert_eq!(e.kind(), std::io::ErrorKind::ConnectionReset, "{e}"),
        }
    }

    #[test]
    fn oversized_ndjson_lines_are_rejected() {
        let problem = derivatives();
        let seeds: Vec<&str> = problem.seeds.clone();
        let (store, _) = ClusterStore::build(&problem, seeds, ClaraConfig::default());
        let service = Arc::new(FeedbackService::new(vec![store], ServiceConfig::default()));
        let server =
            Arc::new(Server::new(service, ServerConfig { workers: 1, queue_capacity: 4, max_batch: 4 }));
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let config = EventLoopConfig { max_buffer: 1024, ..EventLoopConfig::default() };
        let event_loop =
            EventLoop::new(Backend::local(server), config).unwrap().with_ndjson_listener(listener).unwrap();
        let handle = event_loop.handle();
        std::thread::spawn(move || {
            let _ = event_loop.run();
        });

        let mut stream = TcpStream::connect(addr).unwrap();
        stream.set_read_timeout(Some(Duration::from_secs(60))).unwrap();
        let huge = "x".repeat(4096);
        let _ = writeln!(stream, "{huge}");
        let mut reply = String::new();
        let mut reader = BufReader::new(stream);
        reader.read_line(&mut reply).unwrap();
        assert!(reply.contains("request too large"), "{reply}");
        // The connection is closed after the error.
        let mut rest = String::new();
        assert_eq!(reader.read_line(&mut rest).unwrap(), 0);
        handle.request_shutdown();
    }

    #[test]
    fn fault_injection_garbles_feedback_lines_but_not_control_probes() {
        let problem = derivatives();
        let seeds: Vec<&str> = problem.seeds.clone();
        let (store, _) = ClusterStore::build(&problem, seeds, ClaraConfig::default());
        let service = Arc::new(FeedbackService::new(vec![store], ServiceConfig::default()));
        let server =
            Arc::new(Server::new(service, ServerConfig { workers: 1, queue_capacity: 4, max_batch: 4 }));
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let config = EventLoopConfig {
            faults: Some("seed=3,garble=1".parse().unwrap()),
            ..EventLoopConfig::default()
        };
        let event_loop =
            EventLoop::new(Backend::local(server), config).unwrap().with_ndjson_listener(listener).unwrap();
        let handle = event_loop.handle();
        std::thread::spawn(move || {
            let _ = event_loop.run();
        });

        let stream = TcpStream::connect(addr).unwrap();
        stream.set_read_timeout(Some(Duration::from_secs(60))).unwrap();
        let mut writer = stream.try_clone().unwrap();
        let mut reader = BufReader::new(stream);
        let request = serde_json::to_string(&Request {
            id: 1,
            problem: "derivatives".to_owned(),
            lang: None,
            source: "def computeDeriv(poly):\n    return poly\n".to_owned(),
            learn: None,
            trace: None,
        })
        .unwrap();
        writeln!(writer, "{request}").unwrap();
        let mut garbled = String::new();
        reader.read_line(&mut garbled).unwrap();
        assert!(
            serde_json::from_str::<Response>(garbled.trim()).is_err(),
            "a garble fault must produce an unparseable response line: {garbled}"
        );
        // Control probes bypass the fault schedule: stats stay observable
        // even under chaos, so the harness can always read counters.
        writeln!(writer, r#"{{"id":9,"stats":true}}"#).unwrap();
        let mut stats = String::new();
        reader.read_line(&mut stats).unwrap();
        assert!(stats.contains("\"snapshot_generation\""), "{stats}");
        // Metrics probes are exempt too and answer with a parseable dump.
        writeln!(writer, r#"{{"id":11,"metrics":true}}"#).unwrap();
        let mut metrics = String::new();
        reader.read_line(&mut metrics).unwrap();
        let dump: crate::obs::MetricsDump = serde_json::from_str(metrics.trim()).unwrap();
        assert!(dump.metrics_dump);
        assert_eq!(dump.id, 11);
        handle.request_shutdown();
    }

    #[test]
    fn ndjson_metrics_probes_return_request_histograms() {
        let (addr, handle) = spawn_ndjson_server();
        let stream = TcpStream::connect(addr).unwrap();
        stream.set_read_timeout(Some(Duration::from_secs(60))).unwrap();
        let mut writer = stream.try_clone().unwrap();
        let mut reader = BufReader::new(stream);

        let request = serde_json::to_string(&Request {
            id: 1,
            problem: "derivatives".to_owned(),
            lang: None,
            source: "def computeDeriv(poly):\n    return poly\n".to_owned(),
            learn: None,
            trace: Some("feedbeeffeedbeef".to_owned()),
        })
        .unwrap();
        writeln!(writer, "{request}").unwrap();
        let mut line = String::new();
        reader.read_line(&mut line).unwrap();
        let response: Response = serde_json::from_str(line.trim()).unwrap();
        assert_eq!(response.trace.as_deref(), Some("feedbeeffeedbeef"), "trace echoed over the wire");

        writeln!(writer, r#"{{"id":2,"metrics":true}}"#).unwrap();
        let mut metrics = String::new();
        reader.read_line(&mut metrics).unwrap();
        let dump: crate::obs::MetricsDump = serde_json::from_str(metrics.trim()).unwrap();
        let requests: u64 =
            dump.counters.iter().filter(|c| c.name == "clara_requests_total").map(|c| c.value).sum();
        assert!(requests >= 1, "the request must be counted: {dump:?}");
        // The registry is process-global and other tests run in parallel,
        // so assert presence and sanity, not exact counts.
        let duration = dump
            .histograms
            .iter()
            .find(|h| h.name == "clara_request_duration_us")
            .expect("request duration histogram present");
        assert!(duration.hist.count >= 1);
        assert!(duration.hist.quantile(0.5) <= duration.hist.quantile(0.99).max(1));
        assert!(
            dump.histograms.iter().any(|h| h.name == "clara_stage_duration_us"),
            "stage histograms registered"
        );
        handle.request_shutdown();
    }
}
