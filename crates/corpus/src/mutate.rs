//! The language-neutral mutation engine: unbounded, reproducible buggy
//! populations over the surface IR.
//!
//! The paper's evaluation leans on thousands of real incorrect student
//! attempts; the AST-level [`crate::mutation`] engine substitutes for them in
//! MiniPy only. This module plays the same role for *every* frontend — the
//! part the C-Pack of IPAs benchmark plays for C repair tools: it desugars a
//! correct seed program into the language-neutral surface IR (via its
//! [`Frontend`]), applies one of a catalog of student-realistic
//! [`MutationOp`]s, renders the rewritten function back through the same
//! frontend's pretty-printer (so variants are *real source files* that
//! re-parse), and classifies each variant with the problem's grader into
//! [`MutantBucket`]s:
//!
//! * `still-correct` — the perturbation happened to preserve behaviour on
//!   the test suite (these are discarded by corpus generation but counted,
//!   they calibrate operator strength);
//! * `wrong-answer` — every test completes, at least one disagrees with the
//!   expectation (the population the repair pipeline is evaluated on);
//! * `crashes-or-diverges` — at least one test crashes, exhausts its step
//!   budget or gets stuck (dropped loop increments, negated loop bounds).
//!
//! Generation is fully deterministic given [`MutationConfig::seed`]: the
//! only randomness source is a `ChaCha8Rng`, candidates are deduplicated by
//! structural hash through a `HashSet` that is never iterated, and seeds and
//! operators are visited in fixed round-robin order.

use std::collections::HashSet;

use clara_lang::ast::{BinOp, Expr, Lit, UnOp};
use clara_model::frontend::{grading_fuel, Frontend, Lang};
use clara_model::surface::{
    assigned_vars, expr_slots_mut, for_each_block_mut, rename_vars, SurfaceFunction, SurfaceStmt,
};
use clara_model::{execute, TraceStatus};
use rand::seq::SliceRandom;
use rand::{Rng, RngCore};

use crate::mutation::{children_of, rebuild};
use crate::problem::Problem;

/// The catalog of student-realistic mutation operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum MutationOp {
    /// Perturb a loop bound by one (`b <= k` → `b <= k - 1`, or a
    /// `range(...)` bound for iterator loops).
    OffByOneBound,
    /// Replace a comparison operator (`<` → `<=`, `==` → `!=`, ...).
    FlipComparison,
    /// Swap two variables throughout the function.
    SwapVariables,
    /// Remove one simple statement from a block.
    DropStatement,
    /// Swap two adjacent statements in a block.
    ReorderStatements,
    /// Perturb a literal initialiser (`0` → `1`, `1` → `0`, `k` → `k±1`).
    WrongInitializer,
    /// Remove a `return` statement.
    DropReturn,
    /// Remove an output statement.
    DropOutput,
    /// Negate a branch condition.
    NegateBranch,
    /// Replace an arithmetic operator (`+` → `-`, `%` → `/`, ...).
    FlipArithmetic,
    /// Duplicate a whole loop statement in place — the "split my loop into
    /// two passes" student pattern. Changes the control-flow skeleton (an
    /// extra loop location), which is exactly what the strict matcher of
    /// Definition 4.4 rejects.
    DuplicateLoop,
    /// Wrap a loop in a redundant `if` guard on its own entry condition
    /// (`if (n > 0) { while (n > 0) ... }`). Semantically inert on its own,
    /// but the branch-containing-a-loop becomes a real branch in the model,
    /// so the structural signature diverges from every unguarded seed.
    GuardLoop,
}

impl MutationOp {
    /// Every operator of the single-fault catalog, in a fixed order. The
    /// structure-changing operators ([`MutationOp::structural`]) are kept
    /// out of this list on purpose: adding them here would shift the
    /// round-robin operator stream of [`derive_mutants`] and silently
    /// regenerate every seeded single-fault corpus.
    pub fn all() -> &'static [MutationOp] {
        &[
            MutationOp::OffByOneBound,
            MutationOp::FlipComparison,
            MutationOp::SwapVariables,
            MutationOp::DropStatement,
            MutationOp::ReorderStatements,
            MutationOp::WrongInitializer,
            MutationOp::DropReturn,
            MutationOp::DropOutput,
            MutationOp::NegateBranch,
            MutationOp::FlipArithmetic,
        ]
    }

    /// The structure-changing operators: they perturb the control-flow
    /// skeleton itself, producing the loop-unrolled/-split population the
    /// paper's §7 names as its dominant repair-failure mode.
    pub fn structural() -> &'static [MutationOp] {
        &[MutationOp::DuplicateLoop, MutationOp::GuardLoop]
    }

    /// The full catalog multi-fault chains draw from: every single-fault
    /// operator plus the structural ones.
    pub fn chain_catalog() -> &'static [MutationOp] {
        &[
            MutationOp::OffByOneBound,
            MutationOp::FlipComparison,
            MutationOp::SwapVariables,
            MutationOp::DropStatement,
            MutationOp::ReorderStatements,
            MutationOp::WrongInitializer,
            MutationOp::DropReturn,
            MutationOp::DropOutput,
            MutationOp::NegateBranch,
            MutationOp::FlipArithmetic,
            MutationOp::DuplicateLoop,
            MutationOp::GuardLoop,
        ]
    }

    /// The inverse of [`MutationOp::name`]; `None` for unknown names. The
    /// on-disk regression corpus stores operators by name, so entries stay
    /// readable and survive enum reordering.
    pub fn from_name(name: &str) -> Option<MutationOp> {
        MutationOp::chain_catalog().iter().copied().find(|op| op.name() == name)
    }

    /// Stable kebab-case name, used in reports and JSON artifacts.
    pub fn name(self) -> &'static str {
        match self {
            MutationOp::OffByOneBound => "off-by-one-bound",
            MutationOp::FlipComparison => "flip-comparison",
            MutationOp::SwapVariables => "swap-variables",
            MutationOp::DropStatement => "drop-statement",
            MutationOp::ReorderStatements => "reorder-statements",
            MutationOp::WrongInitializer => "wrong-initializer",
            MutationOp::DropReturn => "drop-return",
            MutationOp::DropOutput => "drop-output",
            MutationOp::NegateBranch => "negate-branch",
            MutationOp::FlipArithmetic => "flip-arithmetic",
            MutationOp::DuplicateLoop => "duplicate-loop",
            MutationOp::GuardLoop => "guard-loop",
        }
    }
}

/// One recorded application of a mutation operator inside a fault chain:
/// the operator plus the seed of the private RNG that chose its site. A
/// chain of `FaultStep`s replays deterministically — apply the steps in
/// order, each with a `ChaCha8Rng` seeded from its recorded seed — which is
/// what makes delta-debugging over the applied-operator list sound.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct FaultStep {
    /// The operator that was applied.
    pub op: MutationOp,
    /// Seed of the RNG that drove its (random) site selection.
    pub seed: u64,
}

/// Applies one recorded fault step. Returns `false` when the operator finds
/// no applicable site — replay of a recorded chain treats that as failure
/// to reproduce.
pub fn apply_step(function: &mut SurfaceFunction, step: FaultStep) -> bool {
    use rand::SeedableRng;
    let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(step.seed);
    apply_op(function, step.op, &mut rng)
}

/// How the problem's grader classified a generated variant.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum MutantBucket {
    /// Passes the full test suite.
    StillCorrect,
    /// Completes on every test, fails at least one.
    WrongAnswer,
    /// Crashes, exhausts the step budget or gets stuck on some test.
    CrashesOrDiverges,
}

impl MutantBucket {
    /// Stable kebab-case name, used in reports and JSON artifacts.
    pub fn name(self) -> &'static str {
        match self {
            MutantBucket::StillCorrect => "still-correct",
            MutantBucket::WrongAnswer => "wrong-answer",
            MutantBucket::CrashesOrDiverges => "crashes-or-diverges",
        }
    }
}

/// One generated variant: real source text plus its provenance.
#[derive(Debug, Clone)]
pub struct SurfaceMutant {
    /// The rendered source text (re-parses through the problem's frontend).
    pub source: String,
    /// The operator that produced it.
    pub op: MutationOp,
    /// The grader's classification.
    pub bucket: MutantBucket,
    /// Formatting-insensitive hash of the re-parsed variant (distinctness
    /// witness).
    pub structural_hash: u64,
    /// Index of the seed solution the variant was derived from.
    pub seed_index: usize,
}

/// Generation parameters of [`derive_mutants`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MutationConfig {
    /// RNG seed; generation is fully deterministic given it.
    pub seed: u64,
    /// Stop once this many *distinct wrong-answer* mutants were produced.
    pub target_wrong_answer: usize,
    /// Hard cap on mutation attempts (a seed pool that cannot produce the
    /// target must still terminate).
    pub max_attempts: usize,
}

impl Default for MutationConfig {
    fn default() -> Self {
        MutationConfig { seed: 0xB0661E5, target_wrong_answer: 25, max_attempts: 4_000 }
    }
}

/// Bookkeeping of one [`derive_mutants`] run (every discarded candidate is
/// counted — silent truncation would read as coverage).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct MutationStats {
    /// Mutation attempts made.
    pub attempts: usize,
    /// Attempts where the operator found no applicable site.
    pub inapplicable: usize,
    /// Variants the frontend could not render back to source.
    pub unrenderable: usize,
    /// Rendered variants that failed to re-parse (must stay 0; asserted by
    /// tests).
    pub reparse_failures: usize,
    /// Variants lost anywhere on the surface-IR → source → re-parse round
    /// trip (`unrenderable + reparse_failures`): the aggregate
    /// render-failure bucket. Such variants are *skipped and counted*, never
    /// fatal — one non-round-tripping tree must not abort a generation run.
    pub render_failures: usize,
    /// Variants structurally identical to a seed or an earlier variant.
    pub duplicates: usize,
    /// Variants that re-parsed but could not be graded (unsupported by the
    /// problem's execution engine).
    pub ungradable: usize,
}

/// The frontend serving `lang`. A local registry: `clara-corpus` sits below
/// `clara-core` (where the canonical registry lives) but already depends on
/// both frontend crates.
pub fn frontend_for(lang: Lang) -> &'static dyn Frontend {
    match lang {
        Lang::MiniPy => &clara_model::frontend::MINIPY,
        Lang::MiniC => &clara_c::MINIC,
    }
}

/// Derives buggy variants of every seed solution of `problem`, cycling
/// seeds and operators round-robin until [`MutationConfig::target_wrong_answer`]
/// distinct wrong-answer mutants exist (or the attempt budget runs out).
/// All three buckets are returned; callers filter.
pub fn derive_mutants(problem: &Problem, config: &MutationConfig) -> (Vec<SurfaceMutant>, MutationStats) {
    use rand::SeedableRng;
    let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(config.seed ^ crate::stable_name_hash(problem.name));
    let frontend = frontend_for(problem.lang);

    // Desugar every seed once; seeds that fail to desugar are skipped (the
    // built-in corpora all desugar, asserted by tests).
    let surfaces: Vec<(usize, SurfaceFunction)> = problem
        .seeds
        .iter()
        .enumerate()
        .filter_map(|(i, seed)| {
            let parsed = frontend.parse(seed).ok()?;
            Some((i, parsed.surface(problem.entry).ok()?))
        })
        .collect();
    if surfaces.is_empty() {
        // A seed pool that cannot desugar produces nothing — reported
        // through the (all-zero) stats rather than a panic, so a bad
        // problem definition degrades instead of aborting a whole
        // multi-problem generation run.
        return (Vec::new(), MutationStats::default());
    }

    // Seen hashes start with the seeds themselves: a "mutant" structurally
    // identical to any correct seed is not a mutant.
    let mut seen: HashSet<u64> = problem
        .seeds
        .iter()
        .filter_map(|seed| frontend.parse(seed).ok().map(|p| p.structural_hash()))
        .collect();

    let ops = MutationOp::all();
    let mut mutants = Vec::new();
    let mut stats = MutationStats::default();
    let mut wrong_answer = 0usize;
    while wrong_answer < config.target_wrong_answer && stats.attempts < config.max_attempts {
        let op = ops[stats.attempts % ops.len()];
        let (seed_index, surface) = &surfaces[(stats.attempts / ops.len()) % surfaces.len()];
        stats.attempts += 1;

        let mut mutated = surface.clone();
        if !apply_op(&mut mutated, op, &mut rng) {
            stats.inapplicable += 1;
            continue;
        }
        let Some((source, structural_hash)) = realize_variant(frontend, &mutated, &mut stats) else {
            continue;
        };
        if !seen.insert(structural_hash) {
            stats.duplicates += 1;
            continue;
        }
        let Some(bucket) = classify(problem, &source) else {
            stats.ungradable += 1;
            continue;
        };
        if bucket == MutantBucket::WrongAnswer {
            wrong_answer += 1;
        }
        mutants.push(SurfaceMutant { source, op, bucket, structural_hash, seed_index: *seed_index });
    }
    (mutants, stats)
}

/// Renders a rewritten surface function back to source and re-parses it,
/// returning the source text plus its structural hash. Variants that do not
/// survive the round trip are counted in [`MutationStats::render_failures`]
/// (split into `unrenderable` / `reparse_failures`) and skipped — never a
/// panic, so one non-round-tripping tree cannot abort a generation run.
pub fn realize_variant(
    frontend: &dyn Frontend,
    mutated: &SurfaceFunction,
    stats: &mut MutationStats,
) -> Option<(String, u64)> {
    let source = match frontend.render_function(mutated) {
        Ok(source) => source,
        Err(_) => {
            stats.unrenderable += 1;
            stats.render_failures += 1;
            return None;
        }
    };
    match frontend.parse(&source) {
        Ok(parsed) => {
            let hash = parsed.structural_hash();
            Some((source, hash))
        }
        Err(_) => {
            stats.reparse_failures += 1;
            stats.render_failures += 1;
            None
        }
    }
}

/// Generation parameters of [`derive_multi_fault_mutants`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MultiFaultConfig {
    /// RNG seed; generation is fully deterministic given it.
    pub seed: u64,
    /// Stop once this many *distinct wrong-answer* mutants were produced.
    pub target_wrong_answer: usize,
    /// Hard cap on chain-building attempts.
    pub max_attempts: usize,
    /// Minimum number of applied operators per variant (chains that fall
    /// short — too few applicable sites — are discarded as inapplicable).
    pub min_faults: usize,
    /// Maximum number of applied operators per variant.
    pub max_faults: usize,
    /// When `true`, every chain leads with a structure-changing operator
    /// ([`MutationOp::structural`]) — the generator of the
    /// loop-structure-divergent pool the flexible-alignment experiments
    /// measure against.
    pub require_structural: bool,
}

impl Default for MultiFaultConfig {
    fn default() -> Self {
        MultiFaultConfig {
            seed: 0xFA17_C0DE,
            target_wrong_answer: 25,
            max_attempts: 4_000,
            min_faults: 2,
            max_faults: 4,
            require_structural: false,
        }
    }
}

/// One multi-fault variant: real source text plus the recorded fault chain
/// that reproduces it from its seed solution.
#[derive(Debug, Clone)]
pub struct MultiFaultMutant {
    /// The rendered source text (re-parses through the problem's frontend).
    pub source: String,
    /// The applied operator chain, in application order, with per-step RNG
    /// seeds — replayable via [`replay_steps`].
    pub steps: Vec<FaultStep>,
    /// The grader's classification.
    pub bucket: MutantBucket,
    /// Formatting-insensitive hash of the re-parsed variant.
    pub structural_hash: u64,
    /// Index of the seed solution the chain starts from.
    pub seed_index: usize,
}

/// Derives variants carrying composed chains of 2–4 faults (the multi-fault
/// reality of real student submissions — single-operator mutants are
/// systematically easier to repair than what instructors actually see).
/// Seeds rotate round-robin; operators and per-step site selection are
/// drawn from a `ChaCha8Rng`, so generation is fully deterministic given
/// [`MultiFaultConfig::seed`]. Every applied step's RNG seed is recorded,
/// which makes each mutant replayable and therefore minimizable.
pub fn derive_multi_fault_mutants(
    problem: &Problem,
    config: &MultiFaultConfig,
) -> (Vec<MultiFaultMutant>, MutationStats) {
    use rand::SeedableRng;
    // A different stream than the single-fault engine on purpose: the two
    // generators must not produce correlated site choices.
    let stream = config.seed ^ crate::stable_name_hash(problem.name) ^ 0x6D75_6C74_6966_6C74;
    let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(stream);
    let frontend = frontend_for(problem.lang);

    let surfaces: Vec<(usize, SurfaceFunction)> = problem
        .seeds
        .iter()
        .enumerate()
        .filter_map(|(i, seed)| {
            let parsed = frontend.parse(seed).ok()?;
            Some((i, parsed.surface(problem.entry).ok()?))
        })
        .collect();
    let mut stats = MutationStats::default();
    if surfaces.is_empty() {
        return (Vec::new(), stats);
    }
    let mut seen: HashSet<u64> = problem
        .seeds
        .iter()
        .filter_map(|seed| frontend.parse(seed).ok().map(|p| p.structural_hash()))
        .collect();

    let catalog = MutationOp::chain_catalog();
    let structural = MutationOp::structural();
    let min_faults = config.min_faults.max(1);
    let max_faults = config.max_faults.max(min_faults);
    let mut mutants = Vec::new();
    let mut wrong_answer = 0usize;
    while wrong_answer < config.target_wrong_answer && stats.attempts < config.max_attempts {
        let (seed_index, surface) = &surfaces[stats.attempts % surfaces.len()];
        stats.attempts += 1;

        let chain_len = rng.gen_range(min_faults..max_faults + 1);
        let mut mutated = surface.clone();
        let mut steps: Vec<FaultStep> = Vec::with_capacity(chain_len);
        // Inapplicable operators are re-drawn (bounded): a chain only counts
        // the steps that actually applied.
        let mut draws = 0usize;
        while steps.len() < chain_len && draws < chain_len * 4 {
            draws += 1;
            let op = if steps.is_empty() && config.require_structural {
                structural[rng.gen_range(0..structural.len())]
            } else {
                catalog[rng.gen_range(0..catalog.len())]
            };
            let step = FaultStep { op, seed: rng.next_u64() };
            if apply_step(&mut mutated, step) {
                steps.push(step);
            }
        }
        if steps.len() < min_faults {
            stats.inapplicable += 1;
            continue;
        }
        let Some((source, structural_hash)) = realize_variant(frontend, &mutated, &mut stats) else {
            continue;
        };
        if !seen.insert(structural_hash) {
            stats.duplicates += 1;
            continue;
        }
        let Some(bucket) = classify(problem, &source) else {
            stats.ungradable += 1;
            continue;
        };
        if bucket == MutantBucket::WrongAnswer {
            wrong_answer += 1;
        }
        mutants.push(MultiFaultMutant { source, steps, bucket, structural_hash, seed_index: *seed_index });
    }
    (mutants, stats)
}

/// Replays a recorded fault chain from its seed solution: every step must
/// apply, and the result must survive the render/re-parse round trip.
/// Returns the rendered source plus its structural hash; `None` means the
/// chain does not reproduce (a regression-corpus integrity failure when the
/// chain was previously recorded as reproducing).
pub fn replay_steps(problem: &Problem, seed_index: usize, steps: &[FaultStep]) -> Option<(String, u64)> {
    let frontend = frontend_for(problem.lang);
    let seed = problem.seeds.get(seed_index)?;
    let parsed = frontend.parse(seed).ok()?;
    let mut surface = parsed.surface(problem.entry).ok()?;
    for step in steps {
        if !apply_step(&mut surface, *step) {
            return None;
        }
    }
    let source = frontend.render_function(&surface).ok()?;
    let reparsed = frontend.parse(&source).ok()?;
    Some((source, reparsed.structural_hash()))
}

/// Replays a chain and returns the rendered source only when the grader
/// still classifies it wrong-answer — the "killed" predicate that
/// delta-debugging minimizes against.
pub fn chain_still_fails(problem: &Problem, seed_index: usize, steps: &[FaultStep]) -> Option<String> {
    let (source, _) = replay_steps(problem, seed_index, steps)?;
    (classify(problem, &source)? == MutantBucket::WrongAnswer).then_some(source)
}

/// Delta-debugs a killed chain down to its smallest still-failing core: the
/// shortest subsequence of the applied-operator list whose replay still
/// grades wrong-answer. Chains are at most 4 operators, so subsequences are
/// enumerated exhaustively in (size, lexicographic) order — at most 2⁴
/// replays — which makes the result canonical: minimization is
/// deterministic and idempotent (re-minimizing a minimized chain returns it
/// unchanged; property-tested).
pub fn minimize_steps(problem: &Problem, seed_index: usize, steps: &[FaultStep]) -> Vec<FaultStep> {
    for size in 1..steps.len() {
        let mut indices: Vec<usize> = (0..size).collect();
        loop {
            let subset: Vec<FaultStep> = indices.iter().map(|&i| steps[i]).collect();
            if chain_still_fails(problem, seed_index, &subset).is_some() {
                return subset;
            }
            if !next_combination(&mut indices, steps.len()) {
                break;
            }
        }
    }
    steps.to_vec()
}

/// Advances `indices` to the next k-combination of `0..n` in lexicographic
/// order; `false` once exhausted.
fn next_combination(indices: &mut [usize], n: usize) -> bool {
    let k = indices.len();
    let mut i = k;
    while i > 0 {
        i -= 1;
        if indices[i] < n - (k - i) {
            indices[i] += 1;
            for j in i + 1..k {
                indices[j] = indices[j - 1] + 1;
            }
            return true;
        }
    }
    false
}

/// Classifies a source text with the problem's grader: the MiniPy
/// interpreter (its real grading engine) or MiniC model execution (ditto).
/// Returns `None` when the text does not parse or cannot be executed.
pub fn classify(problem: &Problem, source: &str) -> Option<MutantBucket> {
    match problem.lang {
        Lang::MiniPy => {
            let parsed = clara_lang::parse_program(source).ok()?;
            let report = problem.spec.grade(&parsed);
            Some(if report.results.iter().any(|r| r.error.is_some()) {
                MutantBucket::CrashesOrDiverges
            } else if report.all_passed() {
                MutantBucket::StillCorrect
            } else {
                MutantBucket::WrongAnswer
            })
        }
        Lang::MiniC => {
            let parsed = clara_c::parse_c_program(source).ok()?;
            let program = clara_c::lower_entry(&parsed, problem.entry).ok()?;
            let fuel = grading_fuel(&problem.spec);
            let mut wrong = false;
            for test in &problem.spec.tests {
                let trace = execute(&program, &test.args, fuel);
                if trace.status != TraceStatus::Completed {
                    return Some(MutantBucket::CrashesOrDiverges);
                }
                if !test.expected.matches(&trace.return_value(), &trace.output()) {
                    wrong = true;
                }
            }
            Some(if wrong { MutantBucket::WrongAnswer } else { MutantBucket::StillCorrect })
        }
    }
}

/// Applies `op` at a random applicable site of `function`. Returns `false`
/// when the function has no site for this operator.
pub fn apply_op<R: Rng>(function: &mut SurfaceFunction, op: MutationOp, rng: &mut R) -> bool {
    match op {
        MutationOp::OffByOneBound => off_by_one_bound(function, rng),
        MutationOp::FlipComparison => rewrite_random_expr(function, rng, &mut |expr, rng| match expr {
            Expr::Binary(op, lhs, rhs) if op.is_comparison() => {
                let alternatives = [BinOp::Lt, BinOp::Le, BinOp::Gt, BinOp::Ge, BinOp::Eq, BinOp::Ne];
                let choices: Vec<BinOp> = alternatives.iter().copied().filter(|o| o != op).collect();
                let new_op = *choices.choose(rng)?;
                Some(Expr::Binary(new_op, lhs.clone(), rhs.clone()))
            }
            _ => None,
        }),
        MutationOp::SwapVariables => swap_variables(function, rng),
        MutationOp::DropStatement => drop_statement(function, rng),
        MutationOp::ReorderStatements => reorder_statements(function, rng),
        MutationOp::WrongInitializer => wrong_initializer(function, rng),
        MutationOp::DropReturn => drop_kind(function, rng, &|s| matches!(s, SurfaceStmt::Return { .. })),
        MutationOp::DropOutput => drop_kind(function, rng, &|s| matches!(s, SurfaceStmt::Output { .. })),
        MutationOp::NegateBranch => negate_branch(function, rng),
        MutationOp::FlipArithmetic => rewrite_random_expr(function, rng, &mut |expr, _| match expr {
            Expr::Binary(op, lhs, rhs) => {
                let new_op = match op {
                    BinOp::Add => BinOp::Sub,
                    BinOp::Sub => BinOp::Add,
                    BinOp::Mul => BinOp::Add,
                    BinOp::Div | BinOp::FloorDiv => BinOp::Mul,
                    BinOp::Mod => BinOp::FloorDiv,
                    _ => return None,
                };
                Some(Expr::Binary(new_op, lhs.clone(), rhs.clone()))
            }
            _ => None,
        }),
        MutationOp::DuplicateLoop => duplicate_loop(function, rng),
        MutationOp::GuardLoop => guard_loop(function, rng),
    }
}

/// Duplicates one loop statement in place (`while c: B` → two consecutive
/// copies) — the "split the work into two passes" student shape. The second
/// copy often never runs (its condition is already false), so the variant
/// can even stay correct while its control-flow skeleton diverges from
/// every seed.
fn duplicate_loop<R: Rng>(function: &mut SurfaceFunction, rng: &mut R) -> bool {
    edit_random_stmt(
        function,
        rng,
        &|block, i| matches!(block[i], SurfaceStmt::While { .. } | SurfaceStmt::ForEach { .. }),
        &|block, i| {
            let copy = block[i].clone();
            block.insert(i + 1, copy);
        },
    )
}

/// Wraps one loop in a redundant `if` guard on its own entry condition —
/// `while (c) B` → `if (c) { while (c) B }`. Behaviour-preserving in
/// isolation, but an `if` containing a loop lowers to a real branch, so the
/// structural signature gains a `Branch` node no seed has.
fn guard_loop<R: Rng>(function: &mut SurfaceFunction, rng: &mut R) -> bool {
    edit_random_stmt(
        function,
        rng,
        &|block, i| matches!(block[i], SurfaceStmt::While { .. } | SurfaceStmt::ForEach { .. }),
        &|block, i| {
            let stmt = block[i].clone();
            let (guard, line) = match &stmt {
                SurfaceStmt::While { cond, line, .. } => (cond.clone(), *line),
                SurfaceStmt::ForEach { iter, line, .. } => (
                    Expr::bin(BinOp::Gt, Expr::Call("len".to_owned(), vec![iter.clone()]), Expr::int(0)),
                    *line,
                ),
                _ => return,
            };
            block[i] = SurfaceStmt::If { cond: guard, then_body: vec![stmt], else_body: vec![], line };
        },
    )
}

/// Applies `f` to one random expression node of the function: every
/// expression slot is a candidate root, and within a slot the rewrite is
/// tried at the node itself first, then inside a random child.
fn rewrite_random_expr<R: Rng>(
    function: &mut SurfaceFunction,
    rng: &mut R,
    f: &mut dyn FnMut(&Expr, &mut R) -> Option<Expr>,
) -> bool {
    let mut slots = Vec::new();
    expr_slots_mut(&mut function.body, &mut slots);
    slots.shuffle(rng);
    for slot in slots {
        if let Some(rewritten) = rewrite_expr_node(slot, rng, f) {
            *slot = rewritten;
            return true;
        }
    }
    false
}

fn rewrite_expr_node<R: Rng>(
    expr: &Expr,
    rng: &mut R,
    f: &mut dyn FnMut(&Expr, &mut R) -> Option<Expr>,
) -> Option<Expr> {
    if let Some(rewritten) = f(expr, rng) {
        return Some(rewritten);
    }
    let children = children_of(expr);
    if children.is_empty() {
        return None;
    }
    let mut order: Vec<usize> = (0..children.len()).collect();
    order.shuffle(rng);
    for child_index in order {
        if let Some(new_child) = rewrite_expr_node(&children[child_index], rng, f) {
            let mut new_children = children.clone();
            new_children[child_index] = new_child;
            return Some(rebuild(expr, &new_children));
        }
    }
    None
}

/// Off-by-one in a loop bound: a comparison operand inside a `while`
/// condition gains a `± 1`, or a `range(...)` bound of an iterator loop is
/// shifted/dropped (the MiniPy spelling of the same student bug).
fn off_by_one_bound<R: Rng>(function: &mut SurfaceFunction, rng: &mut R) -> bool {
    // Collect the loop-head expression slots only.
    fn loop_heads<'a>(body: &'a mut [SurfaceStmt], out: &mut Vec<(&'a mut Expr, bool)>) {
        for stmt in body {
            match stmt {
                SurfaceStmt::While { cond, body, .. } => {
                    out.push((cond, false));
                    loop_heads(body, out);
                }
                SurfaceStmt::ForEach { iter, body, .. } => {
                    out.push((iter, true));
                    loop_heads(body, out);
                }
                SurfaceStmt::If { then_body, else_body, .. } => {
                    loop_heads(then_body, out);
                    loop_heads(else_body, out);
                }
                _ => {}
            }
        }
    }
    let mut heads = Vec::new();
    loop_heads(&mut function.body, &mut heads);
    heads.shuffle(rng);
    for (slot, is_iter) in heads {
        if is_iter {
            // `range(a, b)` -> `range(b)` / `range(a)` / `range(a, b - 1)`.
            if let Expr::Call(name, args) = &*slot {
                if (name == "range" || name == "xrange") && !args.is_empty() {
                    let last = args.len() - 1;
                    let mut new_args = args.clone();
                    match rng.gen_range(0..2u32) {
                        0 if args.len() == 2 => new_args = vec![args[1].clone()],
                        _ => new_args[last] = Expr::bin(BinOp::Sub, new_args[last].clone(), Expr::int(1)),
                    }
                    *slot = Expr::Call(name.clone(), new_args);
                    return true;
                }
            }
        } else if let Expr::Binary(op, lhs, rhs) = &*slot {
            if op.is_comparison() {
                let delta = if rng.gen_bool(0.5) { BinOp::Add } else { BinOp::Sub };
                let new_rhs = Expr::bin(delta, (**rhs).clone(), Expr::int(1));
                *slot = Expr::Binary(*op, lhs.clone(), Box::new(new_rhs));
                return true;
            }
        }
    }
    false
}

fn swap_variables<R: Rng>(function: &mut SurfaceFunction, rng: &mut R) -> bool {
    let mut vars: Vec<String> = function.params.clone();
    assigned_vars(&function.body, &mut vars);
    if vars.len() < 2 {
        return false;
    }
    vars.shuffle(rng);
    let (a, b) = (vars[0].clone(), vars[1].clone());
    // Only the *uses* are swapped (params keep their declared order), which
    // is exactly the "used the wrong accumulator" student bug.
    let mapping = std::collections::HashMap::from([(a.clone(), b.clone()), (b, a)]);
    rename_vars(&mut function.body, &mapping);
    true
}

/// Picks one statement position satisfying `pred` uniformly over all blocks
/// and replaces it with the result of `replace` (or removes it).
fn edit_random_stmt<R: Rng>(
    function: &mut SurfaceFunction,
    rng: &mut R,
    pred: &dyn Fn(&[SurfaceStmt], usize) -> bool,
    edit: &dyn Fn(&mut Vec<SurfaceStmt>, usize),
) -> bool {
    // First pass: count candidate positions.
    let mut candidates = 0usize;
    for_each_block_mut(&mut function.body, &mut |block| {
        for i in 0..block.len() {
            if pred(block, i) {
                candidates += 1;
            }
        }
    });
    if candidates == 0 {
        return false;
    }
    let chosen = rng.gen_range(0..candidates);
    // Second pass: apply at the chosen ordinal (block visit order is
    // deterministic).
    let mut ordinal = 0usize;
    let mut done = false;
    for_each_block_mut(&mut function.body, &mut |block| {
        if done {
            return;
        }
        for i in 0..block.len() {
            if pred(block, i) {
                if ordinal == chosen {
                    edit(block, i);
                    done = true;
                    return;
                }
                ordinal += 1;
            }
        }
    });
    done
}

fn drop_statement<R: Rng>(function: &mut SurfaceFunction, rng: &mut R) -> bool {
    edit_random_stmt(
        function,
        rng,
        &|block, i| {
            block.len() > 1
                && matches!(
                    block[i],
                    SurfaceStmt::Assign { .. } | SurfaceStmt::Output { .. } | SurfaceStmt::Return { .. }
                )
        },
        &|block, i| {
            block.remove(i);
        },
    )
}

fn drop_kind<R: Rng>(
    function: &mut SurfaceFunction,
    rng: &mut R,
    kind: &dyn Fn(&SurfaceStmt) -> bool,
) -> bool {
    edit_random_stmt(function, rng, &|block, i| kind(&block[i]), &|block, i| {
        // Keep the block non-empty (an empty branch renders fine, but an
        // empty function body would not grade meaningfully).
        let line = block[i].line();
        block[i] = SurfaceStmt::Nop { line };
    })
}

fn reorder_statements<R: Rng>(function: &mut SurfaceFunction, rng: &mut R) -> bool {
    fn swappable(stmt: &SurfaceStmt) -> bool {
        matches!(
            stmt,
            SurfaceStmt::Assign { .. }
                | SurfaceStmt::Output { .. }
                | SurfaceStmt::If { .. }
                | SurfaceStmt::While { .. }
                | SurfaceStmt::ForEach { .. }
        )
    }
    edit_random_stmt(
        function,
        rng,
        &|block, i| i + 1 < block.len() && swappable(&block[i]) && swappable(&block[i + 1]),
        &|block, i| block.swap(i, i + 1),
    )
}

fn wrong_initializer<R: Rng>(function: &mut SurfaceFunction, rng: &mut R) -> bool {
    let flip = rng.gen_bool(0.5);
    edit_random_stmt(
        function,
        rng,
        &|block, i| {
            matches!(
                &block[i],
                SurfaceStmt::Assign { value, .. }
                    if matches!(value, Expr::Lit(Lit::Int(_)) | Expr::Lit(Lit::Float(_)))
                        || *value == Expr::List(vec![])
            )
        },
        &|block, i| {
            if let SurfaceStmt::Assign { value, .. } = &mut block[i] {
                *value = match &*value {
                    Expr::Lit(Lit::Int(0)) => Expr::int(1),
                    Expr::Lit(Lit::Int(1)) => Expr::int(0),
                    Expr::Lit(Lit::Int(k)) => Expr::int(k + if flip { 1 } else { -1 }),
                    Expr::Lit(Lit::Float(f)) => Expr::float(f + 1.0),
                    _ => Expr::int(0), // the empty list
                };
            }
        },
    )
}

fn negate_branch<R: Rng>(function: &mut SurfaceFunction, rng: &mut R) -> bool {
    edit_random_stmt(function, rng, &|block, i| matches!(block[i], SurfaceStmt::If { .. }), &|block, i| {
        if let SurfaceStmt::If { cond, .. } = &mut block[i] {
            *cond = Expr::Unary(UnOp::Not, Box::new(cond.clone()));
        }
    })
}

/// Expands `problem`'s correct pool to `target` verified-correct solutions,
/// the population size the retrieval-scaling experiments need (a classroom
/// pool is ~60; a MOOC pool is 10k+).
///
/// Two generators fill the pool beyond the hand-written seeds, both fully
/// deterministic given `seed`:
///
/// 1. **Still-correct mutants** of [`derive_mutants`] — perturbations the
///    grader cannot distinguish from the seed. Their *internal* behaviour
///    usually differs, so they open new clusters, like genuinely different
///    student strategies.
/// 2. **Dead-variable padding**: a fresh `pad_k = k` assignment is prepended
///    to a seed's body. Correct by construction (the variable is never
///    read), distinct per `k` both structurally (the literal) and
///    dynamically (the variable's value), so each padded variant opens its
///    own cluster — the cheap bulk that makes 10k-cluster pools tractable
///    to generate.
///
/// Every generated variant is re-verified with the problem's grader;
/// anything that does not classify as still-correct is discarded.
pub fn correct_pool(problem: &Problem, target: usize, seed: u64) -> Vec<String> {
    let mut pool: Vec<String> = problem.seeds.iter().map(|s| (*s).to_owned()).collect();
    pool.truncate(target);
    if pool.len() >= target {
        return pool;
    }

    // Harvest still-correct mutants (bounded: each attempt runs the grader).
    let config = MutationConfig { seed, target_wrong_answer: usize::MAX, max_attempts: 2_000 };
    let (mutants, _) = derive_mutants(problem, &config);
    for mutant in mutants {
        if pool.len() >= target {
            return pool;
        }
        if mutant.bucket == MutantBucket::StillCorrect {
            pool.push(mutant.source);
        }
    }

    // Dead-variable padding fills the rest.
    let frontend = frontend_for(problem.lang);
    let surfaces: Vec<SurfaceFunction> = problem
        .seeds
        .iter()
        .filter_map(|s| frontend.parse(s).ok().and_then(|p| p.surface(problem.entry).ok()))
        .collect();
    if surfaces.is_empty() {
        // No seed desugars: padding cannot run (`k % 0` would panic).
        return pool;
    }
    let mut k = 0usize;
    let mut misses = 0usize;
    while pool.len() < target && misses < 100 {
        let mut padded = surfaces[k % surfaces.len()].clone();
        padded
            .body
            .insert(0, SurfaceStmt::Assign { var: format!("pad_{k}"), value: Expr::int(k as i64), line: 1 });
        k += 1;
        let Ok(source) = frontend.render_function(&padded) else {
            misses += 1;
            continue;
        };
        if classify(problem, &source) == Some(MutantBucket::StillCorrect) {
            pool.push(source);
        } else {
            misses += 1;
        }
    }
    pool
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::minic::{all_minic_problems, fibonacci_c};
    use crate::mooc::derivatives;
    use crate::study::{fibonacci, special_number};

    fn small_config() -> MutationConfig {
        MutationConfig { seed: 7, target_wrong_answer: 10, max_attempts: 600 }
    }

    #[test]
    fn derive_mutants_reaches_the_wrong_answer_target_in_both_languages() {
        for problem in [fibonacci(), fibonacci_c()] {
            let (mutants, stats) = derive_mutants(&problem, &small_config());
            let wrong = mutants.iter().filter(|m| m.bucket == MutantBucket::WrongAnswer).count();
            assert!(wrong >= 10, "{}: only {wrong} wrong-answer mutants ({stats:?})", problem.name);
            assert_eq!(stats.reparse_failures, 0, "{}: every mutant must re-parse", problem.name);
        }
    }

    #[test]
    fn every_mutant_reparses_and_its_bucket_matches_the_grader() {
        for problem in [special_number(), fibonacci_c()] {
            let (mutants, _) = derive_mutants(&problem, &small_config());
            assert!(!mutants.is_empty());
            let frontend = frontend_for(problem.lang);
            for mutant in &mutants {
                let parsed = frontend.parse(&mutant.source).expect("mutant re-parses");
                assert_eq!(parsed.structural_hash(), mutant.structural_hash);
                let graded = problem.grade_source(&mutant.source);
                match mutant.bucket {
                    MutantBucket::StillCorrect => assert_eq!(graded, Some(true), "{}", mutant.source),
                    _ => assert_eq!(graded, Some(false), "{}", mutant.source),
                }
            }
        }
    }

    #[test]
    fn mutants_are_structurally_distinct_from_each_other_and_the_seeds() {
        let problem = fibonacci_c();
        let (mutants, _) = derive_mutants(&problem, &small_config());
        let mut hashes = HashSet::new();
        for seed in &problem.seeds {
            hashes.insert(frontend_for(problem.lang).parse(seed).unwrap().structural_hash());
        }
        for mutant in &mutants {
            assert!(hashes.insert(mutant.structural_hash), "duplicate mutant:\n{}", mutant.source);
        }
    }

    #[test]
    fn correct_pool_scales_to_target_with_distinct_verified_solutions() {
        for problem in [derivatives(), fibonacci_c()] {
            let pool = correct_pool(&problem, 80, 11);
            assert_eq!(pool.len(), 80, "{}", problem.name);
            let frontend = frontend_for(problem.lang);
            let mut hashes = HashSet::new();
            for source in &pool {
                assert_eq!(problem.grade_source(source), Some(true), "{}:\n{source}", problem.name);
                hashes.insert(frontend.parse(source).unwrap().structural_hash());
            }
            assert!(hashes.len() >= 78, "{}: only {} distinct members", problem.name, hashes.len());
            // Deterministic given the seed.
            assert_eq!(correct_pool(&problem, 80, 11), pool);
        }
    }

    #[test]
    fn generation_is_deterministic_given_the_seed() {
        let problem = derivatives();
        let (a, _) = derive_mutants(&problem, &small_config());
        let (b, _) = derive_mutants(&problem, &small_config());
        let texts = |ms: &[SurfaceMutant]| ms.iter().map(|m| m.source.clone()).collect::<Vec<_>>();
        assert_eq!(texts(&a), texts(&b));
        let (c, _) = derive_mutants(&problem, &MutationConfig { seed: 8, ..small_config() });
        assert_ne!(texts(&a), texts(&c), "a different seed must change the stream");
    }

    #[test]
    fn the_catalog_is_exercised_broadly() {
        // Across the MiniC problems with a generous budget, most operators
        // of the catalog produce at least one graded mutant.
        let config = MutationConfig { seed: 3, target_wrong_answer: 40, max_attempts: 2_000 };
        let mut ops_seen: HashSet<MutationOp> = HashSet::new();
        for problem in all_minic_problems() {
            let (mutants, _) = derive_mutants(&problem, &config);
            ops_seen.extend(mutants.iter().map(|m| m.op));
        }
        assert!(ops_seen.len() >= 6, "only {} operators produced mutants: {:?}", ops_seen.len(), ops_seen);
    }

    #[test]
    fn buckets_cover_divergence() {
        // Dropping the `m = m / 10` style loop update must eventually
        // produce a crashes-or-diverges mutant.
        let config = MutationConfig { seed: 11, target_wrong_answer: 30, max_attempts: 2_000 };
        let mut diverging = 0usize;
        for problem in all_minic_problems() {
            let (mutants, _) = derive_mutants(&problem, &config);
            diverging += mutants.iter().filter(|m| m.bucket == MutantBucket::CrashesOrDiverges).count();
        }
        assert!(diverging > 0, "no diverging mutant across the MiniC corpus");
    }

    fn multi_config() -> MultiFaultConfig {
        MultiFaultConfig { target_wrong_answer: 8, max_attempts: 1_500, ..Default::default() }
    }

    #[test]
    fn non_round_tripping_surface_trees_are_skipped_not_fatal() {
        // Regression: generation used to panic (`expect("mutant re-parses")`)
        // on any mutant that failed the render/re-parse round trip, aborting
        // the whole run. A surface tree with an unparseable variable name
        // must land in the `render_failures` bucket instead.
        let problem = fibonacci();
        let frontend = frontend_for(problem.lang);
        let mut surface = frontend
            .parse(problem.seeds[0])
            .expect("seed parses")
            .surface(problem.entry)
            .expect("seed has a surface tree");
        let mut mapping = std::collections::HashMap::new();
        let victim = surface.params.first().expect("fibonacci takes an argument").clone();
        mapping.insert(victim, "1 not a name".to_owned());
        clara_model::surface::rename_vars(&mut surface.body, &mapping);
        let mut stats = MutationStats::default();
        assert_eq!(realize_variant(frontend, &surface, &mut stats), None);
        assert_eq!(stats.render_failures, 1, "{stats:?}");
    }

    #[test]
    fn multi_fault_chains_compose_two_to_four_faults_deterministically() {
        for problem in [fibonacci(), fibonacci_c()] {
            let (mutants, stats) = derive_multi_fault_mutants(&problem, &multi_config());
            let wrong = mutants.iter().filter(|m| m.bucket == MutantBucket::WrongAnswer).count();
            assert!(wrong >= 8, "{}: only {wrong} killed multi-fault mutants ({stats:?})", problem.name);
            for mutant in &mutants {
                assert!(
                    (2..=4).contains(&mutant.steps.len()),
                    "{}: chain of {} faults",
                    problem.name,
                    mutant.steps.len()
                );
                // The recorded chain replays to byte-identical source.
                let (source, hash) =
                    replay_steps(&problem, mutant.seed_index, &mutant.steps).expect("recorded chain replays");
                assert_eq!(source, mutant.source);
                assert_eq!(hash, mutant.structural_hash);
            }
            let (again, _) = derive_multi_fault_mutants(&problem, &multi_config());
            let texts = |ms: &[MultiFaultMutant]| ms.iter().map(|m| m.source.clone()).collect::<Vec<_>>();
            assert_eq!(texts(&mutants), texts(&again), "{}: generation must be deterministic", problem.name);
        }
    }

    #[test]
    fn minimization_shrinks_to_a_still_failing_subsequence() {
        let problem = fibonacci();
        let (mutants, _) = derive_multi_fault_mutants(&problem, &multi_config());
        let killed: Vec<_> = mutants.iter().filter(|m| m.bucket == MutantBucket::WrongAnswer).collect();
        assert!(!killed.is_empty());
        let mut shrank = 0usize;
        for mutant in &killed {
            let core = minimize_steps(&problem, mutant.seed_index, &mutant.steps);
            assert!(!core.is_empty() && core.len() <= mutant.steps.len());
            // The core is a subsequence of the original chain.
            let mut it = mutant.steps.iter();
            assert!(
                core.iter().all(|step| it.any(|s| s == step)),
                "core {core:?} is not a subsequence of {:?}",
                mutant.steps
            );
            // And it still fails the spec.
            assert!(
                chain_still_fails(&problem, mutant.seed_index, &core).is_some(),
                "minimized core no longer fails: {core:?}"
            );
            if core.len() < mutant.steps.len() {
                shrank += 1;
            }
        }
        assert!(shrank > 0, "no chain shrank — minimization is vacuous on this pool");
    }

    #[test]
    fn structural_operators_produce_control_flow_divergent_mutants() {
        // DuplicateLoop / GuardLoop exist to break loop-structure
        // correspondence with every seed: at least some killed mutants must
        // lower to a program whose control flow matches no seed solution.
        let problem = fibonacci();
        let config = MultiFaultConfig { require_structural: true, ..multi_config() };
        let (mutants, _) = derive_multi_fault_mutants(&problem, &config);
        let frontend = frontend_for(problem.lang);
        let seed_programs: Vec<_> =
            problem.seeds.iter().map(|s| frontend.parse(s).unwrap().lower(problem.entry).unwrap()).collect();
        let mut divergent = 0usize;
        for mutant in mutants.iter().filter(|m| m.bucket == MutantBucket::WrongAnswer) {
            assert!(mutant.steps.iter().any(|s| MutationOp::structural().contains(&s.op)));
            let program = frontend.parse(&mutant.source).unwrap().lower(problem.entry).unwrap();
            if seed_programs.iter().all(|seed| !seed.same_control_flow(&program)) {
                divergent += 1;
            }
        }
        assert!(divergent > 0, "no structurally divergent killed mutant");
    }

    mod minimization_properties {
        use super::*;
        use proptest::prelude::*;

        proptest! {
            #![proptest_config(ProptestConfig { cases: 6, ..ProptestConfig::default() })]

            // Soundness: for any generation seed, every minimized core still
            // fails the spec and reproduces byte-identically under its
            // recorded per-step seeds. Idempotence: re-minimizing a minimized
            // chain is a fixpoint.
            #[test]
            fn minimization_is_sound_and_idempotent(seed in 0u64..1_000_000) {
                let problem = fibonacci();
                let config = MultiFaultConfig {
                    seed,
                    target_wrong_answer: 3,
                    max_attempts: 600,
                    ..Default::default()
                };
                let (mutants, _) = derive_multi_fault_mutants(&problem, &config);
                for mutant in mutants.iter().filter(|m| m.bucket == MutantBucket::WrongAnswer) {
                    let core = minimize_steps(&problem, mutant.seed_index, &mutant.steps);
                    let replayed = chain_still_fails(&problem, mutant.seed_index, &core);
                    prop_assert!(replayed.is_some(), "core stopped failing: {:?}", core);
                    // Reproducible: replaying twice renders identical source.
                    let (a, _) = replay_steps(&problem, mutant.seed_index, &core).unwrap();
                    let (b, _) = replay_steps(&problem, mutant.seed_index, &core).unwrap();
                    prop_assert_eq!(&a, &b);
                    prop_assert_eq!(replayed.as_deref(), Some(a.as_str()));
                    // Fixpoint: the exhaustive (size, lexicographic) search is
                    // canonical, so a second pass returns the same core.
                    let again = minimize_steps(&problem, mutant.seed_index, &core);
                    prop_assert_eq!(again, core);
                }
            }
        }
    }
}
