//! The language-neutral mutation engine: unbounded, reproducible buggy
//! populations over the surface IR.
//!
//! The paper's evaluation leans on thousands of real incorrect student
//! attempts; the AST-level [`crate::mutation`] engine substitutes for them in
//! MiniPy only. This module plays the same role for *every* frontend — the
//! part the C-Pack of IPAs benchmark plays for C repair tools: it desugars a
//! correct seed program into the language-neutral surface IR (via its
//! [`Frontend`]), applies one of a catalog of student-realistic
//! [`MutationOp`]s, renders the rewritten function back through the same
//! frontend's pretty-printer (so variants are *real source files* that
//! re-parse), and classifies each variant with the problem's grader into
//! [`MutantBucket`]s:
//!
//! * `still-correct` — the perturbation happened to preserve behaviour on
//!   the test suite (these are discarded by corpus generation but counted,
//!   they calibrate operator strength);
//! * `wrong-answer` — every test completes, at least one disagrees with the
//!   expectation (the population the repair pipeline is evaluated on);
//! * `crashes-or-diverges` — at least one test crashes, exhausts its step
//!   budget or gets stuck (dropped loop increments, negated loop bounds).
//!
//! Generation is fully deterministic given [`MutationConfig::seed`]: the
//! only randomness source is a `ChaCha8Rng`, candidates are deduplicated by
//! structural hash through a `HashSet` that is never iterated, and seeds and
//! operators are visited in fixed round-robin order.

use std::collections::HashSet;

use clara_lang::ast::{BinOp, Expr, Lit, UnOp};
use clara_model::frontend::{grading_fuel, Frontend, Lang};
use clara_model::surface::{
    assigned_vars, expr_slots_mut, for_each_block_mut, rename_vars, SurfaceFunction, SurfaceStmt,
};
use clara_model::{execute, TraceStatus};
use rand::seq::SliceRandom;
use rand::Rng;

use crate::mutation::{children_of, rebuild};
use crate::problem::Problem;

/// The catalog of student-realistic mutation operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum MutationOp {
    /// Perturb a loop bound by one (`b <= k` → `b <= k - 1`, or a
    /// `range(...)` bound for iterator loops).
    OffByOneBound,
    /// Replace a comparison operator (`<` → `<=`, `==` → `!=`, ...).
    FlipComparison,
    /// Swap two variables throughout the function.
    SwapVariables,
    /// Remove one simple statement from a block.
    DropStatement,
    /// Swap two adjacent statements in a block.
    ReorderStatements,
    /// Perturb a literal initialiser (`0` → `1`, `1` → `0`, `k` → `k±1`).
    WrongInitializer,
    /// Remove a `return` statement.
    DropReturn,
    /// Remove an output statement.
    DropOutput,
    /// Negate a branch condition.
    NegateBranch,
    /// Replace an arithmetic operator (`+` → `-`, `%` → `/`, ...).
    FlipArithmetic,
}

impl MutationOp {
    /// Every operator of the catalog, in a fixed order.
    pub fn all() -> &'static [MutationOp] {
        &[
            MutationOp::OffByOneBound,
            MutationOp::FlipComparison,
            MutationOp::SwapVariables,
            MutationOp::DropStatement,
            MutationOp::ReorderStatements,
            MutationOp::WrongInitializer,
            MutationOp::DropReturn,
            MutationOp::DropOutput,
            MutationOp::NegateBranch,
            MutationOp::FlipArithmetic,
        ]
    }

    /// Stable kebab-case name, used in reports and JSON artifacts.
    pub fn name(self) -> &'static str {
        match self {
            MutationOp::OffByOneBound => "off-by-one-bound",
            MutationOp::FlipComparison => "flip-comparison",
            MutationOp::SwapVariables => "swap-variables",
            MutationOp::DropStatement => "drop-statement",
            MutationOp::ReorderStatements => "reorder-statements",
            MutationOp::WrongInitializer => "wrong-initializer",
            MutationOp::DropReturn => "drop-return",
            MutationOp::DropOutput => "drop-output",
            MutationOp::NegateBranch => "negate-branch",
            MutationOp::FlipArithmetic => "flip-arithmetic",
        }
    }
}

/// How the problem's grader classified a generated variant.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum MutantBucket {
    /// Passes the full test suite.
    StillCorrect,
    /// Completes on every test, fails at least one.
    WrongAnswer,
    /// Crashes, exhausts the step budget or gets stuck on some test.
    CrashesOrDiverges,
}

impl MutantBucket {
    /// Stable kebab-case name, used in reports and JSON artifacts.
    pub fn name(self) -> &'static str {
        match self {
            MutantBucket::StillCorrect => "still-correct",
            MutantBucket::WrongAnswer => "wrong-answer",
            MutantBucket::CrashesOrDiverges => "crashes-or-diverges",
        }
    }
}

/// One generated variant: real source text plus its provenance.
#[derive(Debug, Clone)]
pub struct SurfaceMutant {
    /// The rendered source text (re-parses through the problem's frontend).
    pub source: String,
    /// The operator that produced it.
    pub op: MutationOp,
    /// The grader's classification.
    pub bucket: MutantBucket,
    /// Formatting-insensitive hash of the re-parsed variant (distinctness
    /// witness).
    pub structural_hash: u64,
    /// Index of the seed solution the variant was derived from.
    pub seed_index: usize,
}

/// Generation parameters of [`derive_mutants`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MutationConfig {
    /// RNG seed; generation is fully deterministic given it.
    pub seed: u64,
    /// Stop once this many *distinct wrong-answer* mutants were produced.
    pub target_wrong_answer: usize,
    /// Hard cap on mutation attempts (a seed pool that cannot produce the
    /// target must still terminate).
    pub max_attempts: usize,
}

impl Default for MutationConfig {
    fn default() -> Self {
        MutationConfig { seed: 0xB0661E5, target_wrong_answer: 25, max_attempts: 4_000 }
    }
}

/// Bookkeeping of one [`derive_mutants`] run (every discarded candidate is
/// counted — silent truncation would read as coverage).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct MutationStats {
    /// Mutation attempts made.
    pub attempts: usize,
    /// Attempts where the operator found no applicable site.
    pub inapplicable: usize,
    /// Variants the frontend could not render back to source.
    pub unrenderable: usize,
    /// Rendered variants that failed to re-parse (must stay 0; asserted by
    /// tests).
    pub reparse_failures: usize,
    /// Variants structurally identical to a seed or an earlier variant.
    pub duplicates: usize,
    /// Variants that re-parsed but could not be graded (unsupported by the
    /// problem's execution engine).
    pub ungradable: usize,
}

/// The frontend serving `lang`. A local registry: `clara-corpus` sits below
/// `clara-core` (where the canonical registry lives) but already depends on
/// both frontend crates.
pub fn frontend_for(lang: Lang) -> &'static dyn Frontend {
    match lang {
        Lang::MiniPy => &clara_model::frontend::MINIPY,
        Lang::MiniC => &clara_c::MINIC,
    }
}

/// Derives buggy variants of every seed solution of `problem`, cycling
/// seeds and operators round-robin until [`MutationConfig::target_wrong_answer`]
/// distinct wrong-answer mutants exist (or the attempt budget runs out).
/// All three buckets are returned; callers filter.
pub fn derive_mutants(problem: &Problem, config: &MutationConfig) -> (Vec<SurfaceMutant>, MutationStats) {
    use rand::SeedableRng;
    let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(config.seed ^ crate::stable_name_hash(problem.name));
    let frontend = frontend_for(problem.lang);

    // Desugar every seed once; seeds that fail to desugar are skipped (the
    // built-in corpora all desugar, asserted by tests).
    let surfaces: Vec<(usize, SurfaceFunction)> = problem
        .seeds
        .iter()
        .enumerate()
        .filter_map(|(i, seed)| {
            let parsed = frontend.parse(seed).ok()?;
            Some((i, parsed.surface(problem.entry).ok()?))
        })
        .collect();
    assert!(!surfaces.is_empty(), "`{}` has no seed that desugars to the surface IR", problem.name);

    // Seen hashes start with the seeds themselves: a "mutant" structurally
    // identical to any correct seed is not a mutant.
    let mut seen: HashSet<u64> = problem
        .seeds
        .iter()
        .filter_map(|seed| frontend.parse(seed).ok().map(|p| p.structural_hash()))
        .collect();

    let ops = MutationOp::all();
    let mut mutants = Vec::new();
    let mut stats = MutationStats::default();
    let mut wrong_answer = 0usize;
    while wrong_answer < config.target_wrong_answer && stats.attempts < config.max_attempts {
        let op = ops[stats.attempts % ops.len()];
        let (seed_index, surface) = &surfaces[(stats.attempts / ops.len()) % surfaces.len()];
        stats.attempts += 1;

        let mut mutated = surface.clone();
        if !apply_op(&mut mutated, op, &mut rng) {
            stats.inapplicable += 1;
            continue;
        }
        let source = match frontend.render_function(&mutated) {
            Ok(source) => source,
            Err(_) => {
                stats.unrenderable += 1;
                continue;
            }
        };
        let reparsed = match frontend.parse(&source) {
            Ok(parsed) => parsed,
            Err(_) => {
                stats.reparse_failures += 1;
                continue;
            }
        };
        let structural_hash = reparsed.structural_hash();
        if !seen.insert(structural_hash) {
            stats.duplicates += 1;
            continue;
        }
        let Some(bucket) = classify(problem, &source) else {
            stats.ungradable += 1;
            continue;
        };
        if bucket == MutantBucket::WrongAnswer {
            wrong_answer += 1;
        }
        mutants.push(SurfaceMutant { source, op, bucket, structural_hash, seed_index: *seed_index });
    }
    (mutants, stats)
}

/// Classifies a source text with the problem's grader: the MiniPy
/// interpreter (its real grading engine) or MiniC model execution (ditto).
/// Returns `None` when the text does not parse or cannot be executed.
pub fn classify(problem: &Problem, source: &str) -> Option<MutantBucket> {
    match problem.lang {
        Lang::MiniPy => {
            let parsed = clara_lang::parse_program(source).ok()?;
            let report = problem.spec.grade(&parsed);
            Some(if report.results.iter().any(|r| r.error.is_some()) {
                MutantBucket::CrashesOrDiverges
            } else if report.all_passed() {
                MutantBucket::StillCorrect
            } else {
                MutantBucket::WrongAnswer
            })
        }
        Lang::MiniC => {
            let parsed = clara_c::parse_c_program(source).ok()?;
            let program = clara_c::lower_entry(&parsed, problem.entry).ok()?;
            let fuel = grading_fuel(&problem.spec);
            let mut wrong = false;
            for test in &problem.spec.tests {
                let trace = execute(&program, &test.args, fuel);
                if trace.status != TraceStatus::Completed {
                    return Some(MutantBucket::CrashesOrDiverges);
                }
                if !test.expected.matches(&trace.return_value(), &trace.output()) {
                    wrong = true;
                }
            }
            Some(if wrong { MutantBucket::WrongAnswer } else { MutantBucket::StillCorrect })
        }
    }
}

/// Applies `op` at a random applicable site of `function`. Returns `false`
/// when the function has no site for this operator.
pub fn apply_op<R: Rng>(function: &mut SurfaceFunction, op: MutationOp, rng: &mut R) -> bool {
    match op {
        MutationOp::OffByOneBound => off_by_one_bound(function, rng),
        MutationOp::FlipComparison => rewrite_random_expr(function, rng, &mut |expr, rng| match expr {
            Expr::Binary(op, lhs, rhs) if op.is_comparison() => {
                let alternatives = [BinOp::Lt, BinOp::Le, BinOp::Gt, BinOp::Ge, BinOp::Eq, BinOp::Ne];
                let choices: Vec<BinOp> = alternatives.iter().copied().filter(|o| o != op).collect();
                let new_op = *choices.choose(rng)?;
                Some(Expr::Binary(new_op, lhs.clone(), rhs.clone()))
            }
            _ => None,
        }),
        MutationOp::SwapVariables => swap_variables(function, rng),
        MutationOp::DropStatement => drop_statement(function, rng),
        MutationOp::ReorderStatements => reorder_statements(function, rng),
        MutationOp::WrongInitializer => wrong_initializer(function, rng),
        MutationOp::DropReturn => drop_kind(function, rng, &|s| matches!(s, SurfaceStmt::Return { .. })),
        MutationOp::DropOutput => drop_kind(function, rng, &|s| matches!(s, SurfaceStmt::Output { .. })),
        MutationOp::NegateBranch => negate_branch(function, rng),
        MutationOp::FlipArithmetic => rewrite_random_expr(function, rng, &mut |expr, _| match expr {
            Expr::Binary(op, lhs, rhs) => {
                let new_op = match op {
                    BinOp::Add => BinOp::Sub,
                    BinOp::Sub => BinOp::Add,
                    BinOp::Mul => BinOp::Add,
                    BinOp::Div | BinOp::FloorDiv => BinOp::Mul,
                    BinOp::Mod => BinOp::FloorDiv,
                    _ => return None,
                };
                Some(Expr::Binary(new_op, lhs.clone(), rhs.clone()))
            }
            _ => None,
        }),
    }
}

/// Applies `f` to one random expression node of the function: every
/// expression slot is a candidate root, and within a slot the rewrite is
/// tried at the node itself first, then inside a random child.
fn rewrite_random_expr<R: Rng>(
    function: &mut SurfaceFunction,
    rng: &mut R,
    f: &mut dyn FnMut(&Expr, &mut R) -> Option<Expr>,
) -> bool {
    let mut slots = Vec::new();
    expr_slots_mut(&mut function.body, &mut slots);
    slots.shuffle(rng);
    for slot in slots {
        if let Some(rewritten) = rewrite_expr_node(slot, rng, f) {
            *slot = rewritten;
            return true;
        }
    }
    false
}

fn rewrite_expr_node<R: Rng>(
    expr: &Expr,
    rng: &mut R,
    f: &mut dyn FnMut(&Expr, &mut R) -> Option<Expr>,
) -> Option<Expr> {
    if let Some(rewritten) = f(expr, rng) {
        return Some(rewritten);
    }
    let children = children_of(expr);
    if children.is_empty() {
        return None;
    }
    let mut order: Vec<usize> = (0..children.len()).collect();
    order.shuffle(rng);
    for child_index in order {
        if let Some(new_child) = rewrite_expr_node(&children[child_index], rng, f) {
            let mut new_children = children.clone();
            new_children[child_index] = new_child;
            return Some(rebuild(expr, &new_children));
        }
    }
    None
}

/// Off-by-one in a loop bound: a comparison operand inside a `while`
/// condition gains a `± 1`, or a `range(...)` bound of an iterator loop is
/// shifted/dropped (the MiniPy spelling of the same student bug).
fn off_by_one_bound<R: Rng>(function: &mut SurfaceFunction, rng: &mut R) -> bool {
    // Collect the loop-head expression slots only.
    fn loop_heads<'a>(body: &'a mut [SurfaceStmt], out: &mut Vec<(&'a mut Expr, bool)>) {
        for stmt in body {
            match stmt {
                SurfaceStmt::While { cond, body, .. } => {
                    out.push((cond, false));
                    loop_heads(body, out);
                }
                SurfaceStmt::ForEach { iter, body, .. } => {
                    out.push((iter, true));
                    loop_heads(body, out);
                }
                SurfaceStmt::If { then_body, else_body, .. } => {
                    loop_heads(then_body, out);
                    loop_heads(else_body, out);
                }
                _ => {}
            }
        }
    }
    let mut heads = Vec::new();
    loop_heads(&mut function.body, &mut heads);
    heads.shuffle(rng);
    for (slot, is_iter) in heads {
        if is_iter {
            // `range(a, b)` -> `range(b)` / `range(a)` / `range(a, b - 1)`.
            if let Expr::Call(name, args) = &*slot {
                if (name == "range" || name == "xrange") && !args.is_empty() {
                    let last = args.len() - 1;
                    let mut new_args = args.clone();
                    match rng.gen_range(0..2u32) {
                        0 if args.len() == 2 => new_args = vec![args[1].clone()],
                        _ => new_args[last] = Expr::bin(BinOp::Sub, new_args[last].clone(), Expr::int(1)),
                    }
                    *slot = Expr::Call(name.clone(), new_args);
                    return true;
                }
            }
        } else if let Expr::Binary(op, lhs, rhs) = &*slot {
            if op.is_comparison() {
                let delta = if rng.gen_bool(0.5) { BinOp::Add } else { BinOp::Sub };
                let new_rhs = Expr::bin(delta, (**rhs).clone(), Expr::int(1));
                *slot = Expr::Binary(*op, lhs.clone(), Box::new(new_rhs));
                return true;
            }
        }
    }
    false
}

fn swap_variables<R: Rng>(function: &mut SurfaceFunction, rng: &mut R) -> bool {
    let mut vars: Vec<String> = function.params.clone();
    assigned_vars(&function.body, &mut vars);
    if vars.len() < 2 {
        return false;
    }
    vars.shuffle(rng);
    let (a, b) = (vars[0].clone(), vars[1].clone());
    // Only the *uses* are swapped (params keep their declared order), which
    // is exactly the "used the wrong accumulator" student bug.
    let mapping = std::collections::HashMap::from([(a.clone(), b.clone()), (b, a)]);
    rename_vars(&mut function.body, &mapping);
    true
}

/// Picks one statement position satisfying `pred` uniformly over all blocks
/// and replaces it with the result of `replace` (or removes it).
fn edit_random_stmt<R: Rng>(
    function: &mut SurfaceFunction,
    rng: &mut R,
    pred: &dyn Fn(&[SurfaceStmt], usize) -> bool,
    edit: &dyn Fn(&mut Vec<SurfaceStmt>, usize),
) -> bool {
    // First pass: count candidate positions.
    let mut candidates = 0usize;
    for_each_block_mut(&mut function.body, &mut |block| {
        for i in 0..block.len() {
            if pred(block, i) {
                candidates += 1;
            }
        }
    });
    if candidates == 0 {
        return false;
    }
    let chosen = rng.gen_range(0..candidates);
    // Second pass: apply at the chosen ordinal (block visit order is
    // deterministic).
    let mut ordinal = 0usize;
    let mut done = false;
    for_each_block_mut(&mut function.body, &mut |block| {
        if done {
            return;
        }
        for i in 0..block.len() {
            if pred(block, i) {
                if ordinal == chosen {
                    edit(block, i);
                    done = true;
                    return;
                }
                ordinal += 1;
            }
        }
    });
    done
}

fn drop_statement<R: Rng>(function: &mut SurfaceFunction, rng: &mut R) -> bool {
    edit_random_stmt(
        function,
        rng,
        &|block, i| {
            block.len() > 1
                && matches!(
                    block[i],
                    SurfaceStmt::Assign { .. } | SurfaceStmt::Output { .. } | SurfaceStmt::Return { .. }
                )
        },
        &|block, i| {
            block.remove(i);
        },
    )
}

fn drop_kind<R: Rng>(
    function: &mut SurfaceFunction,
    rng: &mut R,
    kind: &dyn Fn(&SurfaceStmt) -> bool,
) -> bool {
    edit_random_stmt(function, rng, &|block, i| kind(&block[i]), &|block, i| {
        // Keep the block non-empty (an empty branch renders fine, but an
        // empty function body would not grade meaningfully).
        let line = block[i].line();
        block[i] = SurfaceStmt::Nop { line };
    })
}

fn reorder_statements<R: Rng>(function: &mut SurfaceFunction, rng: &mut R) -> bool {
    fn swappable(stmt: &SurfaceStmt) -> bool {
        matches!(
            stmt,
            SurfaceStmt::Assign { .. }
                | SurfaceStmt::Output { .. }
                | SurfaceStmt::If { .. }
                | SurfaceStmt::While { .. }
                | SurfaceStmt::ForEach { .. }
        )
    }
    edit_random_stmt(
        function,
        rng,
        &|block, i| i + 1 < block.len() && swappable(&block[i]) && swappable(&block[i + 1]),
        &|block, i| block.swap(i, i + 1),
    )
}

fn wrong_initializer<R: Rng>(function: &mut SurfaceFunction, rng: &mut R) -> bool {
    let flip = rng.gen_bool(0.5);
    edit_random_stmt(
        function,
        rng,
        &|block, i| {
            matches!(
                &block[i],
                SurfaceStmt::Assign { value, .. }
                    if matches!(value, Expr::Lit(Lit::Int(_)) | Expr::Lit(Lit::Float(_)))
                        || *value == Expr::List(vec![])
            )
        },
        &|block, i| {
            if let SurfaceStmt::Assign { value, .. } = &mut block[i] {
                *value = match &*value {
                    Expr::Lit(Lit::Int(0)) => Expr::int(1),
                    Expr::Lit(Lit::Int(1)) => Expr::int(0),
                    Expr::Lit(Lit::Int(k)) => Expr::int(k + if flip { 1 } else { -1 }),
                    Expr::Lit(Lit::Float(f)) => Expr::float(f + 1.0),
                    _ => Expr::int(0), // the empty list
                };
            }
        },
    )
}

fn negate_branch<R: Rng>(function: &mut SurfaceFunction, rng: &mut R) -> bool {
    edit_random_stmt(function, rng, &|block, i| matches!(block[i], SurfaceStmt::If { .. }), &|block, i| {
        if let SurfaceStmt::If { cond, .. } = &mut block[i] {
            *cond = Expr::Unary(UnOp::Not, Box::new(cond.clone()));
        }
    })
}

/// Expands `problem`'s correct pool to `target` verified-correct solutions,
/// the population size the retrieval-scaling experiments need (a classroom
/// pool is ~60; a MOOC pool is 10k+).
///
/// Two generators fill the pool beyond the hand-written seeds, both fully
/// deterministic given `seed`:
///
/// 1. **Still-correct mutants** of [`derive_mutants`] — perturbations the
///    grader cannot distinguish from the seed. Their *internal* behaviour
///    usually differs, so they open new clusters, like genuinely different
///    student strategies.
/// 2. **Dead-variable padding**: a fresh `pad_k = k` assignment is prepended
///    to a seed's body. Correct by construction (the variable is never
///    read), distinct per `k` both structurally (the literal) and
///    dynamically (the variable's value), so each padded variant opens its
///    own cluster — the cheap bulk that makes 10k-cluster pools tractable
///    to generate.
///
/// Every generated variant is re-verified with the problem's grader;
/// anything that does not classify as still-correct is discarded.
pub fn correct_pool(problem: &Problem, target: usize, seed: u64) -> Vec<String> {
    let mut pool: Vec<String> = problem.seeds.iter().map(|s| (*s).to_owned()).collect();
    pool.truncate(target);
    if pool.len() >= target {
        return pool;
    }

    // Harvest still-correct mutants (bounded: each attempt runs the grader).
    let config = MutationConfig { seed, target_wrong_answer: usize::MAX, max_attempts: 2_000 };
    let (mutants, _) = derive_mutants(problem, &config);
    for mutant in mutants {
        if pool.len() >= target {
            return pool;
        }
        if mutant.bucket == MutantBucket::StillCorrect {
            pool.push(mutant.source);
        }
    }

    // Dead-variable padding fills the rest.
    let frontend = frontend_for(problem.lang);
    let surfaces: Vec<SurfaceFunction> = problem
        .seeds
        .iter()
        .filter_map(|s| frontend.parse(s).ok().and_then(|p| p.surface(problem.entry).ok()))
        .collect();
    let mut k = 0usize;
    let mut misses = 0usize;
    while pool.len() < target && misses < 100 {
        let mut padded = surfaces[k % surfaces.len()].clone();
        padded
            .body
            .insert(0, SurfaceStmt::Assign { var: format!("pad_{k}"), value: Expr::int(k as i64), line: 1 });
        k += 1;
        let Ok(source) = frontend.render_function(&padded) else {
            misses += 1;
            continue;
        };
        if classify(problem, &source) == Some(MutantBucket::StillCorrect) {
            pool.push(source);
        } else {
            misses += 1;
        }
    }
    pool
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::minic::{all_minic_problems, fibonacci_c};
    use crate::mooc::derivatives;
    use crate::study::{fibonacci, special_number};

    fn small_config() -> MutationConfig {
        MutationConfig { seed: 7, target_wrong_answer: 10, max_attempts: 600 }
    }

    #[test]
    fn derive_mutants_reaches_the_wrong_answer_target_in_both_languages() {
        for problem in [fibonacci(), fibonacci_c()] {
            let (mutants, stats) = derive_mutants(&problem, &small_config());
            let wrong = mutants.iter().filter(|m| m.bucket == MutantBucket::WrongAnswer).count();
            assert!(wrong >= 10, "{}: only {wrong} wrong-answer mutants ({stats:?})", problem.name);
            assert_eq!(stats.reparse_failures, 0, "{}: every mutant must re-parse", problem.name);
        }
    }

    #[test]
    fn every_mutant_reparses_and_its_bucket_matches_the_grader() {
        for problem in [special_number(), fibonacci_c()] {
            let (mutants, _) = derive_mutants(&problem, &small_config());
            assert!(!mutants.is_empty());
            let frontend = frontend_for(problem.lang);
            for mutant in &mutants {
                let parsed = frontend.parse(&mutant.source).expect("mutant re-parses");
                assert_eq!(parsed.structural_hash(), mutant.structural_hash);
                let graded = problem.grade_source(&mutant.source);
                match mutant.bucket {
                    MutantBucket::StillCorrect => assert_eq!(graded, Some(true), "{}", mutant.source),
                    _ => assert_eq!(graded, Some(false), "{}", mutant.source),
                }
            }
        }
    }

    #[test]
    fn mutants_are_structurally_distinct_from_each_other_and_the_seeds() {
        let problem = fibonacci_c();
        let (mutants, _) = derive_mutants(&problem, &small_config());
        let mut hashes = HashSet::new();
        for seed in &problem.seeds {
            hashes.insert(frontend_for(problem.lang).parse(seed).unwrap().structural_hash());
        }
        for mutant in &mutants {
            assert!(hashes.insert(mutant.structural_hash), "duplicate mutant:\n{}", mutant.source);
        }
    }

    #[test]
    fn correct_pool_scales_to_target_with_distinct_verified_solutions() {
        for problem in [derivatives(), fibonacci_c()] {
            let pool = correct_pool(&problem, 80, 11);
            assert_eq!(pool.len(), 80, "{}", problem.name);
            let frontend = frontend_for(problem.lang);
            let mut hashes = HashSet::new();
            for source in &pool {
                assert_eq!(problem.grade_source(source), Some(true), "{}:\n{source}", problem.name);
                hashes.insert(frontend.parse(source).unwrap().structural_hash());
            }
            assert!(hashes.len() >= 78, "{}: only {} distinct members", problem.name, hashes.len());
            // Deterministic given the seed.
            assert_eq!(correct_pool(&problem, 80, 11), pool);
        }
    }

    #[test]
    fn generation_is_deterministic_given_the_seed() {
        let problem = derivatives();
        let (a, _) = derive_mutants(&problem, &small_config());
        let (b, _) = derive_mutants(&problem, &small_config());
        let texts = |ms: &[SurfaceMutant]| ms.iter().map(|m| m.source.clone()).collect::<Vec<_>>();
        assert_eq!(texts(&a), texts(&b));
        let (c, _) = derive_mutants(&problem, &MutationConfig { seed: 8, ..small_config() });
        assert_ne!(texts(&a), texts(&c), "a different seed must change the stream");
    }

    #[test]
    fn the_catalog_is_exercised_broadly() {
        // Across the MiniC problems with a generous budget, most operators
        // of the catalog produce at least one graded mutant.
        let config = MutationConfig { seed: 3, target_wrong_answer: 40, max_attempts: 2_000 };
        let mut ops_seen: HashSet<MutationOp> = HashSet::new();
        for problem in all_minic_problems() {
            let (mutants, _) = derive_mutants(&problem, &config);
            ops_seen.extend(mutants.iter().map(|m| m.op));
        }
        assert!(ops_seen.len() >= 6, "only {} operators produced mutants: {:?}", ops_seen.len(), ops_seen);
    }

    #[test]
    fn buckets_cover_divergence() {
        // Dropping the `m = m / 10` style loop update must eventually
        // produce a crashes-or-diverges mutant.
        let config = MutationConfig { seed: 11, target_wrong_answer: 30, max_attempts: 2_000 };
        let mut diverging = 0usize;
        for problem in all_minic_problems() {
            let (mutants, _) = derive_mutants(&problem, &config);
            diverging += mutants.iter().filter(|m| m.bucket == MutantBucket::CrashesOrDiverges).count();
        }
        assert!(diverging > 0, "no diverging mutant across the MiniC corpus");
    }
}
