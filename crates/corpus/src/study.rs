//! The six user-study problems of the paper's Table 2 (Appendix A):
//! Fibonacci sequence, Special number, Reverse difference, Factorial
//! interval, Trapezoid and Rhombus. The original study used C; here the
//! attempts are MiniPy programs that read their inputs as function arguments
//! and print their results (graded on printed output).

use clara_lang::Value;

use crate::problem::{GradingMode, Problem};

/// `Fibonacci sequence`: given `k > 0`, print the `n > 0` such that
/// `F_n <= k < F_{n+1}`.
pub fn fibonacci() -> Problem {
    const REFERENCE: &str = "\
def fib(k):
    a = 1
    b = 1
    n = 1
    while b <= k:
        c = a + b
        a = b
        b = c
        n = n + 1
    print(n)
";
    const SEEDS: &[&str] = &[
        REFERENCE,
        "\
def fib(k):
    prev = 1
    cur = 1
    count = 1
    while cur <= k:
        temp = cur
        cur = cur + prev
        prev = temp
        count = count + 1
    print(count)
",
        "\
def fib(k):
    a = 0
    b = 1
    n = 0
    while b <= k:
        c = a + b
        a = b
        b = c
        n = n + 1
    print(n)
",
        "\
def fib(k):
    a = 1
    b = 1
    n = 1
    while a + b <= k + a:
        c = a + b
        a = b
        b = c
        n = n + 1
    print(n)
",
    ];
    Problem::new(
        "fibonacci",
        "Print the integer n > 0 such that F_n <= k < F_{n+1}.",
        "fib",
        GradingMode::PrintedOutput,
        REFERENCE,
        SEEDS.to_vec(),
        vec![
            vec![Value::Int(1)],
            vec![Value::Int(2)],
            vec![Value::Int(4)],
            vec![Value::Int(8)],
            vec![Value::Int(20)],
            vec![Value::Int(100)],
        ],
    )
}

/// `Special number`: print YES if the sum of the cubes of the digits of `n`
/// equals `n`, NO otherwise.
pub fn special_number() -> Problem {
    const REFERENCE: &str = "\
def special(n):
    s = 0
    m = n
    while m > 0:
        d = m % 10
        s = s + d * d * d
        m = m // 10
    if s == n:
        print('YES')
    else:
        print('NO')
";
    const SEEDS: &[&str] = &[
        REFERENCE,
        "\
def special(n):
    total = 0
    rest = n
    while rest > 0:
        digit = rest % 10
        total = total + digit ** 3
        rest = rest // 10
    if total == n:
        print('YES')
    else:
        print('NO')
",
        "\
def special(n):
    s = 0
    for ch in str(n):
        d = int(ch)
        s = s + d * d * d
    if s == n:
        print('YES')
    else:
        print('NO')
",
        "\
def special(n):
    m = n
    acc = 0
    while m > 0:
        acc = acc + (m % 10) ** 3
        m = m // 10
    if acc != n:
        print('NO')
    else:
        print('YES')
",
    ];
    Problem::new(
        "special_number",
        "Print YES if the sum of cubes of the digits of n equals n, NO otherwise.",
        "special",
        GradingMode::PrintedOutput,
        REFERENCE,
        SEEDS.to_vec(),
        vec![
            vec![Value::Int(371)],
            vec![Value::Int(153)],
            vec![Value::Int(370)],
            vec![Value::Int(10)],
            vec![Value::Int(9474)],
            vec![Value::Int(407)],
            vec![Value::Int(5)],
        ],
    )
}

/// `Reverse difference`: print the difference between `n` and its decimal
/// reverse.
pub fn reverse_difference() -> Problem {
    const REFERENCE: &str = "\
def revdiff(n):
    m = n
    r = 0
    while m > 0:
        r = r * 10 + m % 10
        m = m // 10
    print(n - r)
";
    const SEEDS: &[&str] = &[
        REFERENCE,
        "\
def revdiff(n):
    rest = n
    rev = 0
    while rest > 0:
        digit = rest % 10
        rev = rev * 10 + digit
        rest = rest // 10
    print(n - rev)
",
        "\
def revdiff(n):
    text = str(n)
    rev = 0
    for ch in text:
        rev = rev * 10
        rev = rev + int(ch)
    reversed_text = ''
    for ch in text:
        reversed_text = ch + reversed_text
    print(n - int(reversed_text))
",
        "\
def revdiff(n):
    reversed_text = ''
    for ch in str(n):
        reversed_text = ch + reversed_text
    print(n - int(reversed_text))
",
    ];
    Problem::new(
        "reverse_difference",
        "Print the difference of n and its reverse (e.g. 1234 -> -3087).",
        "revdiff",
        GradingMode::PrintedOutput,
        REFERENCE,
        SEEDS.to_vec(),
        vec![
            vec![Value::Int(1234)],
            vec![Value::Int(1)],
            vec![Value::Int(100)],
            vec![Value::Int(505)],
            vec![Value::Int(9876)],
            vec![Value::Int(42)],
        ],
    )
}

/// `Factorial interval`: print how many factorial numbers lie in the closed
/// interval `[n, m]`.
pub fn factorial_interval() -> Problem {
    const REFERENCE: &str = "\
def factcount(n, m):
    count = 0
    f = 1
    i = 1
    while f <= m:
        if f >= n:
            count = count + 1
        i = i + 1
        f = f * i
    print(count)
";
    const SEEDS: &[&str] = &[
        REFERENCE,
        "\
def factcount(n, m):
    total = 0
    fact = 1
    k = 1
    while fact <= m:
        if fact >= n:
            total = total + 1
        k = k + 1
        fact = fact * k
    print(total)
",
        "\
def factcount(n, m):
    count = 0
    f = 1
    i = 2
    while f <= m:
        if n <= f:
            count = count + 1
        f = f * i
        i = i + 1
    print(count)
",
        "\
def factcount(n, m):
    hits = 0
    value = 1
    step = 1
    while value <= m:
        inside = value >= n
        if inside:
            hits = hits + 1
        step = step + 1
        value = value * step
    print(hits)
",
    ];
    Problem::new(
        "factorial_interval",
        "Print the number of factorial numbers in the closed interval [n, m].",
        "factcount",
        GradingMode::PrintedOutput,
        REFERENCE,
        SEEDS.to_vec(),
        vec![
            vec![Value::Int(0), Value::Int(1)],
            vec![Value::Int(1), Value::Int(6)],
            vec![Value::Int(3), Value::Int(30)],
            vec![Value::Int(0), Value::Int(200)],
            vec![Value::Int(7), Value::Int(23)],
            vec![Value::Int(100), Value::Int(1000)],
        ],
    )
}

/// `Trapezoid`: print a trapezoid pattern of `*` with height `h` and base
/// length `b`.
pub fn trapezoid() -> Problem {
    const REFERENCE: &str = "\
def trapezoid(h, b):
    i = 0
    while i < h:
        print(' ' * (h - 1 - i) + '*' * (b - 2 * (h - 1 - i)))
        i = i + 1
";
    const SEEDS: &[&str] = &[
        REFERENCE,
        "\
def trapezoid(h, b):
    for i in range(h):
        spaces = h - 1 - i
        stars = b - 2 * spaces
        print(' ' * spaces + '*' * stars)
",
        "\
def trapezoid(h, b):
    row = 0
    while row < h:
        line = ''
        line = line + ' ' * (h - 1 - row)
        line = line + '*' * (b - 2 * (h - 1 - row))
        print(line)
        row = row + 1
",
        "\
def trapezoid(h, b):
    stars = b - 2 * (h - 1)
    spaces = h - 1
    for i in range(h):
        print(' ' * spaces + '*' * stars)
        stars = stars + 2
        spaces = spaces - 1
",
    ];
    Problem::new(
        "trapezoid",
        "Print h lines forming a regular trapezoid of '*' with base length b.",
        "trapezoid",
        GradingMode::PrintedOutput,
        REFERENCE,
        SEEDS.to_vec(),
        vec![
            vec![Value::Int(5), Value::Int(14)],
            vec![Value::Int(2), Value::Int(6)],
            vec![Value::Int(1), Value::Int(4)],
            vec![Value::Int(3), Value::Int(8)],
            vec![Value::Int(4), Value::Int(10)],
        ],
    )
}

/// `Rhombus`: print a rhombus pattern of column numbers modulo 10 with
/// height `h` (odd, at least 3).
pub fn rhombus() -> Problem {
    const REFERENCE: &str = "\
def rhombus(h):
    mid = (h + 1) // 2
    r = 1
    while r <= h:
        d = mid - r
        if d < 0:
            d = -d
        row = ' ' * d
        c = d + 1
        while c <= h - d:
            row = row + str(c % 10)
            c = c + 1
        print(row)
        r = r + 1
";
    const SEEDS: &[&str] = &[
        REFERENCE,
        "\
def rhombus(h):
    mid = (h + 1) // 2
    for r in range(1, h + 1):
        d = mid - r
        if d < 0:
            d = -d
        line = ' ' * d
        for c in range(d + 1, h - d + 1):
            line = line + str(c % 10)
        print(line)
",
        "\
def rhombus(h):
    middle = (h + 1) // 2
    row = 1
    while row <= h:
        offset = abs(middle - row)
        text = ' ' * offset
        col = offset + 1
        while col <= h - offset:
            text = text + str(col % 10)
            col = col + 1
        print(text)
        row = row + 1
",
    ];
    Problem::new(
        "rhombus",
        "Print h lines forming a rhombus where each character is the column number modulo 10.",
        "rhombus",
        GradingMode::PrintedOutput,
        REFERENCE,
        SEEDS.to_vec(),
        vec![vec![Value::Int(3)], vec![Value::Int(5)], vec![Value::Int(7)], vec![Value::Int(9)]],
    )
}

/// All six user-study problems of Table 2.
pub fn all_study_problems() -> Vec<Problem> {
    vec![fibonacci(), special_number(), reverse_difference(), factorial_interval(), trapezoid(), rhombus()]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_seed_passes_its_specification() {
        for problem in all_study_problems() {
            let failing = problem.check_seeds();
            assert!(failing.is_empty(), "problem {}: failing seeds {failing:?}", problem.name);
        }
    }

    #[test]
    fn reference_outputs_match_the_papers_examples() {
        // Trapezoid example from Appendix A: h = 5, b = 14.
        let problem = trapezoid();
        let expected = "    ******\n   ********\n  **********\n ************\n**************\n";
        let test = &problem.spec.tests[0];
        assert_eq!(test.expected.output.as_deref(), Some(expected));

        // Rhombus example from Appendix A: h = 5.
        let problem = rhombus();
        let expected = "  3\n 234\n12345\n 234\n  3\n";
        let test = &problem.spec.tests[1];
        assert_eq!(test.expected.output.as_deref(), Some(expected));
    }

    #[test]
    fn fibonacci_reference_matches_the_definition() {
        let problem = fibonacci();
        // k = 1 -> n = 2 (F_2 = 1 <= 1 < F_3 = 2); k = 8 -> n = 6 (F_6 = 8).
        assert_eq!(problem.spec.tests[0].expected.output.as_deref(), Some("2\n"));
        assert_eq!(problem.spec.tests[3].expected.output.as_deref(), Some("6\n"));
    }

    #[test]
    fn problems_are_output_graded() {
        for problem in all_study_problems() {
            assert_eq!(problem.grading, GradingMode::PrintedOutput, "{}", problem.name);
            assert!(problem.seeds.len() >= 2);
        }
    }
}
