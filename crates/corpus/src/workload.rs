//! The serving traffic model: a seeded, Zipf-style request generator.
//!
//! MOOC submission traffic is *duplicate-heavy*: a handful of canonical
//! near-solutions and copy-pasted buggy attempts account for most of the
//! stream, with a long tail of one-off programs. This module models that
//! shape for the feedback service: requests draw attempts from a pool of
//! mixed-problem submissions under a Zipf rank distribution
//! (`P(rank k) ∝ 1/k^s`), interleaved with an occasional *pathological*
//! population — unparseable garbage, unsupported language features and empty
//! submissions — that a production service must survive.
//!
//! Generation is fully deterministic given [`WorkloadConfig::seed`], so load
//! benchmarks are reproducible request-by-request.

use clara_model::frontend::Lang;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;
use serde::Serialize;

use crate::dataset::Dataset;
use crate::mutation::{empty_attempt, unsupported_attempt};

/// What kind of submission a workload request carries.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize)]
pub enum RequestKind {
    /// A correct solution (the service should answer "correct"; with
    /// learning enabled it may also be inserted into the cluster index).
    Correct,
    /// An incorrect but analysable attempt (the repair path).
    Incorrect,
    /// A submission that does not even parse.
    Garbage,
    /// A submission using unsupported language features.
    Unsupported,
    /// An empty submission.
    Empty,
}

/// One request of the generated traffic.
#[derive(Debug, Clone, Serialize)]
pub struct WorkloadRequest {
    /// Position in the stream (0-based).
    pub id: usize,
    /// The problem the submission targets.
    pub problem: String,
    /// The language tag of the submission (`"minipy"`/`"minic"`), taken
    /// from the problem; mixed-language workloads interleave both.
    pub lang: String,
    /// The submission text.
    pub source: String,
    /// Ground truth of how the request was produced.
    pub kind: RequestKind,
}

/// Parameters of the traffic model.
#[derive(Debug, Clone, Copy, PartialEq, Serialize)]
pub struct WorkloadConfig {
    /// Number of requests to generate.
    pub requests: usize,
    /// RNG seed; the stream is fully deterministic given the seed.
    pub seed: u64,
    /// Zipf exponent `s` of the rank distribution over the attempt pool.
    /// `0.0` is uniform (duplicate-light); values around `1.0` produce the
    /// duplicate-heavy head that MOOC traffic shows.
    pub zipf_exponent: f64,
    /// Fraction of requests that are pathological (garbage / unsupported /
    /// empty submissions) rather than drawn from the attempt pool.
    pub pathological_fraction: f64,
}

impl Default for WorkloadConfig {
    fn default() -> Self {
        WorkloadConfig { requests: 200, seed: 0x5E12E, zipf_exponent: 1.1, pathological_fraction: 0.03 }
    }
}

/// Generates a deterministic request stream over the attempts of `datasets`
/// (typically one dataset per problem; requests interleave the problems).
///
/// # Panics
///
/// Panics if `datasets` is empty or contains only empty pools — a workload
/// needs at least one attempt to sample.
pub fn generate_workload(datasets: &[Dataset], config: WorkloadConfig) -> Vec<WorkloadRequest> {
    let mut rng = ChaCha8Rng::seed_from_u64(config.seed);

    // The sampling pool: every attempt of every dataset, tagged with its
    // problem, language and ground truth. Ranks are a random permutation so
    // that the Zipf head is not biased toward any particular problem or
    // pool order.
    let mut pool: Vec<(String, String, String, RequestKind)> = Vec::new();
    for dataset in datasets {
        let lang = dataset.problem.lang.as_str().to_owned();
        for attempt in &dataset.correct {
            pool.push((
                dataset.problem.name.to_owned(),
                lang.clone(),
                attempt.source.clone(),
                RequestKind::Correct,
            ));
        }
        for attempt in &dataset.incorrect {
            pool.push((
                dataset.problem.name.to_owned(),
                lang.clone(),
                attempt.source.clone(),
                RequestKind::Incorrect,
            ));
        }
    }
    assert!(!pool.is_empty(), "workload generation needs a non-empty attempt pool");
    pool.shuffle(&mut rng);

    // Inverse-CDF sampling over P(rank k) ∝ 1/k^s.
    let weights: Vec<f64> = (1..=pool.len()).map(|k| 1.0 / (k as f64).powf(config.zipf_exponent)).collect();
    let cumulative: Vec<f64> = weights
        .iter()
        .scan(0.0, |acc, w| {
            *acc += w;
            Some(*acc)
        })
        .collect();
    let total_weight = *cumulative.last().expect("non-empty pool");

    let mut requests = Vec::with_capacity(config.requests);
    for id in 0..config.requests {
        if rng.gen_bool(config.pathological_fraction.clamp(0.0, 1.0)) {
            requests.push(pathological_request(id, datasets, &mut rng));
            continue;
        }
        let needle = rng.gen_range(0.0..total_weight);
        let rank = cumulative.partition_point(|&c| c <= needle).min(pool.len() - 1);
        let (problem, lang, source, kind) = pool[rank].clone();
        requests.push(WorkloadRequest { id, problem, lang, source, kind });
    }
    requests
}

fn pathological_request<R: Rng>(id: usize, datasets: &[Dataset], rng: &mut R) -> WorkloadRequest {
    let dataset = &datasets[rng.gen_range(0..datasets.len())];
    let problem = dataset.problem.name.to_owned();
    let lang = dataset.problem.lang.as_str().to_owned();
    let (source, kind) = match (dataset.problem.lang, rng.gen_range(0..3u32)) {
        (Lang::MiniPy, 0) => ("def broken(:\n    return ][\n".to_owned(), RequestKind::Garbage),
        (Lang::MiniPy, 1) => (unsupported_attempt(&dataset.problem, rng).source, RequestKind::Unsupported),
        (Lang::MiniPy, _) => (empty_attempt(&dataset.problem).source, RequestKind::Empty),
        (Lang::MiniC, 0) => ("int broken( { return ]]\n".to_owned(), RequestKind::Garbage),
        (Lang::MiniC, 1) => (
            // Parses, grades incorrect, and cannot be lowered (helper
            // functions) — the C flavour of the §6.2 failure category.
            format!(
                "int helper(int x) {{ return x; }}\n\nint {}(int n) {{ return helper(n); }}\n",
                dataset.problem.entry
            ),
            RequestKind::Unsupported,
        ),
        (Lang::MiniC, _) => {
            (format!("int {}(int n) {{ return 0; }}\n", dataset.problem.entry), RequestKind::Empty)
        }
    };
    WorkloadRequest { id, problem, lang, source, kind }
}

/// Splits a request stream into per-shard streams under an arbitrary
/// assignment (typically the serving fleet's consistent-hash ring over
/// problem×language keys, injected as a closure so the corpus crate stays
/// independent of the server). Stream order is preserved within each
/// bucket; an assignment outside `0..buckets` panics.
///
/// # Panics
///
/// Panics when `assign` returns an index `>= buckets`.
pub fn partition_workload(
    requests: &[WorkloadRequest],
    buckets: usize,
    assign: impl Fn(&WorkloadRequest) -> usize,
) -> Vec<Vec<WorkloadRequest>> {
    let mut shards: Vec<Vec<WorkloadRequest>> = (0..buckets).map(|_| Vec::new()).collect();
    for request in requests {
        let bucket = assign(request);
        assert!(bucket < buckets, "assignment {bucket} out of range for {buckets} buckets");
        shards[bucket].push(request.clone());
    }
    shards
}

/// Per-language request counts of a stream (tag → requests), for checking
/// that a fleet benchmark really exercises every frontend.
pub fn language_mix(requests: &[WorkloadRequest]) -> std::collections::BTreeMap<String, usize> {
    let mut mix = std::collections::BTreeMap::new();
    for request in requests {
        *mix.entry(request.lang.clone()).or_insert(0) += 1;
    }
    mix
}

/// Fraction of requests whose submission text already occurred earlier in
/// the stream — the share of traffic a perfect result cache could answer
/// without running repair.
pub fn duplicate_fraction(requests: &[WorkloadRequest]) -> f64 {
    if requests.is_empty() {
        return 0.0;
    }
    let mut seen = std::collections::HashSet::new();
    let duplicates = requests.iter().filter(|r| !seen.insert((r.problem.clone(), r.source.clone()))).count();
    duplicates as f64 / requests.len() as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dataset::{generate_dataset, DatasetConfig};
    use crate::mooc::{derivatives, odd_tuples};

    fn datasets() -> Vec<Dataset> {
        let config =
            DatasetConfig { correct_count: 15, incorrect_count: 10, seed: 9, ..DatasetConfig::default() };
        vec![generate_dataset(&derivatives(), config), generate_dataset(&odd_tuples(), config)]
    }

    #[test]
    fn workload_is_deterministic() {
        let datasets = datasets();
        let a = generate_workload(&datasets, WorkloadConfig::default());
        let b = generate_workload(&datasets, WorkloadConfig::default());
        assert_eq!(a.len(), 200);
        let texts = |reqs: &[WorkloadRequest]| {
            reqs.iter().map(|r| (r.problem.clone(), r.source.clone())).collect::<Vec<_>>()
        };
        assert_eq!(texts(&a), texts(&b));
    }

    #[test]
    fn zipf_traffic_is_duplicate_heavy() {
        let requests = generate_workload(&datasets(), WorkloadConfig::default());
        let rate = duplicate_fraction(&requests);
        // 200 draws from a 50-attempt pool under s=1.1 revisit the head
        // constantly; even a uniform sampler would duplicate heavily here,
        // the Zipf head pushes it further.
        assert!(rate > 0.5, "duplicate fraction was {rate}");
        // A higher exponent concentrates the head → strictly more duplicates
        // (with overwhelming probability at these sizes).
        let heavy = generate_workload(
            &datasets(),
            WorkloadConfig { zipf_exponent: 2.0, ..WorkloadConfig::default() },
        );
        assert!(duplicate_fraction(&heavy) >= rate, "zipf head should concentrate traffic");
    }

    #[test]
    fn mixed_language_workloads_interleave_both_frontends() {
        let config =
            DatasetConfig { correct_count: 10, incorrect_count: 5, seed: 3, ..DatasetConfig::default() };
        let datasets = vec![
            generate_dataset(&derivatives(), config),
            crate::minic::generate_minic_dataset(&crate::minic::fibonacci_c(), config),
        ];
        let requests = generate_workload(
            &datasets,
            WorkloadConfig { requests: 300, pathological_fraction: 0.1, ..WorkloadConfig::default() },
        );
        let langs: std::collections::HashSet<&str> = requests.iter().map(|r| r.lang.as_str()).collect();
        assert_eq!(langs.len(), 2, "both languages should appear: {langs:?}");
        // Language tags follow the problem, including for pathological
        // requests.
        for request in &requests {
            let expected = if request.problem == "fibonacci_c" { "minic" } else { "minipy" };
            assert_eq!(request.lang, expected, "request {} for {}", request.id, request.problem);
        }
        assert!(requests.iter().any(|r| r.lang == "minic" && r.kind == RequestKind::Incorrect));
    }

    #[test]
    fn workload_mixes_problems_and_includes_pathological_requests() {
        let requests = generate_workload(
            &datasets(),
            WorkloadConfig { requests: 400, pathological_fraction: 0.1, ..WorkloadConfig::default() },
        );
        let problems: std::collections::HashSet<&str> = requests.iter().map(|r| r.problem.as_str()).collect();
        assert_eq!(problems.len(), 2, "both problems should appear");
        assert!(requests.iter().any(|r| r.kind == RequestKind::Garbage));
        assert!(requests.iter().any(|r| matches!(r.kind, RequestKind::Unsupported | RequestKind::Empty)));
        assert!(requests.iter().any(|r| r.kind == RequestKind::Correct));
        assert!(requests.iter().any(|r| r.kind == RequestKind::Incorrect));
    }

    #[test]
    fn partitioning_preserves_order_and_covers_every_request() {
        let requests =
            generate_workload(&datasets(), WorkloadConfig { requests: 300, ..WorkloadConfig::default() });
        // A stand-in for the serving ring: any deterministic function of the
        // problem×language key.
        let assign = |r: &WorkloadRequest| (r.problem.len() + r.lang.len()) % 3;
        let shards = partition_workload(&requests, 3, assign);
        assert_eq!(shards.iter().map(Vec::len).sum::<usize>(), requests.len());
        for (bucket, shard) in shards.iter().enumerate() {
            // Every request landed where the assignment says, in stream order.
            assert!(shard.windows(2).all(|w| w[0].id < w[1].id), "bucket {bucket} out of order");
            assert!(shard.iter().all(|r| assign(r) == bucket));
        }
        let mix = language_mix(&requests);
        assert_eq!(mix.values().sum::<usize>(), requests.len());
    }

    #[test]
    fn different_seeds_differ() {
        let datasets = datasets();
        let a = generate_workload(&datasets, WorkloadConfig::default());
        let b = generate_workload(&datasets, WorkloadConfig { seed: 1, ..WorkloadConfig::default() });
        let texts = |reqs: &[WorkloadRequest]| reqs.iter().map(|r| r.source.clone()).collect::<Vec<_>>();
        assert_ne!(texts(&a), texts(&b));
    }
}
