//! # clara-corpus — synthetic student-submission corpus
//!
//! The paper evaluates Clara on 17,266 MITx MOOC submissions and on an
//! ESC-101 (IIT Kanpur) archive; both datasets are proprietary. This crate is
//! the substitute substrate (see `crates/corpus/DESIGN.md` for the design
//! rationale and the traffic model): it defines the nine
//! assignments of Appendix A ([`mooc`] and [`study`]), hand-written seed
//! solutions implementing genuinely different strategies, a
//! semantics-preserving [`variation`] engine that expands the seeds into a
//! large pool of correct solutions, and a fault-injection [`mutation`] engine
//! that derives realistic incorrect attempts. [`dataset`] combines these into
//! deterministic, seeded corpora used by the benchmark harness, and
//! [`workload`] turns the corpora into a Zipf-style duplicate-heavy request
//! stream for the feedback service.
//!
//! ```rust
//! use clara_corpus::{generate_dataset, mooc, DatasetConfig};
//!
//! let problem = mooc::derivatives();
//! let dataset = generate_dataset(
//!     &problem,
//!     DatasetConfig { correct_count: 50, incorrect_count: 20, ..DatasetConfig::default() },
//! );
//! assert_eq!(dataset.correct.len(), 50);
//! assert!(dataset.incorrect.iter().all(|a| !a.is_correct));
//! ```

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod dataset;
pub mod minic;
pub mod mooc;
pub mod mutate;
pub mod mutation;
pub mod problem;
pub mod regression;
pub mod study;
pub mod variation;
pub mod workload;

pub use dataset::{generate_dataset, Attempt, AttemptKind, Dataset, DatasetConfig, DatasetStats};
pub use minic::{all_minic_problems, generate_minic_dataset, minic_incorrect_attempts};
pub use mutate::{
    apply_step, chain_still_fails, classify, correct_pool, derive_multi_fault_mutants, derive_mutants,
    frontend_for, minimize_steps, realize_variant, replay_steps, FaultStep, MultiFaultConfig,
    MultiFaultMutant, MutantBucket, MutationConfig, MutationOp, MutationStats, SurfaceMutant,
};
pub use mutation::{empty_attempt, mutate, unsupported_attempt, FaultKind, Mutant};
pub use problem::{GradingMode, Problem};
pub use regression::{
    load_regression_dir, regression_dir, replay_entry, save_regression_file, RegressionEntry, RegressionFile,
    RegressionStep, ReplayOutcome, REGRESSION_FORMAT_VERSION,
};
pub use variation::{rename_variables, rename_with, tweak_expressions, vary_seed};
pub use workload::{
    duplicate_fraction, generate_workload, language_mix, partition_workload, RequestKind, WorkloadConfig,
    WorkloadRequest,
};

use clara_model::frontend::Lang;

/// A stable FNV-1a hash of a problem name, used to derive independent
/// per-problem RNG streams from one corpus seed. Hand-rolled on purpose:
/// `DefaultHasher` is only documented as deterministic within a process, so
/// keying RNG streams on it would let a std upgrade silently change every
/// "seeded" corpus. Byte-identical datasets across builds require a hash
/// that is ours.
pub(crate) fn stable_name_hash(name: &str) -> u64 {
    let mut hash: u64 = 0xcbf29ce484222325;
    for byte in name.as_bytes() {
        hash ^= u64::from(*byte);
        hash = hash.wrapping_mul(0x100000001b3);
    }
    hash
}

/// All nine MiniPy problems of the paper's evaluation (Table 1 + Table 2).
pub fn all_problems() -> Vec<Problem> {
    let mut problems = mooc::all_mooc_problems();
    problems.extend(study::all_study_problems());
    problems
}

/// Every problem across every frontend: the nine MiniPy problems plus the
/// MiniC translations. Problem names are globally unique, so the combined
/// set can be served by one service.
pub fn all_problems_all_langs() -> Vec<Problem> {
    let mut problems = all_problems();
    problems.extend(all_minic_problems());
    problems
}

/// Builds the dataset for a problem with the generator matching its
/// language (the MiniPy variation/mutation engines, or the seed-cycling
/// MiniC generator).
pub fn generate_dataset_for(problem: &Problem, config: DatasetConfig) -> Dataset {
    match problem.lang {
        Lang::MiniPy => generate_dataset(problem, config),
        Lang::MiniC => generate_minic_dataset(problem, config),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stream_seeds_are_pinned_to_the_specified_fnv1a() {
        // The per-problem RNG streams are keyed on FNV-1a of the problem
        // name. FNV-1a is a fixed public algorithm, so these values must
        // never change — a change means every "seeded" corpus silently
        // regenerated differently (the bug this replaced `DefaultHasher`
        // over).
        assert_eq!(stable_name_hash("fibonacci"), 0x76c50fd017aaf2c3);
        assert_eq!(stable_name_hash("fibonacci_c"), 0xd6b3c7a644b9d735);
    }

    #[test]
    fn datasets_are_byte_identical_across_lang_mixes_and_generation_order() {
        // Regression: two runs with the same DatasetConfig::seed must
        // produce byte-identical per-problem datasets no matter which other
        // problems (or languages) are generated around them, in what order.
        let config = DatasetConfig {
            correct_count: 12,
            incorrect_count: 8,
            seed: 0xD15EED,
            ..DatasetConfig::default()
        };
        let fingerprint = |d: &dataset::Dataset| {
            d.correct
                .iter()
                .chain(&d.incorrect)
                .map(|a| (a.id, a.source.clone(), a.is_correct))
                .collect::<Vec<_>>()
        };
        let mut mixed = all_problems_all_langs();
        let solo: Vec<_> = mixed.iter().map(|p| fingerprint(&generate_dataset_for(p, config))).collect();
        // Same problems, reversed generation order, interleaving the
        // languages differently.
        mixed.reverse();
        let reversed: Vec<_> = mixed.iter().map(|p| fingerprint(&generate_dataset_for(p, config))).collect();
        for (i, problem) in mixed.iter().enumerate() {
            let original = &solo[solo.len() - 1 - i];
            assert_eq!(
                &reversed[i], original,
                "`{}` generated differently depending on corpus mix/order",
                problem.name
            );
        }
    }

    #[test]
    fn there_are_nine_problems() {
        let problems = all_problems();
        assert_eq!(problems.len(), 9);
        let names: Vec<&str> = problems.iter().map(|p| p.name).collect();
        assert!(names.contains(&"derivatives"));
        assert!(names.contains(&"rhombus"));
    }

    #[test]
    fn every_problem_has_a_consistent_reference() {
        for problem in all_problems() {
            assert_eq!(
                problem.grade_source(problem.reference),
                Some(true),
                "reference of {} is not correct",
                problem.name
            );
        }
    }
}
