//! # clara-corpus — synthetic student-submission corpus
//!
//! The paper evaluates Clara on 17,266 MITx MOOC submissions and on an
//! ESC-101 (IIT Kanpur) archive; both datasets are proprietary. This crate is
//! the substitute substrate (see `crates/corpus/DESIGN.md` for the design
//! rationale and the traffic model): it defines the nine
//! assignments of Appendix A ([`mooc`] and [`study`]), hand-written seed
//! solutions implementing genuinely different strategies, a
//! semantics-preserving [`variation`] engine that expands the seeds into a
//! large pool of correct solutions, and a fault-injection [`mutation`] engine
//! that derives realistic incorrect attempts. [`dataset`] combines these into
//! deterministic, seeded corpora used by the benchmark harness, and
//! [`workload`] turns the corpora into a Zipf-style duplicate-heavy request
//! stream for the feedback service.
//!
//! ```rust
//! use clara_corpus::{generate_dataset, mooc, DatasetConfig};
//!
//! let problem = mooc::derivatives();
//! let dataset = generate_dataset(
//!     &problem,
//!     DatasetConfig { correct_count: 50, incorrect_count: 20, ..DatasetConfig::default() },
//! );
//! assert_eq!(dataset.correct.len(), 50);
//! assert!(dataset.incorrect.iter().all(|a| !a.is_correct));
//! ```

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod dataset;
pub mod minic;
pub mod mooc;
pub mod mutation;
pub mod problem;
pub mod study;
pub mod variation;
pub mod workload;

pub use dataset::{generate_dataset, Attempt, AttemptKind, Dataset, DatasetConfig, DatasetStats};
pub use minic::{all_minic_problems, generate_minic_dataset, minic_incorrect_attempts};
pub use mutation::{empty_attempt, mutate, unsupported_attempt, FaultKind, Mutant};
pub use problem::{GradingMode, Problem};
pub use variation::{rename_variables, rename_with, tweak_expressions, vary_seed};
pub use workload::{duplicate_fraction, generate_workload, RequestKind, WorkloadConfig, WorkloadRequest};

use clara_model::frontend::Lang;

/// All nine MiniPy problems of the paper's evaluation (Table 1 + Table 2).
pub fn all_problems() -> Vec<Problem> {
    let mut problems = mooc::all_mooc_problems();
    problems.extend(study::all_study_problems());
    problems
}

/// Every problem across every frontend: the nine MiniPy problems plus the
/// MiniC translations. Problem names are globally unique, so the combined
/// set can be served by one service.
pub fn all_problems_all_langs() -> Vec<Problem> {
    let mut problems = all_problems();
    problems.extend(all_minic_problems());
    problems
}

/// Builds the dataset for a problem with the generator matching its
/// language (the MiniPy variation/mutation engines, or the seed-cycling
/// MiniC generator).
pub fn generate_dataset_for(problem: &Problem, config: DatasetConfig) -> Dataset {
    match problem.lang {
        Lang::MiniPy => generate_dataset(problem, config),
        Lang::MiniC => generate_minic_dataset(problem, config),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn there_are_nine_problems() {
        let problems = all_problems();
        assert_eq!(problems.len(), 9);
        let names: Vec<&str> = problems.iter().map(|p| p.name).collect();
        assert!(names.contains(&"derivatives"));
        assert!(names.contains(&"rhombus"));
    }

    #[test]
    fn every_problem_has_a_consistent_reference() {
        for problem in all_problems() {
            assert_eq!(
                problem.grade_source(problem.reference),
                Some(true),
                "reference of {} is not correct",
                problem.name
            );
        }
    }
}
