//! The persistent on-disk regression corpus of minimized killed mutants.
//!
//! Every wrong-answer mutant the multi-fault engine produces is shrunk to
//! its smallest still-failing operator core ([`crate::mutate::minimize_steps`]);
//! distinct cores are *promoted* into this corpus — one JSON file per
//! problem under `corpus/regression/` at the repository root, committed to
//! version control and replayed on every CI run. Each entry records the
//! exact fault chain (operator names + per-step RNG seeds), the rendered
//! source it produced, and whether the repair pipeline fixed it at
//! promotion time. Replay then asserts three things:
//!
//! 1. **reproducibility** — the chain still renders byte-identical source
//!    from its seed solution (the mutation engine did not silently drift);
//! 2. **the mutant is still killed** — the grader still classifies it
//!    wrong-answer (the corpus stays a corpus of bugs);
//! 3. at a higher layer (the workspace `regression_corpus` test), the
//!    differential oracle re-judges every entry: a previously-repaired
//!    mutant that stops repairing, or any unsound claimed repair, fails CI.

use std::fs;
use std::io;
use std::path::{Path, PathBuf};

use serde::{Deserialize, Serialize};

use crate::mutate::{classify, replay_steps, FaultStep, MutantBucket, MutationOp};
use crate::problem::Problem;

/// On-disk format version; bumped when the stored shape changes.
pub const REGRESSION_FORMAT_VERSION: u32 = 1;

/// One recorded operator application, stored by stable operator *name* so
/// the files stay human-readable and survive enum reordering.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct RegressionStep {
    /// Stable kebab-case operator name ([`MutationOp::name`]).
    pub op: String,
    /// Seed of the per-step site-selection RNG.
    pub seed: u64,
}

impl RegressionStep {
    /// Converts back to the replayable [`FaultStep`]; `None` for operator
    /// names this build no longer knows.
    pub fn to_fault_step(&self) -> Option<FaultStep> {
        Some(FaultStep { op: MutationOp::from_name(&self.op)?, seed: self.seed })
    }
}

/// One minimized killed mutant of the regression corpus.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RegressionEntry {
    /// Index of the seed solution the chain starts from.
    pub seed_index: usize,
    /// The minimized fault chain, in application order.
    pub steps: Vec<RegressionStep>,
    /// The rendered source the chain produced at promotion time (replay
    /// must reproduce it byte-identically).
    pub source: String,
    /// Structural hash of the source at promotion time (distinctness
    /// witness within the file; intra-build only, the authoritative
    /// reproducibility check is the source text).
    pub structural_hash: u64,
    /// Whether the repair pipeline produced a sound repair at promotion
    /// time. Replay fails CI when a previously-repaired mutant regresses.
    pub repaired: bool,
}

/// The per-problem regression corpus file (`corpus/regression/<problem>.json`).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RegressionFile {
    /// On-disk format version ([`REGRESSION_FORMAT_VERSION`]).
    pub version: u32,
    /// Problem name the entries belong to.
    pub problem: String,
    /// Canonical language tag of the problem.
    pub lang: String,
    /// The multi-fault generation seed the corpus was promoted from.
    pub mutation_seed: u64,
    /// The minimized killed mutants.
    pub entries: Vec<RegressionEntry>,
}

/// What replaying one entry established.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ReplayOutcome {
    /// The chain reproduced its recorded source and the grader still kills
    /// it: the entry holds.
    Reproduced,
    /// The chain no longer applies (an operator name is unknown, a step
    /// found no site, or the round trip broke) — the mutation engine
    /// drifted incompatibly.
    ChainBroken,
    /// The chain replayed but rendered different source than recorded —
    /// seeded generation is no longer deterministic across builds.
    SourceDrift {
        /// What the chain renders today.
        replayed: String,
    },
    /// The replayed mutant is no longer classified wrong-answer (the
    /// grader or the problem definition changed under the corpus).
    NoLongerFailing,
}

/// Replays one entry against its problem (reproducibility + still-killed;
/// the oracle-level checks live in the workspace replay test, which has the
/// full repair pipeline in scope).
pub fn replay_entry(problem: &Problem, entry: &RegressionEntry) -> ReplayOutcome {
    let Some(steps) = entry.steps.iter().map(RegressionStep::to_fault_step).collect::<Option<Vec<_>>>()
    else {
        return ReplayOutcome::ChainBroken;
    };
    let Some((source, _)) = replay_steps(problem, entry.seed_index, &steps) else {
        return ReplayOutcome::ChainBroken;
    };
    if source != entry.source {
        return ReplayOutcome::SourceDrift { replayed: source };
    }
    if classify(problem, &source) != Some(MutantBucket::WrongAnswer) {
        return ReplayOutcome::NoLongerFailing;
    }
    ReplayOutcome::Reproduced
}

/// The committed regression corpus directory (`corpus/regression/` at the
/// repository root), resolved relative to this crate so tests and binaries
/// find it regardless of their working directory.
pub fn regression_dir() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("..").join("..").join("corpus").join("regression")
}

/// Writes one problem's corpus file as pretty JSON, creating the directory
/// if needed. Returns the written path.
///
/// # Errors
///
/// Propagates filesystem errors.
pub fn save_regression_file(dir: &Path, file: &RegressionFile) -> io::Result<PathBuf> {
    fs::create_dir_all(dir)?;
    let path = dir.join(format!("{}.json", file.problem));
    let json = serde_json::to_string_pretty(file)
        .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e.to_string()))?;
    fs::write(&path, json + "\n")?;
    Ok(path)
}

/// Loads every `*.json` corpus file under `dir`, sorted by problem name.
/// A missing directory is an empty corpus, not an error; a file that does
/// not parse as a [`RegressionFile`] (or has a future format version) is.
///
/// # Errors
///
/// Propagates filesystem errors and malformed corpus files.
pub fn load_regression_dir(dir: &Path) -> io::Result<Vec<RegressionFile>> {
    let mut files = Vec::new();
    let entries = match fs::read_dir(dir) {
        Ok(entries) => entries,
        Err(e) if e.kind() == io::ErrorKind::NotFound => return Ok(files),
        Err(e) => return Err(e),
    };
    for entry in entries {
        let path = entry?.path();
        if path.extension().and_then(|e| e.to_str()) != Some("json") {
            continue;
        }
        let text = fs::read_to_string(&path)?;
        let file: RegressionFile = serde_json::from_str(&text)
            .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, format!("{}: {e}", path.display())))?;
        if file.version > REGRESSION_FORMAT_VERSION {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                format!("{}: format version {} is newer than this build", path.display(), file.version),
            ));
        }
        files.push(file);
    }
    files.sort_by(|a, b| a.problem.cmp(&b.problem));
    Ok(files)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mutate::{derive_multi_fault_mutants, minimize_steps, MultiFaultConfig};
    use crate::study::fibonacci;

    fn sample_file() -> RegressionFile {
        let problem = fibonacci();
        let config = MultiFaultConfig { target_wrong_answer: 3, max_attempts: 400, ..Default::default() };
        let (mutants, _) = derive_multi_fault_mutants(&problem, &config);
        let entries: Vec<RegressionEntry> = mutants
            .iter()
            .filter(|m| m.bucket == crate::MutantBucket::WrongAnswer)
            .map(|m| {
                let steps = minimize_steps(&problem, m.seed_index, &m.steps);
                let (source, structural_hash) =
                    crate::replay_steps(&problem, m.seed_index, &steps).expect("minimized chain replays");
                RegressionEntry {
                    seed_index: m.seed_index,
                    steps: steps
                        .iter()
                        .map(|s| RegressionStep { op: s.op.name().to_owned(), seed: s.seed })
                        .collect(),
                    source,
                    structural_hash,
                    repaired: false,
                }
            })
            .collect();
        assert!(!entries.is_empty(), "fibonacci must yield killed multi-fault mutants");
        RegressionFile {
            version: REGRESSION_FORMAT_VERSION,
            problem: problem.name.to_owned(),
            lang: problem.lang.as_str().to_owned(),
            mutation_seed: config.seed,
            entries,
        }
    }

    #[test]
    fn corpus_files_roundtrip_and_replay() {
        let dir = std::env::temp_dir().join(format!("clara-regression-{}", std::process::id()));
        let file = sample_file();
        let path = save_regression_file(&dir, &file).unwrap();
        assert!(path.ends_with("fibonacci.json"));
        let loaded = load_regression_dir(&dir).unwrap();
        assert_eq!(loaded, vec![file.clone()]);
        let problem = fibonacci();
        for entry in &file.entries {
            assert_eq!(replay_entry(&problem, entry), ReplayOutcome::Reproduced, "{}", entry.source);
        }
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn drifted_entries_are_detected() {
        let problem = fibonacci();
        let file = sample_file();
        let mut entry = file.entries[0].clone();
        entry.source = format!("{}\n# drifted", entry.source);
        assert!(matches!(replay_entry(&problem, &entry), ReplayOutcome::SourceDrift { .. }));
        let mut broken = file.entries[0].clone();
        broken.steps[0].op = "no-such-operator".to_owned();
        assert_eq!(replay_entry(&problem, &broken), ReplayOutcome::ChainBroken);
    }

    #[test]
    fn missing_directory_is_an_empty_corpus() {
        let dir = Path::new("/nonexistent/clara-regression");
        assert_eq!(load_regression_dir(dir).unwrap(), Vec::new());
    }
}
