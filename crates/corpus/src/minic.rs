//! MiniC translations of three user-study problems.
//!
//! The original user study (Table 2 of the paper) was run on *C*
//! submissions; these are faithful C90-ish translations of the integer
//! problems — `fibonacci`, `special_number` and `reverse_difference` — with
//! seed solutions mirroring the strategy diversity of their MiniPy
//! counterparts. Incorrect attempts are synthesised by the language-neutral
//! surface-IR mutation engine ([`crate::mutate`]); the hand-written buggy
//! attempts below remain as curated regression cases and as the fallback
//! population when a tiny mutation budget runs dry.
//!
//! The seeds are written so that the reference solutions lower to model
//! programs *isomorphic* to the MiniPy references (same location structure,
//! same traces on the shared inputs) — the cross-language parity tests
//! assert exactly that.

use clara_lang::Value;

use crate::dataset::{Attempt, AttemptKind, Dataset, DatasetConfig};
use crate::problem::{GradingMode, Problem};

/// `fibonacci_c`: the MiniC translation of the `fibonacci` study problem —
/// given `k > 0`, print the `n > 0` such that `F_n <= k < F_{n+1}`.
pub fn fibonacci_c() -> Problem {
    const REFERENCE: &str = "\
int fib(int k) {
    int a = 1;
    int b = 1;
    int n = 1;
    while (b <= k) {
        int c = a + b;
        a = b;
        b = c;
        n = n + 1;
    }
    printf(\"%d\\n\", n);
    return 0;
}
";
    const SEEDS: &[&str] = &[
        REFERENCE,
        "\
int fib(int k) {
    int prev = 1;
    int cur = 1;
    int count = 1;
    while (cur <= k) {
        int temp = cur;
        cur = cur + prev;
        prev = temp;
        count = count + 1;
    }
    printf(\"%d\\n\", count);
    return 0;
}
",
        "\
int fib(int k) {
    int a = 0;
    int b = 1;
    int n = 0;
    while (b <= k) {
        int c = a + b;
        a = b;
        b = c;
        n = n + 1;
    }
    printf(\"%d\\n\", n);
    return 0;
}
",
        "\
int fib(int k) {
    int a = 1;
    int b = 1;
    int n = 1;
    while (a + b <= k + a) {
        int c = a + b;
        a = b;
        b = c;
        n = n + 1;
    }
    printf(\"%d\\n\", n);
    return 0;
}
",
    ];
    Problem::new_minic(
        "fibonacci_c",
        "Print the integer n > 0 such that F_n <= k < F_{n+1}. (MiniC)",
        "fib",
        GradingMode::PrintedOutput,
        REFERENCE,
        SEEDS.to_vec(),
        vec![
            vec![Value::Int(1)],
            vec![Value::Int(2)],
            vec![Value::Int(4)],
            vec![Value::Int(8)],
            vec![Value::Int(20)],
            vec![Value::Int(100)],
        ],
    )
}

/// Hand-written buggy `fibonacci_c` attempts (off-by-one condition, missing
/// swap, wrong initialisation, dropped increment guarded by the step limit).
pub fn fibonacci_c_incorrect() -> Vec<&'static str> {
    vec![
        "\
int fib(int k) {
    int a = 1;
    int b = 1;
    int n = 1;
    while (b < k) {
        int c = a + b;
        a = b;
        b = c;
        n = n + 1;
    }
    printf(\"%d\\n\", n);
    return 0;
}
",
        "\
int fib(int k) {
    int a = 1;
    int b = 1;
    int n = 0;
    while (b <= k) {
        int c = a + b;
        a = b;
        b = c;
        n = n + 1;
    }
    printf(\"%d\\n\", n);
    return 0;
}
",
        "\
int fib(int k) {
    int a = 1;
    int b = 1;
    int n = 1;
    while (b <= k) {
        int c = a + b;
        b = c;
        n = n + 1;
    }
    printf(\"%d\\n\", n);
    return 0;
}
",
    ]
}

/// `special_number_c`: the MiniC translation of `special_number` — print YES
/// if the sum of the cubes of the digits of `n` equals `n`, NO otherwise.
pub fn special_number_c() -> Problem {
    const REFERENCE: &str = "\
int special(int n) {
    int s = 0;
    int m = n;
    while (m > 0) {
        int d = m % 10;
        s = s + d * d * d;
        m = m / 10;
    }
    if (s == n) {
        printf(\"YES\\n\");
    } else {
        printf(\"NO\\n\");
    }
    return 0;
}
";
    const SEEDS: &[&str] = &[
        REFERENCE,
        "\
int special(int n) {
    int total = 0;
    int rest = n;
    while (rest > 0) {
        int digit = rest % 10;
        total = total + digit * digit * digit;
        rest = rest / 10;
    }
    if (total == n) {
        printf(\"YES\\n\");
    } else {
        printf(\"NO\\n\");
    }
    return 0;
}
",
        "\
int special(int n) {
    int m = n;
    int acc = 0;
    while (m > 0) {
        acc = acc + (m % 10) * (m % 10) * (m % 10);
        m = m / 10;
    }
    if (acc != n) {
        printf(\"NO\\n\");
    } else {
        printf(\"YES\\n\");
    }
    return 0;
}
",
    ];
    Problem::new_minic(
        "special_number_c",
        "Print YES if the sum of cubes of the digits of n equals n, NO otherwise. (MiniC)",
        "special",
        GradingMode::PrintedOutput,
        REFERENCE,
        SEEDS.to_vec(),
        vec![
            vec![Value::Int(371)],
            vec![Value::Int(153)],
            vec![Value::Int(370)],
            vec![Value::Int(10)],
            vec![Value::Int(9474)],
            vec![Value::Int(407)],
            vec![Value::Int(5)],
        ],
    )
}

/// Hand-written buggy `special_number_c` attempts (squares instead of cubes,
/// swapped branches, wrong digit extraction).
pub fn special_number_c_incorrect() -> Vec<&'static str> {
    vec![
        "\
int special(int n) {
    int s = 0;
    int m = n;
    while (m > 0) {
        int d = m % 10;
        s = s + d * d;
        m = m / 10;
    }
    if (s == n) {
        printf(\"YES\\n\");
    } else {
        printf(\"NO\\n\");
    }
    return 0;
}
",
        "\
int special(int n) {
    int s = 0;
    int m = n;
    while (m > 0) {
        int d = m % 10;
        s = s + d * d * d;
        m = m / 10;
    }
    if (s == n) {
        printf(\"NO\\n\");
    } else {
        printf(\"YES\\n\");
    }
    return 0;
}
",
        "\
int special(int n) {
    int s = 0;
    int m = n;
    while (m > 0) {
        int d = m / 10;
        s = s + d * d * d;
        m = m / 10;
    }
    if (s == n) {
        printf(\"YES\\n\");
    } else {
        printf(\"NO\\n\");
    }
    return 0;
}
",
    ]
}

/// `reverse_difference_c`: the MiniC translation of `reverse_difference` —
/// print the difference between `n` and its decimal reverse.
pub fn reverse_difference_c() -> Problem {
    const REFERENCE: &str = "\
int revdiff(int n) {
    int m = n;
    int r = 0;
    while (m > 0) {
        r = r * 10 + m % 10;
        m = m / 10;
    }
    printf(\"%d\\n\", n - r);
    return 0;
}
";
    const SEEDS: &[&str] = &[
        REFERENCE,
        "\
int revdiff(int n) {
    int rest = n;
    int rev = 0;
    while (rest > 0) {
        int digit = rest % 10;
        rev = rev * 10 + digit;
        rest = rest / 10;
    }
    printf(\"%d\\n\", n - rev);
    return 0;
}
",
        "\
int revdiff(int n) {
    int m = n;
    int r = 0;
    for (; m > 0; m = m / 10) {
        r = r * 10 + m % 10;
    }
    printf(\"%d\\n\", n - r);
    return 0;
}
",
    ];
    Problem::new_minic(
        "reverse_difference_c",
        "Print the difference of n and its reverse (e.g. 1234 -> -3087). (MiniC)",
        "revdiff",
        GradingMode::PrintedOutput,
        REFERENCE,
        SEEDS.to_vec(),
        vec![
            vec![Value::Int(1234)],
            vec![Value::Int(1)],
            vec![Value::Int(100)],
            vec![Value::Int(505)],
            vec![Value::Int(9876)],
            vec![Value::Int(42)],
        ],
    )
}

/// Hand-written buggy `reverse_difference_c` attempts (reversed subtraction,
/// dropped shift, wrong loop condition).
pub fn reverse_difference_c_incorrect() -> Vec<&'static str> {
    vec![
        "\
int revdiff(int n) {
    int m = n;
    int r = 0;
    while (m > 0) {
        r = r * 10 + m % 10;
        m = m / 10;
    }
    printf(\"%d\\n\", r - n);
    return 0;
}
",
        "\
int revdiff(int n) {
    int m = n;
    int r = 0;
    while (m > 0) {
        r = r + m % 10;
        m = m / 10;
    }
    printf(\"%d\\n\", n - r);
    return 0;
}
",
        "\
int revdiff(int n) {
    int m = n;
    int r = 0;
    while (m > 10) {
        r = r * 10 + m % 10;
        m = m / 10;
    }
    printf(\"%d\\n\", n - r);
    return 0;
}
",
    ]
}

/// The MiniC problem set (the second-language counterpart of
/// [`crate::all_problems`]).
pub fn all_minic_problems() -> Vec<Problem> {
    vec![fibonacci_c(), special_number_c(), reverse_difference_c()]
}

/// The hand-written incorrect attempts for a MiniC problem.
pub fn minic_incorrect_attempts(problem_name: &str) -> Vec<&'static str> {
    match problem_name {
        "fibonacci_c" => fibonacci_c_incorrect(),
        "special_number_c" => special_number_c_incorrect(),
        "reverse_difference_c" => reverse_difference_c_incorrect(),
        _ => Vec::new(),
    }
}

/// Builds a deterministic MiniC dataset: the correct pool cycles the seeds
/// (duplicate resubmission is the dominant MOOC pattern, so verbatim
/// repetition is realistic traffic); the incorrect pool is *synthesised* by
/// the surface-IR mutation engine ([`crate::mutate`]) from `config.seed` —
/// every failing bucket qualifies (wrong answers and diverging attempts are
/// both realistic traffic) — topped up by cycling the hand-written buggy
/// attempts when the engine's budget runs dry.
pub fn generate_minic_dataset(problem: &Problem, config: DatasetConfig) -> Dataset {
    use crate::mutate::{derive_mutants, MutantBucket, MutationConfig};

    let buggy = minic_incorrect_attempts(problem.name);
    assert!(!buggy.is_empty(), "`{}` is not a MiniC problem with attempts", problem.name);
    let mut id = 0usize;
    let mut push = |pool: &mut Vec<Attempt>, source: &str, is_correct: bool, kind: AttemptKind| {
        pool.push(Attempt {
            id,
            source: source.to_owned(),
            is_correct,
            kind,
            fault_count: usize::from(!is_correct),
        });
        id += 1;
    };
    let mut correct = Vec::with_capacity(config.correct_count);
    for i in 0..config.correct_count {
        let source = problem.seeds[i % problem.seeds.len()];
        let kind = if i < problem.seeds.len() { AttemptKind::Seed } else { AttemptKind::Variant };
        push(&mut correct, source, true, kind);
    }
    let mutation_config = MutationConfig {
        seed: config.seed,
        target_wrong_answer: config.incorrect_count,
        max_attempts: (config.incorrect_count * 40).max(400),
    };
    let (mutants, _) = derive_mutants(problem, &mutation_config);
    let mut incorrect = Vec::with_capacity(config.incorrect_count);
    for mutant in mutants.iter().filter(|m| m.bucket != MutantBucket::StillCorrect) {
        if incorrect.len() >= config.incorrect_count {
            break;
        }
        push(&mut incorrect, &mutant.source, false, AttemptKind::Mutant);
    }
    let mut i = 0usize;
    while incorrect.len() < config.incorrect_count {
        push(&mut incorrect, buggy[i % buggy.len()], false, AttemptKind::Mutant);
        i += 1;
    }
    Dataset { problem: problem.clone(), correct, incorrect, config }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_minic_reference_and_seed_is_correct() {
        for problem in all_minic_problems() {
            assert_eq!(problem.lang, clara_model::frontend::Lang::MiniC);
            assert_eq!(problem.grade_source(problem.reference), Some(true), "{}", problem.name);
            assert_eq!(problem.check_seeds(), Vec::<usize>::new(), "{}", problem.name);
        }
    }

    #[test]
    fn every_buggy_attempt_parses_but_fails_grading() {
        for problem in all_minic_problems() {
            for attempt in minic_incorrect_attempts(problem.name) {
                assert_eq!(
                    problem.grade_source(attempt),
                    Some(false),
                    "attempt for `{}` should parse and fail:\n{attempt}",
                    problem.name
                );
            }
        }
    }

    #[test]
    fn minic_datasets_have_the_requested_shape() {
        let problem = fibonacci_c();
        let config = DatasetConfig { correct_count: 10, incorrect_count: 6, ..DatasetConfig::default() };
        let dataset = generate_minic_dataset(&problem, config);
        assert_eq!(dataset.correct.len(), 10);
        assert_eq!(dataset.incorrect.len(), 6);
        for attempt in &dataset.correct {
            assert!(attempt.is_correct);
        }
        for attempt in &dataset.incorrect {
            assert!(!attempt.is_correct);
            assert_eq!(dataset.problem.grade_source(&attempt.source), Some(false), "{}", attempt.source);
        }
        // Ids are unique across both pools.
        let ids: std::collections::HashSet<usize> =
            dataset.correct.iter().chain(&dataset.incorrect).map(|a| a.id).collect();
        assert_eq!(ids.len(), 16);
    }

    #[test]
    fn minic_incorrect_pools_are_synthesised_not_hand_cycled() {
        // With the surface mutation engine in place the incorrect pool is no
        // longer limited to the 3 hand-written attempts per problem.
        let problem = fibonacci_c();
        let config = DatasetConfig { correct_count: 5, incorrect_count: 12, ..DatasetConfig::default() };
        let dataset = generate_minic_dataset(&problem, config);
        let distinct: std::collections::HashSet<&str> =
            dataset.incorrect.iter().map(|a| a.source.as_str()).collect();
        assert!(
            distinct.len() > fibonacci_c_incorrect().len(),
            "only {} distinct incorrect attempts",
            distinct.len()
        );
        // A different corpus seed produces a different incorrect pool.
        let other = generate_minic_dataset(&problem, DatasetConfig { seed: config.seed + 1, ..config });
        let texts = |d: &Dataset| d.incorrect.iter().map(|a| a.source.clone()).collect::<Vec<_>>();
        assert_ne!(texts(&dataset), texts(&other));
    }

    #[test]
    fn grade_report_counts_failing_tests() {
        let problem = special_number_c();
        let report = problem.grade_report(special_number_c_incorrect()[0]).unwrap();
        assert!(!report.all_passed());
        assert!(report.passed_count() < problem.spec.tests.len());
        // Unparseable submissions have no report.
        assert!(problem.grade_report("int special( {").is_none());
    }
}
