//! Synthetic dataset generation: the stand-in for the MITx MOOC and ESC-101
//! submission archives.
//!
//! A [`Dataset`] holds a pool of *correct* solutions (used for clustering)
//! and a pool of *incorrect* attempts (to be repaired), generated
//! deterministically from a seed so that every benchmark run sees the same
//! corpus. The split mirrors the paper's 80:20 chronological split: the
//! correct pool plays the role of the earlier submissions, the incorrect pool
//! the later ones.

use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;
use serde::{Deserialize, Serialize};

use crate::mutation::{empty_attempt, mutate, unsupported_attempt, FaultKind};
use crate::problem::Problem;
use crate::variation::vary_seed;

/// How an attempt was produced.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum AttemptKind {
    /// One of the hand-written seed solutions.
    Seed,
    /// A semantics-preserving variant of a seed.
    Variant,
    /// A fault-injected mutant of a correct solution.
    Mutant,
    /// A completely empty submission.
    Empty,
    /// A submission using unsupported language features.
    Unsupported,
}

/// One student submission of the synthetic corpus.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Attempt {
    /// Stable identifier within the dataset.
    pub id: usize,
    /// The submission text.
    pub source: String,
    /// Whether the submission passes the full test suite.
    pub is_correct: bool,
    /// How the submission was produced.
    pub kind: AttemptKind,
    /// Number of injected faults (0 for correct attempts).
    pub fault_count: usize,
}

/// Generation parameters.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct DatasetConfig {
    /// Number of correct solutions to generate.
    pub correct_count: usize,
    /// Number of incorrect attempts to generate.
    pub incorrect_count: usize,
    /// RNG seed (datasets are fully deterministic given the seed).
    pub seed: u64,
    /// Fraction of incorrect attempts that are completely empty
    /// (the paper's MOOC data had 436 of 4,293 ≈ 10%).
    pub empty_fraction: f64,
    /// Fraction of incorrect attempts using unsupported features
    /// (69 of 4,293 ≈ 1.6% in the paper).
    pub unsupported_fraction: f64,
    /// Fraction of incorrect attempts that are verbatim resubmissions of an
    /// earlier incorrect attempt (MOOC students routinely resubmit unchanged
    /// or trivially reformatted code). `0.0` — the default — reproduces the
    /// historical corpora byte-for-byte; serving benchmarks raise it to model
    /// duplicate-heavy traffic.
    pub duplicate_rate: f64,
}

impl Default for DatasetConfig {
    fn default() -> Self {
        DatasetConfig {
            correct_count: 120,
            incorrect_count: 40,
            seed: 0xC1A7A,
            empty_fraction: 0.10,
            unsupported_fraction: 0.016,
            duplicate_rate: 0.0,
        }
    }
}

/// A synthetic submission corpus for one assignment.
#[derive(Debug, Clone)]
pub struct Dataset {
    /// The assignment.
    pub problem: Problem,
    /// The correct-solution pool (for clustering).
    pub correct: Vec<Attempt>,
    /// The incorrect-attempt pool (to be repaired).
    pub incorrect: Vec<Attempt>,
    /// The configuration that produced the dataset.
    pub config: DatasetConfig,
}

impl Dataset {
    /// Total number of attempts.
    pub fn total(&self) -> usize {
        self.correct.len() + self.incorrect.len()
    }

    /// Structural-duplication statistics of the corpus (see [`DatasetStats`]).
    pub fn stats(&self) -> DatasetStats {
        let mut seen = std::collections::HashSet::new();
        let mut parse_failures = 0usize;
        let mut duplicates = 0usize;
        for attempt in self.correct.iter().chain(&self.incorrect) {
            match clara_lang::parse_program(&attempt.source) {
                Ok(parsed) => {
                    if !seen.insert(parsed.structural_hash()) {
                        duplicates += 1;
                    }
                }
                Err(_) => parse_failures += 1,
            }
        }
        let total = self.total();
        DatasetStats {
            total,
            correct: self.correct.len(),
            incorrect: self.incorrect.len(),
            parse_failures,
            distinct_structural: seen.len(),
            structural_dedup_rate: if total > 0 { duplicates as f64 / total as f64 } else { 0.0 },
        }
    }
}

/// Structural-duplication statistics of a [`Dataset`].
///
/// `structural_dedup_rate` is the fraction of attempts whose
/// formatting-insensitive [`structural hash`](clara_lang::SourceProgram::structural_hash)
/// was already contributed by an earlier attempt — an upper bound on the
/// fraction of this traffic a result cache keyed on that hash can absorb.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct DatasetStats {
    /// Total number of attempts (correct + incorrect).
    pub total: usize,
    /// Number of correct attempts.
    pub correct: usize,
    /// Number of incorrect attempts.
    pub incorrect: usize,
    /// Attempts that do not parse (no structural hash; never cacheable).
    pub parse_failures: usize,
    /// Number of distinct structural hashes among the parseable attempts.
    pub distinct_structural: usize,
    /// Fraction of attempts that structurally duplicate an earlier one.
    pub structural_dedup_rate: f64,
}

/// Generates a deterministic synthetic corpus for `problem`.
pub fn generate_dataset(problem: &Problem, config: DatasetConfig) -> Dataset {
    let mut rng = ChaCha8Rng::seed_from_u64(config.seed ^ crate::stable_name_hash(problem.name));
    let mut correct = Vec::with_capacity(config.correct_count);
    let mut incorrect = Vec::with_capacity(config.incorrect_count);
    let mut id = 0usize;

    // Correct pool: all seeds first, then verified variants of random seeds.
    for seed in &problem.seeds {
        if correct.len() >= config.correct_count {
            break;
        }
        correct.push(Attempt {
            id,
            source: (*seed).to_owned(),
            is_correct: true,
            kind: AttemptKind::Seed,
            fault_count: 0,
        });
        id += 1;
    }
    while correct.len() < config.correct_count {
        let seed = problem.seeds.choose(&mut rng).expect("problems have seeds");
        let variant = vary_seed(problem, seed, &mut rng);
        correct.push(Attempt {
            id,
            source: variant,
            is_correct: true,
            kind: AttemptKind::Variant,
            fault_count: 0,
        });
        id += 1;
    }

    // Incorrect pool: empty and unsupported populations first, then
    // fault-injected mutants of (variants of) correct solutions.
    let empty_target = (config.incorrect_count as f64 * config.empty_fraction).round() as usize;
    let unsupported_target = (config.incorrect_count as f64 * config.unsupported_fraction).ceil() as usize;
    for _ in 0..empty_target.min(config.incorrect_count) {
        let attempt = empty_attempt(problem);
        incorrect.push(Attempt {
            id,
            source: attempt.source,
            is_correct: false,
            kind: AttemptKind::Empty,
            fault_count: 0,
        });
        id += 1;
    }
    for _ in 0..unsupported_target {
        if incorrect.len() >= config.incorrect_count {
            break;
        }
        let attempt = unsupported_attempt(problem, &mut rng);
        incorrect.push(Attempt {
            id,
            source: attempt.source,
            is_correct: false,
            kind: AttemptKind::Unsupported,
            fault_count: 0,
        });
        id += 1;
    }
    // Verbatim resubmissions are injected after the fresh pool is complete,
    // so `duplicate_rate: 0.0` reproduces historical corpora exactly.
    let duplicate_target = (config.incorrect_count as f64 * config.duplicate_rate).round() as usize;
    let fresh_target = config.incorrect_count.saturating_sub(duplicate_target);
    let mut attempts_without_mutant = 0usize;
    while incorrect.len() < fresh_target && attempts_without_mutant < 200 {
        let seed = problem.seeds.choose(&mut rng).expect("problems have seeds");
        // Mutate either the seed itself or a correct variant of it, so that
        // incorrect attempts inherit the corpus' syntactic diversity.
        let base = if rng.gen_bool(0.5) { (*seed).to_owned() } else { vary_seed(problem, seed, &mut rng) };
        // Paper: "education programs are expected to have higher error
        // density" — most attempts have one fault, a sizeable tail has more.
        let fault_count = match rng.gen_range(0..10u32) {
            0..=5 => 1,
            6..=8 => 2,
            _ => 3,
        };
        match mutate(problem, &base, fault_count, &mut rng) {
            Some(mutant) => {
                incorrect.push(Attempt {
                    id,
                    source: mutant.source,
                    is_correct: false,
                    kind: AttemptKind::Mutant,
                    fault_count: mutant.faults.len(),
                });
                id += 1;
                attempts_without_mutant = 0;
            }
            None => attempts_without_mutant += 1,
        }
    }
    while duplicate_target > 0 && incorrect.len() < config.incorrect_count && !incorrect.is_empty() {
        let original = incorrect.choose(&mut rng).expect("pool is non-empty").clone();
        incorrect.push(Attempt { id, ..original });
        id += 1;
    }

    Dataset { problem: problem.clone(), correct, incorrect, config }
}

/// The fault kinds available to the mutator (re-exported for reporting).
pub fn fault_kinds() -> &'static [FaultKind] {
    FaultKind::all()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mooc::derivatives;
    use crate::study::trapezoid;

    fn small_config() -> DatasetConfig {
        DatasetConfig { correct_count: 30, incorrect_count: 15, seed: 42, ..DatasetConfig::default() }
    }

    #[test]
    fn datasets_have_the_requested_sizes() {
        let dataset = generate_dataset(&derivatives(), small_config());
        assert_eq!(dataset.correct.len(), 30);
        assert_eq!(dataset.incorrect.len(), 15);
        assert_eq!(dataset.total(), 45);
    }

    #[test]
    fn correct_attempts_pass_and_incorrect_attempts_fail() {
        let dataset = generate_dataset(&derivatives(), small_config());
        for attempt in &dataset.correct {
            assert_eq!(dataset.problem.grade_source(&attempt.source), Some(true), "{}", attempt.source);
        }
        for attempt in &dataset.incorrect {
            assert_eq!(dataset.problem.grade_source(&attempt.source), Some(false), "{}", attempt.source);
        }
    }

    #[test]
    fn generation_is_deterministic() {
        let a = generate_dataset(&derivatives(), small_config());
        let b = generate_dataset(&derivatives(), small_config());
        let texts_a: Vec<&str> = a.correct.iter().map(|x| x.source.as_str()).collect();
        let texts_b: Vec<&str> = b.correct.iter().map(|x| x.source.as_str()).collect();
        assert_eq!(texts_a, texts_b);
        let inc_a: Vec<&str> = a.incorrect.iter().map(|x| x.source.as_str()).collect();
        let inc_b: Vec<&str> = b.incorrect.iter().map(|x| x.source.as_str()).collect();
        assert_eq!(inc_a, inc_b);
    }

    #[test]
    fn different_seeds_give_different_corpora() {
        let a = generate_dataset(&derivatives(), small_config());
        let b = generate_dataset(&derivatives(), DatasetConfig { seed: 43, ..small_config() });
        let texts_a: Vec<&str> = a.incorrect.iter().map(|x| x.source.as_str()).collect();
        let texts_b: Vec<&str> = b.incorrect.iter().map(|x| x.source.as_str()).collect();
        assert_ne!(texts_a, texts_b);
    }

    #[test]
    fn special_populations_are_present() {
        let config =
            DatasetConfig { correct_count: 20, incorrect_count: 40, seed: 7, ..DatasetConfig::default() };
        let dataset = generate_dataset(&derivatives(), config);
        assert!(dataset.incorrect.iter().any(|a| a.kind == AttemptKind::Empty));
        assert!(dataset.incorrect.iter().any(|a| a.kind == AttemptKind::Unsupported));
        assert!(dataset.incorrect.iter().filter(|a| a.kind == AttemptKind::Mutant).count() >= 20);
    }

    #[test]
    fn duplicate_rate_injects_verbatim_resubmissions() {
        let config = DatasetConfig { duplicate_rate: 0.5, incorrect_count: 20, ..small_config() };
        let dataset = generate_dataset(&derivatives(), config);
        assert_eq!(dataset.incorrect.len(), 20);
        let sources: Vec<&str> = dataset.incorrect.iter().map(|a| a.source.as_str()).collect();
        let distinct: std::collections::HashSet<&str> = sources.iter().copied().collect();
        // 10 duplicates were injected on top of the 10 fresh attempts.
        assert!(distinct.len() <= 10, "expected ≤10 distinct sources, got {}", distinct.len());
        // Ids stay unique even for duplicated sources.
        let ids: std::collections::HashSet<usize> = dataset.incorrect.iter().map(|a| a.id).collect();
        assert_eq!(ids.len(), 20);
        // Duplicates are still incorrect attempts.
        for attempt in &dataset.incorrect {
            assert_eq!(dataset.problem.grade_source(&attempt.source), Some(false));
        }
    }

    #[test]
    fn zero_duplicate_rate_reproduces_the_historical_corpus() {
        let plain = generate_dataset(&derivatives(), small_config());
        let explicit =
            generate_dataset(&derivatives(), DatasetConfig { duplicate_rate: 0.0, ..small_config() });
        let texts =
            |d: &Dataset| d.correct.iter().chain(&d.incorrect).map(|a| a.source.clone()).collect::<Vec<_>>();
        assert_eq!(texts(&plain), texts(&explicit));
    }

    #[test]
    fn stats_report_the_structural_dedup_rate() {
        let config = DatasetConfig { duplicate_rate: 0.5, incorrect_count: 20, ..small_config() };
        let stats = generate_dataset(&derivatives(), config).stats();
        assert_eq!(stats.total, 50);
        assert_eq!(stats.correct, 30);
        assert_eq!(stats.incorrect, 20);
        // At least the 10 injected verbatim duplicates dedup structurally.
        assert!(stats.structural_dedup_rate >= 0.2, "rate was {}", stats.structural_dedup_rate);
        assert!(stats.distinct_structural + stats.parse_failures <= stats.total);
        // The unparseable population cannot be structurally hashed but is
        // still counted.
        let no_dup_stats = generate_dataset(&derivatives(), small_config()).stats();
        assert!(no_dup_stats.structural_dedup_rate < stats.structural_dedup_rate);
    }

    #[test]
    fn output_graded_problems_also_generate() {
        let dataset = generate_dataset(&trapezoid(), small_config());
        assert_eq!(dataset.correct.len(), 30);
        assert!(dataset.incorrect.len() >= 10);
    }
}
