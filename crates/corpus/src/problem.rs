//! Assignment definitions: specification, reference solution and seed
//! solutions.
//!
//! A [`Problem`] bundles everything the corpus generator needs for one
//! assignment from Appendix A of the paper: the grading [`ProblemSpec`]
//! (entry point plus test suite), a reference solution used to derive the
//! expected outputs, and a set of hand-written *seed* solutions implementing
//! genuinely different strategies (these become the different clusters).

use clara_lang::{
    parse_program, run_function, Expected, GradeReport, Limits, ProblemSpec, SourceProgram, TestCase,
    TestResult, Value,
};
use clara_model::frontend::{grading_fuel, model_passes_test, Frontend, Lang};

/// How an assignment is graded.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum GradingMode {
    /// The return value of the entry function is compared.
    ReturnValue,
    /// The printed output is compared.
    PrintedOutput,
}

/// One assignment: specification plus seed solutions.
#[derive(Debug, Clone)]
pub struct Problem {
    /// Short identifier (e.g. `"derivatives"`).
    pub name: &'static str,
    /// Human-readable problem statement (from Appendix A).
    pub statement: &'static str,
    /// Entry-point function name.
    pub entry: &'static str,
    /// The source language submissions are written in.
    pub lang: Lang,
    /// How attempts are graded.
    pub grading: GradingMode,
    /// The reference solution (also the first seed).
    pub reference: &'static str,
    /// Hand-written correct solutions, each a different strategy.
    pub seeds: Vec<&'static str>,
    /// The grading specification (inputs plus expected behaviour).
    pub spec: ProblemSpec,
}

impl Problem {
    /// Builds a problem, deriving the expected behaviour of every test input
    /// by running the reference solution.
    ///
    /// # Panics
    ///
    /// Panics if the reference solution does not parse or fails to run on an
    /// input — the built-in problems are covered by tests, so this only
    /// triggers while developing a new problem definition.
    pub fn new(
        name: &'static str,
        statement: &'static str,
        entry: &'static str,
        grading: GradingMode,
        reference: &'static str,
        seeds: Vec<&'static str>,
        inputs: Vec<Vec<Value>>,
    ) -> Self {
        let parsed = parse_program(reference)
            .unwrap_or_else(|e| panic!("reference solution of `{name}` does not parse: {e}"));
        let tests = inputs
            .into_iter()
            .map(|args| {
                let execution = run_function(&parsed, entry, &args, Limits::default())
                    .unwrap_or_else(|e| panic!("reference solution of `{name}` failed: {e}"));
                let expected = match grading {
                    GradingMode::ReturnValue => {
                        Expected { return_value: Some(execution.return_value), output: None }
                    }
                    GradingMode::PrintedOutput => {
                        Expected { return_value: None, output: Some(execution.output) }
                    }
                };
                TestCase { args, expected }
            })
            .collect();
        let mut spec = ProblemSpec::new(name, entry, tests);
        // Student attempts routinely contain accidental infinite loops (e.g. a
        // dropped loop increment); a tight step budget keeps grading fast for
        // the tiny programs of introductory assignments.
        spec.limits = Limits { max_steps: 10_000 };
        Problem { name, statement, entry, lang: Lang::MiniPy, grading, reference, seeds, spec }
    }

    /// Builds a MiniC problem, deriving the expected behaviour of every test
    /// input by lowering the C reference solution into the program model and
    /// executing it (MiniC has no separate interpreter; the model *is* its
    /// execution semantics, held trace-equivalent to the source by the
    /// lowering tests).
    ///
    /// # Panics
    ///
    /// Panics if the reference solution does not parse, lower or complete on
    /// an input — the built-in problems are covered by tests, so this only
    /// triggers while developing a new problem definition.
    pub fn new_minic(
        name: &'static str,
        statement: &'static str,
        entry: &'static str,
        grading: GradingMode,
        reference: &'static str,
        seeds: Vec<&'static str>,
        inputs: Vec<Vec<Value>>,
    ) -> Self {
        let parsed = clara_c::parse_c_program(reference)
            .unwrap_or_else(|e| panic!("C reference solution of `{name}` does not parse: {e}"));
        let program = clara_c::lower_entry(&parsed, entry)
            .unwrap_or_else(|e| panic!("C reference solution of `{name}` does not lower: {e}"));
        let limits = Limits { max_steps: 10_000 };
        let fuel = clara_model::Fuel { max_steps: limits.max_steps as usize, ..Default::default() };
        let tests = inputs
            .into_iter()
            .map(|args| {
                let trace = clara_model::execute(&program, &args, fuel);
                assert_eq!(
                    trace.status,
                    clara_model::TraceStatus::Completed,
                    "C reference solution of `{name}` did not complete",
                );
                let expected = match grading {
                    GradingMode::ReturnValue => {
                        Expected { return_value: Some(trace.return_value()), output: None }
                    }
                    GradingMode::PrintedOutput => {
                        Expected { return_value: None, output: Some(trace.output()) }
                    }
                };
                TestCase { args, expected }
            })
            .collect();
        let mut spec = ProblemSpec::new(name, entry, tests);
        spec.limits = limits;
        Problem { name, statement, entry, lang: Lang::MiniC, grading, reference, seeds, spec }
    }

    /// The test inputs (the set `I` over which dynamic equivalence is
    /// computed).
    pub fn inputs(&self) -> Vec<Vec<Value>> {
        self.spec.inputs()
    }

    /// Parses and grades a source text with the problem's frontend; returns
    /// `None` when it does not even parse.
    pub fn grade_source(&self, source: &str) -> Option<bool> {
        match self.lang {
            Lang::MiniPy => {
                let parsed = parse_program(source).ok()?;
                Some(self.spec.is_correct(&parsed))
            }
            Lang::MiniC => {
                let parsed = clara_c::MINIC.parse(source).ok()?;
                Some(parsed.passes(&self.spec))
            }
        }
    }

    /// Parses and grades a source text per test case; returns `None` when it
    /// does not even parse. MiniPy grades through the interpreter, MiniC
    /// through model execution (unlowerable MiniC attempts fail every test).
    pub fn grade_report(&self, source: &str) -> Option<GradeReport> {
        match self.lang {
            Lang::MiniPy => {
                let parsed = parse_program(source).ok()?;
                Some(self.spec.grade(&parsed))
            }
            Lang::MiniC => {
                let parsed = clara_c::parse_c_program(source).ok()?;
                let results = match clara_c::lower_entry(&parsed, self.entry) {
                    Ok(program) => {
                        let fuel = grading_fuel(&self.spec);
                        self.spec
                            .tests
                            .iter()
                            .map(|test| TestResult {
                                passed: model_passes_test(&program, test, fuel),
                                error: None,
                            })
                            .collect()
                    }
                    Err(_) => {
                        self.spec.tests.iter().map(|_| TestResult { passed: false, error: None }).collect()
                    }
                };
                Some(GradeReport { results })
            }
        }
    }

    /// Parses a seed (or any) solution as MiniPy (the variation and mutation
    /// engines are MiniPy-AST-based and only run on MiniPy problems).
    ///
    /// # Panics
    ///
    /// Panics when the text does not parse; seeds are static and covered by
    /// tests.
    pub fn parse(&self, source: &str) -> SourceProgram {
        debug_assert_eq!(self.lang, Lang::MiniPy, "`{}` is not a MiniPy problem", self.name);
        parse_program(source).unwrap_or_else(|e| panic!("solution of `{}` does not parse: {e}", self.name))
    }

    /// All seed solutions (the reference first), parsed.
    pub fn parsed_seeds(&self) -> Vec<SourceProgram> {
        self.seeds.iter().map(|s| self.parse(s)).collect()
    }

    /// Verifies that every seed passes the specification; returns the names
    /// of failing seed indices (used by tests).
    pub fn check_seeds(&self) -> Vec<usize> {
        self.seeds
            .iter()
            .enumerate()
            .filter(|(_, seed)| self.grade_source(seed) != Some(true))
            .map(|(i, _)| i)
            .collect()
    }
}
