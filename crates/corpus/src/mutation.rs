//! Fault injection: turning correct solutions into realistic incorrect
//! attempts.
//!
//! The paper evaluates repair on thousands of real incorrect submissions;
//! since the MITx/ESC-101 data is not available, the corpus generator derives
//! incorrect attempts from correct ones by injecting the kinds of faults the
//! paper discusses (off-by-one loop bounds, missing guards, wrong constants
//! and operators, missing returns, wrong initialisation, ...), plus the two
//! special populations called out explicitly in §6.2: completely empty
//! attempts and attempts using unsupported language features. Every mutant is
//! verified to actually fail the test suite (otherwise it is discarded).

use clara_lang::ast::{BinOp, Expr, Lit, SourceProgram, Stmt, Target};
use clara_lang::program_to_string;
use rand::seq::SliceRandom;
use rand::Rng;

use crate::problem::Problem;

/// The kinds of injected faults.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FaultKind {
    /// A literal constant was perturbed.
    WrongConstant,
    /// A comparison operator was replaced.
    WrongComparison,
    /// An arithmetic operator was replaced.
    WrongOperator,
    /// A `range(...)` bound was changed (off-by-one / dropped start).
    WrongLoopBounds,
    /// An index expression was shifted by one.
    WrongIndex,
    /// A type conversion (e.g. `float(...)`) was dropped.
    DroppedConversion,
    /// A guard (`if`) was removed, keeping only its then-branch.
    DroppedGuard,
    /// A statement (increment, append, return, print) was removed.
    DroppedStatement,
    /// The initialisation of an accumulator was changed.
    WrongInitialisation,
    /// A return/print expression was replaced by a different variable.
    WrongResultVariable,
}

impl FaultKind {
    /// All fault kinds the mutator can inject.
    pub fn all() -> &'static [FaultKind] {
        &[
            FaultKind::WrongConstant,
            FaultKind::WrongComparison,
            FaultKind::WrongOperator,
            FaultKind::WrongLoopBounds,
            FaultKind::WrongIndex,
            FaultKind::DroppedConversion,
            FaultKind::DroppedGuard,
            FaultKind::DroppedStatement,
            FaultKind::WrongInitialisation,
            FaultKind::WrongResultVariable,
        ]
    }
}

/// An incorrect attempt produced by fault injection.
#[derive(Debug, Clone)]
pub struct Mutant {
    /// The source text of the incorrect attempt.
    pub source: String,
    /// The faults that were injected.
    pub faults: Vec<FaultKind>,
}

/// Tries to produce an incorrect attempt by injecting `fault_count` faults
/// into `seed_source`. Returns `None` if no failing mutant was found within
/// the retry budget (e.g. every perturbation happened to stay correct).
pub fn mutate<R: Rng>(
    problem: &Problem,
    seed_source: &str,
    fault_count: usize,
    rng: &mut R,
) -> Option<Mutant> {
    let parsed = problem.parse(seed_source);
    for _ in 0..40 {
        let mut mutated = parsed.clone();
        let mut applied = Vec::new();
        for _ in 0..fault_count {
            let kind = *FaultKind::all().choose(rng).expect("fault list is not empty");
            if apply_fault(&mut mutated, kind, rng) {
                applied.push(kind);
            }
        }
        if applied.is_empty() {
            continue;
        }
        let text = program_to_string(&mutated);
        if problem.grade_source(&text) == Some(false) {
            return Some(Mutant { source: text, faults: applied });
        }
    }
    None
}

/// Produces a completely empty attempt (`pass` body), one of the populations
/// called out in §6.2 (the ∞ bucket of Fig. 6).
pub fn empty_attempt(problem: &Problem) -> Mutant {
    let parsed = problem.parse(problem.reference);
    let function = &parsed.functions[0];
    let source = format!("def {}({}):\n    pass\n", function.name, function.params.join(", "));
    Mutant { source, faults: vec![FaultKind::DroppedStatement] }
}

/// Produces an *incorrect* attempt that additionally uses an unsupported
/// construct (a helper function definition), reproducing the "unsupported
/// feature" failure category of §6.2: such attempts are graded (they parse
/// and fail the tests) but cannot be analysed by the program model.
pub fn unsupported_attempt<R: Rng>(problem: &Problem, rng: &mut R) -> Mutant {
    let buggy = mutate(problem, problem.reference, 1, rng)
        .map(|m| m.source)
        .unwrap_or_else(|| empty_attempt(problem).source);
    let source = format!("def helper(x):\n    return x\n\n{buggy}");
    Mutant { source, faults: vec![FaultKind::DroppedStatement] }
}

fn apply_fault<R: Rng>(program: &mut SourceProgram, kind: FaultKind, rng: &mut R) -> bool {
    let mut applied = false;
    for function in &mut program.functions {
        if applied {
            break;
        }
        applied = match kind {
            FaultKind::DroppedGuard => drop_guard(&mut function.body, rng),
            FaultKind::DroppedStatement => drop_statement(&mut function.body, rng),
            FaultKind::WrongInitialisation => wrong_initialisation(&mut function.body, rng),
            FaultKind::WrongResultVariable => wrong_result_variable(&mut function.body, rng),
            _ => mutate_some_expression(&mut function.body, kind, rng),
        };
    }
    applied
}

/// Collects mutable references to every expression slot of a body.
fn expression_slots<'a>(stmts: &'a mut Vec<Stmt>, out: &mut Vec<&'a mut Expr>) {
    for stmt in stmts {
        match stmt {
            Stmt::Assign { value, target, .. } => {
                if let Target::Index(_, index) = target {
                    out.push(index);
                }
                out.push(value);
            }
            Stmt::If { cond, then_body, else_body, .. } => {
                out.push(cond);
                expression_slots(then_body, out);
                expression_slots(else_body, out);
            }
            Stmt::While { cond, body, .. } => {
                out.push(cond);
                expression_slots(body, out);
            }
            Stmt::For { iter, body, .. } => {
                out.push(iter);
                expression_slots(body, out);
            }
            Stmt::Return { value: Some(value), .. } => out.push(value),
            Stmt::Print { args, .. } => {
                for arg in args {
                    out.push(arg);
                }
            }
            Stmt::ExprStmt { expr, .. } => out.push(expr),
            _ => {}
        }
    }
}

fn mutate_some_expression<R: Rng>(body: &mut Vec<Stmt>, kind: FaultKind, rng: &mut R) -> bool {
    let mut slots = Vec::new();
    expression_slots(body, &mut slots);
    slots.shuffle(rng);
    for slot in slots {
        let mutated = mutate_expr(slot, kind, rng);
        if let Some(new_expr) = mutated {
            *slot = new_expr;
            return true;
        }
    }
    false
}

/// Tries to apply `kind` somewhere inside `expr`; returns the mutated whole
/// expression on success.
fn mutate_expr<R: Rng>(expr: &Expr, kind: FaultKind, rng: &mut R) -> Option<Expr> {
    // Try the node itself first, then recurse into a random child.
    if let Some(new_node) = mutate_node(expr, kind, rng) {
        return Some(new_node);
    }
    let children = children_of(expr);
    if children.is_empty() {
        return None;
    }
    let mut order: Vec<usize> = (0..children.len()).collect();
    order.shuffle(rng);
    for child_index in order {
        if let Some(new_child) = mutate_expr(&children[child_index], kind, rng) {
            let mut new_children = children.clone();
            new_children[child_index] = new_child;
            return Some(rebuild(expr, &new_children));
        }
    }
    None
}

fn mutate_node<R: Rng>(expr: &Expr, kind: FaultKind, rng: &mut R) -> Option<Expr> {
    match (kind, expr) {
        (FaultKind::WrongConstant, Expr::Lit(Lit::Int(k))) => {
            let delta: i64 = if rng.gen_bool(0.5) { 1 } else { -1 };
            Some(Expr::int(k + delta))
        }
        (FaultKind::WrongConstant, Expr::Lit(Lit::Float(f))) => Some(Expr::float(f + 1.0)),
        (FaultKind::WrongComparison, Expr::Binary(op, lhs, rhs)) if op.is_comparison() => {
            let alternatives = [BinOp::Lt, BinOp::Le, BinOp::Gt, BinOp::Ge, BinOp::Eq, BinOp::Ne];
            let new_op = *alternatives.iter().filter(|o| *o != op).collect::<Vec<_>>().choose(rng)?;
            Some(Expr::Binary(*new_op, lhs.clone(), rhs.clone()))
        }
        (FaultKind::WrongOperator, Expr::Binary(op, lhs, rhs)) => {
            let new_op = match op {
                BinOp::Add => BinOp::Sub,
                BinOp::Sub => BinOp::Add,
                BinOp::Mul => BinOp::Add,
                BinOp::FloorDiv => BinOp::Mul,
                BinOp::Mod => BinOp::FloorDiv,
                _ => return None,
            };
            Some(Expr::Binary(new_op, lhs.clone(), rhs.clone()))
        }
        (FaultKind::WrongLoopBounds, Expr::Call(name, args)) if name == "range" || name == "xrange" => {
            match args.len() {
                2 => Some(Expr::Call(name.clone(), vec![args[1].clone()])),
                1 => Some(Expr::Call(name.clone(), vec![Expr::int(1), args[0].clone()])),
                3 => Some(Expr::Call(name.clone(), args[..2].to_vec())),
                _ => None,
            }
        }
        (FaultKind::WrongIndex, Expr::Index(base, idx)) => {
            let delta = if rng.gen_bool(0.5) { BinOp::Add } else { BinOp::Sub };
            Some(Expr::Index(base.clone(), Box::new(Expr::bin(delta, (**idx).clone(), Expr::int(1)))))
        }
        (FaultKind::DroppedConversion, Expr::Call(name, args))
            if (name == "float" || name == "int" || name == "abs") && args.len() == 1 =>
        {
            Some(args[0].clone())
        }
        _ => None,
    }
}

pub(crate) fn children_of(expr: &Expr) -> Vec<Expr> {
    match expr {
        Expr::Lit(_) | Expr::Var(_) => Vec::new(),
        Expr::List(items) | Expr::Tuple(items) => items.clone(),
        Expr::Unary(_, inner) => vec![(**inner).clone()],
        Expr::Binary(_, lhs, rhs) => vec![(**lhs).clone(), (**rhs).clone()],
        Expr::Index(base, idx) => vec![(**base).clone(), (**idx).clone()],
        Expr::Slice(base, lo, hi) => {
            let mut out = vec![(**base).clone()];
            if let Some(lo) = lo {
                out.push((**lo).clone());
            }
            if let Some(hi) = hi {
                out.push((**hi).clone());
            }
            out
        }
        Expr::Call(_, args) => args.clone(),
        Expr::Method(recv, _, args) => {
            let mut out = vec![(**recv).clone()];
            out.extend(args.iter().cloned());
            out
        }
    }
}

pub(crate) fn rebuild(expr: &Expr, children: &[Expr]) -> Expr {
    match expr {
        Expr::Lit(_) | Expr::Var(_) => expr.clone(),
        Expr::List(_) => Expr::List(children.to_vec()),
        Expr::Tuple(_) => Expr::Tuple(children.to_vec()),
        Expr::Unary(op, _) => Expr::Unary(*op, Box::new(children[0].clone())),
        Expr::Binary(op, _, _) => {
            Expr::Binary(*op, Box::new(children[0].clone()), Box::new(children[1].clone()))
        }
        Expr::Index(_, _) => Expr::Index(Box::new(children[0].clone()), Box::new(children[1].clone())),
        Expr::Slice(_, lo, hi) => {
            let mut index = 1;
            let new_lo = lo.as_ref().map(|_| {
                let value = Box::new(children[index].clone());
                index += 1;
                value
            });
            let new_hi = hi.as_ref().map(|_| Box::new(children[index].clone()));
            Expr::Slice(Box::new(children[0].clone()), new_lo, new_hi)
        }
        Expr::Call(name, _) => Expr::Call(name.clone(), children.to_vec()),
        Expr::Method(_, name, _) => {
            Expr::Method(Box::new(children[0].clone()), name.clone(), children[1..].to_vec())
        }
    }
}

// Clippy suggests hoisting these `if`s into match guards, but the guards
// would need `&mut` access to the pattern bindings, which guards cannot take.
#[allow(clippy::collapsible_match)]
fn drop_guard<R: Rng>(body: &mut Vec<Stmt>, rng: &mut R) -> bool {
    // Find an `if` statement and replace it with one of its branches.
    let positions: Vec<usize> =
        body.iter().enumerate().filter(|(_, s)| matches!(s, Stmt::If { .. })).map(|(i, _)| i).collect();
    if let Some(&index) = positions.choose(rng) {
        if let Stmt::If { then_body, else_body, .. } = body[index].clone() {
            let replacement = if else_body.is_empty() || rng.gen_bool(0.7) { then_body } else { else_body };
            body.splice(index..=index, replacement);
            return true;
        }
    }
    // Otherwise recurse into loop bodies.
    for stmt in body {
        match stmt {
            Stmt::While { body, .. } | Stmt::For { body, .. } => {
                if drop_guard(body, rng) {
                    return true;
                }
            }
            Stmt::If { then_body, else_body, .. } => {
                if drop_guard(then_body, rng) || drop_guard(else_body, rng) {
                    return true;
                }
            }
            _ => {}
        }
    }
    false
}

// Clippy suggests hoisting these `if`s into match guards, but the guards
// would need `&mut` access to the pattern bindings, which guards cannot take.
#[allow(clippy::collapsible_match)]
fn drop_statement<R: Rng>(body: &mut Vec<Stmt>, rng: &mut R) -> bool {
    // Prefer dropping simple statements (assignments, returns, prints) from
    // the innermost bodies.
    for stmt in body.iter_mut() {
        match stmt {
            Stmt::While { body: inner, .. } | Stmt::For { body: inner, .. } => {
                if inner.len() > 1 && rng.gen_bool(0.6) && drop_statement(inner, rng) {
                    return true;
                }
            }
            Stmt::If { then_body, else_body, .. } => {
                if then_body.len() > 1 && rng.gen_bool(0.3) && drop_statement(then_body, rng) {
                    return true;
                }
                if else_body.len() > 1 && rng.gen_bool(0.3) && drop_statement(else_body, rng) {
                    return true;
                }
            }
            _ => {}
        }
    }
    let simple_positions: Vec<usize> = body
        .iter()
        .enumerate()
        .filter(|(_, s)| {
            matches!(
                s,
                Stmt::Assign { .. } | Stmt::Return { .. } | Stmt::Print { .. } | Stmt::ExprStmt { .. }
            )
        })
        .map(|(i, _)| i)
        .collect();
    if body.len() > 1 {
        if let Some(&index) = simple_positions.choose(rng) {
            body.remove(index);
            return true;
        }
    }
    false
}

fn wrong_initialisation<R: Rng>(body: &mut [Stmt], rng: &mut R) -> bool {
    for stmt in body.iter_mut() {
        if let Stmt::Assign { value, op: None, .. } = stmt {
            let replacement = match value {
                Expr::List(items) if items.is_empty() => {
                    Some(if rng.gen_bool(0.5) { Expr::int(0) } else { Expr::List(vec![Expr::float(0.0)]) })
                }
                Expr::Tuple(items) if items.is_empty() => Some(Expr::List(vec![])),
                Expr::Lit(Lit::Int(0)) => Some(Expr::int(1)),
                Expr::Lit(Lit::Int(1)) => Some(Expr::int(0)),
                Expr::Lit(Lit::Float(_)) => Some(Expr::int(0)),
                _ => None,
            };
            if let Some(new_value) = replacement {
                *value = new_value;
                return true;
            }
        }
    }
    false
}

fn wrong_result_variable<R: Rng>(body: &mut Vec<Stmt>, rng: &mut R) -> bool {
    let mut vars = Vec::new();
    collect_assigned(body, &mut vars);
    if vars.len() < 2 {
        return false;
    }
    // See `drop_guard` on why clippy's guard suggestion cannot apply.
    #[allow(clippy::collapsible_match)]
    fn rewrite<R: Rng>(stmts: &mut Vec<Stmt>, vars: &[String], rng: &mut R) -> bool {
        for stmt in stmts {
            match stmt {
                Stmt::Return { value: Some(value), .. } => {
                    if let Expr::Var(name) = value {
                        let others: Vec<&String> = vars.iter().filter(|v| *v != name).collect();
                        if let Some(other) = others.choose(rng) {
                            *value = Expr::var((**other).clone());
                            return true;
                        }
                    }
                }
                Stmt::Print { args, .. } => {
                    for arg in args {
                        if let Expr::Var(name) = arg {
                            let others: Vec<&String> = vars.iter().filter(|v| *v != name).collect();
                            if let Some(other) = others.choose(rng) {
                                *arg = Expr::var((**other).clone());
                                return true;
                            }
                        }
                    }
                }
                Stmt::If { then_body, else_body, .. } => {
                    if rewrite(then_body, vars, rng) || rewrite(else_body, vars, rng) {
                        return true;
                    }
                }
                Stmt::While { body, .. } | Stmt::For { body, .. } => {
                    if rewrite(body, vars, rng) {
                        return true;
                    }
                }
                _ => {}
            }
        }
        false
    }
    rewrite(body, &vars, rng)
}

fn collect_assigned(body: &[Stmt], out: &mut Vec<String>) {
    for stmt in body {
        match stmt {
            Stmt::Assign { target, .. } => {
                let name = target.base_name().to_owned();
                if !out.contains(&name) {
                    out.push(name);
                }
            }
            Stmt::If { then_body, else_body, .. } => {
                collect_assigned(then_body, out);
                collect_assigned(else_body, out);
            }
            Stmt::While { body, .. } => collect_assigned(body, out),
            Stmt::For { var, body, .. } => {
                if !out.contains(var) {
                    out.push(var.clone());
                }
                collect_assigned(body, out);
            }
            _ => {}
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mooc::{derivatives, odd_tuples};
    use crate::study::trapezoid;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    #[test]
    fn mutants_fail_the_specification() {
        let mut rng = ChaCha8Rng::seed_from_u64(3);
        for problem in [derivatives(), odd_tuples(), trapezoid()] {
            let mut produced = 0;
            for seed in &problem.seeds {
                if let Some(mutant) = mutate(&problem, seed, 1, &mut rng) {
                    produced += 1;
                    assert_eq!(problem.grade_source(&mutant.source), Some(false));
                    assert!(!mutant.faults.is_empty());
                }
            }
            assert!(produced >= problem.seeds.len() / 2, "{}: too few mutants", problem.name);
        }
    }

    #[test]
    fn multi_fault_mutants_can_be_generated() {
        let problem = derivatives();
        let mut rng = ChaCha8Rng::seed_from_u64(17);
        let mutant = mutate(&problem, problem.reference, 3, &mut rng).expect("mutant");
        assert!(!mutant.faults.is_empty());
        assert_eq!(problem.grade_source(&mutant.source), Some(false));
    }

    #[test]
    fn empty_attempts_parse_but_fail() {
        let problem = derivatives();
        let empty = empty_attempt(&problem);
        assert_eq!(problem.grade_source(&empty.source), Some(false));
        assert!(empty.source.contains("pass"));
    }

    #[test]
    fn unsupported_attempts_contain_a_helper_function() {
        let problem = derivatives();
        let mut rng = ChaCha8Rng::seed_from_u64(5);
        let attempt = unsupported_attempt(&problem, &mut rng);
        assert!(attempt.source.contains("def helper"));
        // It still parses (so it is graded), but the model front-end rejects
        // it, which is exactly the paper's "unsupported feature" category.
        assert!(clara_lang::parse_program(&attempt.source).is_ok());
    }
}
