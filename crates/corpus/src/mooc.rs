//! The three MITx MOOC problems of the paper's Table 1 (Appendix A):
//! `derivatives`, `oddTuples` and `polynomials`, each with a grading input
//! suite and a set of seed solutions implementing genuinely different
//! strategies.

use clara_lang::Value;

use crate::problem::{GradingMode, Problem};

fn poly(xs: &[f64]) -> Value {
    Value::List(xs.iter().map(|x| Value::Float(*x)).collect())
}

fn tup(xs: &[&str]) -> Value {
    Value::Tuple(xs.iter().map(|x| Value::str(*x)).collect())
}

fn int_tup(xs: &[i64]) -> Value {
    Value::Tuple(xs.iter().map(|x| Value::Int(*x)).collect())
}

/// `derivatives`: compute and return the derivative of a polynomial
/// (represented as a list of floats); return `[0.0]` when the derivative is
/// zero.
pub fn derivatives() -> Problem {
    const REFERENCE: &str = "\
def computeDeriv(poly):
    result = []
    for e in range(1, len(poly)):
        result.append(float(poly[e]*e))
    if result == []:
        return [0.0]
    else:
        return result
";
    const SEEDS: &[&str] = &[
        REFERENCE,
        "\
def computeDeriv(poly):
    deriv = []
    for i in xrange(1,len(poly)):
        deriv+=[float(i)*poly[i]]
    if len(deriv)==0:
        return [0.0]
    return deriv
",
        "\
def computeDeriv(poly):
    out = []
    for k in range(1, len(poly)):
        out = out + [1.0 * poly[k] * k]
    if len(out) > 0:
        return out
    else:
        return [0.0]
",
        "\
def computeDeriv(poly):
    result = []
    i = 1
    while i < len(poly):
        result.append(float(poly[i] * i))
        i = i + 1
    if result == []:
        return [0.0]
    return result
",
        "\
def computeDeriv(poly):
    if len(poly) < 2:
        return [0.0]
    result = []
    for e in range(1, len(poly)):
        result.append(float(poly[e] * e))
    return result
",
        "\
def computeDeriv(poly):
    result = []
    for i in range(len(poly) - 1, 0, -1):
        result = [float(poly[i] * i)] + result
    return result or [0.0]
",
        "\
def computeDeriv(poly):
    result = []
    for i in range(len(poly)):
        if i > 0:
            result.append(float(poly[i] * i))
    if result == []:
        return [0.0]
    return result
",
        "\
def computeDeriv(poly):
    if len(poly) <= 1:
        return [0.0]
    result = [0.0] * (len(poly) - 1)
    for i in range(1, len(poly)):
        result[i - 1] = float(poly[i] * i)
    return result
",
    ];
    Problem::new(
        "derivatives",
        "Compute and return the derivative of a polynomial function as a list of floats. If the derivative is 0, return [0.0].",
        "computeDeriv",
        GradingMode::ReturnValue,
        REFERENCE,
        SEEDS.to_vec(),
        vec![
            vec![poly(&[6.3, 7.6, 12.14])],
            vec![poly(&[3.0])],
            vec![poly(&[1.0, 2.0, 3.0, 4.0])],
            vec![poly(&[])],
            vec![poly(&[0.0, 8.4])],
            vec![poly(&[2.0, -5.0, 1.5, 0.0, 3.0])],
        ],
    )
}

/// `oddTuples`: return a tuple containing every other element of the input
/// tuple.
pub fn odd_tuples() -> Problem {
    const REFERENCE: &str = "\
def oddTuples(aTup):
    result = ()
    for i in range(len(aTup)):
        if i % 2 == 0:
            result = result + (aTup[i],)
    return result
";
    const SEEDS: &[&str] = &[
        REFERENCE,
        "\
def oddTuples(aTup):
    out = ()
    for i in range(0, len(aTup), 2):
        out += (aTup[i],)
    return out
",
        "\
def oddTuples(aTup):
    result = ()
    i = 0
    while i < len(aTup):
        result = result + (aTup[i],)
        i = i + 2
    return result
",
        "\
def oddTuples(aTup):
    rTup = ()
    take = True
    for item in aTup:
        if take:
            rTup = rTup + (item,)
            take = False
        else:
            take = True
    return rTup
",
        "\
def oddTuples(aTup):
    result = ()
    for i in range(len(aTup)):
        if i % 2 != 1:
            result = result + (aTup[i],)
    return result
",
        "\
def oddTuples(aTup):
    answer = ()
    index = 0
    while index < len(aTup):
        if index % 2 == 0:
            answer = answer + (aTup[index],)
        index = index + 1
    return answer
",
    ];
    Problem::new(
        "oddTuples",
        "Given a tuple aTup, return a tuple containing every other element of aTup, starting with the first.",
        "oddTuples",
        GradingMode::ReturnValue,
        REFERENCE,
        SEEDS.to_vec(),
        vec![
            vec![tup(&["I", "am", "a", "test", "tuple"])],
            vec![Value::tuple(Vec::new())],
            vec![tup(&["x"])],
            vec![int_tup(&[1, 2, 3, 4])],
            vec![int_tup(&[5, 6])],
            vec![tup(&["a", "b", "c", "d", "e", "f", "g"])],
        ],
    )
}

/// `polynomials`: evaluate a polynomial (list of coefficients) at a value
/// `x` and return the result as a float.
pub fn polynomials() -> Problem {
    const REFERENCE: &str = "\
def evaluatePoly(poly, x):
    total = 0.0
    for i in range(len(poly)):
        total = total + poly[i] * x ** i
    return float(total)
";
    const SEEDS: &[&str] = &[
        REFERENCE,
        "\
def evaluatePoly(poly, x):
    total = 0
    power = 1
    for c in poly:
        total = total + c * power
        power = power * x
    return float(total)
",
        "\
def evaluatePoly(poly, x):
    result = 0.0
    i = 0
    while i < len(poly):
        result = result + poly[i] * x ** i
        i = i + 1
    return float(result)
",
        "\
def evaluatePoly(poly, x):
    value = 0.0
    for i in range(len(poly) - 1, -1, -1):
        value = value * x + poly[i]
    return float(value)
",
        "\
def evaluatePoly(poly, x):
    total = 0.0
    index = 0
    for coef in poly:
        total += coef * x ** index
        index += 1
    return float(total)
",
    ];
    Problem::new(
        "polynomials",
        "Compute the value of a polynomial function at a given value x; return the value as a float.",
        "evaluatePoly",
        GradingMode::ReturnValue,
        REFERENCE,
        SEEDS.to_vec(),
        vec![
            vec![poly(&[0.0, 0.0, 5.0, 9.3, 7.0]), Value::Float(10.0)],
            vec![poly(&[1.0, 2.0, 3.0]), Value::Float(2.0)],
            vec![poly(&[5.0]), Value::Float(3.0)],
            vec![poly(&[1.0, -2.0]), Value::Float(0.5)],
            vec![poly(&[1.0, 2.0, 3.0, 4.0, 5.0]), Value::Float(1.5)],
            vec![poly(&[2.5, 0.0, -1.0]), Value::Float(-2.0)],
        ],
    )
}

/// All three MOOC problems of Table 1.
pub fn all_mooc_problems() -> Vec<Problem> {
    vec![derivatives(), odd_tuples(), polynomials()]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_seed_passes_its_specification() {
        for problem in all_mooc_problems() {
            let failing = problem.check_seeds();
            assert!(failing.is_empty(), "problem {}: failing seeds {failing:?}", problem.name);
        }
    }

    #[test]
    fn the_papers_incorrect_attempts_fail_the_specification() {
        let problem = derivatives();
        let i1 = "\
def computeDeriv(poly):
    new = []
    for i in xrange(1,len(poly)):
        new.append(float(i*poly[i]))
    if new==[]:
        return 0.0
    return new
";
        let i2 = "\
def computeDeriv(poly):
    result = []
    for i in range(len(poly)):
        result[i]=float((i)*poly[i])
    return result
";
        assert_eq!(problem.grade_source(i1), Some(false));
        assert_eq!(problem.grade_source(i2), Some(false));
    }

    #[test]
    fn problem_metadata_is_consistent() {
        for problem in all_mooc_problems() {
            assert!(problem.seeds.len() >= 5, "{} needs strategy diversity", problem.name);
            assert!(problem.spec.tests.len() >= 5);
            assert_eq!(problem.grading, GradingMode::ReturnValue);
        }
    }
}
