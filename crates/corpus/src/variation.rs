//! Semantics-preserving variation of correct seed solutions.
//!
//! The MOOC dataset of the paper contains thousands of correct solutions;
//! most differ only superficially (variable names, `x == []` vs
//! `len(x) == 0`, `append` vs `+=`, ...). This module synthesises such
//! variation from the hand-written seeds: it renames variables and applies
//! small semantics-preserving rewrites, then *verifies* the result against
//! the problem specification (anything that no longer passes is discarded).
//! This reproduces the property the clustering algorithm relies on: few
//! behavioural strategies, many syntactic spellings per strategy.

use clara_lang::ast::{BinOp, Expr, SourceProgram, Stmt, Target};
use clara_lang::program_to_string;
use rand::seq::SliceRandom;
use rand::Rng;

use crate::problem::Problem;

/// Alternative names used when renaming user variables.
const NAME_POOL: &[&str] = &[
    "result",
    "res",
    "out",
    "output",
    "ans",
    "answer",
    "acc",
    "total",
    "deriv",
    "values",
    "lst",
    "data",
    "tmp",
    "current",
    "aggr",
    "final",
    "ret",
    "collected",
];

/// Alternative names for index-like variables.
const INDEX_POOL: &[&str] = &["i", "j", "k", "idx", "index", "pos", "n", "count", "step", "e", "it"];

/// Renames the user variables (including parameters) of a program using the
/// name pools; the mapping is chosen with `rng` but is always injective.
pub fn rename_variables<R: Rng>(program: &SourceProgram, rng: &mut R) -> SourceProgram {
    let vars = user_variables(program);
    let mut mapping = std::collections::HashMap::new();
    let mut taken: Vec<String> = vars.clone();
    for var in &vars {
        // Roughly half of the variables keep their name, the rest are renamed.
        if rng.gen_bool(0.5) {
            continue;
        }
        let pool: &[&str] = if var.len() <= 2 { INDEX_POOL } else { NAME_POOL };
        let candidates: Vec<&&str> = pool.iter().filter(|c| !taken.iter().any(|t| t == **c)).collect();
        if let Some(new_name) = candidates.choose(rng) {
            mapping.insert(var.clone(), (***new_name).to_owned());
            taken.push((***new_name).to_owned());
        }
    }
    rename_with(program, &mapping)
}

/// Applies an explicit variable renaming to a whole program.
pub fn rename_with(
    program: &SourceProgram,
    mapping: &std::collections::HashMap<String, String>,
) -> SourceProgram {
    let mut result = program.clone();
    for function in &mut result.functions {
        for param in &mut function.params {
            if let Some(new_name) = mapping.get(param) {
                *param = new_name.clone();
            }
        }
        rename_stmts(&mut function.body, mapping);
    }
    result
}

fn rename_stmts(stmts: &mut [Stmt], mapping: &std::collections::HashMap<String, String>) {
    for stmt in stmts {
        match stmt {
            Stmt::Assign { target, value, .. } => {
                match target {
                    Target::Name(name) => {
                        if let Some(new_name) = mapping.get(name) {
                            *name = new_name.clone();
                        }
                    }
                    Target::Index(name, index) => {
                        if let Some(new_name) = mapping.get(name) {
                            *name = new_name.clone();
                        }
                        *index = index.rename(mapping);
                    }
                }
                *value = value.rename(mapping);
            }
            Stmt::If { cond, then_body, else_body, .. } => {
                *cond = cond.rename(mapping);
                rename_stmts(then_body, mapping);
                rename_stmts(else_body, mapping);
            }
            Stmt::While { cond, body, .. } => {
                *cond = cond.rename(mapping);
                rename_stmts(body, mapping);
            }
            Stmt::For { var, iter, body, .. } => {
                if let Some(new_name) = mapping.get(var) {
                    *var = new_name.clone();
                }
                *iter = iter.rename(mapping);
                rename_stmts(body, mapping);
            }
            Stmt::Return { value: Some(value), .. } => *value = value.rename(mapping),
            Stmt::Print { args, .. } => {
                for arg in args {
                    *arg = arg.rename(mapping);
                }
            }
            Stmt::ExprStmt { expr, .. } => *expr = expr.rename(mapping),
            _ => {}
        }
    }
}

fn user_variables(program: &SourceProgram) -> Vec<String> {
    let mut vars = Vec::new();
    let mut push = |name: &str, vars: &mut Vec<String>| {
        if !vars.iter().any(|v| v == name) {
            vars.push(name.to_owned());
        }
    };
    fn walk(stmts: &[Stmt], push: &mut dyn FnMut(&str, &mut Vec<String>), vars: &mut Vec<String>) {
        for stmt in stmts {
            match stmt {
                Stmt::Assign { target, value, .. } => {
                    push(target.base_name(), vars);
                    for v in value.variables() {
                        push(&v, vars);
                    }
                }
                Stmt::If { cond, then_body, else_body, .. } => {
                    for v in cond.variables() {
                        push(&v, vars);
                    }
                    walk(then_body, push, vars);
                    walk(else_body, push, vars);
                }
                Stmt::While { cond, body, .. } => {
                    for v in cond.variables() {
                        push(&v, vars);
                    }
                    walk(body, push, vars);
                }
                Stmt::For { var, iter, body, .. } => {
                    push(var, vars);
                    for v in iter.variables() {
                        push(&v, vars);
                    }
                    walk(body, push, vars);
                }
                Stmt::Return { value: Some(value), .. } => {
                    for v in value.variables() {
                        push(&v, vars);
                    }
                }
                Stmt::Print { args, .. } => {
                    for arg in args {
                        for v in arg.variables() {
                            push(&v, vars);
                        }
                    }
                }
                Stmt::ExprStmt { expr, .. } => {
                    for v in expr.variables() {
                        push(&v, vars);
                    }
                }
                _ => {}
            }
        }
    }
    for function in &program.functions {
        for param in &function.params {
            push(param, &mut vars);
        }
        walk(&function.body, &mut push, &mut vars);
    }
    vars
}

/// Applies up to `count` randomly chosen semantics-preserving rewrites.
pub fn tweak_expressions<R: Rng>(program: &SourceProgram, count: usize, rng: &mut R) -> SourceProgram {
    let mut result = program.clone();
    for _ in 0..count {
        let choice = rng.gen_range(0..6u32);
        for function in &mut result.functions {
            tweak_stmts(&mut function.body, choice, rng);
        }
    }
    result
}

fn tweak_stmts<R: Rng>(stmts: &mut [Stmt], choice: u32, rng: &mut R) {
    for stmt in stmts.iter_mut() {
        match stmt {
            Stmt::Assign { value, op, target, .. } => {
                *value = tweak_expr(value, choice);
                // `x = x + e`  <->  `x += e`.
                if choice == 4 && op.is_none() && rng.gen_bool(0.7) {
                    if let (Target::Name(name), Expr::Binary(BinOp::Add, lhs, rhs)) =
                        (&*target, value.clone())
                    {
                        if *lhs == Expr::var(name.clone()) {
                            *op = Some(BinOp::Add);
                            *value = rhs.as_ref().clone();
                        }
                    }
                } else if choice == 5 {
                    if let (Target::Name(name), Some(BinOp::Add)) = (&*target, &op) {
                        // `x += e` -> `x = x + e`.
                        *value = Expr::bin(BinOp::Add, Expr::var(name.clone()), value.clone());
                        *op = None;
                    }
                }
            }
            Stmt::If { cond, then_body, else_body, .. } => {
                *cond = tweak_expr(cond, choice);
                tweak_stmts(then_body, choice, rng);
                tweak_stmts(else_body, choice, rng);
            }
            Stmt::While { cond, body, .. } => {
                *cond = tweak_expr(cond, choice);
                tweak_stmts(body, choice, rng);
            }
            Stmt::For { iter, body, .. } => {
                *iter = tweak_expr(iter, choice);
                tweak_stmts(body, choice, rng);
            }
            Stmt::Return { value: Some(value), .. } => *value = tweak_expr(value, choice),
            Stmt::Print { args, .. } => {
                for arg in args {
                    *arg = tweak_expr(arg, choice);
                }
            }
            _ => {}
        }
    }
    // Statement-level rewrite: `xs.append(e)` <-> `xs += [e]`.
    if choice == 3 {
        for stmt in stmts.iter_mut() {
            if let Stmt::ExprStmt { expr: Expr::Method(recv, method, args), line } = stmt {
                if method == "append" && args.len() == 1 {
                    if let Expr::Var(name) = recv.as_ref() {
                        *stmt = Stmt::Assign {
                            target: Target::Name(name.clone()),
                            op: Some(BinOp::Add),
                            value: Expr::List(vec![args[0].clone()]),
                            line: *line,
                        };
                    }
                }
            }
        }
    }
}

fn tweak_expr(expr: &Expr, choice: u32) -> Expr {
    let rewritten = match (choice, expr) {
        // `x == []` <-> `len(x) == 0`.
        (0, Expr::Binary(BinOp::Eq, lhs, rhs)) if **rhs == Expr::List(vec![]) => {
            Some(Expr::bin(BinOp::Eq, Expr::call("len", vec![(**lhs).clone()]), Expr::int(0)))
        }
        (0, Expr::Binary(BinOp::Eq, lhs, rhs))
            if **rhs == Expr::int(0) && matches!(&**lhs, Expr::Call(name, _) if name == "len") =>
        {
            if let Expr::Call(_, args) = &**lhs {
                Some(Expr::bin(BinOp::Eq, args[0].clone(), Expr::List(vec![])))
            } else {
                None
            }
        }
        // `float(a * b)` <-> `1.0 * a * b`.
        (1, Expr::Call(name, args)) if name == "float" && args.len() == 1 => {
            Some(Expr::bin(BinOp::Mul, Expr::float(1.0), args[0].clone()))
        }
        // `range` <-> `xrange`.
        (2, Expr::Call(name, args)) if name == "range" => Some(Expr::Call("xrange".to_owned(), args.clone())),
        (2, Expr::Call(name, args)) if name == "xrange" => Some(Expr::Call("range".to_owned(), args.clone())),
        _ => None,
    };
    match rewritten {
        Some(new) => new,
        None => rebuild_children(expr, choice),
    }
}

fn rebuild_children(expr: &Expr, choice: u32) -> Expr {
    match expr {
        Expr::Lit(_) | Expr::Var(_) => expr.clone(),
        Expr::List(items) => Expr::List(items.iter().map(|e| tweak_expr(e, choice)).collect()),
        Expr::Tuple(items) => Expr::Tuple(items.iter().map(|e| tweak_expr(e, choice)).collect()),
        Expr::Unary(op, inner) => Expr::Unary(*op, Box::new(tweak_expr(inner, choice))),
        Expr::Binary(op, lhs, rhs) => {
            Expr::Binary(*op, Box::new(tweak_expr(lhs, choice)), Box::new(tweak_expr(rhs, choice)))
        }
        Expr::Index(base, idx) => {
            Expr::Index(Box::new(tweak_expr(base, choice)), Box::new(tweak_expr(idx, choice)))
        }
        Expr::Slice(base, lo, hi) => Expr::Slice(
            Box::new(tweak_expr(base, choice)),
            lo.as_ref().map(|e| Box::new(tweak_expr(e, choice))),
            hi.as_ref().map(|e| Box::new(tweak_expr(e, choice))),
        ),
        Expr::Call(name, args) => {
            Expr::Call(name.clone(), args.iter().map(|e| tweak_expr(e, choice)).collect())
        }
        Expr::Method(recv, name, args) => Expr::Method(
            Box::new(tweak_expr(recv, choice)),
            name.clone(),
            args.iter().map(|e| tweak_expr(e, choice)).collect(),
        ),
    }
}

/// Produces a correct variant of a seed solution: rename + tweaks, verified
/// against the problem specification. Falls back to the renamed-only (and
/// ultimately to the original) version when a tweak broke correctness.
pub fn vary_seed<R: Rng>(problem: &Problem, seed_source: &str, rng: &mut R) -> String {
    let parsed = problem.parse(seed_source);
    let renamed = rename_variables(&parsed, rng);
    let tweak_count = rng.gen_range(0..3usize);
    let tweaked = tweak_expressions(&renamed, tweak_count, rng);

    let tweaked_text = program_to_string(&tweaked);
    if problem.grade_source(&tweaked_text) == Some(true) {
        return tweaked_text;
    }
    let renamed_text = program_to_string(&renamed);
    if problem.grade_source(&renamed_text) == Some(true) {
        return renamed_text;
    }
    seed_source.to_owned()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mooc::derivatives;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    #[test]
    fn variants_remain_correct() {
        let problem = derivatives();
        let mut rng = ChaCha8Rng::seed_from_u64(7);
        for seed in &problem.seeds {
            for _ in 0..5 {
                let variant = vary_seed(&problem, seed, &mut rng);
                assert_eq!(problem.grade_source(&variant), Some(true), "broken variant:\n{variant}");
            }
        }
    }

    #[test]
    fn renaming_is_semantics_preserving() {
        let problem = derivatives();
        let parsed = problem.parse(problem.reference);
        let mut mapping = std::collections::HashMap::new();
        mapping.insert("result".to_owned(), "deriv".to_owned());
        mapping.insert("e".to_owned(), "idx".to_owned());
        let renamed = rename_with(&parsed, &mapping);
        let text = program_to_string(&renamed);
        assert!(text.contains("deriv"));
        assert!(!text.contains("result"));
        assert_eq!(problem.grade_source(&text), Some(true));
    }

    #[test]
    fn variation_produces_syntactic_diversity() {
        let problem = derivatives();
        let mut rng = ChaCha8Rng::seed_from_u64(11);
        let variants: std::collections::HashSet<String> =
            (0..20).map(|_| vary_seed(&problem, problem.reference, &mut rng)).collect();
        assert!(variants.len() >= 5, "only {} distinct variants", variants.len());
    }
}
