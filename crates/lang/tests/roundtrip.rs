//! Parse → pretty-print → re-parse round-trips for the MiniPy front end.
//!
//! The corpus seed programs are the richest MiniPy sample in the repository;
//! any printer/parser disagreement (precedence, indentation, string
//! escaping) shows up as a re-parse failure or a different AST here. The
//! corpus crate is a dev-dependency: cargo permits the cycle because it only
//! exists for tests.

use clara_lang::{parse_program, program_to_string};

#[test]
fn corpus_seed_programs_round_trip() {
    let mut checked = 0usize;
    for problem in clara_corpus::all_problems() {
        for (index, seed) in problem.seeds.iter().enumerate() {
            let parsed = parse_program(seed)
                .unwrap_or_else(|e| panic!("{} seed {index} does not parse: {e}", problem.name));
            let printed = program_to_string(&parsed);
            let reparsed = parse_program(&printed).unwrap_or_else(|e| {
                panic!(
                    "{} seed {index}: pretty output does not re-parse: {e}\n--- printed ---\n{printed}",
                    problem.name
                )
            });
            assert_eq!(
                parsed, reparsed,
                "{} seed {index}: AST changed across print/re-parse\n--- printed ---\n{printed}",
                problem.name
            );
            checked += 1;
        }
    }
    assert!(checked >= 30, "expected the corpus to provide many seeds, found {checked}");
}

#[test]
fn reference_solutions_round_trip() {
    for problem in clara_corpus::all_problems() {
        let parsed = parse_program(problem.reference)
            .unwrap_or_else(|e| panic!("{} reference does not parse: {e}", problem.name));
        let printed = program_to_string(&parsed);
        let reparsed = parse_program(&printed)
            .unwrap_or_else(|e| panic!("{} reference reprint fails: {e}\n{printed}", problem.name));
        assert_eq!(parsed, reparsed, "{}: reference AST changed across print/re-parse", problem.name);
    }
}

#[test]
fn pretty_printing_is_a_fixpoint() {
    // Printing an already-printed program must be the identity: a second
    // print that differs indicates the printer invents or loses syntax.
    for problem in clara_corpus::all_problems() {
        for (index, seed) in problem.seeds.iter().enumerate() {
            let printed = program_to_string(&parse_program(seed).unwrap());
            let reprinted = program_to_string(&parse_program(&printed).unwrap());
            assert_eq!(printed, reprinted, "{} seed {index}: printer is not idempotent", problem.name);
        }
    }
}
