//! Tokens produced by the MiniPy lexer.

use std::fmt;

/// A lexical token together with the 1-based line it starts on.
#[derive(Debug, Clone, PartialEq)]
pub struct Token {
    /// The token kind and payload.
    pub kind: TokenKind,
    /// 1-based source line.
    pub line: u32,
}

impl Token {
    /// Creates a token of `kind` at `line`.
    pub fn new(kind: TokenKind, line: u32) -> Self {
        Token { kind, line }
    }
}

/// The different kinds of tokens recognised by the lexer.
///
/// Keyword, operator and layout variants carry no payload; their meaning is
/// given by their name (`Def` is the `def` keyword, `Le` is `<=`, ...).
#[derive(Debug, Clone, PartialEq)]
#[allow(missing_docs)]
pub enum TokenKind {
    /// An identifier (variable or function name).
    Name(String),
    /// An integer literal.
    Int(i64),
    /// A floating point literal.
    Float(f64),
    /// A string literal (contents, without quotes).
    Str(String),

    // Keywords.
    Def,
    Return,
    If,
    Elif,
    Else,
    For,
    While,
    In,
    And,
    Or,
    Not,
    Print,
    Pass,
    Break,
    Continue,
    True,
    False,
    None,
    Lambda,
    Import,
    Class,
    Global,

    // Operators and punctuation.
    Plus,
    Minus,
    Star,
    DoubleStar,
    Slash,
    DoubleSlash,
    Percent,
    EqEq,
    NotEq,
    Lt,
    Le,
    Gt,
    Ge,
    Assign,
    PlusAssign,
    MinusAssign,
    StarAssign,
    SlashAssign,
    PercentAssign,
    LParen,
    RParen,
    LBracket,
    RBracket,
    Comma,
    Colon,
    Dot,

    // Layout.
    Newline,
    Indent,
    Dedent,
    /// End of input.
    Eof,
}

impl fmt::Display for TokenKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TokenKind::Name(s) => write!(f, "identifier `{s}`"),
            TokenKind::Int(v) => write!(f, "integer `{v}`"),
            TokenKind::Float(v) => write!(f, "float `{v}`"),
            TokenKind::Str(s) => write!(f, "string {s:?}"),
            TokenKind::Def => write!(f, "`def`"),
            TokenKind::Return => write!(f, "`return`"),
            TokenKind::If => write!(f, "`if`"),
            TokenKind::Elif => write!(f, "`elif`"),
            TokenKind::Else => write!(f, "`else`"),
            TokenKind::For => write!(f, "`for`"),
            TokenKind::While => write!(f, "`while`"),
            TokenKind::In => write!(f, "`in`"),
            TokenKind::And => write!(f, "`and`"),
            TokenKind::Or => write!(f, "`or`"),
            TokenKind::Not => write!(f, "`not`"),
            TokenKind::Print => write!(f, "`print`"),
            TokenKind::Pass => write!(f, "`pass`"),
            TokenKind::Break => write!(f, "`break`"),
            TokenKind::Continue => write!(f, "`continue`"),
            TokenKind::True => write!(f, "`True`"),
            TokenKind::False => write!(f, "`False`"),
            TokenKind::None => write!(f, "`None`"),
            TokenKind::Lambda => write!(f, "`lambda`"),
            TokenKind::Import => write!(f, "`import`"),
            TokenKind::Class => write!(f, "`class`"),
            TokenKind::Global => write!(f, "`global`"),
            TokenKind::Plus => write!(f, "`+`"),
            TokenKind::Minus => write!(f, "`-`"),
            TokenKind::Star => write!(f, "`*`"),
            TokenKind::DoubleStar => write!(f, "`**`"),
            TokenKind::Slash => write!(f, "`/`"),
            TokenKind::DoubleSlash => write!(f, "`//`"),
            TokenKind::Percent => write!(f, "`%`"),
            TokenKind::EqEq => write!(f, "`==`"),
            TokenKind::NotEq => write!(f, "`!=`"),
            TokenKind::Lt => write!(f, "`<`"),
            TokenKind::Le => write!(f, "`<=`"),
            TokenKind::Gt => write!(f, "`>`"),
            TokenKind::Ge => write!(f, "`>=`"),
            TokenKind::Assign => write!(f, "`=`"),
            TokenKind::PlusAssign => write!(f, "`+=`"),
            TokenKind::MinusAssign => write!(f, "`-=`"),
            TokenKind::StarAssign => write!(f, "`*=`"),
            TokenKind::SlashAssign => write!(f, "`/=`"),
            TokenKind::PercentAssign => write!(f, "`%=`"),
            TokenKind::LParen => write!(f, "`(`"),
            TokenKind::RParen => write!(f, "`)`"),
            TokenKind::LBracket => write!(f, "`[`"),
            TokenKind::RBracket => write!(f, "`]`"),
            TokenKind::Comma => write!(f, "`,`"),
            TokenKind::Colon => write!(f, "`:`"),
            TokenKind::Dot => write!(f, "`.`"),
            TokenKind::Newline => write!(f, "newline"),
            TokenKind::Indent => write!(f, "indent"),
            TokenKind::Dedent => write!(f, "dedent"),
            TokenKind::Eof => write!(f, "end of input"),
        }
    }
}

impl TokenKind {
    /// Returns the keyword token for `word`, if it is a keyword.
    pub fn keyword(word: &str) -> Option<TokenKind> {
        Some(match word {
            "def" => TokenKind::Def,
            "return" => TokenKind::Return,
            "if" => TokenKind::If,
            "elif" => TokenKind::Elif,
            "else" => TokenKind::Else,
            "for" => TokenKind::For,
            "while" => TokenKind::While,
            "in" => TokenKind::In,
            "and" => TokenKind::And,
            "or" => TokenKind::Or,
            "not" => TokenKind::Not,
            "print" => TokenKind::Print,
            "pass" => TokenKind::Pass,
            "break" => TokenKind::Break,
            "continue" => TokenKind::Continue,
            "True" => TokenKind::True,
            "False" => TokenKind::False,
            "None" => TokenKind::None,
            "lambda" => TokenKind::Lambda,
            "import" => TokenKind::Import,
            "class" => TokenKind::Class,
            "global" => TokenKind::Global,
            _ => return None,
        })
    }
}
