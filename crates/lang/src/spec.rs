//! Assignment specifications and grading.
//!
//! A [`ProblemSpec`] captures what the course instructor provides for an
//! assignment: the entry-point function name, a set of test inputs and the
//! expected observable behaviour (return value and/or printed output) for
//! each of them. As in the paper, a student attempt is *correct* exactly when
//! it passes all tests (footnote 1 of the paper).

use crate::ast::SourceProgram;
use crate::error::InterpError;
use crate::interp::{run_function, Limits};
use crate::value::Value;

/// What a test case checks.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Expected {
    /// The expected return value, if the problem is graded on return values.
    pub return_value: Option<Value>,
    /// The expected printed output, if the problem is graded on output.
    pub output: Option<String>,
}

impl Expected {
    /// The acceptance rule shared by every grading backend (interpreter and
    /// model execution): return values compare by `py_eq`, printed output
    /// modulo trailing whitespace.
    pub fn matches(&self, return_value: &Value, output: &str) -> bool {
        let return_ok = self.return_value.as_ref().map(|want| return_value.py_eq(want)).unwrap_or(true);
        let output_ok = self.output.as_ref().map(|want| output.trim_end() == want.trim_end()).unwrap_or(true);
        return_ok && output_ok
    }
}

/// A single test case: argument values plus the expected behaviour.
#[derive(Debug, Clone, PartialEq)]
pub struct TestCase {
    /// Arguments passed to the entry function.
    pub args: Vec<Value>,
    /// Expected observable behaviour.
    pub expected: Expected,
}

impl TestCase {
    /// Creates a test case graded on the return value.
    pub fn returning(args: Vec<Value>, expected: Value) -> Self {
        TestCase { args, expected: Expected { return_value: Some(expected), output: None } }
    }

    /// Creates a test case graded on printed output.
    pub fn printing(args: Vec<Value>, expected: impl Into<String>) -> Self {
        TestCase { args, expected: Expected { return_value: None, output: Some(expected.into()) } }
    }

    /// Whether an execution satisfies this test case's expectations.
    pub fn accepts(&self, execution: &crate::interp::Execution) -> bool {
        self.expected.matches(&execution.return_value, &execution.output)
    }
}

/// An assignment specification: entry point plus test cases.
#[derive(Debug, Clone, PartialEq)]
pub struct ProblemSpec {
    /// Short problem identifier (e.g. `"derivatives"`).
    pub name: String,
    /// Name of the entry-point function students must define.
    pub entry: String,
    /// The grading test suite.
    pub tests: Vec<TestCase>,
    /// Interpreter limits used while grading.
    pub limits: Limits,
}

impl ProblemSpec {
    /// Creates a specification with default execution limits.
    pub fn new(name: impl Into<String>, entry: impl Into<String>, tests: Vec<TestCase>) -> Self {
        ProblemSpec { name: name.into(), entry: entry.into(), tests, limits: Limits::default() }
    }

    /// The test inputs, i.e. the set `I` of the paper over which dynamic
    /// equivalence is computed.
    pub fn inputs(&self) -> Vec<Vec<Value>> {
        self.tests.iter().map(|t| t.args.clone()).collect()
    }

    /// Grades `program` against every test case.
    pub fn grade(&self, program: &SourceProgram) -> GradeReport {
        let mut results = Vec::with_capacity(self.tests.len());
        for test in &self.tests {
            let outcome = run_function(program, &self.entry, &test.args, self.limits);
            let passed = outcome.as_ref().map(|execution| test.accepts(execution)).unwrap_or(false);
            results.push(TestResult { passed, error: outcome.err() });
        }
        GradeReport { results }
    }

    /// Returns `true` if `program` passes every test case. Unlike
    /// [`ProblemSpec::grade`] this stops at the first failing test — the
    /// AutoGrader baseline calls it once per searched candidate, and almost
    /// all candidates fail an early test.
    pub fn is_correct(&self, program: &SourceProgram) -> bool {
        self.tests.iter().all(|test| {
            run_function(program, &self.entry, &test.args, self.limits)
                .map(|execution| test.accepts(&execution))
                .unwrap_or(false)
        })
    }
}

/// The outcome of one test case.
#[derive(Debug, Clone, PartialEq)]
pub struct TestResult {
    /// Did the test pass?
    pub passed: bool,
    /// The runtime error, if the attempt crashed or timed out on this test.
    pub error: Option<InterpError>,
}

/// The outcome of grading a program against a [`ProblemSpec`].
#[derive(Debug, Clone, PartialEq)]
pub struct GradeReport {
    /// Per-test outcomes, in the order of [`ProblemSpec::tests`].
    pub results: Vec<TestResult>,
}

impl GradeReport {
    /// `true` if every test passed.
    pub fn all_passed(&self) -> bool {
        self.results.iter().all(|r| r.passed)
    }

    /// Number of passed tests.
    pub fn passed_count(&self) -> usize {
        self.results.iter().filter(|r| r.passed).count()
    }

    /// Index of the first failing test, if any.
    pub fn first_failure(&self) -> Option<usize> {
        self.results.iter().position(|r| !r.passed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse_program;

    fn derivatives_spec() -> ProblemSpec {
        let poly = |xs: &[f64]| Value::List(xs.iter().map(|x| Value::Float(*x)).collect());
        ProblemSpec::new(
            "derivatives",
            "computeDeriv",
            vec![
                TestCase::returning(vec![poly(&[6.3, 7.6, 12.14])], poly(&[7.6, 24.28])),
                TestCase::returning(vec![poly(&[3.0])], poly(&[0.0])),
                TestCase::returning(vec![poly(&[1.0, 2.0, 3.0, 4.0])], poly(&[2.0, 6.0, 12.0])),
            ],
        )
    }

    #[test]
    fn correct_attempt_passes() {
        let c1 = parse_program(
            "def computeDeriv(poly):\n    result = []\n    for e in range(1, len(poly)):\n        result.append(float(poly[e]*e))\n    if result == []:\n        return [0.0]\n    else:\n        return result\n",
        )
        .unwrap();
        assert!(derivatives_spec().is_correct(&c1));
    }

    #[test]
    fn incorrect_attempt_fails_with_details() {
        let i1 = parse_program(
            "def computeDeriv(poly):\n    new = []\n    for i in xrange(1,len(poly)):\n        new.append(float(i*poly[i]))\n    if new==[]:\n        return 0.0\n    return new\n",
        )
        .unwrap();
        let report = derivatives_spec().grade(&i1);
        assert!(!report.all_passed());
        assert_eq!(report.passed_count(), 2);
        assert_eq!(report.first_failure(), Some(1));
    }

    #[test]
    fn output_based_grading() {
        let spec =
            ProblemSpec::new("count_up", "main", vec![TestCase::printing(vec![Value::Int(2)], "1\n2\n")]);
        let good =
            parse_program("def main(n):\n    i = 1\n    while i <= n:\n        print(i)\n        i += 1\n")
                .unwrap();
        let bad =
            parse_program("def main(n):\n    i = 0\n    while i < n:\n        print(i)\n        i += 1\n")
                .unwrap();
        assert!(spec.is_correct(&good));
        assert!(!spec.is_correct(&bad));
    }

    #[test]
    fn crashing_attempt_is_incorrect() {
        let spec = derivatives_spec();
        let crash = parse_program("def computeDeriv(poly):\n    return poly[100]\n").unwrap();
        let report = spec.grade(&crash);
        assert!(!report.all_passed());
        assert!(report.results[0].error.is_some());
    }

    #[test]
    fn inputs_expose_the_test_inputs() {
        assert_eq!(derivatives_spec().inputs().len(), 3);
    }
}
