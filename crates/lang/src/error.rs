//! Error types for lexing, parsing and evaluating MiniPy programs.

use std::fmt;

/// An error produced while lexing or parsing a MiniPy source file.
///
/// The `line` field is 1-based and refers to the source line on which the
/// problem was detected.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// 1-based source line of the offending token.
    pub line: u32,
    /// Human readable description of the problem.
    pub message: String,
}

impl ParseError {
    /// Creates a new parse error at `line` with the given message.
    pub fn new(line: u32, message: impl Into<String>) -> Self {
        ParseError { line, message: message.into() }
    }
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "parse error at line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for ParseError {}

/// The reason an expression evaluation failed.
///
/// In the Clara program model (see `clara-model`) every evaluation error is
/// mapped to the undefined value `⊥`; the enum nevertheless keeps the precise
/// reason so that the direct interpreter and the grading harness can report
/// useful diagnostics.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum EvalErrorKind {
    /// A variable was read before being assigned.
    UndefinedVariable(String),
    /// An operation was applied to operands of incompatible types.
    TypeError(String),
    /// A sequence index was out of bounds.
    IndexError(String),
    /// Division or modulo by zero.
    DivisionByZero,
    /// A call referred to an unknown builtin function.
    UnknownFunction(String),
    /// A builtin was called with the wrong number of arguments.
    ArityError(String),
    /// A value was used where it cannot be interpreted (e.g. `⊥` in a branch
    /// condition).
    UndefinedValue,
    /// Any other runtime error.
    Other(String),
}

impl fmt::Display for EvalErrorKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EvalErrorKind::UndefinedVariable(name) => write!(f, "undefined variable `{name}`"),
            EvalErrorKind::TypeError(msg) => write!(f, "type error: {msg}"),
            EvalErrorKind::IndexError(msg) => write!(f, "index error: {msg}"),
            EvalErrorKind::DivisionByZero => write!(f, "division by zero"),
            EvalErrorKind::UnknownFunction(name) => write!(f, "unknown function `{name}`"),
            EvalErrorKind::ArityError(msg) => write!(f, "arity error: {msg}"),
            EvalErrorKind::UndefinedValue => write!(f, "operation on undefined value"),
            EvalErrorKind::Other(msg) => write!(f, "{msg}"),
        }
    }
}

/// An error raised while evaluating an expression.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EvalError {
    /// Why the evaluation failed.
    pub kind: EvalErrorKind,
}

impl EvalError {
    /// Creates an evaluation error of the given kind.
    pub fn new(kind: EvalErrorKind) -> Self {
        EvalError { kind }
    }

    /// Convenience constructor for type errors.
    pub fn type_error(msg: impl Into<String>) -> Self {
        EvalError::new(EvalErrorKind::TypeError(msg.into()))
    }

    /// Convenience constructor for index errors.
    pub fn index_error(msg: impl Into<String>) -> Self {
        EvalError::new(EvalErrorKind::IndexError(msg.into()))
    }

    /// Convenience constructor for miscellaneous errors.
    pub fn other(msg: impl Into<String>) -> Self {
        EvalError::new(EvalErrorKind::Other(msg.into()))
    }
}

impl fmt::Display for EvalError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "evaluation error: {}", self.kind)
    }
}

impl std::error::Error for EvalError {}

/// An error raised while directly interpreting a MiniPy program.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum InterpError {
    /// Expression evaluation failed.
    Eval(EvalError),
    /// The program exceeded its execution fuel (most likely an infinite loop).
    OutOfFuel,
    /// The entry function was not found in the program.
    MissingFunction(String),
    /// The entry function was called with the wrong number of arguments.
    ArityMismatch {
        /// Number of parameters the function declares.
        expected: usize,
        /// Number of arguments supplied by the test case.
        actual: usize,
    },
    /// The program uses a feature not supported by the interpreter.
    Unsupported(String),
}

impl fmt::Display for InterpError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            InterpError::Eval(e) => write!(f, "{e}"),
            InterpError::OutOfFuel => write!(f, "execution fuel exhausted (possible infinite loop)"),
            InterpError::MissingFunction(name) => write!(f, "entry function `{name}` not found"),
            InterpError::ArityMismatch { expected, actual } => {
                write!(f, "entry function expects {expected} arguments but got {actual}")
            }
            InterpError::Unsupported(msg) => write!(f, "unsupported construct: {msg}"),
        }
    }
}

impl std::error::Error for InterpError {}

impl From<EvalError> for InterpError {
    fn from(e: EvalError) -> Self {
        InterpError::Eval(e)
    }
}
