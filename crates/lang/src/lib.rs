//! # clara-lang — MiniPy, the student-program language of `clara-rs`
//!
//! This crate provides everything needed to go from the *text* of a student
//! submission to something the Clara algorithms can work with:
//!
//! * an indentation-aware [`lexer`] and recursive-descent [`parser`] for a
//!   Python-like imperative language ("MiniPy"),
//! * the shared [`ast`] used both for surface programs and for the
//!   expressions of the Clara program model,
//! * the dynamic [`value`] domain and a pure expression [`eval`]uator
//!   (the `⟦·⟧` function of the paper, Definition 3.4),
//! * a direct [`interp`]reter used to grade attempts against a test suite,
//! * assignment [`spec`]ifications and grading, and
//! * a [`pretty`]-printer used for feedback text and canonicalisation.
//!
//! The original Clara tool parsed real Python and C student submissions; in
//! this reproduction MiniPy plays that role (see `crates/corpus/DESIGN.md`
//! for the substitution argument). The language is rich enough to express all
//! assignments evaluated in the paper: list/float arithmetic, `for`/`while`
//! loops, nested `if`/`elif`/`else`, `append`, subscripts, slicing, early
//! `return`, and `print`.
//!
//! ## Example
//!
//! ```rust
//! use clara_lang::{parse_program, run_function, Limits, Value};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let program = parse_program(
//!     "def computeDeriv(poly):\n    result = []\n    for e in range(1, len(poly)):\n        result.append(float(poly[e]*e))\n    if result == []:\n        return [0.0]\n    else:\n        return result\n",
//! )?;
//! let out = run_function(
//!     &program,
//!     "computeDeriv",
//!     &[Value::list(vec![Value::Float(6.3), Value::Float(7.6), Value::Float(12.14)])],
//!     Limits::default(),
//! )?;
//! assert_eq!(out.return_value, Value::list(vec![Value::Float(7.6), Value::Float(24.28)]));
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod ast;
pub mod error;
pub mod eval;
pub mod interp;
pub mod lexer;
pub mod parser;
pub mod pretty;
pub mod serde_impls;
pub mod spec;
pub mod token;
pub mod value;

pub use ast::{BinOp, Expr, Function, Lit, SourceProgram, Stmt, Target, UnOp};
pub use error::{EvalError, EvalErrorKind, InterpError, ParseError};
pub use eval::{call_builtin, eval_expr, Env};
pub use interp::{run_function, Execution, Limits};
pub use parser::{parse_expression, parse_program};
pub use pretty::{expr_to_string, function_to_string, program_to_string, stmt_to_string};
pub use spec::{Expected, GradeReport, ProblemSpec, TestCase, TestResult};
pub use value::Value;
