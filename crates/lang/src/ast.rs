//! Abstract syntax trees of MiniPy programs.
//!
//! The same [`Expr`] type is used for source-level expressions and for the
//! expressions of the Clara program model (`clara-model`): the model simply
//! introduces calls to a few extra builtins (`ite`, `head`, `tail`, `store`,
//! `concat`) and special variable names that cannot appear in source programs.

use std::fmt;
use std::hash::{Hash, Hasher};

/// A literal constant.
#[derive(Debug, Clone, PartialEq)]
pub enum Lit {
    /// Integer literal.
    Int(i64),
    /// Floating point literal.
    Float(f64),
    /// String literal.
    Str(String),
    /// Boolean literal.
    Bool(bool),
    /// The `None` literal.
    None,
}

/// Literal equality is total in practice: MiniPy has no `NaN` literal, so the
/// derived float comparison never hits the one non-reflexive case.
impl Eq for Lit {}

/// Structural hash consistent with the derived `PartialEq`: floats hash by
/// bit pattern with `-0.0` normalised to `0.0` (the only pair of distinct
/// bit patterns that compare equal).
impl Hash for Lit {
    fn hash<H: Hasher>(&self, state: &mut H) {
        match self {
            Lit::Int(v) => {
                state.write_u8(0);
                v.hash(state);
            }
            Lit::Float(v) => {
                state.write_u8(1);
                let bits = if *v == 0.0 { 0.0f64.to_bits() } else { v.to_bits() };
                state.write_u64(bits);
            }
            Lit::Str(v) => {
                state.write_u8(2);
                v.hash(state);
            }
            Lit::Bool(v) => {
                state.write_u8(3);
                v.hash(state);
            }
            Lit::None => state.write_u8(4),
        }
    }
}

/// A unary operator.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum UnOp {
    /// Arithmetic negation `-e`.
    Neg,
    /// Logical negation `not e`.
    Not,
}

/// A binary operator. Comparison and boolean operators are included so that
/// every operator application is a plain binary node.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum BinOp {
    /// `+`
    Add,
    /// `-`
    Sub,
    /// `*`
    Mul,
    /// `/`
    Div,
    /// `//`
    FloorDiv,
    /// `%`
    Mod,
    /// `**`
    Pow,
    /// `==`
    Eq,
    /// `!=`
    Ne,
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
    /// `and` (short-circuit, returns an operand as in Python)
    And,
    /// `or` (short-circuit, returns an operand as in Python)
    Or,
}

impl BinOp {
    /// The surface syntax of the operator.
    pub fn symbol(self) -> &'static str {
        match self {
            BinOp::Add => "+",
            BinOp::Sub => "-",
            BinOp::Mul => "*",
            BinOp::Div => "/",
            BinOp::FloorDiv => "//",
            BinOp::Mod => "%",
            BinOp::Pow => "**",
            BinOp::Eq => "==",
            BinOp::Ne => "!=",
            BinOp::Lt => "<",
            BinOp::Le => "<=",
            BinOp::Gt => ">",
            BinOp::Ge => ">=",
            BinOp::And => "and",
            BinOp::Or => "or",
        }
    }

    /// Returns `true` for the comparison operators.
    pub fn is_comparison(self) -> bool {
        matches!(self, BinOp::Eq | BinOp::Ne | BinOp::Lt | BinOp::Le | BinOp::Gt | BinOp::Ge)
    }
}

impl fmt::Display for BinOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.symbol())
    }
}

/// A MiniPy expression.
///
/// `Eq`/`Hash` are structural (two expressions are equal iff their trees
/// are), which lets the clustering and repair layers key hash maps directly
/// on expressions instead of rendering them to strings.
#[derive(Debug, Clone, PartialEq, Hash)]
pub enum Expr {
    /// A literal constant.
    Lit(Lit),
    /// A variable reference.
    Var(String),
    /// A list display `[e1, e2, ...]`.
    List(Vec<Expr>),
    /// A tuple display `(e1, e2, ...)`.
    Tuple(Vec<Expr>),
    /// A unary operation.
    Unary(UnOp, Box<Expr>),
    /// A binary operation (including comparisons and `and`/`or`).
    Binary(BinOp, Box<Expr>, Box<Expr>),
    /// Indexing `base[index]`.
    Index(Box<Expr>, Box<Expr>),
    /// Slicing `base[lo:hi]`.
    Slice(Box<Expr>, Option<Box<Expr>>, Option<Box<Expr>>),
    /// A call of a (builtin) function by name.
    Call(String, Vec<Expr>),
    /// A method call `receiver.method(args)`.
    Method(Box<Expr>, String, Vec<Expr>),
}

impl Eq for Expr {}

impl Expr {
    /// Convenience constructor for an integer literal.
    pub fn int(v: i64) -> Expr {
        Expr::Lit(Lit::Int(v))
    }

    /// Convenience constructor for a float literal.
    pub fn float(v: f64) -> Expr {
        Expr::Lit(Lit::Float(v))
    }

    /// Convenience constructor for a string literal.
    pub fn str(v: impl Into<String>) -> Expr {
        Expr::Lit(Lit::Str(v.into()))
    }

    /// Convenience constructor for a boolean literal.
    pub fn bool(v: bool) -> Expr {
        Expr::Lit(Lit::Bool(v))
    }

    /// Convenience constructor for a variable reference.
    pub fn var(name: impl Into<String>) -> Expr {
        Expr::Var(name.into())
    }

    /// Convenience constructor for a binary operation.
    pub fn bin(op: BinOp, lhs: Expr, rhs: Expr) -> Expr {
        Expr::Binary(op, Box::new(lhs), Box::new(rhs))
    }

    /// Convenience constructor for a call.
    pub fn call(name: impl Into<String>, args: Vec<Expr>) -> Expr {
        Expr::Call(name.into(), args)
    }

    /// Convenience constructor for the model's conditional expression
    /// `ite(cond, then, else)`.
    pub fn ite(cond: Expr, then: Expr, otherwise: Expr) -> Expr {
        Expr::Call("ite".to_owned(), vec![cond, then, otherwise])
    }

    /// The set of variables read by the expression (Definition 4.2),
    /// in first-occurrence order and without duplicates.
    pub fn variables(&self) -> Vec<String> {
        let mut out = Vec::new();
        self.collect_variables(&mut out);
        out
    }

    fn collect_variables(&self, out: &mut Vec<String>) {
        match self {
            Expr::Lit(_) => {}
            Expr::Var(name) => {
                if !out.iter().any(|v| v == name) {
                    out.push(name.clone());
                }
            }
            Expr::List(items) | Expr::Tuple(items) => {
                for item in items {
                    item.collect_variables(out);
                }
            }
            Expr::Unary(_, inner) => inner.collect_variables(out),
            Expr::Binary(_, lhs, rhs) => {
                lhs.collect_variables(out);
                rhs.collect_variables(out);
            }
            Expr::Index(base, idx) => {
                base.collect_variables(out);
                idx.collect_variables(out);
            }
            Expr::Slice(base, lo, hi) => {
                base.collect_variables(out);
                if let Some(lo) = lo {
                    lo.collect_variables(out);
                }
                if let Some(hi) = hi {
                    hi.collect_variables(out);
                }
            }
            Expr::Call(_, args) => {
                for arg in args {
                    arg.collect_variables(out);
                }
            }
            Expr::Method(recv, _, args) => {
                recv.collect_variables(out);
                for arg in args {
                    arg.collect_variables(out);
                }
            }
        }
    }

    /// Substitutes variables according to `subst` (Definition 4.3).
    ///
    /// Variables not present in the map are left untouched.
    pub fn substitute(&self, subst: &dyn Fn(&str) -> Option<Expr>) -> Expr {
        match self {
            Expr::Lit(_) => self.clone(),
            Expr::Var(name) => subst(name).unwrap_or_else(|| self.clone()),
            Expr::List(items) => Expr::List(items.iter().map(|e| e.substitute(subst)).collect()),
            Expr::Tuple(items) => Expr::Tuple(items.iter().map(|e| e.substitute(subst)).collect()),
            Expr::Unary(op, inner) => Expr::Unary(*op, Box::new(inner.substitute(subst))),
            Expr::Binary(op, lhs, rhs) => {
                Expr::Binary(*op, Box::new(lhs.substitute(subst)), Box::new(rhs.substitute(subst)))
            }
            Expr::Index(base, idx) => {
                Expr::Index(Box::new(base.substitute(subst)), Box::new(idx.substitute(subst)))
            }
            Expr::Slice(base, lo, hi) => Expr::Slice(
                Box::new(base.substitute(subst)),
                lo.as_ref().map(|e| Box::new(e.substitute(subst))),
                hi.as_ref().map(|e| Box::new(e.substitute(subst))),
            ),
            Expr::Call(name, args) => {
                Expr::Call(name.clone(), args.iter().map(|e| e.substitute(subst)).collect())
            }
            Expr::Method(recv, name, args) => Expr::Method(
                Box::new(recv.substitute(subst)),
                name.clone(),
                args.iter().map(|e| e.substitute(subst)).collect(),
            ),
        }
    }

    /// Renames variables according to a name-to-name map; names missing from
    /// the map are kept.
    pub fn rename(&self, map: &std::collections::HashMap<String, String>) -> Expr {
        self.substitute(&|name| map.get(name).map(|new| Expr::Var(new.clone())))
    }

    /// The number of AST nodes in the expression (used for relative repair
    /// size and as a crude complexity measure).
    pub fn size(&self) -> usize {
        match self {
            Expr::Lit(_) | Expr::Var(_) => 1,
            Expr::List(items) | Expr::Tuple(items) => 1 + items.iter().map(Expr::size).sum::<usize>(),
            Expr::Unary(_, inner) => 1 + inner.size(),
            Expr::Binary(_, lhs, rhs) => 1 + lhs.size() + rhs.size(),
            Expr::Index(base, idx) => 1 + base.size() + idx.size(),
            Expr::Slice(base, lo, hi) => {
                1 + base.size()
                    + lo.as_ref().map(|e| e.size()).unwrap_or(0)
                    + hi.as_ref().map(|e| e.size()).unwrap_or(0)
            }
            Expr::Call(_, args) => 1 + args.iter().map(Expr::size).sum::<usize>(),
            Expr::Method(recv, _, args) => 1 + recv.size() + args.iter().map(Expr::size).sum::<usize>(),
        }
    }
}

/// The target of an assignment statement.
#[derive(Debug, Clone, PartialEq)]
pub enum Target {
    /// Assignment to a variable, `x = e`.
    Name(String),
    /// Assignment to an index of a variable, `x[i] = e`.
    Index(String, Expr),
}

impl Target {
    /// The variable being (partially) assigned.
    pub fn base_name(&self) -> &str {
        match self {
            Target::Name(name) | Target::Index(name, _) => name,
        }
    }
}

/// A MiniPy statement. Every statement carries the 1-based source line it
/// starts on so that generated feedback can point at concrete locations.
#[derive(Debug, Clone, PartialEq)]
pub enum Stmt {
    /// `target = value`, or an augmented assignment when `op` is `Some`.
    Assign {
        /// Assignment target.
        target: Target,
        /// Augmented-assignment operator (`+=`, `-=`, ...), if any.
        op: Option<BinOp>,
        /// Right-hand side.
        value: Expr,
        /// Source line.
        line: u32,
    },
    /// `if cond: ... else: ...` (an `elif` chain is nested in `else_body`).
    If {
        /// Branch condition.
        cond: Expr,
        /// Statements of the then branch.
        then_body: Vec<Stmt>,
        /// Statements of the else branch (possibly empty).
        else_body: Vec<Stmt>,
        /// Source line.
        line: u32,
    },
    /// `while cond: ...`
    While {
        /// Loop condition.
        cond: Expr,
        /// Loop body.
        body: Vec<Stmt>,
        /// Source line.
        line: u32,
    },
    /// `for var in iter: ...`
    For {
        /// Loop variable.
        var: String,
        /// Iterated expression.
        iter: Expr,
        /// Loop body.
        body: Vec<Stmt>,
        /// Source line.
        line: u32,
    },
    /// `return [value]`
    Return {
        /// Returned expression, `None` literal if omitted.
        value: Option<Expr>,
        /// Source line.
        line: u32,
    },
    /// `print(a, b, ...)` — appends to the program's output.
    Print {
        /// Printed expressions.
        args: Vec<Expr>,
        /// Source line.
        line: u32,
    },
    /// A bare expression statement (typically a method call such as
    /// `xs.append(e)`).
    ExprStmt {
        /// The expression.
        expr: Expr,
        /// Source line.
        line: u32,
    },
    /// `pass`
    Pass {
        /// Source line.
        line: u32,
    },
    /// `break`
    Break {
        /// Source line.
        line: u32,
    },
    /// `continue`
    Continue {
        /// Source line.
        line: u32,
    },
}

impl Stmt {
    /// The 1-based source line the statement starts on.
    pub fn line(&self) -> u32 {
        match self {
            Stmt::Assign { line, .. }
            | Stmt::If { line, .. }
            | Stmt::While { line, .. }
            | Stmt::For { line, .. }
            | Stmt::Return { line, .. }
            | Stmt::Print { line, .. }
            | Stmt::ExprStmt { line, .. }
            | Stmt::Pass { line }
            | Stmt::Break { line }
            | Stmt::Continue { line } => *line,
        }
    }

    /// Returns `true` if the statement contains a loop anywhere inside it.
    pub fn contains_loop(&self) -> bool {
        match self {
            Stmt::While { .. } | Stmt::For { .. } => true,
            Stmt::If { then_body, else_body, .. } => {
                then_body.iter().any(Stmt::contains_loop) || else_body.iter().any(Stmt::contains_loop)
            }
            _ => false,
        }
    }
}

/// A function definition.
#[derive(Debug, Clone, PartialEq)]
pub struct Function {
    /// Function name.
    pub name: String,
    /// Parameter names.
    pub params: Vec<String>,
    /// Function body.
    pub body: Vec<Stmt>,
    /// Source line of the `def`.
    pub line: u32,
}

/// A parsed MiniPy source file: a sequence of function definitions.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct SourceProgram {
    /// The function definitions, in source order.
    pub functions: Vec<Function>,
}

impl SourceProgram {
    /// Looks up a function by name.
    pub fn function(&self, name: &str) -> Option<&Function> {
        self.functions.iter().find(|f| f.name == name)
    }

    /// Number of statements in the whole program (a rough LOC measure that
    /// ignores blank lines and formatting).
    pub fn statement_count(&self) -> usize {
        fn count(stmts: &[Stmt]) -> usize {
            stmts
                .iter()
                .map(|s| match s {
                    Stmt::If { then_body, else_body, .. } => 1 + count(then_body) + count(else_body),
                    Stmt::While { body, .. } | Stmt::For { body, .. } => 1 + count(body),
                    _ => 1,
                })
                .sum()
        }
        self.functions.iter().map(|f| 1 + count(&f.body)).sum()
    }

    /// Total number of expression AST nodes in the program, the "AST size"
    /// column of Table 1.
    pub fn ast_size(&self) -> usize {
        fn expr_sizes(stmts: &[Stmt]) -> usize {
            stmts
                .iter()
                .map(|s| match s {
                    Stmt::Assign { value, target, .. } => {
                        value.size()
                            + 1
                            + match target {
                                Target::Index(_, idx) => idx.size(),
                                Target::Name(_) => 0,
                            }
                    }
                    Stmt::If { cond, then_body, else_body, .. } => {
                        cond.size() + 1 + expr_sizes(then_body) + expr_sizes(else_body)
                    }
                    Stmt::While { cond, body, .. } => cond.size() + 1 + expr_sizes(body),
                    Stmt::For { iter, body, .. } => iter.size() + 2 + expr_sizes(body),
                    Stmt::Return { value, .. } => 1 + value.as_ref().map(Expr::size).unwrap_or(0),
                    Stmt::Print { args, .. } => 1 + args.iter().map(Expr::size).sum::<usize>(),
                    Stmt::ExprStmt { expr, .. } => expr.size(),
                    Stmt::Pass { .. } | Stmt::Break { .. } | Stmt::Continue { .. } => 1,
                })
                .sum()
        }
        self.functions.iter().map(|f| 1 + expr_sizes(&f.body)).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashMap;

    #[test]
    fn variables_are_deduplicated_in_order() {
        let e = Expr::bin(BinOp::Add, Expr::bin(BinOp::Mul, Expr::var("x"), Expr::var("y")), Expr::var("x"));
        assert_eq!(e.variables(), vec!["x".to_string(), "y".to_string()]);
    }

    #[test]
    fn rename_replaces_only_mapped_names() {
        let e = Expr::bin(BinOp::Add, Expr::var("a"), Expr::var("b"));
        let mut map = HashMap::new();
        map.insert("a".to_string(), "z".to_string());
        let renamed = e.rename(&map);
        assert_eq!(renamed, Expr::bin(BinOp::Add, Expr::var("z"), Expr::var("b")));
    }

    #[test]
    fn size_counts_nodes() {
        let e =
            Expr::call("append", vec![Expr::var("xs"), Expr::bin(BinOp::Mul, Expr::var("i"), Expr::int(2))]);
        assert_eq!(e.size(), 5);
    }

    #[test]
    fn contains_loop_descends_into_branches() {
        let inner = Stmt::For {
            var: "i".into(),
            iter: Expr::call("range", vec![Expr::int(3)]),
            body: vec![Stmt::Pass { line: 3 }],
            line: 2,
        };
        let stmt = Stmt::If { cond: Expr::bool(true), then_body: vec![inner], else_body: vec![], line: 1 };
        assert!(stmt.contains_loop());
        assert!(!Stmt::Pass { line: 1 }.contains_loop());
    }
}
