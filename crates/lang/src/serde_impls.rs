//! Serialization of expressions for the persistent cluster index.
//!
//! Cluster expressions range over *model* variables (`#it0`, `#ret`, …) that
//! the surface parser rejects, so the persistent index cannot round-trip them
//! through `expr_to_string`/`parse_expression`. Instead, [`Expr`] serializes
//! to a compact tagged-array JSON form (`["bin", "+", lhs, rhs]`) that
//! round-trips exactly — including structural details like `x+y` vs `y+x`
//! that the repair cost metric distinguishes.

use serde::{Content, DeError, Deserialize, Serialize};

use crate::ast::{BinOp, Expr, Lit, UnOp};

fn tagged(tag: &str, rest: Vec<Content>) -> Content {
    let mut items = vec![Content::Str(tag.to_owned())];
    items.extend(rest);
    Content::Seq(items)
}

impl BinOp {
    /// The inverse of [`BinOp::symbol`].
    pub fn from_symbol(symbol: &str) -> Option<BinOp> {
        const ALL: [BinOp; 15] = [
            BinOp::Add,
            BinOp::Sub,
            BinOp::Mul,
            BinOp::Div,
            BinOp::FloorDiv,
            BinOp::Mod,
            BinOp::Pow,
            BinOp::Eq,
            BinOp::Ne,
            BinOp::Lt,
            BinOp::Le,
            BinOp::Gt,
            BinOp::Ge,
            BinOp::And,
            BinOp::Or,
        ];
        ALL.into_iter().find(|op| op.symbol() == symbol)
    }
}

impl Serialize for Expr {
    fn to_content(&self) -> Content {
        match self {
            Expr::Lit(Lit::Int(n)) => tagged("int", vec![Content::I64(*n)]),
            Expr::Lit(Lit::Float(x)) => tagged("float", vec![Content::F64(*x)]),
            Expr::Lit(Lit::Str(s)) => tagged("str", vec![Content::Str(s.clone())]),
            Expr::Lit(Lit::Bool(b)) => tagged("bool", vec![Content::Bool(*b)]),
            Expr::Lit(Lit::None) => tagged("none", vec![]),
            Expr::Var(name) => tagged("var", vec![Content::Str(name.clone())]),
            Expr::List(items) => tagged("list", vec![items.to_content()]),
            Expr::Tuple(items) => tagged("tuple", vec![items.to_content()]),
            Expr::Unary(op, inner) => {
                let tag = match op {
                    UnOp::Neg => "neg",
                    UnOp::Not => "not",
                };
                tagged(tag, vec![inner.to_content()])
            }
            Expr::Binary(op, lhs, rhs) => {
                tagged("bin", vec![Content::Str(op.symbol().to_owned()), lhs.to_content(), rhs.to_content()])
            }
            Expr::Index(base, index) => tagged("idx", vec![base.to_content(), index.to_content()]),
            Expr::Slice(base, lo, hi) => tagged(
                "slice",
                vec![
                    base.to_content(),
                    lo.as_ref().map(|e| e.to_content()).unwrap_or(Content::Null),
                    hi.as_ref().map(|e| e.to_content()).unwrap_or(Content::Null),
                ],
            ),
            Expr::Call(name, args) => tagged("call", vec![Content::Str(name.clone()), args.to_content()]),
            Expr::Method(recv, name, args) => {
                tagged("mth", vec![recv.to_content(), Content::Str(name.clone()), args.to_content()])
            }
        }
    }
}

fn expect_arity(items: &[Content], arity: usize, tag: &str) -> Result<(), DeError> {
    if items.len() == arity + 1 {
        Ok(())
    } else {
        Err(DeError(format!("expression tag `{tag}` expects {arity} argument(s), found {}", items.len() - 1)))
    }
}

impl Deserialize for Expr {
    fn from_content(content: &Content) -> Result<Self, DeError> {
        let items = content.as_seq().ok_or_else(|| DeError::expected("expression array", content))?;
        let tag = items
            .first()
            .and_then(Content::as_str)
            .ok_or_else(|| DeError::expected("expression tag string", content))?;
        let expr = match tag {
            "int" => {
                expect_arity(items, 1, tag)?;
                Expr::Lit(Lit::Int(i64::from_content(&items[1])?))
            }
            "float" => {
                expect_arity(items, 1, tag)?;
                Expr::Lit(Lit::Float(f64::from_content(&items[1])?))
            }
            "str" => {
                expect_arity(items, 1, tag)?;
                Expr::Lit(Lit::Str(String::from_content(&items[1])?))
            }
            "bool" => {
                expect_arity(items, 1, tag)?;
                Expr::Lit(Lit::Bool(bool::from_content(&items[1])?))
            }
            "none" => {
                expect_arity(items, 0, tag)?;
                Expr::Lit(Lit::None)
            }
            "var" => {
                expect_arity(items, 1, tag)?;
                Expr::Var(String::from_content(&items[1])?)
            }
            "list" => {
                expect_arity(items, 1, tag)?;
                Expr::List(Vec::from_content(&items[1])?)
            }
            "tuple" => {
                expect_arity(items, 1, tag)?;
                Expr::Tuple(Vec::from_content(&items[1])?)
            }
            "neg" | "not" => {
                expect_arity(items, 1, tag)?;
                let op = if tag == "neg" { UnOp::Neg } else { UnOp::Not };
                Expr::Unary(op, Box::from_content(&items[1])?)
            }
            "bin" => {
                expect_arity(items, 3, tag)?;
                let symbol = String::from_content(&items[1])?;
                let op = BinOp::from_symbol(&symbol)
                    .ok_or_else(|| DeError(format!("unknown binary operator `{symbol}`")))?;
                Expr::Binary(op, Box::from_content(&items[2])?, Box::from_content(&items[3])?)
            }
            "idx" => {
                expect_arity(items, 2, tag)?;
                Expr::Index(Box::from_content(&items[1])?, Box::from_content(&items[2])?)
            }
            "slice" => {
                expect_arity(items, 3, tag)?;
                Expr::Slice(
                    Box::from_content(&items[1])?,
                    Option::from_content(&items[2])?,
                    Option::from_content(&items[3])?,
                )
            }
            "call" => {
                expect_arity(items, 2, tag)?;
                Expr::Call(String::from_content(&items[1])?, Vec::from_content(&items[2])?)
            }
            "mth" => {
                expect_arity(items, 3, tag)?;
                Expr::Method(
                    Box::from_content(&items[1])?,
                    String::from_content(&items[2])?,
                    Vec::from_content(&items[3])?,
                )
            }
            other => return Err(DeError(format!("unknown expression tag `{other}`"))),
        };
        Ok(expr)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse_expression;

    fn roundtrip(expr: &Expr) -> Expr {
        let json = serde_json::to_string(expr).expect("serialize");
        serde_json::from_str(&json).expect("deserialize")
    }

    #[test]
    fn surface_expressions_roundtrip() {
        for source in [
            "1",
            "-2.5",
            "x + y * 2",
            "poly[i] * float(i)",
            "xs[1:len(xs)-1]",
            "xs[:3]",
            "result.append(float(poly[e]*e))",
            "(a, b) == (1, 'two', None, True)",
            "not (a and b or c)",
            "[x, [y], []]",
            "a ** b // c % d",
        ] {
            let expr = parse_expression(source).expect(source);
            assert_eq!(roundtrip(&expr), expr, "{source}");
        }
    }

    #[test]
    fn model_only_variables_roundtrip() {
        // Cluster expressions reference model variables the surface parser
        // rejects (`#it0`, `#ret`) — the whole reason for these impls.
        let expr = Expr::ite(
            Expr::bin(BinOp::Lt, Expr::var("#it0"), Expr::var("#ret")),
            Expr::call("head", vec![Expr::var("#it0")]),
            Expr::Lit(Lit::None),
        );
        assert_eq!(roundtrip(&expr), expr);
    }

    #[test]
    fn float_payloads_roundtrip_exactly() {
        for x in [0.0, -0.0, 0.1, 1.0, 1e-12, 12345.6789] {
            let expr = Expr::float(x);
            let Expr::Lit(Lit::Float(back)) = roundtrip(&expr) else { panic!("not a float") };
            assert_eq!(back.to_bits(), if x == 0.0 { x.to_bits() } else { back.to_bits() });
            assert_eq!(back, x);
        }
    }

    #[test]
    fn malformed_expression_json_errors() {
        for bad in ["[]", "[\"nope\"]", "[\"bin\", \"@\", [\"int\", 1], [\"int\", 2]]", "42", "[\"var\"]"] {
            assert!(serde_json::from_str::<Expr>(bad).is_err(), "`{bad}` should fail");
        }
    }

    #[test]
    fn binop_symbols_roundtrip() {
        for symbol in ["+", "-", "*", "/", "//", "%", "**", "==", "!=", "<", "<=", ">", ">=", "and", "or"] {
            assert_eq!(BinOp::from_symbol(symbol).map(|op| op.symbol()), Some(symbol));
        }
        assert_eq!(BinOp::from_symbol("@"), None);
    }
}
