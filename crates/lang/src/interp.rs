//! Direct interpreter for MiniPy source programs.
//!
//! The interpreter executes the surface AST (it does not go through the Clara
//! program model) and is used to grade student attempts: an attempt is
//! *correct* when it produces the expected return value / output on every
//! test input. It is also used for differential testing of the program-model
//! executor in `clara-model`.

use std::collections::HashMap;

use crate::ast::{Expr, Function, SourceProgram, Stmt, Target};
use crate::error::{EvalError, EvalErrorKind, InterpError};
use crate::eval::{apply_binop, eval_expr, Env};
use crate::value::{ops, Value};

/// The observable outcome of running a program on one input.
#[derive(Debug, Clone, PartialEq)]
pub struct Execution {
    /// The value returned by the entry function (`Value::None` if it fell off
    /// the end without an explicit `return`).
    pub return_value: Value,
    /// Everything printed by the program.
    pub output: String,
    /// Number of statements executed (a rough cost measure).
    pub steps: u64,
}

/// Execution limits for the interpreter.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Limits {
    /// Maximum number of executed statements before aborting with
    /// [`InterpError::OutOfFuel`].
    pub max_steps: u64,
}

impl Default for Limits {
    fn default() -> Self {
        Limits { max_steps: 200_000 }
    }
}

/// Runs `entry` of `program` on the given argument values.
///
/// # Errors
///
/// Returns an [`InterpError`] when the entry function is missing, the arity
/// does not match, evaluation of an expression fails, or the step limit is
/// exceeded.
pub fn run_function(
    program: &SourceProgram,
    entry: &str,
    args: &[Value],
    limits: Limits,
) -> Result<Execution, InterpError> {
    let function = program.function(entry).ok_or_else(|| InterpError::MissingFunction(entry.to_owned()))?;
    if function.params.len() != args.len() {
        return Err(InterpError::ArityMismatch { expected: function.params.len(), actual: args.len() });
    }
    let interp = Interp {
        program,
        state: std::cell::RefCell::new(RunState { output: String::new(), steps: 0 }),
        limits,
    };
    let mut env: HashMap<String, Value> = HashMap::new();
    for (param, value) in function.params.iter().zip(args) {
        env.insert(param.clone(), value.clone());
    }
    let flow = interp.run_block(&function.body, &mut env)?;
    let return_value = match flow {
        Flow::Return(value) => value,
        _ => Value::None,
    };
    let state = interp.state.into_inner();
    Ok(Execution { return_value, output: state.output, steps: state.steps })
}

/// Control-flow outcome of executing a statement or block.
#[derive(Debug, Clone, PartialEq)]
enum Flow {
    Normal,
    Break,
    Continue,
    Return(Value),
}

struct RunState {
    output: String,
    steps: u64,
}

struct Interp<'p> {
    program: &'p SourceProgram,
    state: std::cell::RefCell<RunState>,
    limits: Limits,
}

/// Evaluation environment that resolves variables from the current frame and
/// dispatches calls to user-defined helper functions back into the
/// interpreter.
struct CallEnv<'a, 'p> {
    vars: &'a HashMap<String, Value>,
    interp: &'a Interp<'p>,
}

impl Env for CallEnv<'_, '_> {
    fn lookup(&self, name: &str) -> Option<Value> {
        self.vars.get(name).cloned()
    }

    fn call_function(&self, name: &str, args: &[Value]) -> Option<Result<Value, EvalError>> {
        let callee = self.interp.program.function(name)?;
        let result = self.interp.call_user_function(callee, args);
        Some(result.map_err(|err| match err {
            InterpError::Eval(e) => e,
            other => EvalError::other(other.to_string()),
        }))
    }
}

impl<'p> Interp<'p> {
    fn tick(&self) -> Result<(), InterpError> {
        let mut state = self.state.borrow_mut();
        state.steps += 1;
        if state.steps > self.limits.max_steps {
            Err(InterpError::OutOfFuel)
        } else {
            Ok(())
        }
    }

    fn eval(&self, expr: &Expr, env: &HashMap<String, Value>) -> Result<Value, InterpError> {
        let wrapper = CallEnv { vars: env, interp: self };
        eval_expr(expr, &wrapper).map_err(InterpError::from)
    }

    fn call_user_function(&self, callee: &Function, args: &[Value]) -> Result<Value, InterpError> {
        if callee.params.len() != args.len() {
            return Err(InterpError::ArityMismatch { expected: callee.params.len(), actual: args.len() });
        }
        self.tick()?;
        let mut env: HashMap<String, Value> = HashMap::new();
        for (param, value) in callee.params.iter().zip(args) {
            env.insert(param.clone(), value.clone());
        }
        let flow = self.run_block(&callee.body, &mut env)?;
        Ok(match flow {
            Flow::Return(value) => value,
            _ => Value::None,
        })
    }

    fn run_block(&self, stmts: &[Stmt], env: &mut HashMap<String, Value>) -> Result<Flow, InterpError> {
        for stmt in stmts {
            match self.run_stmt(stmt, env)? {
                Flow::Normal => continue,
                other => return Ok(other),
            }
        }
        Ok(Flow::Normal)
    }

    fn run_stmt(&self, stmt: &Stmt, env: &mut HashMap<String, Value>) -> Result<Flow, InterpError> {
        self.tick()?;
        match stmt {
            Stmt::Assign { target, op, value, .. } => {
                let rhs = self.eval(value, env)?;
                match target {
                    Target::Name(name) => {
                        let new_value = match op {
                            Some(binop) => {
                                let current = env.get(name).cloned().ok_or_else(|| {
                                    InterpError::Eval(EvalError::new(EvalErrorKind::UndefinedVariable(
                                        name.clone(),
                                    )))
                                })?;
                                apply_binop(*binop, &current, &rhs)?
                            }
                            None => rhs,
                        };
                        env.insert(name.clone(), new_value);
                    }
                    Target::Index(name, index) => {
                        let index_value = self.eval(index, env)?;
                        let current = env.get(name).cloned().ok_or_else(|| {
                            InterpError::Eval(EvalError::new(EvalErrorKind::UndefinedVariable(name.clone())))
                        })?;
                        let stored = match op {
                            Some(binop) => {
                                let old = ops::index(&current, &index_value)?;
                                apply_binop(*binop, &old, &rhs)?
                            }
                            None => rhs,
                        };
                        let updated = ops::store(&current, &index_value, &stored)?;
                        env.insert(name.clone(), updated);
                    }
                }
                Ok(Flow::Normal)
            }
            Stmt::If { cond, then_body, else_body, .. } => {
                let value = self.eval(cond, env)?;
                let truth = value.truthy().map_err(InterpError::from)?;
                if truth {
                    self.run_block(then_body, env)
                } else {
                    self.run_block(else_body, env)
                }
            }
            Stmt::While { cond, body, .. } => {
                loop {
                    self.tick()?;
                    let value = self.eval(cond, env)?;
                    if !value.truthy().map_err(InterpError::from)? {
                        break;
                    }
                    match self.run_block(body, env)? {
                        Flow::Break => break,
                        Flow::Return(v) => return Ok(Flow::Return(v)),
                        Flow::Normal | Flow::Continue => {}
                    }
                }
                Ok(Flow::Normal)
            }
            Stmt::For { var, iter, body, .. } => {
                let iterable = self.eval(iter, env)?;
                let items: Vec<Value> = match iterable {
                    Value::List(v) | Value::Tuple(v) => v.to_vec(),
                    Value::Str(s) => s.chars().map(|c| Value::str(c.to_string())).collect(),
                    other => {
                        return Err(InterpError::Eval(EvalError::type_error(format!(
                            "{} object is not iterable",
                            other.type_name()
                        ))))
                    }
                };
                for item in items {
                    self.tick()?;
                    env.insert(var.clone(), item);
                    match self.run_block(body, env)? {
                        Flow::Break => break,
                        Flow::Return(v) => return Ok(Flow::Return(v)),
                        Flow::Normal | Flow::Continue => {}
                    }
                }
                Ok(Flow::Normal)
            }
            Stmt::Return { value, .. } => {
                let result = match value {
                    Some(expr) => self.eval(expr, env)?,
                    None => Value::None,
                };
                Ok(Flow::Return(result))
            }
            Stmt::Print { args, .. } => {
                let mut pieces = Vec::with_capacity(args.len());
                for arg in args {
                    pieces.push(self.eval(arg, env)?.to_display_string());
                }
                let mut state = self.state.borrow_mut();
                state.output.push_str(&pieces.join(" "));
                state.output.push('\n');
                Ok(Flow::Normal)
            }
            Stmt::ExprStmt { expr, .. } => {
                // Mutating method calls on variables (`xs.append(e)`, `xs.pop()`)
                // update the environment; any other expression is evaluated for
                // its side conditions (errors) and discarded.
                if let Expr::Method(recv, name, args) = expr {
                    if let Expr::Var(var_name) = recv.as_ref() {
                        if matches!(name.as_str(), "append" | "pop") {
                            let mut call_args = vec![Expr::Var(var_name.clone())];
                            call_args.extend(args.iter().cloned());
                            let result = if name == "append" {
                                let base = self.eval(&call_args[0], env)?;
                                let item = self.eval(&call_args[1], env)?;
                                crate::eval::call_builtin("append", &[base, item])
                                    .map_err(InterpError::from)?
                            } else {
                                let base = self.eval(&call_args[0], env)?;
                                match base {
                                    Value::List(v) if !v.is_empty() => Value::list(v[..v.len() - 1].to_vec()),
                                    Value::List(_) => {
                                        return Err(InterpError::Eval(EvalError::index_error(
                                            "pop from empty list",
                                        )))
                                    }
                                    other => {
                                        return Err(InterpError::Eval(EvalError::type_error(format!(
                                            "{} object has no method pop",
                                            other.type_name()
                                        ))))
                                    }
                                }
                            };
                            env.insert(var_name.clone(), result);
                            return Ok(Flow::Normal);
                        }
                    }
                }
                self.eval(expr, env)?;
                Ok(Flow::Normal)
            }
            Stmt::Pass { .. } => Ok(Flow::Normal),
            Stmt::Break { .. } => Ok(Flow::Break),
            Stmt::Continue { .. } => Ok(Flow::Continue),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse_program;

    fn run(src: &str, entry: &str, args: &[Value]) -> Execution {
        let prog = parse_program(src).unwrap();
        run_function(&prog, entry, args, Limits::default()).unwrap()
    }

    const C1: &str = "\
def computeDeriv(poly):
    result = []
    for e in range(1, len(poly)):
        result.append(float(poly[e]*e))
    if result == []:
        return [0.0]
    else:
        return result
";

    const C2: &str = "\
def computeDeriv(poly):
    deriv = []
    for i in xrange(1,len(poly)):
        deriv+=[float(i)*poly[i]]
    if len(deriv)==0:
        return [0.0]
    return deriv
";

    #[test]
    fn papers_correct_attempts_agree() {
        let poly = Value::list(vec![Value::Float(6.3), Value::Float(7.6), Value::Float(12.14)]);
        let r1 = run(C1, "computeDeriv", std::slice::from_ref(&poly));
        let r2 = run(C2, "computeDeriv", &[poly]);
        assert_eq!(r1.return_value, Value::list(vec![Value::Float(7.6), Value::Float(24.28)]));
        assert_eq!(r1.return_value, r2.return_value);
    }

    #[test]
    fn derivative_of_constant_is_zero_list() {
        let r = run(C1, "computeDeriv", &[Value::list(vec![Value::Float(3.0)])]);
        assert_eq!(r.return_value, Value::list(vec![Value::Float(0.0)]));
    }

    #[test]
    fn incorrect_attempt_i1_returns_wrong_type() {
        let i1 = "\
def computeDeriv(poly):
    new = []
    for i in xrange(1,len(poly)):
        new.append(float(i*poly[i]))
    if new==[]:
        return 0.0
    return new
";
        let r = run(i1, "computeDeriv", &[Value::list(vec![Value::Float(3.0)])]);
        assert_eq!(r.return_value, Value::Float(0.0));
        assert_ne!(r.return_value, Value::list(vec![Value::Float(0.0)]));
    }

    #[test]
    fn incorrect_attempt_i2_raises_index_error() {
        let i2 = "\
def computeDeriv(poly):
    result = []
    for i in range(len(poly)):
        result[i]=float((i)*poly[i])
    return result
";
        let prog = parse_program(i2).unwrap();
        let out = run_function(
            &prog,
            "computeDeriv",
            &[Value::list(vec![Value::Float(1.0), Value::Float(2.0)])],
            Limits::default(),
        );
        assert!(out.is_err());
    }

    #[test]
    fn while_loop_and_augmented_assignment() {
        let src = "\
def fact(n):
    result = 1
    i = 1
    while i <= n:
        result *= i
        i += 1
    return result
";
        assert_eq!(run(src, "fact", &[Value::Int(5)]).return_value, Value::Int(120));
    }

    #[test]
    fn print_accumulates_output() {
        let src = "\
def main(n):
    i = 1
    while i <= n:
        print(i)
        i += 1
";
        let r = run(src, "main", &[Value::Int(3)]);
        assert_eq!(r.output, "1\n2\n3\n");
        assert_eq!(r.return_value, Value::None);
    }

    #[test]
    fn break_and_continue() {
        let src = "\
def f(n):
    total = 0
    for i in range(n):
        if i == 3:
            break
        if i % 2 == 0:
            continue
        total += i
    return total
";
        assert_eq!(run(src, "f", &[Value::Int(10)]).return_value, Value::Int(1));
    }

    #[test]
    fn infinite_loop_exhausts_fuel() {
        let src = "\
def f(n):
    while True:
        n = n + 1
    return n
";
        let prog = parse_program(src).unwrap();
        let out = run_function(&prog, "f", &[Value::Int(0)], Limits { max_steps: 1000 });
        assert_eq!(out.unwrap_err(), InterpError::OutOfFuel);
    }

    #[test]
    fn helper_functions_are_callable() {
        let src = "\
def double(x):
    return x * 2

def f(n):
    return double(n) + 1
";
        assert_eq!(run(src, "f", &[Value::Int(5)]).return_value, Value::Int(11));
    }

    #[test]
    fn subscript_assignment_updates_list() {
        let src = "\
def f(xs):
    xs[0] = 99
    return xs
";
        assert_eq!(
            run(src, "f", &[Value::list(vec![Value::Int(1), Value::Int(2)])]).return_value,
            Value::list(vec![Value::Int(99), Value::Int(2)])
        );
    }

    #[test]
    fn string_building_pattern() {
        let src = "\
def trapezoid(h, b):
    i = 0
    while i < h:
        print(' ' * (h - 1 - i) + '*' * (b - 2 * (h - 1 - i)))
        i += 1
";
        let r = run(src, "trapezoid", &[Value::Int(2), Value::Int(6)]);
        assert_eq!(r.output, " ****\n******\n");
    }

    #[test]
    fn missing_entry_function() {
        let prog = parse_program("def g(x):\n    return x\n").unwrap();
        assert!(matches!(
            run_function(&prog, "f", &[Value::Int(1)], Limits::default()),
            Err(InterpError::MissingFunction(_))
        ));
    }
}
