//! Dynamic values of the MiniPy language (the computation domain `D` of the
//! paper, Definition 3.3).
//!
//! The domain contains booleans, integers, floats, strings, lists, tuples,
//! `None` and the undefined value `⊥` ([`Value::Undef`]). All operations
//! follow Python-like semantics; any failing operation reports an
//! [`EvalError`] which the program model maps to `⊥`.
//!
//! Strings, lists and tuples are backed by [`Arc`], so cloning a value is
//! O(1) regardless of its size. Trace execution stores two memories per step
//! and every environment lookup clones the looked-up value, so cheap clones
//! are what keeps the matching/repair hot path out of `memcpy`. The values
//! themselves are immutable (all operations build new values), so sharing is
//! never observable. `Arc` rather than `Rc` because repair processes
//! clusters on multiple threads and traces are shared across them.

use std::fmt;
use std::hash::{Hash, Hasher};
use std::sync::Arc;

use crate::error::{EvalError, EvalErrorKind};

/// A runtime value of the MiniPy language. Cloning is O(1): the sequence and
/// string payloads are reference-counted.
#[derive(Debug, Clone)]
pub enum Value {
    /// A 64-bit signed integer.
    Int(i64),
    /// A 64-bit floating point number.
    Float(f64),
    /// A boolean.
    Bool(bool),
    /// An immutable string.
    Str(Arc<str>),
    /// A list of values.
    List(Arc<[Value]>),
    /// A tuple of values.
    Tuple(Arc<[Value]>),
    /// Python's `None`.
    None,
    /// The undefined value `⊥` of the computation domain (Definition 3.3).
    Undef,
}

impl Value {
    /// Builds a string value from anything convertible to a shared string.
    pub fn str(s: impl Into<Arc<str>>) -> Value {
        Value::Str(s.into())
    }

    /// Builds a list value from a vector (or other owned sequence) of values.
    pub fn list(items: impl Into<Arc<[Value]>>) -> Value {
        Value::List(items.into())
    }

    /// Builds a tuple value from a vector (or other owned sequence) of values.
    pub fn tuple(items: impl Into<Arc<[Value]>>) -> Value {
        Value::Tuple(items.into())
    }

    /// Returns `true` if the value is the undefined value `⊥`.
    pub fn is_undef(&self) -> bool {
        matches!(self, Value::Undef)
    }

    /// Returns the numeric value as `f64` if the value is numeric
    /// (`Int`, `Float` or `Bool`).
    pub fn as_number(&self) -> Option<f64> {
        match self {
            Value::Int(i) => Some(*i as f64),
            Value::Float(f) => Some(*f),
            Value::Bool(b) => Some(if *b { 1.0 } else { 0.0 }),
            _ => None,
        }
    }

    /// Returns the truthiness of the value following Python rules.
    ///
    /// # Errors
    ///
    /// Returns an error if the value is `⊥` (its truthiness is not defined).
    pub fn truthy(&self) -> Result<bool, EvalError> {
        match self {
            Value::Bool(b) => Ok(*b),
            Value::Int(i) => Ok(*i != 0),
            Value::Float(f) => Ok(*f != 0.0),
            Value::Str(s) => Ok(!s.is_empty()),
            Value::List(v) | Value::Tuple(v) => Ok(!v.is_empty()),
            Value::None => Ok(false),
            Value::Undef => Err(EvalError::new(EvalErrorKind::UndefinedValue)),
        }
    }

    /// A short name of the value's type, used in error messages.
    pub fn type_name(&self) -> &'static str {
        match self {
            Value::Int(_) => "int",
            Value::Float(_) => "float",
            Value::Bool(_) => "bool",
            Value::Str(_) => "str",
            Value::List(_) => "list",
            Value::Tuple(_) => "tuple",
            Value::None => "NoneType",
            Value::Undef => "undef",
        }
    }

    /// Python-style `str()` conversion.
    pub fn to_display_string(&self) -> String {
        match self {
            Value::Str(s) => s.to_string(),
            other => format!("{other}"),
        }
    }

    /// Structural equality following Python semantics: `1 == 1.0` is true and
    /// `True == 1` is true; sequences compare element-wise. `⊥` is only equal
    /// to `⊥` (this is what trace comparison needs).
    pub fn py_eq(&self, other: &Value) -> bool {
        match (self, other) {
            (Value::Undef, Value::Undef) => true,
            (Value::Undef, _) | (_, Value::Undef) => false,
            (Value::None, Value::None) => true,
            (Value::Str(a), Value::Str(b)) => a == b,
            (Value::List(a), Value::List(b)) | (Value::Tuple(a), Value::Tuple(b)) => {
                a.len() == b.len() && a.iter().zip(b.iter()).all(|(x, y)| x.py_eq(y))
            }
            _ => match (self.as_number(), other.as_number()) {
                (Some(a), Some(b)) => a == b,
                _ => false,
            },
        }
    }

    /// Python-style ordering comparison. Returns `None` when the values are
    /// not comparable (e.g. an int and a list).
    pub fn py_cmp(&self, other: &Value) -> Option<std::cmp::Ordering> {
        use std::cmp::Ordering;
        match (self, other) {
            (Value::Str(a), Value::Str(b)) => Some(a.cmp(b)),
            (Value::List(a), Value::List(b)) | (Value::Tuple(a), Value::Tuple(b)) => {
                for (x, y) in a.iter().zip(b.iter()) {
                    match x.py_cmp(y) {
                        Some(Ordering::Equal) => continue,
                        other => return other,
                    }
                }
                Some(a.len().cmp(&b.len()))
            }
            _ => {
                let a = self.as_number()?;
                let b = other.as_number()?;
                a.partial_cmp(&b)
            }
        }
    }
}

impl PartialEq for Value {
    fn eq(&self, other: &Self) -> bool {
        self.py_eq(other)
    }
}

/// Hashing is consistent with [`Value::py_eq`] (the `PartialEq` impl):
/// `a.py_eq(b)` implies equal hashes. Numerics (`Int`, `Float`, `Bool`)
/// compare across types, so they all hash through their canonical `f64`
/// representation (with `-0.0` normalised to `0.0`); lists and tuples are
/// distinct types under `py_eq` and hash with distinct discriminants. This is
/// what lets trace signatures, projections and behaviour fingerprints use
/// hashing as a sound pre-filter for dynamic equivalence.
impl Hash for Value {
    fn hash<H: Hasher>(&self, state: &mut H) {
        match self {
            Value::Undef => state.write_u8(0),
            Value::None => state.write_u8(1),
            Value::Str(s) => {
                state.write_u8(2);
                s.hash(state);
            }
            Value::List(items) => {
                state.write_u8(3);
                state.write_usize(items.len());
                for item in items.iter() {
                    item.hash(state);
                }
            }
            Value::Tuple(items) => {
                state.write_u8(4);
                state.write_usize(items.len());
                for item in items.iter() {
                    item.hash(state);
                }
            }
            Value::Int(_) | Value::Float(_) | Value::Bool(_) => {
                state.write_u8(5);
                let n = self.as_number().expect("numeric value");
                let bits = if n == 0.0 { 0.0f64.to_bits() } else { n.to_bits() };
                state.write_u64(bits);
            }
        }
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Int(i) => write!(f, "{i}"),
            Value::Float(x) => {
                if x.fract() == 0.0 && x.is_finite() && x.abs() < 1e16 {
                    write!(f, "{x:.1}")
                } else {
                    write!(f, "{x}")
                }
            }
            Value::Bool(b) => write!(f, "{}", if *b { "True" } else { "False" }),
            Value::Str(s) => write!(f, "'{s}'"),
            Value::List(items) => {
                write!(f, "[")?;
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "{item}")?;
                }
                write!(f, "]")
            }
            Value::Tuple(items) => {
                write!(f, "(")?;
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "{item}")?;
                }
                if items.len() == 1 {
                    write!(f, ",")?;
                }
                write!(f, ")")
            }
            Value::None => write!(f, "None"),
            Value::Undef => write!(f, "⊥"),
        }
    }
}

impl From<i64> for Value {
    fn from(v: i64) -> Self {
        Value::Int(v)
    }
}

impl From<f64> for Value {
    fn from(v: f64) -> Self {
        Value::Float(v)
    }
}

impl From<bool> for Value {
    fn from(v: bool) -> Self {
        Value::Bool(v)
    }
}

impl From<&str> for Value {
    fn from(v: &str) -> Self {
        Value::Str(v.into())
    }
}

impl From<String> for Value {
    fn from(v: String) -> Self {
        Value::Str(v.into())
    }
}

impl From<Vec<Value>> for Value {
    fn from(v: Vec<Value>) -> Self {
        Value::List(v.into())
    }
}

fn type_error(op: &str, a: &Value, b: &Value) -> EvalError {
    EvalError::type_error(format!(
        "unsupported operand types for {op}: {} and {}",
        a.type_name(),
        b.type_name()
    ))
}

fn both_ints(a: &Value, b: &Value) -> Option<(i64, i64)> {
    match (a, b) {
        (Value::Int(x), Value::Int(y)) => Some((*x, *y)),
        (Value::Bool(x), Value::Int(y)) => Some((i64::from(*x), *y)),
        (Value::Int(x), Value::Bool(y)) => Some((*x, i64::from(*y))),
        (Value::Bool(x), Value::Bool(y)) => Some((i64::from(*x), i64::from(*y))),
        _ => None,
    }
}

/// Binary arithmetic and comparison operations on [`Value`]s.
///
/// These free functions implement the semantics of the corresponding MiniPy
/// operators; they are used both by the expression evaluator and by the
/// direct interpreter.
pub mod ops {
    use super::*;

    /// Addition / concatenation (`+`).
    pub fn add(a: &Value, b: &Value) -> Result<Value, EvalError> {
        match (a, b) {
            (Value::Str(x), Value::Str(y)) => Ok(Value::str(format!("{x}{y}"))),
            (Value::List(x), Value::List(y)) => Ok(Value::List(x.iter().chain(y.iter()).cloned().collect())),
            (Value::Tuple(x), Value::Tuple(y)) => {
                Ok(Value::Tuple(x.iter().chain(y.iter()).cloned().collect()))
            }
            _ => {
                if let Some((x, y)) = both_ints(a, b) {
                    Ok(Value::Int(x.wrapping_add(y)))
                } else if let (Some(x), Some(y)) = (a.as_number(), b.as_number()) {
                    Ok(Value::Float(x + y))
                } else {
                    Err(type_error("+", a, b))
                }
            }
        }
    }

    /// Subtraction (`-`).
    pub fn sub(a: &Value, b: &Value) -> Result<Value, EvalError> {
        if let Some((x, y)) = both_ints(a, b) {
            Ok(Value::Int(x.wrapping_sub(y)))
        } else if let (Some(x), Some(y)) = (a.as_number(), b.as_number()) {
            Ok(Value::Float(x - y))
        } else {
            Err(type_error("-", a, b))
        }
    }

    /// Multiplication / repetition (`*`).
    pub fn mul(a: &Value, b: &Value) -> Result<Value, EvalError> {
        fn repeat<T: Clone>(items: &[T], n: i64) -> Vec<T> {
            if n <= 0 {
                Vec::new()
            } else {
                let mut out = Vec::with_capacity(items.len() * n as usize);
                for _ in 0..n {
                    out.extend(items.iter().cloned());
                }
                out
            }
        }
        match (a, b) {
            (Value::Str(s), Value::Int(n)) | (Value::Int(n), Value::Str(s)) => {
                Ok(Value::str(s.repeat((*n).max(0) as usize)))
            }
            (Value::List(v), Value::Int(n)) | (Value::Int(n), Value::List(v)) => {
                Ok(Value::list(repeat(v, *n)))
            }
            (Value::Tuple(v), Value::Int(n)) | (Value::Int(n), Value::Tuple(v)) => {
                Ok(Value::tuple(repeat(v, *n)))
            }
            _ => {
                if let Some((x, y)) = both_ints(a, b) {
                    Ok(Value::Int(x.wrapping_mul(y)))
                } else if let (Some(x), Some(y)) = (a.as_number(), b.as_number()) {
                    Ok(Value::Float(x * y))
                } else {
                    Err(type_error("*", a, b))
                }
            }
        }
    }

    /// True division (`/`); integer operands produce a float, as in Python 3.
    pub fn div(a: &Value, b: &Value) -> Result<Value, EvalError> {
        match (a.as_number(), b.as_number()) {
            (Some(x), Some(y)) => {
                if y == 0.0 {
                    Err(EvalError::new(EvalErrorKind::DivisionByZero))
                } else {
                    Ok(Value::Float(x / y))
                }
            }
            _ => Err(type_error("/", a, b)),
        }
    }

    /// Floor division (`//`).
    pub fn floor_div(a: &Value, b: &Value) -> Result<Value, EvalError> {
        if let Some((x, y)) = both_ints(a, b) {
            if y == 0 {
                return Err(EvalError::new(EvalErrorKind::DivisionByZero));
            }
            Ok(Value::Int(x.div_euclid(y)))
        } else if let (Some(x), Some(y)) = (a.as_number(), b.as_number()) {
            if y == 0.0 {
                return Err(EvalError::new(EvalErrorKind::DivisionByZero));
            }
            Ok(Value::Float((x / y).floor()))
        } else {
            Err(type_error("//", a, b))
        }
    }

    /// Modulo (`%`), following Python's sign convention.
    pub fn modulo(a: &Value, b: &Value) -> Result<Value, EvalError> {
        if let Some((x, y)) = both_ints(a, b) {
            if y == 0 {
                return Err(EvalError::new(EvalErrorKind::DivisionByZero));
            }
            Ok(Value::Int(x.rem_euclid(y)))
        } else if let (Some(x), Some(y)) = (a.as_number(), b.as_number()) {
            if y == 0.0 {
                return Err(EvalError::new(EvalErrorKind::DivisionByZero));
            }
            Ok(Value::Float(x - y * (x / y).floor()))
        } else {
            Err(type_error("%", a, b))
        }
    }

    /// Exponentiation (`**`).
    pub fn pow(a: &Value, b: &Value) -> Result<Value, EvalError> {
        if let Some((x, y)) = both_ints(a, b) {
            if y >= 0 {
                let exp = u32::try_from(y.min(u32::MAX as i64)).unwrap_or(u32::MAX);
                return Ok(Value::Int(x.wrapping_pow(exp)));
            }
        }
        match (a.as_number(), b.as_number()) {
            (Some(x), Some(y)) => Ok(Value::Float(x.powf(y))),
            _ => Err(type_error("**", a, b)),
        }
    }

    /// Unary negation (`-`).
    pub fn neg(a: &Value) -> Result<Value, EvalError> {
        match a {
            Value::Int(i) => Ok(Value::Int(-i)),
            Value::Float(f) => Ok(Value::Float(-f)),
            Value::Bool(b) => Ok(Value::Int(-i64::from(*b))),
            _ => Err(EvalError::type_error(format!("bad operand type for unary -: {}", a.type_name()))),
        }
    }

    /// Ordering comparison; `op` is one of `<`, `<=`, `>`, `>=`.
    pub fn compare(op: &str, a: &Value, b: &Value) -> Result<Value, EvalError> {
        use std::cmp::Ordering;
        let ord = a.py_cmp(b).ok_or_else(|| type_error(op, a, b))?;
        let result = match op {
            "<" => ord == Ordering::Less,
            "<=" => ord != Ordering::Greater,
            ">" => ord == Ordering::Greater,
            ">=" => ord != Ordering::Less,
            _ => return Err(EvalError::other(format!("unknown comparison operator `{op}`"))),
        };
        Ok(Value::Bool(result))
    }

    /// Sequence/string indexing with Python negative-index semantics.
    pub fn index(base: &Value, idx: &Value) -> Result<Value, EvalError> {
        let i = match idx {
            Value::Int(i) => *i,
            Value::Bool(b) => i64::from(*b),
            _ => {
                return Err(EvalError::type_error(format!(
                    "indices must be integers, not {}",
                    idx.type_name()
                )))
            }
        };
        let items: &[Value] = match base {
            Value::List(v) | Value::Tuple(v) => v,
            Value::Str(s) => {
                let chars: Vec<char> = s.chars().collect();
                let n = chars.len() as i64;
                let real = if i < 0 { i + n } else { i };
                if real < 0 || real >= n {
                    return Err(EvalError::index_error("string index out of range"));
                }
                return Ok(Value::str(chars[real as usize].to_string()));
            }
            _ => return Err(EvalError::type_error(format!("{} is not subscriptable", base.type_name()))),
        };
        let n = items.len() as i64;
        let real = if i < 0 { i + n } else { i };
        if real < 0 || real >= n {
            return Err(EvalError::index_error("list index out of range"));
        }
        Ok(items[real as usize].clone())
    }

    /// Slicing `base[lo:hi]` with Python clamping semantics.
    pub fn slice(base: &Value, lo: Option<&Value>, hi: Option<&Value>) -> Result<Value, EvalError> {
        fn clamp(idx: Option<&Value>, default: i64, n: i64) -> Result<i64, EvalError> {
            let raw = match idx {
                Option::None => default,
                Some(Value::Int(i)) => *i,
                Some(Value::Bool(b)) => i64::from(*b),
                Some(other) => {
                    return Err(EvalError::type_error(format!(
                        "slice indices must be integers, not {}",
                        other.type_name()
                    )))
                }
            };
            let adjusted = if raw < 0 { raw + n } else { raw };
            Ok(adjusted.clamp(0, n))
        }
        match base {
            Value::List(v) => {
                let n = v.len() as i64;
                let lo = clamp(lo, 0, n)?;
                let hi = clamp(hi, n, n)?;
                if lo >= hi {
                    Ok(Value::list(Vec::new()))
                } else {
                    Ok(Value::list(v[lo as usize..hi as usize].to_vec()))
                }
            }
            Value::Tuple(v) => {
                let n = v.len() as i64;
                let lo = clamp(lo, 0, n)?;
                let hi = clamp(hi, n, n)?;
                if lo >= hi {
                    Ok(Value::tuple(Vec::new()))
                } else {
                    Ok(Value::tuple(v[lo as usize..hi as usize].to_vec()))
                }
            }
            Value::Str(s) => {
                let chars: Vec<char> = s.chars().collect();
                let n = chars.len() as i64;
                let lo = clamp(lo, 0, n)?;
                let hi = clamp(hi, n, n)?;
                if lo >= hi {
                    Ok(Value::str(""))
                } else {
                    Ok(Value::str(chars[lo as usize..hi as usize].iter().collect::<String>()))
                }
            }
            _ => Err(EvalError::type_error(format!("{} is not sliceable", base.type_name()))),
        }
    }

    /// Stores `value` at index `idx` of `base`, returning the updated sequence.
    ///
    /// This is the functional form of `base[idx] = value` used by the program
    /// model (`store(base, idx, value)`).
    pub fn store(base: &Value, idx: &Value, value: &Value) -> Result<Value, EvalError> {
        let i = match idx {
            Value::Int(i) => *i,
            Value::Bool(b) => i64::from(*b),
            _ => {
                return Err(EvalError::type_error(format!(
                    "indices must be integers, not {}",
                    idx.type_name()
                )))
            }
        };
        match base {
            Value::List(v) => {
                let n = v.len() as i64;
                let real = if i < 0 { i + n } else { i };
                if real < 0 || real >= n {
                    return Err(EvalError::index_error("list assignment index out of range"));
                }
                let mut out = v.to_vec();
                out[real as usize] = value.clone();
                Ok(Value::list(out))
            }
            _ => Err(EvalError::type_error(format!("{} does not support item assignment", base.type_name()))),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::ops;
    use super::*;

    #[test]
    fn numeric_equality_crosses_types() {
        assert_eq!(Value::Int(1), Value::Float(1.0));
        assert_eq!(Value::Bool(true), Value::Int(1));
        assert_ne!(Value::Int(1), Value::Str("1".into()));
        assert_eq!(Value::list(vec![Value::Int(0)]), Value::list(vec![Value::Float(0.0)]));
    }

    #[test]
    fn undef_only_equals_undef() {
        assert_eq!(Value::Undef, Value::Undef);
        assert_ne!(Value::Undef, Value::None);
        assert_ne!(Value::Undef, Value::Int(0));
    }

    #[test]
    fn add_concatenates_sequences() {
        let a = Value::list(vec![Value::Int(1)]);
        let b = Value::list(vec![Value::Int(2)]);
        assert_eq!(ops::add(&a, &b).unwrap(), Value::list(vec![Value::Int(1), Value::Int(2)]));
        assert_eq!(
            ops::add(&Value::Str("ab".into()), &Value::Str("cd".into())).unwrap(),
            Value::Str("abcd".into())
        );
    }

    #[test]
    fn division_by_zero_is_an_error() {
        assert!(ops::div(&Value::Int(1), &Value::Int(0)).is_err());
        assert!(ops::modulo(&Value::Int(1), &Value::Int(0)).is_err());
        assert!(ops::floor_div(&Value::Int(1), &Value::Int(0)).is_err());
    }

    #[test]
    fn int_division_produces_float() {
        assert_eq!(ops::div(&Value::Int(3), &Value::Int(2)).unwrap(), Value::Float(1.5));
        assert_eq!(ops::floor_div(&Value::Int(3), &Value::Int(2)).unwrap(), Value::Int(1));
        assert_eq!(ops::floor_div(&Value::Int(-3), &Value::Int(2)).unwrap(), Value::Int(-2));
    }

    #[test]
    fn modulo_follows_python_sign() {
        assert_eq!(ops::modulo(&Value::Int(-7), &Value::Int(3)).unwrap(), Value::Int(2));
        assert_eq!(ops::modulo(&Value::Int(7), &Value::Int(3)).unwrap(), Value::Int(1));
    }

    #[test]
    fn string_repetition() {
        assert_eq!(ops::mul(&Value::Str("ab".into()), &Value::Int(3)).unwrap(), Value::Str("ababab".into()));
        assert_eq!(ops::mul(&Value::Str("ab".into()), &Value::Int(-1)).unwrap(), Value::str(""));
    }

    #[test]
    fn negative_indexing() {
        let lst = Value::list(vec![Value::Int(10), Value::Int(20), Value::Int(30)]);
        assert_eq!(ops::index(&lst, &Value::Int(-1)).unwrap(), Value::Int(30));
        assert!(ops::index(&lst, &Value::Int(3)).is_err());
        assert!(ops::index(&lst, &Value::Int(-4)).is_err());
    }

    #[test]
    fn slicing_clamps() {
        let lst = Value::list(vec![Value::Int(1), Value::Int(2), Value::Int(3)]);
        assert_eq!(
            ops::slice(&lst, Some(&Value::Int(1)), None).unwrap(),
            Value::list(vec![Value::Int(2), Value::Int(3)])
        );
        assert_eq!(
            ops::slice(&lst, Some(&Value::Int(-2)), Some(&Value::Int(100))).unwrap(),
            Value::list(vec![Value::Int(2), Value::Int(3)])
        );
    }

    #[test]
    fn store_replaces_element() {
        let lst = Value::list(vec![Value::Int(1), Value::Int(2)]);
        assert_eq!(
            ops::store(&lst, &Value::Int(1), &Value::Int(9)).unwrap(),
            Value::list(vec![Value::Int(1), Value::Int(9)])
        );
        assert!(ops::store(&lst, &Value::Int(2), &Value::Int(9)).is_err());
    }

    #[test]
    fn truthiness() {
        assert!(!Value::list(vec![]).truthy().unwrap());
        assert!(Value::list(vec![Value::Int(0)]).truthy().unwrap());
        assert!(!Value::str("").truthy().unwrap());
        assert!(Value::Undef.truthy().is_err());
    }

    #[test]
    fn ordering_comparisons() {
        assert_eq!(ops::compare("<", &Value::Int(1), &Value::Float(1.5)).unwrap(), Value::Bool(true));
        assert_eq!(
            ops::compare(">=", &Value::Str("b".into()), &Value::Str("a".into())).unwrap(),
            Value::Bool(true)
        );
        assert!(ops::compare("<", &Value::Int(1), &Value::list(vec![])).is_err());
    }

    #[test]
    fn display_formats_like_python() {
        assert_eq!(Value::Float(7.6).to_string(), "7.6");
        assert_eq!(Value::Float(1.0).to_string(), "1.0");
        assert_eq!(Value::list(vec![Value::Float(0.0)]).to_string(), "[0.0]");
        assert_eq!(Value::tuple(vec![Value::Int(1)]).to_string(), "(1,)");
        assert_eq!(Value::Bool(true).to_string(), "True");
    }
}
