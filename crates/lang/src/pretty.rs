//! Pretty-printing of MiniPy expressions and statements.
//!
//! The printer produces Python-like surface syntax. It is used for three
//! purposes: feedback messages ("change `range(len(poly))` to
//! `range(1, len(poly))`"), canonical keys when de-duplicating dynamically
//! equivalent cluster expressions, and debugging output.

use std::fmt::Write as _;

use crate::ast::{BinOp, Expr, Function, Lit, SourceProgram, Stmt, Target, UnOp};

/// Renders an expression as MiniPy source text.
pub fn expr_to_string(expr: &Expr) -> String {
    render_expr(expr, 0)
}

/// Renders a statement (and its nested blocks) as MiniPy source text with the
/// given indentation depth.
pub fn stmt_to_string(stmt: &Stmt, indent: usize) -> String {
    let mut out = String::new();
    render_stmt(stmt, indent, &mut out);
    out
}

/// Renders a whole function definition as MiniPy source text.
pub fn function_to_string(function: &Function) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "def {}({}):", function.name, function.params.join(", "));
    if function.body.is_empty() {
        out.push_str("    pass\n");
    }
    for stmt in &function.body {
        render_stmt(stmt, 1, &mut out);
    }
    out
}

/// Renders a whole program as MiniPy source text.
pub fn program_to_string(program: &SourceProgram) -> String {
    let mut out = String::new();
    for (i, function) in program.functions.iter().enumerate() {
        if i > 0 {
            out.push('\n');
        }
        out.push_str(&function_to_string(function));
    }
    out
}

impl SourceProgram {
    /// A formatting-insensitive hash of the program: two submissions that
    /// differ only in whitespace, comments, blank lines or redundant
    /// parentheses hash equal, while any structural difference (and any
    /// variable renaming) changes the hash.
    ///
    /// Duplicate resubmission is the dominant pattern in MOOC traffic, so
    /// the feedback service keys its result cache on this hash; the corpus
    /// layer uses it to report how much of a dataset is structurally
    /// duplicated.
    pub fn structural_hash(&self) -> u64 {
        use std::collections::hash_map::DefaultHasher;
        use std::hash::{Hash, Hasher};
        let mut hasher = DefaultHasher::new();
        // The pretty-printer renders the canonical form (line numbers and
        // original formatting are not consulted), so its output is exactly
        // the structural identity we want.
        program_to_string(self).hash(&mut hasher);
        hasher.finish()
    }
}

fn precedence(op: BinOp) -> u8 {
    match op {
        BinOp::Or => 1,
        BinOp::And => 2,
        BinOp::Eq | BinOp::Ne | BinOp::Lt | BinOp::Le | BinOp::Gt | BinOp::Ge => 3,
        BinOp::Add | BinOp::Sub => 4,
        BinOp::Mul | BinOp::Div | BinOp::FloorDiv | BinOp::Mod => 5,
        BinOp::Pow => 7,
    }
}

fn render_expr(expr: &Expr, parent_prec: u8) -> String {
    match expr {
        Expr::Lit(lit) => render_lit(lit),
        Expr::Var(name) => name.clone(),
        Expr::List(items) => {
            let inner: Vec<String> = items.iter().map(|e| render_expr(e, 0)).collect();
            format!("[{}]", inner.join(", "))
        }
        Expr::Tuple(items) => {
            let inner: Vec<String> = items.iter().map(|e| render_expr(e, 0)).collect();
            if items.len() == 1 {
                format!("({},)", inner[0])
            } else {
                format!("({})", inner.join(", "))
            }
        }
        Expr::Unary(op, inner) => {
            let rendered = render_expr(inner, 6);
            match op {
                UnOp::Neg => format!("-{rendered}"),
                UnOp::Not => format!("not {rendered}"),
            }
        }
        Expr::Binary(op, lhs, rhs) => {
            let prec = precedence(*op);
            let left = render_expr(lhs, prec);
            let right = render_expr(rhs, prec + 1);
            let text = format!("{left} {} {right}", op.symbol());
            if prec < parent_prec {
                format!("({text})")
            } else {
                text
            }
        }
        Expr::Index(base, idx) => {
            format!("{}[{}]", render_expr(base, 8), render_expr(idx, 0))
        }
        Expr::Slice(base, lo, hi) => {
            let lo = lo.as_ref().map(|e| render_expr(e, 0)).unwrap_or_default();
            let hi = hi.as_ref().map(|e| render_expr(e, 0)).unwrap_or_default();
            format!("{}[{lo}:{hi}]", render_expr(base, 8))
        }
        Expr::Call(name, args) => {
            let inner: Vec<String> = args.iter().map(|e| render_expr(e, 0)).collect();
            format!("{name}({})", inner.join(", "))
        }
        Expr::Method(recv, name, args) => {
            let inner: Vec<String> = args.iter().map(|e| render_expr(e, 0)).collect();
            format!("{}.{name}({})", render_expr(recv, 8), inner.join(", "))
        }
    }
}

fn render_lit(lit: &Lit) -> String {
    match lit {
        Lit::Int(v) => v.to_string(),
        Lit::Float(v) => {
            if v.fract() == 0.0 && v.is_finite() && v.abs() < 1e16 {
                format!("{v:.1}")
            } else {
                v.to_string()
            }
        }
        Lit::Str(v) => format!("'{}'", v.replace('\\', "\\\\").replace('\'', "\\'").replace('\n', "\\n")),
        Lit::Bool(v) => if *v { "True" } else { "False" }.to_owned(),
        Lit::None => "None".to_owned(),
    }
}

fn render_stmt(stmt: &Stmt, indent: usize, out: &mut String) {
    let pad = "    ".repeat(indent);
    match stmt {
        Stmt::Assign { target, op, value, .. } => {
            let target_text = match target {
                Target::Name(name) => name.clone(),
                Target::Index(name, idx) => format!("{name}[{}]", render_expr(idx, 0)),
            };
            let op_text = match op {
                Some(op) => format!("{}=", op.symbol()),
                None => "=".to_owned(),
            };
            let _ = writeln!(out, "{pad}{target_text} {op_text} {}", render_expr(value, 0));
        }
        Stmt::If { cond, then_body, else_body, .. } => {
            let _ = writeln!(out, "{pad}if {}:", render_expr(cond, 0));
            render_block(then_body, indent + 1, out);
            if !else_body.is_empty() {
                // Collapse `else: if ...` into `elif ...` for readability.
                if else_body.len() == 1 {
                    if let Stmt::If { .. } = &else_body[0] {
                        let mut nested = String::new();
                        render_stmt(&else_body[0], indent, &mut nested);
                        let nested = nested.replacen(&format!("{pad}if"), &format!("{pad}elif"), 1);
                        out.push_str(&nested);
                        return;
                    }
                }
                let _ = writeln!(out, "{pad}else:");
                render_block(else_body, indent + 1, out);
            }
        }
        Stmt::While { cond, body, .. } => {
            let _ = writeln!(out, "{pad}while {}:", render_expr(cond, 0));
            render_block(body, indent + 1, out);
        }
        Stmt::For { var, iter, body, .. } => {
            let _ = writeln!(out, "{pad}for {var} in {}:", render_expr(iter, 0));
            render_block(body, indent + 1, out);
        }
        Stmt::Return { value, .. } => match value {
            Some(expr) => {
                let _ = writeln!(out, "{pad}return {}", render_expr(expr, 0));
            }
            None => {
                let _ = writeln!(out, "{pad}return");
            }
        },
        Stmt::Print { args, .. } => {
            let inner: Vec<String> = args.iter().map(|e| render_expr(e, 0)).collect();
            let _ = writeln!(out, "{pad}print({})", inner.join(", "));
        }
        Stmt::ExprStmt { expr, .. } => {
            let _ = writeln!(out, "{pad}{}", render_expr(expr, 0));
        }
        Stmt::Pass { .. } => {
            let _ = writeln!(out, "{pad}pass");
        }
        Stmt::Break { .. } => {
            let _ = writeln!(out, "{pad}break");
        }
        Stmt::Continue { .. } => {
            let _ = writeln!(out, "{pad}continue");
        }
    }
}

fn render_block(stmts: &[Stmt], indent: usize, out: &mut String) {
    if stmts.is_empty() {
        let _ = writeln!(out, "{}pass", "    ".repeat(indent));
        return;
    }
    for stmt in stmts {
        render_stmt(stmt, indent, out);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::{parse_expression, parse_program};

    #[test]
    fn expression_round_trip() {
        for src in [
            "result + [float(e) * poly[e]]",
            "range(1, len(poly))",
            "ite(result == [], [0.0], result)",
            "not done and i < 10",
            "-x ** 2",
            "xs[1:]",
            "(a, b)",
            "'-' * (h - i)",
        ] {
            let expr = parse_expression(src).unwrap();
            let printed = expr_to_string(&expr);
            let reparsed = parse_expression(&printed).unwrap();
            assert_eq!(expr, reparsed, "round-trip failed for `{src}` -> `{printed}`");
        }
    }

    #[test]
    fn program_round_trip() {
        let src = "\
def computeDeriv(poly):
    result = []
    for e in range(1, len(poly)):
        result.append(float(poly[e] * e))
    if result == []:
        return [0.0]
    else:
        return result
";
        let prog = parse_program(src).unwrap();
        let printed = program_to_string(&prog);
        let reparsed = parse_program(&printed).unwrap();
        assert_eq!(prog, reparsed);
    }

    #[test]
    fn elif_is_rendered_compactly() {
        let src = "\
def sign(x):
    if x > 0:
        return 1
    elif x == 0:
        return 0
    else:
        return -1
";
        let prog = parse_program(src).unwrap();
        let printed = program_to_string(&prog);
        assert!(printed.contains("elif x == 0:"), "printed:\n{printed}");
        let reparsed = parse_program(&printed).unwrap();
        assert_eq!(prog, reparsed);
    }

    #[test]
    fn structural_hash_ignores_formatting_but_not_structure() {
        let base = parse_program("def f(x):\n    return x + 1\n").unwrap();
        let reformatted = parse_program("def f(x):\n\n    # comment\n    return (x + 1)\n").unwrap();
        let renamed = parse_program("def f(y):\n    return y + 1\n").unwrap();
        let different = parse_program("def f(x):\n    return 1 + x\n").unwrap();
        assert_eq!(base.structural_hash(), reformatted.structural_hash());
        assert_ne!(base.structural_hash(), renamed.structural_hash());
        assert_ne!(base.structural_hash(), different.structural_hash());
    }

    #[test]
    fn parenthesisation_preserves_semantics() {
        let expr = parse_expression("(a + b) * c").unwrap();
        assert_eq!(expr_to_string(&expr), "(a + b) * c");
        let expr2 = parse_expression("a + b * c").unwrap();
        assert_eq!(expr_to_string(&expr2), "a + b * c");
    }
}
