//! Indentation-aware lexer for MiniPy source code.
//!
//! The lexer follows the usual Python layout rules: physical lines are turned
//! into logical lines terminated by [`TokenKind::Newline`], and changes of
//! leading whitespace emit [`TokenKind::Indent`] / [`TokenKind::Dedent`]
//! tokens. Blank lines and comment-only lines are ignored. Newlines inside
//! parentheses or brackets are ignored as well, so multi-line expressions work.

use crate::error::ParseError;
use crate::token::{Token, TokenKind};

/// Tokenises MiniPy `source` into a vector of tokens terminated by
/// [`TokenKind::Eof`].
///
/// # Errors
///
/// Returns a [`ParseError`] for malformed numbers, unterminated strings,
/// inconsistent indentation or unexpected characters.
pub fn tokenize(source: &str) -> Result<Vec<Token>, ParseError> {
    Lexer::new(source).run()
}

struct Lexer<'src> {
    chars: Vec<char>,
    pos: usize,
    line: u32,
    tokens: Vec<Token>,
    indents: Vec<usize>,
    paren_depth: usize,
    _source: &'src str,
}

impl<'src> Lexer<'src> {
    fn new(source: &'src str) -> Self {
        Lexer {
            chars: source.chars().collect(),
            pos: 0,
            line: 1,
            tokens: Vec::new(),
            indents: vec![0],
            paren_depth: 0,
            _source: source,
        }
    }

    fn peek(&self) -> Option<char> {
        self.chars.get(self.pos).copied()
    }

    fn peek_at(&self, offset: usize) -> Option<char> {
        self.chars.get(self.pos + offset).copied()
    }

    fn bump(&mut self) -> Option<char> {
        let c = self.peek();
        if c.is_some() {
            self.pos += 1;
        }
        c
    }

    fn push(&mut self, kind: TokenKind) {
        self.tokens.push(Token::new(kind, self.line));
    }

    fn run(mut self) -> Result<Vec<Token>, ParseError> {
        loop {
            // At the start of a logical line: measure indentation.
            if self.paren_depth == 0 {
                let indent = self.measure_indentation();
                if self.peek().is_none() {
                    break;
                }
                self.handle_indentation(indent)?;
            }
            // Lex the rest of the line.
            self.lex_line()?;
            if self.peek().is_none() {
                break;
            }
        }
        // Close any open blocks.
        while self.indents.len() > 1 {
            self.indents.pop();
            self.push(TokenKind::Dedent);
        }
        self.push(TokenKind::Eof);
        Ok(self.tokens)
    }

    /// Skips blank lines and comment lines, returning the indentation (in
    /// columns, tabs counted as 4) of the first non-blank line.
    fn measure_indentation(&mut self) -> usize {
        loop {
            let mut width = 0usize;
            let start = self.pos;
            while let Some(c) = self.peek() {
                match c {
                    ' ' => {
                        width += 1;
                        self.pos += 1;
                    }
                    '\t' => {
                        width += 4;
                        self.pos += 1;
                    }
                    _ => break,
                }
            }
            match self.peek() {
                Some('\n') => {
                    self.pos += 1;
                    self.line += 1;
                    continue;
                }
                Some('\r') => {
                    self.pos += 1;
                    continue;
                }
                Some('#') => {
                    while let Some(c) = self.peek() {
                        if c == '\n' {
                            break;
                        }
                        self.pos += 1;
                    }
                    continue;
                }
                None => {
                    let _ = start;
                    return width;
                }
                _ => return width,
            }
        }
    }

    fn handle_indentation(&mut self, indent: usize) -> Result<(), ParseError> {
        let current = *self.indents.last().expect("indent stack is never empty");
        if indent > current {
            self.indents.push(indent);
            self.push(TokenKind::Indent);
        } else if indent < current {
            while indent < *self.indents.last().expect("indent stack is never empty") {
                self.indents.pop();
                self.push(TokenKind::Dedent);
            }
            if indent != *self.indents.last().expect("indent stack is never empty") {
                return Err(ParseError::new(self.line, "inconsistent indentation"));
            }
        }
        Ok(())
    }

    fn lex_line(&mut self) -> Result<(), ParseError> {
        loop {
            match self.peek() {
                None => return Ok(()),
                Some('\n') => {
                    self.pos += 1;
                    if self.paren_depth == 0 {
                        self.push(TokenKind::Newline);
                        self.line += 1;
                        return Ok(());
                    }
                    self.line += 1;
                }
                Some('\r') => {
                    self.pos += 1;
                }
                Some(' ') | Some('\t') => {
                    self.pos += 1;
                }
                Some('#') => {
                    while let Some(c) = self.peek() {
                        if c == '\n' {
                            break;
                        }
                        self.pos += 1;
                    }
                }
                Some(c) if c.is_ascii_digit() => self.lex_number()?,
                Some('.') if self.peek_at(1).map(|c| c.is_ascii_digit()).unwrap_or(false) => {
                    self.lex_number()?
                }
                Some(c) if c.is_alphabetic() || c == '_' => self.lex_name(),
                Some('"') | Some('\'') => self.lex_string()?,
                Some(_) => self.lex_operator()?,
            }
        }
    }

    fn lex_number(&mut self) -> Result<(), ParseError> {
        let start = self.pos;
        let mut is_float = false;
        while let Some(c) = self.peek() {
            if c.is_ascii_digit() {
                self.pos += 1;
            } else if c == '.' && !is_float && self.peek_at(1).map(|n| n != '.').unwrap_or(true) {
                is_float = true;
                self.pos += 1;
            } else if (c == 'e' || c == 'E')
                && self.peek_at(1).map(|n| n.is_ascii_digit() || n == '+' || n == '-').unwrap_or(false)
            {
                is_float = true;
                self.pos += 2;
                while self.peek().map(|c| c.is_ascii_digit()).unwrap_or(false) {
                    self.pos += 1;
                }
                break;
            } else {
                break;
            }
        }
        let text: String = self.chars[start..self.pos].iter().collect();
        if is_float {
            let value: f64 = text
                .parse()
                .map_err(|_| ParseError::new(self.line, format!("invalid float literal `{text}`")))?;
            self.push(TokenKind::Float(value));
        } else {
            let value: i64 = text
                .parse()
                .map_err(|_| ParseError::new(self.line, format!("invalid integer literal `{text}`")))?;
            self.push(TokenKind::Int(value));
        }
        Ok(())
    }

    fn lex_name(&mut self) {
        let start = self.pos;
        while let Some(c) = self.peek() {
            if c.is_alphanumeric() || c == '_' {
                self.pos += 1;
            } else {
                break;
            }
        }
        let text: String = self.chars[start..self.pos].iter().collect();
        match TokenKind::keyword(&text) {
            Some(kw) => self.push(kw),
            None => self.push(TokenKind::Name(text)),
        }
    }

    fn lex_string(&mut self) -> Result<(), ParseError> {
        let quote = self.bump().expect("caller checked a quote is present");
        let mut value = String::new();
        loop {
            match self.bump() {
                None | Some('\n') => return Err(ParseError::new(self.line, "unterminated string literal")),
                Some('\\') => match self.bump() {
                    Some('n') => value.push('\n'),
                    Some('t') => value.push('\t'),
                    Some('\\') => value.push('\\'),
                    Some('\'') => value.push('\''),
                    Some('"') => value.push('"'),
                    Some(other) => {
                        value.push('\\');
                        value.push(other);
                    }
                    None => return Err(ParseError::new(self.line, "unterminated string literal")),
                },
                Some(c) if c == quote => break,
                Some(c) => value.push(c),
            }
        }
        self.push(TokenKind::Str(value));
        Ok(())
    }

    fn lex_operator(&mut self) -> Result<(), ParseError> {
        let c = self.bump().expect("caller checked a character is present");
        let next = self.peek();
        let kind = match (c, next) {
            ('*', Some('*')) => {
                self.pos += 1;
                TokenKind::DoubleStar
            }
            ('*', Some('=')) => {
                self.pos += 1;
                TokenKind::StarAssign
            }
            ('*', _) => TokenKind::Star,
            ('/', Some('/')) => {
                self.pos += 1;
                TokenKind::DoubleSlash
            }
            ('/', Some('=')) => {
                self.pos += 1;
                TokenKind::SlashAssign
            }
            ('/', _) => TokenKind::Slash,
            ('+', Some('=')) => {
                self.pos += 1;
                TokenKind::PlusAssign
            }
            ('+', _) => TokenKind::Plus,
            ('-', Some('=')) => {
                self.pos += 1;
                TokenKind::MinusAssign
            }
            ('-', _) => TokenKind::Minus,
            ('%', Some('=')) => {
                self.pos += 1;
                TokenKind::PercentAssign
            }
            ('%', _) => TokenKind::Percent,
            ('=', Some('=')) => {
                self.pos += 1;
                TokenKind::EqEq
            }
            ('=', _) => TokenKind::Assign,
            ('!', Some('=')) => {
                self.pos += 1;
                TokenKind::NotEq
            }
            ('<', Some('=')) => {
                self.pos += 1;
                TokenKind::Le
            }
            ('<', Some('>')) => {
                self.pos += 1;
                TokenKind::NotEq
            }
            ('<', _) => TokenKind::Lt,
            ('>', Some('=')) => {
                self.pos += 1;
                TokenKind::Ge
            }
            ('>', _) => TokenKind::Gt,
            ('(', _) => {
                self.paren_depth += 1;
                TokenKind::LParen
            }
            (')', _) => {
                self.paren_depth = self.paren_depth.saturating_sub(1);
                TokenKind::RParen
            }
            ('[', _) => {
                self.paren_depth += 1;
                TokenKind::LBracket
            }
            (']', _) => {
                self.paren_depth = self.paren_depth.saturating_sub(1);
                TokenKind::RBracket
            }
            (',', _) => TokenKind::Comma,
            (':', _) => TokenKind::Colon,
            ('.', _) => TokenKind::Dot,
            (other, _) => return Err(ParseError::new(self.line, format!("unexpected character `{other}`"))),
        };
        self.push(kind);
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::token::TokenKind as T;

    fn kinds(src: &str) -> Vec<T> {
        tokenize(src).unwrap().into_iter().map(|t| t.kind).collect()
    }

    #[test]
    fn simple_assignment() {
        assert_eq!(
            kinds("x = 1 + 2.5\n"),
            vec![T::Name("x".into()), T::Assign, T::Int(1), T::Plus, T::Float(2.5), T::Newline, T::Eof]
        );
    }

    #[test]
    fn indentation_produces_indent_dedent() {
        let toks = kinds("if x:\n    y = 1\nz = 2\n");
        assert!(toks.contains(&T::Indent));
        assert!(toks.contains(&T::Dedent));
        let indent_pos = toks.iter().position(|t| *t == T::Indent).unwrap();
        let dedent_pos = toks.iter().position(|t| *t == T::Dedent).unwrap();
        assert!(indent_pos < dedent_pos);
    }

    #[test]
    fn nested_blocks_close_at_eof() {
        let toks = kinds("def f(x):\n    if x:\n        return 1\n");
        let dedents = toks.iter().filter(|t| **t == T::Dedent).count();
        assert_eq!(dedents, 2);
        assert_eq!(*toks.last().unwrap(), T::Eof);
    }

    #[test]
    fn comments_and_blank_lines_are_skipped() {
        let toks = kinds("# a comment\n\nx = 1  # trailing\n\n");
        assert_eq!(toks, vec![T::Name("x".into()), T::Assign, T::Int(1), T::Newline, T::Eof]);
    }

    #[test]
    fn newlines_inside_brackets_are_ignored() {
        let toks = kinds("x = [1,\n     2]\n");
        assert_eq!(toks.iter().filter(|t| **t == T::Newline).count(), 1);
    }

    #[test]
    fn string_escapes() {
        assert_eq!(
            kinds("s = \"a\\nb\"\n"),
            vec![T::Name("s".into()), T::Assign, T::Str("a\nb".into()), T::Newline, T::Eof]
        );
    }

    #[test]
    fn keywords_are_recognised() {
        let toks = kinds("for i in range(3):\n    pass\n");
        assert_eq!(toks[0], T::For);
        assert_eq!(toks[2], T::In);
    }

    #[test]
    fn operators() {
        assert_eq!(kinds("a //= 2\n")[0..2].to_vec(), vec![T::Name("a".into()), T::DoubleSlash]);
        assert_eq!(
            kinds("a ** b != c\n"),
            vec![
                T::Name("a".into()),
                T::DoubleStar,
                T::Name("b".into()),
                T::NotEq,
                T::Name("c".into()),
                T::Newline,
                T::Eof
            ]
        );
    }

    #[test]
    fn inconsistent_indentation_is_an_error() {
        assert!(tokenize("if x:\n        y = 1\n    z = 2\n").is_err());
    }

    #[test]
    fn lines_are_tracked() {
        let toks = tokenize("x = 1\ny = 2\n").unwrap();
        let y_tok = toks.iter().find(|t| t.kind == T::Name("y".into())).unwrap();
        assert_eq!(y_tok.line, 2);
    }
}
