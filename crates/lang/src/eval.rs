//! Pure expression evaluation (the function `⟦·⟧ : E → Σ → D` of
//! Definition 3.4).
//!
//! Expressions are evaluated against a read-only environment mapping variable
//! names to [`Value`]s. Any failure (unknown variable, type error, index out
//! of range, ...) is reported as an [`EvalError`]; the program model maps
//! those to the undefined value `⊥`.

use std::collections::HashMap;

use crate::ast::{BinOp, Expr, Lit, UnOp};
use crate::error::{EvalError, EvalErrorKind};
use crate::value::{ops, Value};

/// A read-only variable environment used during expression evaluation.
pub trait Env {
    /// Looks up the value of `name`, or `None` when the variable is unknown.
    fn lookup(&self, name: &str) -> Option<Value>;

    /// Gives the environment a chance to handle a call to a non-builtin
    /// function (e.g. a helper function defined by the student program).
    ///
    /// The default implementation handles nothing, so unknown calls are
    /// reported as [`EvalErrorKind::UnknownFunction`].
    fn call_function(&self, _name: &str, _args: &[Value]) -> Option<Result<Value, EvalError>> {
        None
    }
}

impl Env for HashMap<String, Value> {
    fn lookup(&self, name: &str) -> Option<Value> {
        self.get(name).cloned()
    }
}

impl<T: Env + ?Sized> Env for &T {
    fn lookup(&self, name: &str) -> Option<Value> {
        (**self).lookup(name)
    }

    fn call_function(&self, name: &str, args: &[Value]) -> Option<Result<Value, EvalError>> {
        (**self).call_function(name, args)
    }
}

/// Evaluates `expr` in environment `env`.
///
/// # Errors
///
/// Returns an [`EvalError`] if the expression cannot be evaluated (unknown
/// variable or function, type error, out-of-range index, division by zero,
/// or an operation applied to the undefined value `⊥`).
pub fn eval_expr<E: Env>(expr: &Expr, env: &E) -> Result<Value, EvalError> {
    match expr {
        Expr::Lit(lit) => Ok(eval_lit(lit)),
        Expr::Var(name) => match env.lookup(name) {
            Some(Value::Undef) | None => Err(EvalError::new(EvalErrorKind::UndefinedVariable(name.clone()))),
            Some(value) => Ok(value),
        },
        Expr::List(items) => {
            let values = items.iter().map(|e| eval_expr(e, env)).collect::<Result<Vec<_>, _>>()?;
            Ok(Value::list(values))
        }
        Expr::Tuple(items) => {
            let values = items.iter().map(|e| eval_expr(e, env)).collect::<Result<Vec<_>, _>>()?;
            Ok(Value::tuple(values))
        }
        Expr::Unary(op, inner) => {
            let value = eval_expr(inner, env)?;
            match op {
                UnOp::Neg => ops::neg(&value),
                UnOp::Not => Ok(Value::Bool(!value.truthy()?)),
            }
        }
        Expr::Binary(op, lhs, rhs) => eval_binary(*op, lhs, rhs, env),
        Expr::Index(base, idx) => {
            let base = eval_expr(base, env)?;
            let idx = eval_expr(idx, env)?;
            ops::index(&base, &idx)
        }
        Expr::Slice(base, lo, hi) => {
            let base = eval_expr(base, env)?;
            let lo = lo.as_ref().map(|e| eval_expr(e, env)).transpose()?;
            let hi = hi.as_ref().map(|e| eval_expr(e, env)).transpose()?;
            ops::slice(&base, lo.as_ref(), hi.as_ref())
        }
        Expr::Call(name, args) => eval_call(name, args, env),
        Expr::Method(recv, name, args) => {
            let recv = eval_expr(recv, env)?;
            let args = args.iter().map(|e| eval_expr(e, env)).collect::<Result<Vec<_>, _>>()?;
            eval_method(&recv, name, &args)
        }
    }
}

fn eval_lit(lit: &Lit) -> Value {
    match lit {
        Lit::Int(v) => Value::Int(*v),
        Lit::Float(v) => Value::Float(*v),
        Lit::Str(v) => Value::str(v.as_str()),
        Lit::Bool(v) => Value::Bool(*v),
        Lit::None => Value::None,
    }
}

fn eval_binary<E: Env>(op: BinOp, lhs: &Expr, rhs: &Expr, env: &E) -> Result<Value, EvalError> {
    // `and` / `or` are short-circuiting and return one of the operands, as in
    // Python (`result or [0.0]`).
    match op {
        BinOp::And => {
            let left = eval_expr(lhs, env)?;
            if left.truthy()? {
                eval_expr(rhs, env)
            } else {
                Ok(left)
            }
        }
        BinOp::Or => {
            let left = eval_expr(lhs, env)?;
            if left.truthy()? {
                Ok(left)
            } else {
                eval_expr(rhs, env)
            }
        }
        _ => {
            let a = eval_expr(lhs, env)?;
            let b = eval_expr(rhs, env)?;
            apply_binop(op, &a, &b)
        }
    }
}

/// Applies a non-short-circuiting binary operator to two values.
pub fn apply_binop(op: BinOp, a: &Value, b: &Value) -> Result<Value, EvalError> {
    match op {
        BinOp::Add => ops::add(a, b),
        BinOp::Sub => ops::sub(a, b),
        BinOp::Mul => ops::mul(a, b),
        BinOp::Div => ops::div(a, b),
        BinOp::FloorDiv => ops::floor_div(a, b),
        BinOp::Mod => ops::modulo(a, b),
        BinOp::Pow => ops::pow(a, b),
        BinOp::Eq => Ok(Value::Bool(a.py_eq(b))),
        BinOp::Ne => Ok(Value::Bool(!a.py_eq(b))),
        BinOp::Lt => ops::compare("<", a, b),
        BinOp::Le => ops::compare("<=", a, b),
        BinOp::Gt => ops::compare(">", a, b),
        BinOp::Ge => ops::compare(">=", a, b),
        BinOp::And | BinOp::Or => {
            // Without access to the unevaluated operands we fall back to a
            // strict interpretation; callers normally go through
            // `eval_binary` which short-circuits.
            let left = a.truthy()?;
            match op {
                BinOp::And => Ok(if left { b.clone() } else { a.clone() }),
                _ => Ok(if left { a.clone() } else { b.clone() }),
            }
        }
    }
}

fn arity_error(name: &str, expected: &str, actual: usize) -> EvalError {
    EvalError::new(EvalErrorKind::ArityError(format!("{name}() expects {expected} arguments, got {actual}")))
}

fn eval_call<E: Env>(name: &str, args: &[Expr], env: &E) -> Result<Value, EvalError> {
    // `ite` is lazy: only the selected branch is evaluated, mirroring the
    // semantics of the if-then-else statements it encodes.
    if name == "ite" {
        if args.len() != 3 {
            return Err(arity_error("ite", "3", args.len()));
        }
        let cond = eval_expr(&args[0], env)?;
        return if cond.truthy()? { eval_expr(&args[1], env) } else { eval_expr(&args[2], env) };
    }
    let values = args.iter().map(|e| eval_expr(e, env)).collect::<Result<Vec<_>, _>>()?;
    if let Some(result) = env.call_function(name, &values) {
        return result;
    }
    call_builtin(name, &values)
}

/// Calls a builtin function on already-evaluated arguments.
///
/// Besides the Python builtins used by student programs (`range`, `len`,
/// `float`, `int`, `str`, `abs`, `min`, `max`, `sum`, ...), this includes the
/// program-model builtins `head`, `tail`, `store`, `concat` and `append`.
///
/// # Errors
///
/// Returns an [`EvalError`] for unknown functions, arity mismatches or
/// argument type errors.
pub fn call_builtin(name: &str, args: &[Value]) -> Result<Value, EvalError> {
    match name {
        "range" | "xrange" => {
            let ints: Vec<i64> = args
                .iter()
                .map(|v| match v {
                    Value::Int(i) => Ok(*i),
                    Value::Bool(b) => Ok(i64::from(*b)),
                    Value::Float(f) if f.fract() == 0.0 => Ok(*f as i64),
                    other => Err(EvalError::type_error(format!(
                        "range() arguments must be integers, got {}",
                        other.type_name()
                    ))),
                })
                .collect::<Result<_, _>>()?;
            let (start, stop, step) = match ints.len() {
                1 => (0, ints[0], 1),
                2 => (ints[0], ints[1], 1),
                3 => (ints[0], ints[1], ints[2]),
                n => return Err(arity_error("range", "1 to 3", n)),
            };
            if step == 0 {
                return Err(EvalError::other("range() step must not be zero"));
            }
            let mut out = Vec::new();
            let mut i = start;
            if step > 0 {
                while i < stop {
                    out.push(Value::Int(i));
                    i += step;
                }
            } else {
                while i > stop {
                    out.push(Value::Int(i));
                    i += step;
                }
            }
            Ok(Value::list(out))
        }
        "len" => match args {
            [Value::List(v)] | [Value::Tuple(v)] => Ok(Value::Int(v.len() as i64)),
            [Value::Str(s)] => Ok(Value::Int(s.chars().count() as i64)),
            [other] => {
                Err(EvalError::type_error(format!("object of type {} has no len()", other.type_name())))
            }
            _ => Err(arity_error("len", "1", args.len())),
        },
        "float" => match args {
            [v] => match v.as_number() {
                Some(f) => Ok(Value::Float(f)),
                Option::None => match v {
                    Value::Str(s) => s
                        .trim()
                        .parse::<f64>()
                        .map(Value::Float)
                        .map_err(|_| EvalError::type_error("could not convert string to float")),
                    _ => Err(EvalError::type_error(format!(
                        "float() argument must be a number, got {}",
                        v.type_name()
                    ))),
                },
            },
            _ => Err(arity_error("float", "1", args.len())),
        },
        "int" => match args {
            [v] => match v {
                Value::Int(i) => Ok(Value::Int(*i)),
                Value::Bool(b) => Ok(Value::Int(i64::from(*b))),
                Value::Float(f) => Ok(Value::Int(f.trunc() as i64)),
                Value::Str(s) => s
                    .trim()
                    .parse::<i64>()
                    .map(Value::Int)
                    .map_err(|_| EvalError::type_error("invalid literal for int()")),
                _ => Err(EvalError::type_error(format!(
                    "int() argument must be a number, got {}",
                    v.type_name()
                ))),
            },
            _ => Err(arity_error("int", "1", args.len())),
        },
        "str" => match args {
            [v] => Ok(Value::str(v.to_display_string())),
            _ => Err(arity_error("str", "1", args.len())),
        },
        "bool" => match args {
            [v] => Ok(Value::Bool(v.truthy()?)),
            _ => Err(arity_error("bool", "1", args.len())),
        },
        "abs" => match args {
            [Value::Int(i)] => Ok(Value::Int(i.abs())),
            [Value::Float(f)] => Ok(Value::Float(f.abs())),
            [Value::Bool(b)] => Ok(Value::Int(i64::from(*b))),
            [other] => {
                Err(EvalError::type_error(format!("bad operand type for abs(): {}", other.type_name())))
            }
            _ => Err(arity_error("abs", "1", args.len())),
        },
        "min" | "max" => {
            let items: &[Value] = match args {
                [Value::List(v)] | [Value::Tuple(v)] => v,
                _ if args.len() >= 2 => args,
                _ => return Err(arity_error(name, "an iterable or at least 2", args.len())),
            };
            if items.is_empty() {
                return Err(EvalError::other(format!("{name}() of empty sequence")));
            }
            let mut best = items[0].clone();
            for item in &items[1..] {
                let ord =
                    item.py_cmp(&best).ok_or_else(|| EvalError::type_error("values are not comparable"))?;
                let take = if name == "min" { ord.is_lt() } else { ord.is_gt() };
                if take {
                    best = item.clone();
                }
            }
            Ok(best)
        }
        "sum" => match args {
            [Value::List(v)] | [Value::Tuple(v)] => {
                let mut acc = Value::Int(0);
                for item in v.iter() {
                    acc = ops::add(&acc, item)?;
                }
                Ok(acc)
            }
            _ => Err(arity_error("sum", "1 (a sequence)", args.len())),
        },
        "round" => match args {
            [v] => match v.as_number() {
                Some(f) => Ok(Value::Float(f.round())),
                Option::None => Err(EvalError::type_error("round() argument must be a number")),
            },
            [v, Value::Int(nd)] => match v.as_number() {
                Some(f) => {
                    let factor = 10f64.powi(*nd as i32);
                    Ok(Value::Float((f * factor).round() / factor))
                }
                Option::None => Err(EvalError::type_error("round() argument must be a number")),
            },
            _ => Err(arity_error("round", "1 or 2", args.len())),
        },
        "sorted" => match args {
            [Value::List(v)] | [Value::Tuple(v)] => {
                let mut out = v.to_vec();
                out.sort_by(|a, b| a.py_cmp(b).unwrap_or(std::cmp::Ordering::Equal));
                Ok(Value::list(out))
            }
            _ => Err(arity_error("sorted", "1 (a sequence)", args.len())),
        },
        "reversed" => match args {
            [Value::List(v)] | [Value::Tuple(v)] => Ok(Value::List(v.iter().rev().cloned().collect())),
            [Value::Str(s)] => Ok(Value::str(s.chars().rev().collect::<String>())),
            _ => Err(arity_error("reversed", "1 (a sequence)", args.len())),
        },
        "list" => match args {
            [] => Ok(Value::list(Vec::new())),
            [Value::List(v)] | [Value::Tuple(v)] => Ok(Value::List(v.clone())),
            [Value::Str(s)] => Ok(Value::List(s.chars().map(|c| Value::str(c.to_string())).collect())),
            _ => Err(arity_error("list", "0 or 1", args.len())),
        },
        "tuple" => match args {
            [] => Ok(Value::tuple(Vec::new())),
            [Value::List(v)] | [Value::Tuple(v)] => Ok(Value::Tuple(v.clone())),
            _ => Err(arity_error("tuple", "0 or 1", args.len())),
        },
        // --- Program-model builtins -------------------------------------
        "append" => match args {
            [Value::List(v), item] => {
                Ok(Value::List(v.iter().cloned().chain(std::iter::once(item.clone())).collect()))
            }
            [other, _] => {
                Err(EvalError::type_error(format!("append() expects a list, got {}", other.type_name())))
            }
            _ => Err(arity_error("append", "2", args.len())),
        },
        "head" => match args {
            [Value::List(v)] | [Value::Tuple(v)] => {
                v.first().cloned().ok_or_else(|| EvalError::index_error("head of empty sequence"))
            }
            [Value::Str(s)] => s
                .chars()
                .next()
                .map(|c| Value::str(c.to_string()))
                .ok_or_else(|| EvalError::index_error("head of empty string")),
            _ => Err(arity_error("head", "1 (a sequence)", args.len())),
        },
        "tail" => match args {
            [Value::List(v)] => Ok(Value::List(v.iter().skip(1).cloned().collect())),
            [Value::Tuple(v)] => Ok(Value::Tuple(v.iter().skip(1).cloned().collect())),
            [Value::Str(s)] => Ok(Value::str(s.chars().skip(1).collect::<String>())),
            _ => Err(arity_error("tail", "1 (a sequence)", args.len())),
        },
        "store" => match args {
            [base, idx, value] => ops::store(base, idx, value),
            _ => Err(arity_error("store", "3", args.len())),
        },
        "concat" => {
            let mut out = String::new();
            for arg in args {
                out.push_str(&arg.to_display_string());
            }
            Ok(Value::str(out))
        }
        "ite" => match args {
            [cond, then, otherwise] => {
                if cond.truthy()? {
                    Ok(then.clone())
                } else {
                    Ok(otherwise.clone())
                }
            }
            _ => Err(arity_error("ite", "3", args.len())),
        },
        other => Err(EvalError::new(EvalErrorKind::UnknownFunction(other.to_owned()))),
    }
}

fn eval_method(recv: &Value, name: &str, args: &[Value]) -> Result<Value, EvalError> {
    match (recv, name) {
        (Value::List(_), "append") => {
            if args.len() != 1 {
                return Err(arity_error("append", "1", args.len()));
            }
            call_builtin("append", &[recv.clone(), args[0].clone()])
        }
        (Value::List(v), "pop") => {
            if !args.is_empty() {
                return Err(arity_error("pop", "0", args.len()));
            }
            if v.is_empty() {
                return Err(EvalError::index_error("pop from empty list"));
            }
            Ok(Value::list(v[..v.len() - 1].to_vec()))
        }
        (Value::List(v), "index") => match args {
            [needle] => v
                .iter()
                .position(|x| x.py_eq(needle))
                .map(|i| Value::Int(i as i64))
                .ok_or_else(|| EvalError::other("value not in list")),
            _ => Err(arity_error("index", "1", args.len())),
        },
        (Value::List(v) | Value::Tuple(v), "count") => match args {
            [needle] => Ok(Value::Int(v.iter().filter(|x| x.py_eq(needle)).count() as i64)),
            _ => Err(arity_error("count", "1", args.len())),
        },
        _ => Err(EvalError::type_error(format!("{} object has no usable method `{name}`", recv.type_name()))),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse_expression;

    fn env(pairs: &[(&str, Value)]) -> HashMap<String, Value> {
        pairs.iter().map(|(k, v)| ((*k).to_owned(), v.clone())).collect()
    }

    fn eval(src: &str, e: &HashMap<String, Value>) -> Result<Value, EvalError> {
        eval_expr(&parse_expression(src).unwrap(), e)
    }

    #[test]
    fn arithmetic_and_precedence() {
        let e = env(&[]);
        assert_eq!(eval("1 + 2 * 3", &e).unwrap(), Value::Int(7));
        assert_eq!(eval("2 ** 3 ** 2", &e).unwrap(), Value::Int(512));
        assert_eq!(eval("7 // 2", &e).unwrap(), Value::Int(3));
        assert_eq!(eval("7 % 3", &e).unwrap(), Value::Int(1));
    }

    #[test]
    fn the_papers_loop_body_expression() {
        // append(result, float(poly[e]*e)) on the paper's example input.
        let e = env(&[
            ("poly", Value::list(vec![Value::Float(6.3), Value::Float(7.6), Value::Float(12.14)])),
            ("result", Value::list(vec![])),
            ("e", Value::Int(1)),
        ]);
        let v = eval("result + [float(poly[e]*e)]", &e).unwrap();
        assert_eq!(v, Value::list(vec![Value::Float(7.6)]));
        let v2 = eval("result + [float(e)*poly[e]]", &e).unwrap();
        assert_eq!(v, v2);
    }

    #[test]
    fn or_returns_operand_like_python() {
        let e = env(&[("result", Value::list(vec![]))]);
        assert_eq!(eval("result or [0.0]", &e).unwrap(), Value::list(vec![Value::Float(0.0)]));
        let e2 = env(&[("result", Value::list(vec![Value::Int(1)]))]);
        assert_eq!(eval("result or [0.0]", &e2).unwrap(), Value::list(vec![Value::Int(1)]));
    }

    #[test]
    fn and_short_circuits() {
        let e = env(&[("xs", Value::list(vec![]))]);
        // Without short-circuiting `xs[0]` would raise an index error.
        assert_eq!(eval("len(xs) > 0 and xs[0] == 1", &e).unwrap(), Value::Bool(false));
    }

    #[test]
    fn ite_is_lazy() {
        let e = env(&[("xs", Value::list(vec![]))]);
        let expr = Expr::ite(
            parse_expression("len(xs) == 0").unwrap(),
            parse_expression("[0.0]").unwrap(),
            parse_expression("xs[0]").unwrap(),
        );
        assert_eq!(eval_expr(&expr, &e).unwrap(), Value::list(vec![Value::Float(0.0)]));
    }

    #[test]
    fn range_variants() {
        let e = env(&[]);
        assert_eq!(
            eval("range(3)", &e).unwrap(),
            Value::list(vec![Value::Int(0), Value::Int(1), Value::Int(2)])
        );
        assert_eq!(
            eval("range(1, 4)", &e).unwrap(),
            Value::list(vec![Value::Int(1), Value::Int(2), Value::Int(3)])
        );
        assert_eq!(
            eval("range(0, 6, 2)", &e).unwrap(),
            Value::list(vec![Value::Int(0), Value::Int(2), Value::Int(4)])
        );
        assert_eq!(eval("xrange(2)", &e).unwrap(), eval("range(2)", &e).unwrap());
        assert_eq!(
            eval("range(5, 0, -2)", &e).unwrap(),
            Value::list(vec![Value::Int(5), Value::Int(3), Value::Int(1)])
        );
    }

    #[test]
    fn undefined_variables_error() {
        let e = env(&[]);
        assert!(eval("x + 1", &e).is_err());
        let e2 = env(&[("x", Value::Undef)]);
        assert!(eval("x + 1", &e2).is_err());
    }

    #[test]
    fn model_builtins() {
        let e = env(&[("it", Value::list(vec![Value::Int(1), Value::Int(2)]))]);
        assert_eq!(eval("head(it)", &e).unwrap(), Value::Int(1));
        assert_eq!(eval("tail(it)", &e).unwrap(), Value::list(vec![Value::Int(2)]));
        assert_eq!(eval("len(it) > 0", &e).unwrap(), Value::Bool(true));
        assert_eq!(eval("store(it, 0, 9)", &e).unwrap(), Value::list(vec![Value::Int(9), Value::Int(2)]));
        assert_eq!(eval("concat('a', 1, 'b')", &e).unwrap(), Value::Str("a1b".into()));
    }

    #[test]
    fn method_calls_evaluate_functionally() {
        let e = env(&[("xs", Value::list(vec![Value::Int(1)]))]);
        assert_eq!(eval("xs.count(1)", &e).unwrap(), Value::Int(1));
        assert!(eval("xs.length()", &e).is_err());
    }

    #[test]
    fn string_builtins() {
        let e = env(&[]);
        assert_eq!(eval("str(12) + '!'", &e).unwrap(), Value::Str("12!".into()));
        assert_eq!(eval("len('abc')", &e).unwrap(), Value::Int(3));
        assert_eq!(eval("int('42')", &e).unwrap(), Value::Int(42));
        assert_eq!(eval("'ab' * 2", &e).unwrap(), Value::Str("abab".into()));
    }

    #[test]
    fn aggregate_builtins() {
        let e = env(&[("xs", Value::list(vec![Value::Int(3), Value::Int(1), Value::Int(2)]))]);
        assert_eq!(eval("sum(xs)", &e).unwrap(), Value::Int(6));
        assert_eq!(eval("min(xs)", &e).unwrap(), Value::Int(1));
        assert_eq!(eval("max(xs)", &e).unwrap(), Value::Int(3));
        assert_eq!(eval("max(1, 5)", &e).unwrap(), Value::Int(5));
        assert_eq!(
            eval("sorted(xs)", &e).unwrap(),
            Value::list(vec![Value::Int(1), Value::Int(2), Value::Int(3)])
        );
    }

    #[test]
    fn unknown_function_is_an_error() {
        let e = env(&[]);
        assert!(matches!(eval("frobnicate(1)", &e).unwrap_err().kind, EvalErrorKind::UnknownFunction(_)));
    }
}
