//! Recursive-descent parser for MiniPy.
//!
//! The grammar is a small subset of Python sufficient for introductory
//! programming assignments: function definitions, assignments (including
//! augmented and subscript assignments), `if`/`elif`/`else`, `for`, `while`,
//! `return`, `print`, `pass`, `break`, `continue`, and the usual expression
//! syntax (arithmetic, comparisons, boolean operators, calls, method calls,
//! indexing, slicing, list and tuple displays).

use crate::ast::{BinOp, Expr, Function, Lit, SourceProgram, Stmt, Target, UnOp};
use crate::error::ParseError;
use crate::lexer::tokenize;
use crate::token::{Token, TokenKind};

/// Parses a full MiniPy source file into a [`SourceProgram`].
///
/// Top-level statements outside of a function definition are collected into an
/// implicit function called `__main__` with no parameters, which makes simple
/// script-style submissions parseable as well.
///
/// # Errors
///
/// Returns a [`ParseError`] describing the first syntax error found.
pub fn parse_program(source: &str) -> Result<SourceProgram, ParseError> {
    let tokens = tokenize(source)?;
    let mut parser = Parser::new(tokens);
    parser.parse_program()
}

/// Parses a single expression (useful in tests and for building rewrite
/// rules).
///
/// # Errors
///
/// Returns a [`ParseError`] if the source is not a single well-formed
/// expression.
pub fn parse_expression(source: &str) -> Result<Expr, ParseError> {
    let tokens = tokenize(source)?;
    let mut parser = Parser::new(tokens);
    let expr = parser.parse_expr()?;
    parser.skip_newlines();
    parser.expect_eof()?;
    Ok(expr)
}

struct Parser {
    tokens: Vec<Token>,
    pos: usize,
}

impl Parser {
    fn new(tokens: Vec<Token>) -> Self {
        Parser { tokens, pos: 0 }
    }

    fn peek(&self) -> &TokenKind {
        &self.tokens[self.pos.min(self.tokens.len() - 1)].kind
    }

    fn peek_line(&self) -> u32 {
        self.tokens[self.pos.min(self.tokens.len() - 1)].line
    }

    fn bump(&mut self) -> TokenKind {
        let tok = self.tokens[self.pos.min(self.tokens.len() - 1)].kind.clone();
        if self.pos < self.tokens.len() - 1 {
            self.pos += 1;
        }
        tok
    }

    fn check(&self, kind: &TokenKind) -> bool {
        self.peek() == kind
    }

    fn eat(&mut self, kind: &TokenKind) -> bool {
        if self.check(kind) {
            self.bump();
            true
        } else {
            false
        }
    }

    fn expect(&mut self, kind: &TokenKind) -> Result<(), ParseError> {
        if self.eat(kind) {
            Ok(())
        } else {
            Err(ParseError::new(self.peek_line(), format!("expected {kind}, found {}", self.peek())))
        }
    }

    fn expect_eof(&mut self) -> Result<(), ParseError> {
        if self.check(&TokenKind::Eof) {
            Ok(())
        } else {
            Err(ParseError::new(self.peek_line(), format!("expected end of input, found {}", self.peek())))
        }
    }

    fn skip_newlines(&mut self) {
        while self.check(&TokenKind::Newline) {
            self.bump();
        }
    }

    fn parse_program(&mut self) -> Result<SourceProgram, ParseError> {
        let mut functions = Vec::new();
        let mut top_level = Vec::new();
        loop {
            self.skip_newlines();
            if self.check(&TokenKind::Eof) {
                break;
            }
            if self.check(&TokenKind::Def) {
                functions.push(self.parse_function()?);
            } else if matches!(self.peek(), TokenKind::Import) {
                // `import` lines are accepted and ignored: student submissions
                // frequently import `math` even when they do not need it.
                while !self.check(&TokenKind::Newline) && !self.check(&TokenKind::Eof) {
                    self.bump();
                }
            } else if matches!(self.peek(), TokenKind::Class | TokenKind::Lambda | TokenKind::Global) {
                return Err(ParseError::new(
                    self.peek_line(),
                    format!("unsupported construct {}", self.peek()),
                ));
            } else {
                top_level.push(self.parse_statement()?);
            }
        }
        if !top_level.is_empty() {
            let line = top_level[0].line();
            functions.push(Function {
                name: "__main__".to_owned(),
                params: Vec::new(),
                body: top_level,
                line,
            });
        }
        Ok(SourceProgram { functions })
    }

    fn parse_function(&mut self) -> Result<Function, ParseError> {
        let line = self.peek_line();
        self.expect(&TokenKind::Def)?;
        let name = self.parse_name()?;
        self.expect(&TokenKind::LParen)?;
        let mut params = Vec::new();
        if !self.check(&TokenKind::RParen) {
            loop {
                params.push(self.parse_name()?);
                if !self.eat(&TokenKind::Comma) {
                    break;
                }
            }
        }
        self.expect(&TokenKind::RParen)?;
        self.expect(&TokenKind::Colon)?;
        let body = self.parse_block()?;
        Ok(Function { name, params, body, line })
    }

    fn parse_name(&mut self) -> Result<String, ParseError> {
        match self.bump() {
            TokenKind::Name(name) => Ok(name),
            other => Err(ParseError::new(self.peek_line(), format!("expected identifier, found {other}"))),
        }
    }

    /// Parses an indented block: `NEWLINE INDENT stmt+ DEDENT`, or a single
    /// inline statement on the same line (`if x: return 1`).
    fn parse_block(&mut self) -> Result<Vec<Stmt>, ParseError> {
        if !self.check(&TokenKind::Newline) {
            // Inline (suite on the same line).
            let stmt = self.parse_simple_statement()?;
            self.eat(&TokenKind::Newline);
            return Ok(vec![stmt]);
        }
        self.skip_newlines();
        self.expect(&TokenKind::Indent)?;
        let mut stmts = Vec::new();
        loop {
            self.skip_newlines();
            if self.eat(&TokenKind::Dedent) {
                break;
            }
            if self.check(&TokenKind::Eof) {
                break;
            }
            stmts.push(self.parse_statement()?);
        }
        if stmts.is_empty() {
            return Err(ParseError::new(self.peek_line(), "empty block"));
        }
        Ok(stmts)
    }

    fn parse_statement(&mut self) -> Result<Stmt, ParseError> {
        match self.peek() {
            TokenKind::If => self.parse_if(),
            TokenKind::While => self.parse_while(),
            TokenKind::For => self.parse_for(),
            TokenKind::Def | TokenKind::Class | TokenKind::Lambda | TokenKind::Global => {
                Err(ParseError::new(self.peek_line(), format!("unsupported construct {}", self.peek())))
            }
            _ => {
                let stmt = self.parse_simple_statement()?;
                if !self.check(&TokenKind::Eof) && !self.check(&TokenKind::Dedent) {
                    self.expect(&TokenKind::Newline)?;
                }
                Ok(stmt)
            }
        }
    }

    fn parse_if(&mut self) -> Result<Stmt, ParseError> {
        let line = self.peek_line();
        self.bump(); // `if` or `elif`
        let cond = self.parse_expr()?;
        self.expect(&TokenKind::Colon)?;
        let then_body = self.parse_block()?;
        self.skip_newlines();
        let else_body = if self.check(&TokenKind::Elif) {
            vec![self.parse_if()?]
        } else if self.eat(&TokenKind::Else) {
            self.expect(&TokenKind::Colon)?;
            self.parse_block()?
        } else {
            Vec::new()
        };
        Ok(Stmt::If { cond, then_body, else_body, line })
    }

    fn parse_while(&mut self) -> Result<Stmt, ParseError> {
        let line = self.peek_line();
        self.expect(&TokenKind::While)?;
        let cond = self.parse_expr()?;
        self.expect(&TokenKind::Colon)?;
        let body = self.parse_block()?;
        Ok(Stmt::While { cond, body, line })
    }

    fn parse_for(&mut self) -> Result<Stmt, ParseError> {
        let line = self.peek_line();
        self.expect(&TokenKind::For)?;
        let var = self.parse_name()?;
        self.expect(&TokenKind::In)?;
        let iter = self.parse_expr()?;
        self.expect(&TokenKind::Colon)?;
        let body = self.parse_block()?;
        Ok(Stmt::For { var, iter, body, line })
    }

    fn parse_simple_statement(&mut self) -> Result<Stmt, ParseError> {
        let line = self.peek_line();
        match self.peek() {
            TokenKind::Return => {
                self.bump();
                let value = if self.check(&TokenKind::Newline)
                    || self.check(&TokenKind::Eof)
                    || self.check(&TokenKind::Dedent)
                {
                    None
                } else {
                    Some(self.parse_expr_list()?)
                };
                Ok(Stmt::Return { value, line })
            }
            TokenKind::Print => {
                self.bump();
                let mut args = Vec::new();
                if !self.check(&TokenKind::Newline)
                    && !self.check(&TokenKind::Eof)
                    && !self.check(&TokenKind::Dedent)
                {
                    args.push(self.parse_expr()?);
                    while self.eat(&TokenKind::Comma) {
                        args.push(self.parse_expr()?);
                    }
                }
                // `print(a, b)` parses as a single tuple argument; flatten it
                // so both Python-2 and Python-3 style calls behave the same.
                if args.len() == 1 {
                    if let Expr::Tuple(items) = &args[0] {
                        args = items.clone();
                    }
                }
                Ok(Stmt::Print { args, line })
            }
            TokenKind::Pass => {
                self.bump();
                Ok(Stmt::Pass { line })
            }
            TokenKind::Break => {
                self.bump();
                Ok(Stmt::Break { line })
            }
            TokenKind::Continue => {
                self.bump();
                Ok(Stmt::Continue { line })
            }
            TokenKind::Lambda | TokenKind::Class | TokenKind::Global | TokenKind::Import => {
                Err(ParseError::new(line, format!("unsupported construct {}", self.peek())))
            }
            _ => self.parse_assignment_or_expr(line),
        }
    }

    fn parse_assignment_or_expr(&mut self, line: u32) -> Result<Stmt, ParseError> {
        let expr = self.parse_expr_list()?;
        let aug = match self.peek() {
            TokenKind::PlusAssign => Some(BinOp::Add),
            TokenKind::MinusAssign => Some(BinOp::Sub),
            TokenKind::StarAssign => Some(BinOp::Mul),
            TokenKind::SlashAssign => Some(BinOp::Div),
            TokenKind::PercentAssign => Some(BinOp::Mod),
            _ => None,
        };
        if aug.is_some() || self.check(&TokenKind::Assign) {
            self.bump();
            let value = self.parse_expr_list()?;
            let target = match expr {
                Expr::Var(name) => Target::Name(name),
                Expr::Index(base, idx) => match *base {
                    Expr::Var(name) => Target::Index(name, *idx),
                    _ => {
                        return Err(ParseError::new(line, "only simple variables can be subscript-assigned"))
                    }
                },
                _ => return Err(ParseError::new(line, "invalid assignment target")),
            };
            Ok(Stmt::Assign { target, op: aug, value, line })
        } else {
            Ok(Stmt::ExprStmt { expr, line })
        }
    }

    /// Parses a comma-separated expression list; more than one element forms
    /// a tuple (as in `return a, b`).
    fn parse_expr_list(&mut self) -> Result<Expr, ParseError> {
        let first = self.parse_expr()?;
        if !self.check(&TokenKind::Comma) {
            return Ok(first);
        }
        let mut items = vec![first];
        while self.eat(&TokenKind::Comma) {
            if self.check(&TokenKind::Newline)
                || self.check(&TokenKind::Eof)
                || self.check(&TokenKind::Assign)
                || self.check(&TokenKind::RParen)
            {
                break;
            }
            items.push(self.parse_expr()?);
        }
        Ok(Expr::Tuple(items))
    }

    /// `expr := or_expr`
    fn parse_expr(&mut self) -> Result<Expr, ParseError> {
        self.parse_or()
    }

    fn parse_or(&mut self) -> Result<Expr, ParseError> {
        let mut lhs = self.parse_and()?;
        while self.eat(&TokenKind::Or) {
            let rhs = self.parse_and()?;
            lhs = Expr::bin(BinOp::Or, lhs, rhs);
        }
        Ok(lhs)
    }

    fn parse_and(&mut self) -> Result<Expr, ParseError> {
        let mut lhs = self.parse_not()?;
        while self.eat(&TokenKind::And) {
            let rhs = self.parse_not()?;
            lhs = Expr::bin(BinOp::And, lhs, rhs);
        }
        Ok(lhs)
    }

    fn parse_not(&mut self) -> Result<Expr, ParseError> {
        if self.eat(&TokenKind::Not) {
            let inner = self.parse_not()?;
            Ok(Expr::Unary(UnOp::Not, Box::new(inner)))
        } else {
            self.parse_comparison()
        }
    }

    fn parse_comparison(&mut self) -> Result<Expr, ParseError> {
        let mut lhs = self.parse_additive()?;
        loop {
            let op = match self.peek() {
                TokenKind::EqEq => BinOp::Eq,
                TokenKind::NotEq => BinOp::Ne,
                TokenKind::Lt => BinOp::Lt,
                TokenKind::Le => BinOp::Le,
                TokenKind::Gt => BinOp::Gt,
                TokenKind::Ge => BinOp::Ge,
                _ => break,
            };
            self.bump();
            let rhs = self.parse_additive()?;
            // Chained comparisons (`a <= b < c`) are desugared to an `and`
            // of binary comparisons, as in Python.
            if matches!(
                self.peek(),
                TokenKind::EqEq
                    | TokenKind::NotEq
                    | TokenKind::Lt
                    | TokenKind::Le
                    | TokenKind::Gt
                    | TokenKind::Ge
            ) {
                let next_op = match self.peek() {
                    TokenKind::EqEq => BinOp::Eq,
                    TokenKind::NotEq => BinOp::Ne,
                    TokenKind::Lt => BinOp::Lt,
                    TokenKind::Le => BinOp::Le,
                    TokenKind::Gt => BinOp::Gt,
                    _ => BinOp::Ge,
                };
                self.bump();
                let third = self.parse_additive()?;
                let first = Expr::bin(op, lhs, rhs.clone());
                let second = Expr::bin(next_op, rhs, third);
                lhs = Expr::bin(BinOp::And, first, second);
            } else {
                lhs = Expr::bin(op, lhs, rhs);
            }
        }
        Ok(lhs)
    }

    fn parse_additive(&mut self) -> Result<Expr, ParseError> {
        let mut lhs = self.parse_multiplicative()?;
        loop {
            let op = match self.peek() {
                TokenKind::Plus => BinOp::Add,
                TokenKind::Minus => BinOp::Sub,
                _ => break,
            };
            self.bump();
            let rhs = self.parse_multiplicative()?;
            lhs = Expr::bin(op, lhs, rhs);
        }
        Ok(lhs)
    }

    fn parse_multiplicative(&mut self) -> Result<Expr, ParseError> {
        let mut lhs = self.parse_unary()?;
        loop {
            let op = match self.peek() {
                TokenKind::Star => BinOp::Mul,
                TokenKind::Slash => BinOp::Div,
                TokenKind::DoubleSlash => BinOp::FloorDiv,
                TokenKind::Percent => BinOp::Mod,
                _ => break,
            };
            self.bump();
            let rhs = self.parse_unary()?;
            lhs = Expr::bin(op, lhs, rhs);
        }
        Ok(lhs)
    }

    fn parse_unary(&mut self) -> Result<Expr, ParseError> {
        if self.eat(&TokenKind::Minus) {
            let inner = self.parse_unary()?;
            return Ok(Expr::Unary(UnOp::Neg, Box::new(inner)));
        }
        if self.eat(&TokenKind::Plus) {
            return self.parse_unary();
        }
        self.parse_power()
    }

    fn parse_power(&mut self) -> Result<Expr, ParseError> {
        let base = self.parse_postfix()?;
        if self.eat(&TokenKind::DoubleStar) {
            // Right-associative.
            let exponent = self.parse_unary()?;
            Ok(Expr::bin(BinOp::Pow, base, exponent))
        } else {
            Ok(base)
        }
    }

    fn parse_postfix(&mut self) -> Result<Expr, ParseError> {
        let mut expr = self.parse_atom()?;
        loop {
            match self.peek() {
                TokenKind::LParen => {
                    self.bump();
                    let args = self.parse_call_args()?;
                    expr = match expr {
                        Expr::Var(name) => Expr::Call(name, args),
                        Expr::Method(recv, name, _empty) => Expr::Method(recv, name, args),
                        other => {
                            return Err(ParseError::new(
                                self.peek_line(),
                                format!("cannot call expression {other:?}"),
                            ))
                        }
                    };
                }
                TokenKind::LBracket => {
                    self.bump();
                    // Either an index or a slice.
                    if self.eat(&TokenKind::Colon) {
                        let hi = if self.check(&TokenKind::RBracket) {
                            None
                        } else {
                            Some(Box::new(self.parse_expr()?))
                        };
                        self.expect(&TokenKind::RBracket)?;
                        expr = Expr::Slice(Box::new(expr), None, hi);
                    } else {
                        let first = self.parse_expr()?;
                        if self.eat(&TokenKind::Colon) {
                            let hi = if self.check(&TokenKind::RBracket) {
                                None
                            } else {
                                Some(Box::new(self.parse_expr()?))
                            };
                            self.expect(&TokenKind::RBracket)?;
                            expr = Expr::Slice(Box::new(expr), Some(Box::new(first)), hi);
                        } else {
                            self.expect(&TokenKind::RBracket)?;
                            expr = Expr::Index(Box::new(expr), Box::new(first));
                        }
                    }
                }
                TokenKind::Dot => {
                    self.bump();
                    let name = self.parse_name()?;
                    // A bare attribute access becomes a zero-argument method
                    // reference; the following `(` (if any) supplies the
                    // arguments.
                    expr = Expr::Method(Box::new(expr), name, Vec::new());
                }
                _ => break,
            }
        }
        Ok(expr)
    }

    fn parse_call_args(&mut self) -> Result<Vec<Expr>, ParseError> {
        let mut args = Vec::new();
        if !self.check(&TokenKind::RParen) {
            loop {
                args.push(self.parse_expr()?);
                if !self.eat(&TokenKind::Comma) {
                    break;
                }
                if self.check(&TokenKind::RParen) {
                    break;
                }
            }
        }
        self.expect(&TokenKind::RParen)?;
        Ok(args)
    }

    fn parse_atom(&mut self) -> Result<Expr, ParseError> {
        let line = self.peek_line();
        match self.bump() {
            TokenKind::Int(v) => Ok(Expr::Lit(Lit::Int(v))),
            TokenKind::Float(v) => Ok(Expr::Lit(Lit::Float(v))),
            TokenKind::Str(v) => Ok(Expr::Lit(Lit::Str(v))),
            TokenKind::True => Ok(Expr::Lit(Lit::Bool(true))),
            TokenKind::False => Ok(Expr::Lit(Lit::Bool(false))),
            TokenKind::None => Ok(Expr::Lit(Lit::None)),
            TokenKind::Name(name) => Ok(Expr::Var(name)),
            TokenKind::Print => Ok(Expr::Var("print".to_owned())),
            TokenKind::LParen => {
                if self.eat(&TokenKind::RParen) {
                    return Ok(Expr::Tuple(Vec::new()));
                }
                let first = self.parse_expr()?;
                if self.check(&TokenKind::Comma) {
                    let mut items = vec![first];
                    while self.eat(&TokenKind::Comma) {
                        if self.check(&TokenKind::RParen) {
                            break;
                        }
                        items.push(self.parse_expr()?);
                    }
                    self.expect(&TokenKind::RParen)?;
                    Ok(Expr::Tuple(items))
                } else {
                    self.expect(&TokenKind::RParen)?;
                    Ok(first)
                }
            }
            TokenKind::LBracket => {
                let mut items = Vec::new();
                if !self.check(&TokenKind::RBracket) {
                    loop {
                        items.push(self.parse_expr()?);
                        if !self.eat(&TokenKind::Comma) {
                            break;
                        }
                        if self.check(&TokenKind::RBracket) {
                            break;
                        }
                    }
                }
                self.expect(&TokenKind::RBracket)?;
                Ok(Expr::List(items))
            }
            TokenKind::Lambda => Err(ParseError::new(line, "unsupported construct `lambda`")),
            other => Err(ParseError::new(line, format!("unexpected token {other}"))),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_the_papers_correct_attempt_c1() {
        let src = "\
def computeDeriv(poly):
    result = []
    for e in range(1, len(poly)):
        result.append(float(poly[e]*e))
    if result == []:
        return [0.0]
    else:
        return result
";
        let prog = parse_program(src).unwrap();
        assert_eq!(prog.functions.len(), 1);
        let f = &prog.functions[0];
        assert_eq!(f.name, "computeDeriv");
        assert_eq!(f.params, vec!["poly"]);
        assert_eq!(f.body.len(), 3);
        assert!(matches!(f.body[1], Stmt::For { .. }));
        assert!(matches!(f.body[2], Stmt::If { .. }));
    }

    #[test]
    fn parses_augmented_assignment_and_xrange() {
        let src = "\
def computeDeriv(poly):
    deriv = []
    for i in xrange(1,len(poly)):
        deriv+=[float(i)*poly[i]]
    if len(deriv)==0:
        return [0.0]
    return deriv
";
        let prog = parse_program(src).unwrap();
        let f = &prog.functions[0];
        assert_eq!(f.body.len(), 4);
        match &f.body[1] {
            Stmt::For { body, .. } => match &body[0] {
                Stmt::Assign { op, .. } => assert_eq!(*op, Some(BinOp::Add)),
                other => panic!("expected augmented assignment, got {other:?}"),
            },
            other => panic!("expected for loop, got {other:?}"),
        }
    }

    #[test]
    fn elif_chains_nest_into_else() {
        let src = "\
def f(x):
    if x > 0:
        return 1
    elif x == 0:
        return 0
    else:
        return -1
";
        let prog = parse_program(src).unwrap();
        match &prog.functions[0].body[0] {
            Stmt::If { else_body, .. } => {
                assert_eq!(else_body.len(), 1);
                assert!(matches!(else_body[0], Stmt::If { .. }));
            }
            other => panic!("expected if, got {other:?}"),
        }
    }

    #[test]
    fn subscript_assignment() {
        let src = "def f(xs):\n    xs[0] = 1\n    return xs\n";
        let prog = parse_program(src).unwrap();
        match &prog.functions[0].body[0] {
            Stmt::Assign { target: Target::Index(name, _), .. } => assert_eq!(name, "xs"),
            other => panic!("expected subscript assignment, got {other:?}"),
        }
    }

    #[test]
    fn method_call_statement() {
        let src = "def f(xs, x):\n    xs.append(x)\n    return xs\n";
        let prog = parse_program(src).unwrap();
        match &prog.functions[0].body[0] {
            Stmt::ExprStmt { expr: Expr::Method(recv, name, args), .. } => {
                assert_eq!(**recv, Expr::var("xs"));
                assert_eq!(name, "append");
                assert_eq!(args.len(), 1);
            }
            other => panic!("expected method call, got {other:?}"),
        }
    }

    #[test]
    fn expression_precedence() {
        let e = parse_expression("1 + 2 * 3 ** 2").unwrap();
        assert_eq!(
            e,
            Expr::bin(
                BinOp::Add,
                Expr::int(1),
                Expr::bin(BinOp::Mul, Expr::int(2), Expr::bin(BinOp::Pow, Expr::int(3), Expr::int(2)))
            )
        );
    }

    #[test]
    fn boolean_operators_and_comparison() {
        let e = parse_expression("x > 0 and y == 2 or done").unwrap();
        match e {
            Expr::Binary(BinOp::Or, lhs, rhs) => {
                assert!(matches!(*lhs, Expr::Binary(BinOp::And, _, _)));
                assert_eq!(*rhs, Expr::var("done"));
            }
            other => panic!("unexpected parse {other:?}"),
        }
    }

    #[test]
    fn chained_comparison_desugars_to_and() {
        let e = parse_expression("0 <= x < 10").unwrap();
        assert!(matches!(e, Expr::Binary(BinOp::And, _, _)));
    }

    #[test]
    fn slices_and_indexing() {
        assert!(matches!(parse_expression("xs[1:]").unwrap(), Expr::Slice(_, Some(_), None)));
        assert!(matches!(parse_expression("xs[:n]").unwrap(), Expr::Slice(_, None, Some(_))));
        assert!(matches!(parse_expression("xs[i]").unwrap(), Expr::Index(_, _)));
    }

    #[test]
    fn print_forms() {
        let p3 = parse_program("def f(x):\n    print(x, 1)\n").unwrap();
        let p2 = parse_program("def f(x):\n    print x, 1\n").unwrap();
        match (&p3.functions[0].body[0], &p2.functions[0].body[0]) {
            (Stmt::Print { args: a3, .. }, Stmt::Print { args: a2, .. }) => {
                assert_eq!(a3.len(), 2);
                assert_eq!(a2.len(), 2);
            }
            other => panic!("expected print statements, got {other:?}"),
        }
    }

    #[test]
    fn top_level_statements_become_main() {
        let prog = parse_program("x = 1\nprint(x)\n").unwrap();
        assert_eq!(prog.functions.len(), 1);
        assert_eq!(prog.functions[0].name, "__main__");
        assert_eq!(prog.functions[0].body.len(), 2);
    }

    #[test]
    fn unsupported_constructs_are_rejected() {
        assert!(parse_program("def f(x):\n    g = lambda y: y\n    return g(x)\n").is_err());
        assert!(parse_program("class A:\n    pass\n").is_err());
    }

    #[test]
    fn tuples_parse_in_returns_and_parens() {
        let e = parse_expression("(1, 2, 3)").unwrap();
        assert!(matches!(e, Expr::Tuple(items) if items.len() == 3));
        let empty = parse_expression("()").unwrap();
        assert!(matches!(empty, Expr::Tuple(items) if items.is_empty()));
        let single = parse_expression("(x,)").unwrap();
        assert!(matches!(single, Expr::Tuple(items) if items.len() == 1));
    }

    #[test]
    fn ast_size_and_statement_count() {
        let prog = parse_program("def f(x):\n    y = x + 1\n    return y\n").unwrap();
        assert_eq!(prog.statement_count(), 3);
        assert!(prog.ast_size() >= 5);
    }

    #[test]
    fn inline_suites() {
        let prog = parse_program("def f(x):\n    if x: return 1\n    return 0\n").unwrap();
        assert_eq!(prog.functions[0].body.len(), 2);
    }

    #[test]
    fn parse_error_reports_line() {
        let err = parse_program("def f(x):\n    return )\n").unwrap_err();
        assert_eq!(err.line, 2);
    }
}
