//! # clara-ted — Zhang–Shasha ordered tree edit distance
//!
//! Clara's repair cost metric (`diff` in Definition 5.1) is the tree edit
//! distance between the abstract syntax trees of the original and the
//! repaired expression. The original implementation used the Python
//! `zhang-shasha` package; this crate implements the same algorithm
//! (K. Zhang and D. Shasha, *Simple fast algorithms for the editing distance
//! between trees and related problems*, SIAM J. Comput. 1989) from scratch.
//!
//! The distance is computed over labelled, ordered trees with unit costs:
//! deleting a node costs 1, inserting a node costs 1, and relabelling costs 1
//! (0 if the labels are equal).
//!
//! ```rust
//! use clara_lang::parse_expression;
//! use clara_ted::expr_edit_distance;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let a = parse_expression("range(len(poly))")?;
//! let b = parse_expression("range(1, len(poly))")?;
//! assert_eq!(expr_edit_distance(&a, &b), 1); // insert the literal `1`
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

use clara_lang::ast::{Expr, Lit};

/// A labelled ordered tree, the input of the Zhang–Shasha algorithm.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LabelTree {
    /// The node label.
    pub label: String,
    /// The ordered children.
    pub children: Vec<LabelTree>,
}

impl LabelTree {
    /// Creates a leaf node.
    pub fn leaf(label: impl Into<String>) -> Self {
        LabelTree { label: label.into(), children: Vec::new() }
    }

    /// Creates an inner node.
    pub fn node(label: impl Into<String>, children: Vec<LabelTree>) -> Self {
        LabelTree { label: label.into(), children }
    }

    /// Number of nodes in the tree.
    pub fn size(&self) -> usize {
        1 + self.children.iter().map(LabelTree::size).sum::<usize>()
    }
}

/// Converts an expression AST into the labelled tree the edit distance is
/// computed on.
pub fn expr_to_tree(expr: &Expr) -> LabelTree {
    match expr {
        Expr::Lit(lit) => LabelTree::leaf(lit_label(lit)),
        Expr::Var(name) => LabelTree::leaf(format!("var:{name}")),
        Expr::List(items) => LabelTree::node("list", items.iter().map(expr_to_tree).collect()),
        Expr::Tuple(items) => LabelTree::node("tuple", items.iter().map(expr_to_tree).collect()),
        Expr::Unary(op, inner) => LabelTree::node(format!("unary:{op:?}"), vec![expr_to_tree(inner)]),
        Expr::Binary(op, lhs, rhs) => {
            LabelTree::node(format!("binop:{}", op.symbol()), vec![expr_to_tree(lhs), expr_to_tree(rhs)])
        }
        Expr::Index(base, idx) => LabelTree::node("index", vec![expr_to_tree(base), expr_to_tree(idx)]),
        Expr::Slice(base, lo, hi) => {
            let mut children = vec![expr_to_tree(base)];
            if let Some(lo) = lo {
                children.push(expr_to_tree(lo));
            }
            if let Some(hi) = hi {
                children.push(expr_to_tree(hi));
            }
            LabelTree::node("slice", children)
        }
        Expr::Call(name, args) => {
            LabelTree::node(format!("call:{name}"), args.iter().map(expr_to_tree).collect())
        }
        Expr::Method(recv, name, args) => {
            let mut children = vec![expr_to_tree(recv)];
            children.extend(args.iter().map(expr_to_tree));
            LabelTree::node(format!("method:{name}"), children)
        }
    }
}

fn lit_label(lit: &Lit) -> String {
    match lit {
        Lit::Int(v) => format!("int:{v}"),
        Lit::Float(v) => format!("float:{v}"),
        Lit::Str(v) => format!("str:{v}"),
        Lit::Bool(v) => format!("bool:{v}"),
        Lit::None => "none".to_owned(),
    }
}

/// The tree edit distance between two expressions (the paper's `diff`).
pub fn expr_edit_distance(a: &Expr, b: &Expr) -> usize {
    prepared_edit_distance(&PreparedTree::from_expr(a), &PreparedTree::from_expr(b))
}

/// Number of AST nodes of an expression, i.e. the edit distance from the
/// empty tree (used for relative repair size and add/delete costs).
pub fn expr_tree_size(expr: &Expr) -> usize {
    expr_to_tree(expr).size()
}

/// The Zhang–Shasha tree edit distance with unit costs.
pub fn tree_edit_distance(a: &LabelTree, b: &LabelTree) -> usize {
    prepared_edit_distance(&PreparedTree::from_tree(a), &PreparedTree::from_tree(b))
}

/// The Zhang–Shasha tree edit distance between two pre-flattened trees.
///
/// When one side participates in many comparisons (the repair loop compares
/// each implementation expression against every candidate replacement),
/// prepare it once and reuse it here instead of re-flattening per call.
pub fn prepared_edit_distance(fa: &PreparedTree, fb: &PreparedTree) -> usize {
    let mut dist = vec![vec![0usize; fb.len()]; fa.len()];

    for &i in &fa.keyroots {
        for &j in &fb.keyroots {
            tree_dist(fa, fb, i, j, &mut dist);
        }
    }
    dist[fa.len() - 1][fb.len() - 1]
}

/// A tree flattened into the post-order arrays required by Zhang–Shasha.
/// Prepare once, compare many times with [`prepared_edit_distance`].
pub struct PreparedTree {
    labels: Vec<String>,
    /// `lml[i]` is the post-order index of the left-most leaf of the subtree
    /// rooted at node `i`.
    lml: Vec<usize>,
    keyroots: Vec<usize>,
}

impl PreparedTree {
    /// Flattens an expression.
    pub fn from_expr(expr: &Expr) -> Self {
        Self::from_owned_tree(expr_to_tree(expr))
    }

    /// Flattens a label tree.
    pub fn from_tree(tree: &LabelTree) -> Self {
        let mut labels = Vec::new();
        let mut lml = Vec::new();
        fn visit(node: &LabelTree, labels: &mut Vec<String>, lml: &mut Vec<usize>) -> usize {
            let mut first_leaf = None;
            for child in &node.children {
                let child_index = visit(child, labels, lml);
                if first_leaf.is_none() {
                    first_leaf = Some(lml[child_index]);
                }
            }
            let index = labels.len();
            labels.push(node.label.clone());
            lml.push(first_leaf.unwrap_or(index));
            index
        }
        visit(tree, &mut labels, &mut lml);
        Self::finish(labels, lml)
    }

    /// Flattens a label tree by value, reusing its label allocations.
    fn from_owned_tree(tree: LabelTree) -> Self {
        let mut labels = Vec::new();
        let mut lml = Vec::new();
        fn visit(node: LabelTree, labels: &mut Vec<String>, lml: &mut Vec<usize>) -> usize {
            let mut first_leaf = None;
            for child in node.children {
                let child_index = visit(child, labels, lml);
                if first_leaf.is_none() {
                    first_leaf = Some(lml[child_index]);
                }
            }
            let index = labels.len();
            labels.push(node.label);
            lml.push(first_leaf.unwrap_or(index));
            index
        }
        visit(tree, &mut labels, &mut lml);
        Self::finish(labels, lml)
    }

    fn finish(labels: Vec<String>, lml: Vec<usize>) -> Self {
        // Keyroots: a node i is a keyroot iff no node j > i has the same
        // left-most leaf (this includes the root).
        let n = labels.len();
        let mut keyroots = Vec::new();
        for i in 0..n {
            if !(i + 1..n).any(|j| lml[j] == lml[i]) {
                keyroots.push(i);
            }
        }
        PreparedTree { labels, lml, keyroots }
    }

    /// Number of nodes.
    pub fn len(&self) -> usize {
        self.labels.len()
    }

    /// `true` when the tree is empty (never the case for expression trees).
    pub fn is_empty(&self) -> bool {
        self.labels.is_empty()
    }
}

fn tree_dist(a: &PreparedTree, b: &PreparedTree, i: usize, j: usize, dist: &mut [Vec<usize>]) {
    let li = a.lml[i];
    let lj = b.lml[j];
    let rows = i - li + 2;
    let cols = j - lj + 2;
    // Forest distance matrix; fd[x][y] is the distance between the forests
    // a[li .. li+x-1] and b[lj .. lj+y-1].
    let mut fd = vec![vec![0usize; cols]; rows];
    for x in 1..rows {
        fd[x][0] = fd[x - 1][0] + 1;
    }
    for y in 1..cols {
        fd[0][y] = fd[0][y - 1] + 1;
    }
    for x in 1..rows {
        for y in 1..cols {
            let node_a = li + x - 1;
            let node_b = lj + y - 1;
            if a.lml[node_a] == li && b.lml[node_b] == lj {
                let rename_cost = usize::from(a.labels[node_a] != b.labels[node_b]);
                fd[x][y] = (fd[x - 1][y] + 1).min(fd[x][y - 1] + 1).min(fd[x - 1][y - 1] + rename_cost);
                dist[node_a][node_b] = fd[x][y];
            } else {
                let prev_x = a.lml[node_a] - li;
                let prev_y = b.lml[node_b] - lj;
                fd[x][y] =
                    (fd[x - 1][y] + 1).min(fd[x][y - 1] + 1).min(fd[prev_x][prev_y] + dist[node_a][node_b]);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use clara_lang::parse_expression;

    fn dist(a: &str, b: &str) -> usize {
        expr_edit_distance(&parse_expression(a).unwrap(), &parse_expression(b).unwrap())
    }

    #[test]
    fn identical_expressions_have_distance_zero() {
        for src in ["x", "range(1, len(poly))", "result + [float(e)*poly[e]]"] {
            assert_eq!(dist(src, src), 0, "distance of `{src}` to itself");
        }
    }

    #[test]
    fn single_node_changes_cost_one() {
        assert_eq!(dist("x", "y"), 1);
        assert_eq!(dist("x + 1", "x + 2"), 1);
        assert_eq!(dist("x + 1", "x - 1"), 1);
    }

    #[test]
    fn insertion_of_an_argument() {
        // The paper's Fig. 2(h) first modification.
        assert_eq!(dist("range(len(poly))", "range(1, len(poly))"), 1);
    }

    #[test]
    fn the_papers_i1_repair_cost_is_small() {
        // Fig. 2(g): change `0.0` to `[0.0]` — one list node is inserted.
        assert_eq!(dist("0.0", "[0.0]"), 1);
    }

    #[test]
    fn known_textbook_example() {
        // Classic Zhang–Shasha example: f(d(a c(b)) e) vs f(c(d(a b)) e) has
        // distance 2.
        let t1 = LabelTree::node(
            "f",
            vec![
                LabelTree::node(
                    "d",
                    vec![LabelTree::leaf("a"), LabelTree::node("c", vec![LabelTree::leaf("b")])],
                ),
                LabelTree::leaf("e"),
            ],
        );
        let t2 = LabelTree::node(
            "f",
            vec![
                LabelTree::node(
                    "c",
                    vec![LabelTree::node("d", vec![LabelTree::leaf("a"), LabelTree::leaf("b")])],
                ),
                LabelTree::leaf("e"),
            ],
        );
        assert_eq!(tree_edit_distance(&t1, &t2), 2);
        assert_eq!(tree_edit_distance(&t2, &t1), 2);
    }

    #[test]
    fn distance_to_a_leaf_is_bounded_by_size() {
        let big = parse_expression("result + [float(e) * poly[e]]").unwrap();
        let small = parse_expression("x").unwrap();
        let d = expr_edit_distance(&big, &small);
        // Everything is deleted except one node which is renamed.
        assert_eq!(d, expr_tree_size(&big));
    }

    #[test]
    fn sizes_count_nodes() {
        assert_eq!(expr_tree_size(&parse_expression("x").unwrap()), 1);
        assert_eq!(expr_tree_size(&parse_expression("x + 1").unwrap()), 3);
        assert_eq!(expr_tree_size(&parse_expression("f(x, y + 1)").unwrap()), 5);
    }

    #[test]
    fn completely_different_expressions() {
        let d = dist("result.append(float(poly[e]*e))", "0");
        assert!(d >= 7, "expected a large distance, got {d}");
    }

    mod properties {
        use super::*;
        use proptest::prelude::*;

        fn arb_tree() -> impl Strategy<Value = LabelTree> {
            let leaf = prop::sample::select(vec!["a", "b", "c", "d"]).prop_map(LabelTree::leaf);
            leaf.prop_recursive(3, 12, 3, |inner| {
                (prop::sample::select(vec!["f", "g", "h"]), prop::collection::vec(inner, 0..3))
                    .prop_map(|(label, children)| LabelTree::node(label, children))
            })
        }

        proptest! {
            #[test]
            fn distance_is_zero_for_equal_trees(t in arb_tree()) {
                prop_assert_eq!(tree_edit_distance(&t, &t), 0);
            }

            #[test]
            fn distance_is_symmetric(a in arb_tree(), b in arb_tree()) {
                prop_assert_eq!(tree_edit_distance(&a, &b), tree_edit_distance(&b, &a));
            }

            #[test]
            fn distance_is_bounded_by_sizes(a in arb_tree(), b in arb_tree()) {
                let d = tree_edit_distance(&a, &b);
                prop_assert!(d <= a.size() + b.size());
                prop_assert!(d >= a.size().abs_diff(b.size()));
            }

            #[test]
            fn triangle_inequality(a in arb_tree(), b in arb_tree(), c in arb_tree()) {
                let ab = tree_edit_distance(&a, &b);
                let bc = tree_edit_distance(&b, &c);
                let ac = tree_edit_distance(&a, &c);
                prop_assert!(ac <= ab + bc, "d(a,c)={} > d(a,b)+d(b,c)={}", ac, ab + bc);
            }

            #[test]
            fn unequal_trees_have_positive_distance(a in arb_tree(), b in arb_tree()) {
                if a != b {
                    prop_assert!(tree_edit_distance(&a, &b) > 0);
                }
            }
        }
    }
}
