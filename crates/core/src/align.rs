//! Flexible CFG alignment — the fallback for the structure-mismatch
//! repair-failure mode.
//!
//! §6.2 (1) and §7 of the paper report the dominant repair failure as
//! attempts whose control flow diverges from every cluster representative:
//! [`find_matching`](crate::matching::find_matching) requires exact
//! loop-structure correspondence, so a student who duplicated a loop,
//! wrapped one in a redundant guard, or split one loop into two is
//! unrepairable even when the computation is otherwise aligned. This module
//! relaxes that gate without touching the matcher: when the strict repair
//! fails with [`RepairFailure::NoMatchingControlFlow`], the attempt's
//! *surface* IR is normalized through a small set of semantics-preserving
//! structural rewrites (each the inverse of a way students distort control
//! flow), every normalization is re-lowered and re-executed, candidates
//! whose observable traces disagree with the original attempt are discarded,
//! and the strict repair is retried on the survivors. The cheapest repair
//! across surviving candidates wins.
//!
//! Soundness (Theorem 5.3) is preserved by construction: a repair found
//! through a normalized attempt is still a repair the matcher verified
//! against its cluster, and — because candidates must agree with the
//! original attempt on the status, return value and output of every grading
//! input — the differential oracle's spec check is unaffected by the
//! alignment step. The rewrites themselves are *candidates*, not trusted
//! transformations: an unsound rewrite (one that changes behaviour) is
//! filtered out by the trace-agreement gate before any repair runs.
//!
//! The rewrite set pairs with the structural mutation operators of
//! `clara-corpus` (`duplicate-loop`, `guard-loop`) and with the loop
//! unrolling/merging tolerance of CLEVER-style flexible alignment:
//!
//! * **drop-loop** — delete one loop statement (inverse of a duplicated or
//!   spurious extra loop);
//! * **unwrap-guard** — splice the body of an `if` with an empty `else`
//!   whose then-branch contains a loop (inverse of a redundant guard; the
//!   guard's truth on all inputs is exactly what the trace gate checks);
//! * **merge-loops** — fuse two adjacent `while` loops with the same
//!   condition into one (inverse of a split loop).

use clara_lang::Value;
use clara_model::surface::{SurfaceFunction, SurfaceStmt};
use clara_model::ModelBuilder;

use crate::analysis::AnalyzedProgram;
use crate::cluster::Cluster;
use crate::repair::{repair_attempt, RepairConfig, RepairResult};

/// Maximum number of rewrite layers applied to one attempt: depth 1 undoes
/// a single structural distortion, depth 2 a pair (the multi-fault corpus
/// composes 2–4 faults, of which at most two are structural in practice).
const MAX_DEPTH: usize = 2;

/// Generates the normalization candidates of `surface`: every distinct
/// result of applying at most [`MAX_DEPTH`] structural rewrites, shallowest
/// first, capped at `max` candidates. The input itself is not included.
pub fn alignment_candidates(surface: &SurfaceFunction, max: usize) -> Vec<SurfaceFunction> {
    let mut out: Vec<SurfaceFunction> = Vec::new();
    let mut frontier: Vec<SurfaceFunction> = vec![surface.clone()];
    for _depth in 0..MAX_DEPTH {
        let mut next: Vec<SurfaceFunction> = Vec::new();
        for candidate in &frontier {
            for rewritten in single_rewrites(candidate) {
                if out.len() >= max {
                    return out;
                }
                let fresh =
                    !stmts_eq(&rewritten, surface) && !out.iter().any(|seen| stmts_eq(seen, &rewritten));
                if fresh {
                    out.push(rewritten.clone());
                    next.push(rewritten);
                }
            }
        }
        if next.is_empty() {
            break;
        }
        frontier = next;
    }
    out
}

fn stmts_eq(a: &SurfaceFunction, b: &SurfaceFunction) -> bool {
    clara_model::surface::stmts_struct_eq(&a.body, &b.body)
}

/// Every result of applying exactly one structural rewrite somewhere in the
/// function, in block order.
fn single_rewrites(surface: &SurfaceFunction) -> Vec<SurfaceFunction> {
    let mut rewrites: Vec<SurfaceFunction> = Vec::new();
    // Count the blocks first, then regenerate the function once per concrete
    // rewrite site so each candidate carries exactly one change.
    let sites = collect_sites(&surface.body, &mut Vec::new());
    for site in sites {
        let mut candidate = surface.clone();
        apply_site(&mut candidate.body, &site.path, 0, &site.kind);
        rewrites.push(candidate);
    }
    rewrites
}

/// A concrete rewrite site: the path of block-child indices from the
/// function body down to the block holding the statement, plus what to do
/// at which index inside that block.
struct Site {
    path: Vec<usize>,
    kind: SiteKind,
}

enum SiteKind {
    /// Replace the loop at `index` with a `Nop`.
    DropLoop { index: usize },
    /// Splice the then-branch of the guard `if` at `index` into the block.
    UnwrapGuard { index: usize },
    /// Fuse the `while` at `index` with the equal-condition `while` at
    /// `index + 1`.
    MergeLoops { index: usize },
}

/// Walks every block of `body` (identified by the path of child indices
/// that leads to it) and records each applicable rewrite.
fn collect_sites(body: &[SurfaceStmt], path: &mut Vec<usize>) -> Vec<Site> {
    let mut sites = Vec::new();
    for (index, stmt) in body.iter().enumerate() {
        match stmt {
            SurfaceStmt::While { cond, .. } => {
                sites.push(Site { path: path.clone(), kind: SiteKind::DropLoop { index } });
                if let Some(SurfaceStmt::While { cond: next_cond, .. }) = body.get(index + 1) {
                    if cond == next_cond {
                        sites.push(Site { path: path.clone(), kind: SiteKind::MergeLoops { index } });
                    }
                }
                // A duplicated loop is also droppable as "the second copy";
                // dropping either copy yields struct-equal candidates, which
                // the caller deduplicates.
            }
            SurfaceStmt::ForEach { .. } => {
                sites.push(Site { path: path.clone(), kind: SiteKind::DropLoop { index } });
            }
            SurfaceStmt::If { then_body, else_body, .. }
                if else_body.is_empty() && then_body.iter().any(SurfaceStmt::contains_loop) =>
            {
                sites.push(Site { path: path.clone(), kind: SiteKind::UnwrapGuard { index } });
            }
            _ => {}
        }
        // Descend into nested blocks.
        match stmt {
            SurfaceStmt::If { then_body, else_body, .. } => {
                path.push(child_slot(index, 0));
                sites.extend(collect_sites(then_body, path));
                path.pop();
                path.push(child_slot(index, 1));
                sites.extend(collect_sites(else_body, path));
                path.pop();
            }
            SurfaceStmt::While { body, .. } | SurfaceStmt::ForEach { body, .. } => {
                path.push(child_slot(index, 0));
                sites.extend(collect_sites(body, path));
                path.pop();
            }
            _ => {}
        }
    }
    sites
}

/// Encodes "child block `slot` of the statement at `index`" as one path
/// component (a statement has at most two child blocks).
fn child_slot(index: usize, slot: usize) -> usize {
    index * 2 + slot
}

/// Follows `path` down to its block and applies the rewrite there.
fn apply_site(body: &mut Vec<SurfaceStmt>, path: &[usize], depth: usize, kind: &SiteKind) {
    if depth == path.len() {
        match *kind {
            SiteKind::DropLoop { index } => {
                let line = body[index].line();
                body[index] = SurfaceStmt::Nop { line };
            }
            SiteKind::UnwrapGuard { index } => {
                if let SurfaceStmt::If { then_body, .. } = body[index].clone() {
                    body.splice(index..=index, then_body);
                }
            }
            SiteKind::MergeLoops { index } => {
                if let SurfaceStmt::While { body: second, .. } = body.remove(index + 1) {
                    if let SurfaceStmt::While { body: first, .. } = &mut body[index] {
                        first.extend(second);
                    }
                }
            }
        }
        return;
    }
    let component = path[depth];
    let (index, slot) = (component / 2, component % 2);
    match &mut body[index] {
        SurfaceStmt::If { then_body, else_body, .. } => {
            let block = if slot == 0 { then_body } else { else_body };
            apply_site(block, path, depth + 1, kind);
        }
        SurfaceStmt::While { body: block, .. } | SurfaceStmt::ForEach { body: block, .. } => {
            apply_site(block, path, depth + 1, kind);
        }
        _ => {}
    }
}

/// Exact observable agreement of two analysed programs on every grading
/// input: same termination status, same return value, same output. This is
/// the gate that makes an aggressive rewrite set safe — a normalization
/// that changed behaviour on any input is rejected here, before any repair
/// is attempted against it.
pub fn traces_agree(a: &AnalyzedProgram, b: &AnalyzedProgram) -> bool {
    a.traces.len() == b.traces.len()
        && a.traces.iter().zip(&b.traces).all(|(x, y)| {
            x.status == y.status && x.return_value() == y.return_value() && x.output() == y.output()
        })
}

/// The flexible-alignment fallback: normalizes the attempt's surface IR,
/// keeps the candidates whose traces agree with the original attempt, and
/// retries the strict repair on each. Returns the cheapest successful
/// repair together with the normalized program it was found through (the
/// program feedback must be rendered against), or `None` when no candidate
/// aligns. The returned result has [`RepairResult::realigned`] set.
pub fn realign_attempt(
    clusters: &[Cluster],
    attempt: &AnalyzedProgram,
    surface: &SurfaceFunction,
    inputs: &[Vec<Value>],
    config: &RepairConfig,
) -> Option<(RepairResult, AnalyzedProgram)> {
    if !config.flexible_alignment {
        return None;
    }
    let mut best: Option<(RepairResult, AnalyzedProgram)> = None;
    for candidate in alignment_candidates(surface, config.max_alignment_candidates) {
        let Ok(program) = ModelBuilder::build(&candidate) else { continue };
        let analyzed = AnalyzedProgram::from_program(program, inputs, config.fuel);
        if !traces_agree(attempt, &analyzed) {
            continue;
        }
        let result = repair_attempt(clusters, &analyzed, inputs, config);
        let Some(repair) = &result.best else { continue };
        // Shallower candidates come first, so strict improvement keeps the
        // least-normalized alignment on cost ties.
        let improves = match &best {
            Some((current, _)) => {
                repair.total_cost < current.best.as_ref().map_or(i64::MAX, |r| r.total_cost)
            }
            None => true,
        };
        if improves {
            best = Some((result, analyzed));
        }
    }
    if let Some((result, _)) = best.as_mut() {
        result.realigned = true;
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;
    use clara_lang::Expr;

    fn func(body: Vec<SurfaceStmt>) -> SurfaceFunction {
        SurfaceFunction { name: "f".into(), params: vec!["n".into()], body, line: 1 }
    }

    fn simple_loop(line: u32) -> SurfaceStmt {
        SurfaceStmt::While {
            cond: Expr::bin(clara_lang::BinOp::Lt, Expr::var("i"), Expr::var("n")),
            body: vec![SurfaceStmt::Assign {
                var: "i".into(),
                value: Expr::bin(clara_lang::BinOp::Add, Expr::var("i"), Expr::int(1)),
                line: line + 1,
            }],
            line,
        }
    }

    #[test]
    fn duplicated_loops_yield_a_drop_candidate() {
        let surface = func(vec![
            SurfaceStmt::Assign { var: "i".into(), value: Expr::int(0), line: 2 },
            simple_loop(3),
            simple_loop(5),
            SurfaceStmt::Return { value: Expr::var("i"), line: 7 },
        ]);
        let candidates = alignment_candidates(&surface, 16);
        assert!(!candidates.is_empty());
        // One candidate drops a loop copy; another merges the equal-cond
        // adjacent pair.
        let has_single_loop = candidates
            .iter()
            .any(|c| c.body.iter().filter(|s| matches!(s, SurfaceStmt::While { .. })).count() == 1);
        assert!(has_single_loop, "no candidate reduced the loop count");
    }

    #[test]
    fn guarded_loops_are_unwrapped() {
        let guarded = SurfaceStmt::If {
            cond: Expr::bin(clara_lang::BinOp::Gt, Expr::var("n"), Expr::int(0)),
            then_body: vec![simple_loop(4)],
            else_body: vec![],
            line: 3,
        };
        let surface = func(vec![
            SurfaceStmt::Assign { var: "i".into(), value: Expr::int(0), line: 2 },
            guarded,
            SurfaceStmt::Return { value: Expr::var("i"), line: 6 },
        ]);
        let candidates = alignment_candidates(&surface, 16);
        assert!(candidates.iter().any(|c| {
            c.body.iter().any(|s| matches!(s, SurfaceStmt::While { .. }))
                && !c.body.iter().any(|s| matches!(s, SurfaceStmt::If { .. }))
        }));
    }

    #[test]
    fn candidates_are_distinct_capped_and_exclude_the_input() {
        let surface = func(vec![
            SurfaceStmt::Assign { var: "i".into(), value: Expr::int(0), line: 2 },
            simple_loop(3),
            simple_loop(5),
            simple_loop(7),
            SurfaceStmt::Return { value: Expr::var("i"), line: 9 },
        ]);
        let candidates = alignment_candidates(&surface, 4);
        assert!(candidates.len() <= 4);
        for (i, a) in candidates.iter().enumerate() {
            assert!(!stmts_eq(a, &surface), "candidate {i} is the input");
            for b in &candidates[i + 1..] {
                assert!(!stmts_eq(a, b), "duplicate candidates");
            }
        }
    }

    #[test]
    fn nested_sites_are_reached() {
        // A duplicated loop nested inside a branch must still be found.
        let inner = func(vec![SurfaceStmt::If {
            cond: Expr::bool(true),
            then_body: vec![simple_loop(3), simple_loop(5)],
            else_body: vec![],
            line: 2,
        }]);
        let candidates = alignment_candidates(&inner, 16);
        assert!(candidates.iter().any(|c| {
            let SurfaceStmt::If { then_body, .. } = &c.body[0] else { return false };
            then_body.iter().filter(|s| matches!(s, SurfaceStmt::While { .. })).count() == 1
        }));
    }

    use crate::repair::RepairFailure;
    use crate::{Clara, ClaraConfig, Feedback};
    use clara_lang::Value;

    fn sum_engine(flexible: bool) -> Clara {
        let mut config = ClaraConfig::default();
        config.repair.flexible_alignment = flexible;
        let inputs = vec![vec![Value::Int(0)], vec![Value::Int(3)], vec![Value::Int(5)]];
        let mut clara = Clara::new("f", inputs, config);
        clara
            .add_correct_solution(
                "def f(n):\n    s = 0\n    i = 0\n    while i < n:\n        s = s + i\n        i = i + 1\n    return s\n",
            )
            .unwrap();
        clara
    }

    // A duplicated (dead) loop plus a seeded bug: strictly unrepairable —
    // two loops match no single-loop cluster — but the second loop never
    // runs, so dropping it preserves the attempt's traces exactly.
    const DUPLICATED: &str = "def f(n):\n    s = 0\n    i = 0\n    while i < n:\n        s = s + i\n        i = i + 1\n    while i < n:\n        s = s + i\n        i = i + 1\n    return s + 1\n";

    // The same bug behind a redundant loop guard (`if n > 0:` around a
    // `while i < n` loop starting from i = 0 is a no-op).
    const GUARDED: &str = "def f(n):\n    s = 0\n    i = 0\n    if n > 0:\n        while i < n:\n            s = s + i\n            i = i + 1\n    return s + 1\n";

    #[test]
    fn structure_divergent_attempts_fail_without_alignment() {
        // The baseline this PR's flexible alignment improves over: with the
        // fallback off, both distortions are terminal.
        let clara = sum_engine(false);
        for attempt in [DUPLICATED, GUARDED] {
            let outcome = clara.repair_source(attempt).unwrap();
            assert!(outcome.result.best.is_none());
            assert!(!outcome.result.realigned);
            assert_eq!(outcome.result.failure, Some(RepairFailure::NoMatchingControlFlow));
        }
    }

    #[test]
    fn duplicated_and_guarded_loops_realign_and_repair() {
        let clara = sum_engine(true);
        for attempt in [DUPLICATED, GUARDED] {
            let outcome = clara.repair_source(attempt).unwrap();
            let repair = outcome.result.best.as_ref().unwrap_or_else(|| {
                panic!("alignment must recover this attempt:\n{attempt}\n{:?}", outcome.result.failure)
            });
            assert!(outcome.result.realigned);
            assert_eq!(repair.verified, Some(true), "Theorem 5.3 must hold through alignment");
            assert!(repair.total_cost > 0, "the seeded bug still needs a real fix");
            assert!(outcome.feedback.is_repair_feedback() || matches!(outcome.feedback, Feedback::Correct));
        }
    }

    #[test]
    fn behaviour_changing_normalizations_are_rejected() {
        // Here the second loop is NOT dead: i is reset, so both copies run
        // and dropping either changes the attempt's observable traces. The
        // trace gate must reject every candidate and leave the strict
        // verdict in place rather than repair against a program the student
        // did not write.
        let live = "def f(n):\n    s = 0\n    i = 0\n    while i < n:\n        s = s + i\n        i = i + 1\n    i = 0\n    while i < n:\n        s = s + i\n        i = i + 1\n    return s + 1\n";
        let clara = sum_engine(true);
        let outcome = clara.repair_source(live).unwrap();
        assert!(outcome.result.best.is_none(), "no trace-agreeing candidate exists");
        assert!(!outcome.result.realigned);
        assert_eq!(outcome.result.failure, Some(RepairFailure::NoMatchingControlFlow));
    }

    #[test]
    fn traces_agree_is_exact_observable_agreement() {
        let inputs = vec![vec![Value::Int(2)], vec![Value::Int(4)]];
        let frontend = crate::frontends::frontend(clara_model::frontend::Lang::MiniPy);
        let analyze = |src: &str| {
            let program = frontend.parse(src).unwrap().lower("f").unwrap();
            AnalyzedProgram::from_program(program, &inputs, clara_model::Fuel::default())
        };
        let double = analyze("def f(x):\n    return x * 2\n");
        let also_double = analyze("def f(y):\n    return y + y\n");
        let triple = analyze("def f(x):\n    return x * 3\n");
        assert!(traces_agree(&double, &also_double), "same observable behaviour must agree");
        assert!(!traces_agree(&double, &triple), "different return values must not");
    }

    #[test]
    fn merge_preserves_statement_order() {
        let first = SurfaceStmt::While {
            cond: Expr::var("c"),
            body: vec![SurfaceStmt::Assign { var: "a".into(), value: Expr::int(1), line: 3 }],
            line: 2,
        };
        let second = SurfaceStmt::While {
            cond: Expr::var("c"),
            body: vec![SurfaceStmt::Assign { var: "b".into(), value: Expr::int(2), line: 5 }],
            line: 4,
        };
        let surface = func(vec![first, second]);
        let candidates = alignment_candidates(&surface, 16);
        let merged = candidates
            .iter()
            .find_map(|c| match c.body.as_slice() {
                [SurfaceStmt::While { body, .. }] if body.len() == 2 => Some(body.clone()),
                _ => None,
            })
            .expect("a merged candidate exists");
        assert!(matches!(&merged[0], SurfaceStmt::Assign { var, .. } if var == "a"));
        assert!(matches!(&merged[1], SurfaceStmt::Assign { var, .. } if var == "b"));
    }
}
