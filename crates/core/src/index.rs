//! Pre-search candidate retrieval: a two-signal index that shortlists
//! clusters before any trace-based matching runs.
//!
//! Matching an incorrect attempt against the cluster pool (§4 + §5) costs
//! time linear in the number of clusters: every representative with the
//! attempt's control flow goes through projection matching and an ILP
//! solve. Following the search–align–repair design of Wang et al. (arXiv
//! 1711.07148), a [`CandidateIndex`] makes that cost sublinear: each stored
//! cluster is summarised by two cheap signal sets, an incoming attempt is
//! summarised the same way, and set-overlap scoring shortlists the top-k
//! clusters — only those flow into dynamic matching and the ILP.
//!
//! The two signals are:
//!
//! 1. **Structural n-grams** ([`surface_ngrams`]): 2- and 3-grams over a
//!    normalized token stream of the solution's surface IR (variables
//!    collapse to one token, literals to their type), so a buggy attempt
//!    shares most grams with solutions of the same shape even though its
//!    `structural_hash` differs.
//! 2. **Behaviour fingerprints** ([`behaviour_signals`]): per-testcase
//!    location-sequence hashes and per-variable projection hashes, all
//!    already computed at insertion by [`AnalyzedProgram`] analysis. A wrong
//!    attempt still agrees with its nearest cluster on most intermediate
//!    projections — exactly the overlap the matcher's keep-relations exploit.
//!
//! Retrieval is an *optimisation*, never a semantic gate: when overlap
//! confidence is low ([`Retrieval::confident`] is false), or when the
//! shortlisted clusters yield no repair, the caller falls back to the full
//! scan, so the repaired/no-repair verdict is identical to a scan of every
//! cluster (asserted by the retrieval-equivalence proptest in
//! `clara-server`).

use std::collections::HashMap;

use clara_lang::{Expr, Lit};
use clara_model::surface::{SurfaceFunction, SurfaceStmt};

use crate::analysis::AnalyzedProgram;

/// Upper bound on structural grams accumulated per cluster. Members beyond
/// the cap stop contributing grams (the cluster is already richly
/// described); keeps index memory bounded as a cluster absorbs thousands of
/// members.
const MAX_STRUCTURAL_GRAMS: usize = 4096;

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

fn fnv1a_bytes(mut hash: u64, bytes: &[u8]) -> u64 {
    for byte in bytes {
        hash ^= u64::from(*byte);
        hash = hash.wrapping_mul(FNV_PRIME);
    }
    hash
}

fn fnv1a_u64(hash: u64, value: u64) -> u64 {
    fnv1a_bytes(hash, &value.to_le_bytes())
}

/// A stable token code for a tag string (FNV-1a; process-independent so
/// serialized gram sets stay valid across restarts).
fn token(tag: &str) -> u64 {
    fnv1a_bytes(FNV_OFFSET, tag.as_bytes())
}

fn token_named(tag: &str, name: &str) -> u64 {
    fnv1a_bytes(fnv1a_bytes(FNV_OFFSET, tag.as_bytes()), name.as_bytes())
}

fn expr_tokens(expr: &Expr, out: &mut Vec<u64>) {
    match expr {
        Expr::Lit(Lit::Int(_)) => out.push(token("lit:int")),
        Expr::Lit(Lit::Float(_)) => out.push(token("lit:float")),
        Expr::Lit(Lit::Str(_)) => out.push(token("lit:str")),
        Expr::Lit(Lit::Bool(_)) => out.push(token("lit:bool")),
        Expr::Lit(Lit::None) => out.push(token("lit:none")),
        // All variables collapse to one token: solutions differing only in
        // naming produce identical gram sets.
        Expr::Var(_) => out.push(token("var")),
        Expr::List(items) => {
            out.push(token("list"));
            for item in items {
                expr_tokens(item, out);
            }
        }
        Expr::Tuple(items) => {
            out.push(token("tuple"));
            for item in items {
                expr_tokens(item, out);
            }
        }
        Expr::Unary(op, inner) => {
            out.push(token_named("unop", &format!("{op:?}")));
            expr_tokens(inner, out);
        }
        Expr::Binary(op, lhs, rhs) => {
            out.push(token_named("binop", &format!("{op:?}")));
            expr_tokens(lhs, out);
            expr_tokens(rhs, out);
        }
        Expr::Index(base, index) => {
            out.push(token("index"));
            expr_tokens(base, out);
            expr_tokens(index, out);
        }
        Expr::Slice(base, lo, hi) => {
            out.push(token("slice"));
            expr_tokens(base, out);
            for bound in [lo, hi] {
                match bound {
                    Some(e) => expr_tokens(e, out),
                    None => out.push(token("slice:open")),
                }
            }
        }
        Expr::Call(name, args) => {
            out.push(token_named("call", name));
            for arg in args {
                expr_tokens(arg, out);
            }
        }
        Expr::Method(receiver, name, args) => {
            out.push(token_named("method", name));
            expr_tokens(receiver, out);
            for arg in args {
                expr_tokens(arg, out);
            }
        }
    }
}

fn stmt_tokens(body: &[SurfaceStmt], out: &mut Vec<u64>) {
    for stmt in body {
        match stmt {
            SurfaceStmt::Assign { value, .. } => {
                out.push(token("assign"));
                expr_tokens(value, out);
            }
            SurfaceStmt::If { cond, then_body, else_body, .. } => {
                out.push(token("if"));
                expr_tokens(cond, out);
                out.push(token("then"));
                stmt_tokens(then_body, out);
                out.push(token("else"));
                stmt_tokens(else_body, out);
                out.push(token("end"));
            }
            SurfaceStmt::While { cond, body, .. } => {
                out.push(token("while"));
                expr_tokens(cond, out);
                out.push(token("do"));
                stmt_tokens(body, out);
                out.push(token("end"));
            }
            SurfaceStmt::ForEach { iter, body, .. } => {
                out.push(token("foreach"));
                expr_tokens(iter, out);
                out.push(token("do"));
                stmt_tokens(body, out);
                out.push(token("end"));
            }
            SurfaceStmt::Return { value, .. } => {
                out.push(token("return"));
                expr_tokens(value, out);
            }
            SurfaceStmt::Output { pieces, .. } => {
                out.push(token("output"));
                for piece in pieces {
                    expr_tokens(piece, out);
                }
            }
            SurfaceStmt::Break { .. } => out.push(token("break")),
            SurfaceStmt::Continue { .. } => out.push(token("continue")),
            SurfaceStmt::Nop { .. } => out.push(token("nop")),
        }
    }
}

/// Structural-hash n-grams of a normalized surface function: 2- and 3-grams
/// over the token stream produced by walking statements and expressions with
/// variables collapsed and literals reduced to their type. Returned sorted
/// and deduplicated.
pub fn surface_ngrams(function: &SurfaceFunction) -> Vec<u64> {
    let mut tokens = vec![fnv1a_u64(token("params"), function.params.len() as u64)];
    stmt_tokens(&function.body, &mut tokens);
    let mut grams = Vec::new();
    for n in [2usize, 3] {
        if tokens.len() < n {
            continue;
        }
        for window in tokens.windows(n) {
            let mut gram = fnv1a_u64(FNV_OFFSET, n as u64);
            for t in window {
                gram = fnv1a_u64(gram, *t);
            }
            grams.push(gram);
        }
    }
    // Degenerate bodies still get one gram so every cluster is indexable.
    if grams.is_empty() {
        let mut gram = fnv1a_u64(FNV_OFFSET, 1);
        for t in &tokens {
            gram = fnv1a_u64(gram, *t);
        }
        grams.push(gram);
    }
    grams.sort_unstable();
    grams.dedup();
    grams
}

/// Behaviour-fingerprint signals of an analysed program: the control-flow
/// signature key, one hash per testcase trace (its location sequence — the
/// per-input control-flow behaviour), and one hash per variable projection
/// (name-independent, so renamed solutions collide on purpose). All inputs
/// are values the analysis already computed at insertion time. Returned
/// sorted and deduplicated.
pub fn behaviour_signals(analyzed: &AnalyzedProgram) -> Vec<u64> {
    let mut signals = vec![fnv1a_bytes(token("sig"), analyzed.signature_key().as_bytes())];
    for (i, trace) in analyzed.traces.iter().enumerate() {
        let mut hash = fnv1a_u64(token("locs"), i as u64);
        for loc in trace.locations() {
            hash = fnv1a_u64(hash, loc.0 as u64);
        }
        signals.push(hash);
    }
    for var in &analyzed.program.vars {
        signals.push(fnv1a_u64(token("proj"), analyzed.projection_hash(var)));
    }
    signals.sort_unstable();
    signals.dedup();
    signals
}

/// The two signal sets summarising one program — a stored solution at
/// insertion time, or an incoming attempt at query time. Both vectors are
/// sorted and deduplicated.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct QuerySignals {
    /// Structural n-grams ([`surface_ngrams`]); empty when no surface IR was
    /// available (e.g. an attempt repaired without source text).
    pub structural: Vec<u64>,
    /// Behaviour fingerprints ([`behaviour_signals`]).
    pub behaviour: Vec<u64>,
}

impl QuerySignals {
    /// Summarises a program from its analysis and (when available) its
    /// surface IR.
    pub fn for_program(analyzed: &AnalyzedProgram, surface: Option<&SurfaceFunction>) -> QuerySignals {
        QuerySignals {
            structural: surface.map(surface_ngrams).unwrap_or_default(),
            behaviour: behaviour_signals(analyzed),
        }
    }
}

/// The accumulated signal sets of one cluster (union over its members,
/// structural grams capped at [`MAX_STRUCTURAL_GRAMS`]).
#[derive(Debug, Clone, Default)]
struct ClusterSignals {
    /// Sorted, deduplicated structural grams.
    structural: Vec<u64>,
    /// Sorted, deduplicated behaviour fingerprints.
    behaviour: Vec<u64>,
}

/// What a [`CandidateIndex::query`] resolved to.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Retrieval {
    /// Shortlisted cluster indices, ascending (so downstream tie-breaking by
    /// cluster index is unaffected by retrieval order).
    pub shortlist: Vec<usize>,
    /// Every cluster with a non-zero overlap, best score first (ties toward
    /// the lower index). The shortlist is the truncated head of this list;
    /// callers whose shortlist comes up empty-handed widen along the tail
    /// instead of jumping straight to an unordered full scan.
    pub ranked: Vec<usize>,
    /// Whether the overlap evidence is strong enough to trust the shortlist;
    /// callers full-scan when this is false.
    pub confident: bool,
    /// Number of clusters that scored a non-zero overlap.
    pub scored: usize,
    /// The best overlap score observed.
    pub best_score: u32,
}

/// The candidate retrieval index: per-cluster signal sets plus inverted
/// buckets (`gram → posting list of cluster ids`) for set-overlap scoring
/// that touches only the clusters sharing at least one signal with the
/// query.
#[derive(Debug, Clone, Default)]
pub struct CandidateIndex {
    entries: Vec<ClusterSignals>,
    structural_buckets: HashMap<u64, Vec<u32>>,
    behaviour_buckets: HashMap<u64, Vec<u32>>,
}

impl CandidateIndex {
    /// An empty index.
    pub fn new() -> CandidateIndex {
        CandidateIndex::default()
    }

    /// Number of clusters with an entry.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the index holds no entries at all.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Merges a member's signals into `cluster`'s entry (creating entries up
    /// to `cluster` as needed) and updates the inverted buckets. Called on
    /// every insertion, so the index rebuilds incrementally on `learn`.
    pub fn record(&mut self, cluster: usize, signals: &QuerySignals) {
        while self.entries.len() <= cluster {
            self.entries.push(ClusterSignals::default());
        }
        let entry = &mut self.entries[cluster];
        for &gram in &signals.structural {
            if entry.structural.len() >= MAX_STRUCTURAL_GRAMS {
                break;
            }
            if let Err(at) = entry.structural.binary_search(&gram) {
                entry.structural.insert(at, gram);
                push_posting(self.structural_buckets.entry(gram).or_default(), cluster as u32);
            }
        }
        for &sig in &signals.behaviour {
            if let Err(at) = entry.behaviour.binary_search(&sig) {
                entry.behaviour.insert(at, sig);
                push_posting(self.behaviour_buckets.entry(sig).or_default(), cluster as u32);
            }
        }
    }

    /// Scores every cluster sharing at least one signal with `query` and
    /// returns the top-`k` by overlap. Behaviour overlaps weigh double:
    /// agreeing on a projection or a per-input location sequence is much
    /// rarer — and much stronger evidence of alignability — than sharing a
    /// syntactic n-gram. Confidence requires the best score to reach
    /// `min_score`; below that the overlap is noise and the caller should
    /// full-scan.
    pub fn query(&self, query: &QuerySignals, k: usize, min_score: u32) -> Retrieval {
        // Stop-grams: a signal present in more than a quarter of all
        // clusters discriminates nothing — walking its posting list would
        // cost time linear in the pool for zero ranking information (the
        // classic stop-word rule). Small pools are exempt so sparse-signal
        // queries keep their confidence evidence. A query whose *whole*
        // family is the dominant one loses all its evidence to the stop
        // rule, so an unconfident first pass retries with the rule off —
        // one linear scoring pass is still far cheaper than the full
        // trace-matching scan an unconfident retrieval falls back to.
        let stop = (self.entries.len() / 4).max(64);
        let (mut scores, skipped) = self.score(query, stop);
        if skipped && scores.values().copied().max().unwrap_or(0) < min_score {
            scores = self.score(query, usize::MAX).0;
        }
        let mut ranked: Vec<(u32, u32)> = scores.into_iter().collect();
        // Highest score first; ties broken towards the older (lower-index)
        // cluster, matching the repair pipeline's own tie-breaking.
        ranked.sort_unstable_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
        let best_score = ranked.first().map(|&(_, s)| s).unwrap_or(0);
        let scored = ranked.len();
        let ranked: Vec<usize> = ranked.into_iter().map(|(c, _)| c as usize).collect();
        let mut shortlist: Vec<usize> = ranked.iter().copied().take(k).collect();
        shortlist.sort_unstable();
        Retrieval { shortlist, ranked, confident: best_score >= min_score, scored, best_score }
    }

    /// One overlap-scoring pass: walks the posting list of every query
    /// signal no longer than `stop`, returning the per-cluster scores and
    /// whether any posting list was skipped as a stop-gram.
    fn score(&self, query: &QuerySignals, stop: usize) -> (HashMap<u32, u32>, bool) {
        let mut scores: HashMap<u32, u32> = HashMap::new();
        let mut skipped = false;
        for (signals, buckets, weight) in [
            (&query.structural, &self.structural_buckets, 1u32),
            (&query.behaviour, &self.behaviour_buckets, 2u32),
        ] {
            for signal in signals {
                if let Some(postings) = buckets.get(signal) {
                    if postings.len() > stop {
                        skipped = true;
                        continue;
                    }
                    for &cluster in postings {
                        *scores.entry(cluster).or_insert(0) += weight;
                    }
                }
            }
        }
        (scores, skipped)
    }

    /// A fingerprint of one cluster's signal *shape*: clusters built from
    /// structural near-duplicates (e.g. thousands of trivially varied
    /// solutions of one family) collide here, so callers widening past an
    /// empty-handed shortlist can try one representative per shape before
    /// wading through the duplicates. Clusters indexed without surface IR
    /// fall back to their behaviour set (tagged differently so the two
    /// kinds never collide).
    pub fn shape_fingerprint(&self, cluster: usize) -> u64 {
        self.entries.get(cluster).map_or(0, |e| {
            let (tag, signals) = if e.structural.is_empty() { (1, &e.behaviour) } else { (2, &e.structural) };
            signals.iter().fold(fnv1a_u64(FNV_OFFSET, tag), |h, &s| fnv1a_u64(h, s))
        })
    }

    /// Approximate resident size of the index in bytes (entry vectors plus
    /// inverted buckets).
    pub fn resident_bytes(&self) -> usize {
        use std::mem::size_of;
        let entries: usize = self
            .entries
            .iter()
            .map(|e| {
                (e.structural.len() + e.behaviour.len()) * size_of::<u64>() + size_of::<ClusterSignals>()
            })
            .sum();
        let buckets: usize = self
            .structural_buckets
            .iter()
            .chain(self.behaviour_buckets.iter())
            .map(|(_, postings)| size_of::<u64>() + size_of::<Vec<u32>>() + postings.len() * size_of::<u32>())
            .sum();
        entries + buckets
    }

    /// Exports the per-cluster signal sets (sorted vectors, parallel to the
    /// cluster list) for serialization.
    pub fn export(&self) -> Vec<(Vec<u64>, Vec<u64>)> {
        self.entries.iter().map(|e| (e.structural.clone(), e.behaviour.clone())).collect()
    }

    /// Rebuilds an index from [`CandidateIndex::export`] output (one
    /// `(structural, behaviour)` pair per cluster, in cluster order).
    pub fn from_parts(parts: Vec<(Vec<u64>, Vec<u64>)>) -> CandidateIndex {
        let mut index = CandidateIndex::new();
        for (cluster, (structural, behaviour)) in parts.into_iter().enumerate() {
            index.record(cluster, &QuerySignals { structural, behaviour });
        }
        index
    }
}

/// Appends `cluster` to a sorted posting list, keeping it sorted and
/// duplicate-free.
fn push_posting(postings: &mut Vec<u32>, cluster: u32) {
    if let Err(at) = postings.binary_search(&cluster) {
        postings.insert(at, cluster);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use clara_lang::Value;

    fn analyzed(source: &str) -> AnalyzedProgram {
        let inputs = vec![vec![Value::Int(3)], vec![Value::Int(0)], vec![Value::Int(7)]];
        AnalyzedProgram::from_text(source, "f", &inputs, clara_model::Fuel::default()).unwrap()
    }

    fn surface(source: &str) -> SurfaceFunction {
        crate::frontends::frontend(clara_model::frontend::Lang::MiniPy)
            .parse(source)
            .unwrap()
            .surface("f")
            .unwrap()
    }

    const LOOPY: &str = "def f(n):\n    s = 0\n    for i in range(n):\n        s = s + i\n    return s\n";
    const LOOPY_RENAMED: &str =
        "def f(n):\n    total = 0\n    for k in range(n):\n        total = total + k\n    return total\n";
    const STRAIGHT: &str = "def f(n):\n    return n * 2\n";

    #[test]
    fn renamed_solutions_share_all_structural_grams() {
        let a = surface_ngrams(&surface(LOOPY));
        let b = surface_ngrams(&surface(LOOPY_RENAMED));
        assert_eq!(a, b, "renaming must not change the normalized gram set");
        let c = surface_ngrams(&surface(STRAIGHT));
        assert_ne!(a, c, "different shapes must differ");
    }

    #[test]
    fn behaviour_signals_are_name_independent_and_behaviour_sensitive() {
        let a = behaviour_signals(&analyzed(LOOPY));
        let b = behaviour_signals(&analyzed(LOOPY_RENAMED));
        assert_eq!(a, b, "renamed solutions behave identically");
        let c = behaviour_signals(&analyzed(
            "def f(n):\n    s = 1\n    for i in range(n):\n        s = s * 2\n    return s\n",
        ));
        assert_ne!(a, c, "different behaviour must differ");
    }

    #[test]
    fn query_ranks_the_matching_cluster_first() {
        let mut index = CandidateIndex::new();
        let loopy = QuerySignals::for_program(&analyzed(LOOPY), Some(&surface(LOOPY)));
        let straight = QuerySignals::for_program(&analyzed(STRAIGHT), Some(&surface(STRAIGHT)));
        index.record(0, &straight);
        index.record(1, &loopy);
        let near_loopy = QuerySignals::for_program(
            &analyzed("def f(n):\n    s = 0\n    for i in range(n):\n        s = s + 1\n    return s\n"),
            Some(&surface("def f(n):\n    s = 0\n    for i in range(n):\n        s = s + 1\n    return s\n")),
        );
        let retrieval = index.query(&near_loopy, 1, 1);
        assert!(retrieval.confident);
        assert_eq!(retrieval.shortlist, vec![1], "the loop cluster must outrank the straight-line one");
        assert!(retrieval.scored >= 1);
    }

    #[test]
    fn unrelated_queries_are_unconfident() {
        let mut index = CandidateIndex::new();
        index.record(0, &QuerySignals::for_program(&analyzed(LOOPY), Some(&surface(LOOPY))));
        let retrieval = index.query(&QuerySignals::default(), 4, 1);
        assert!(!retrieval.confident, "an empty query has no overlap evidence");
        assert!(retrieval.shortlist.is_empty());
    }

    #[test]
    fn export_and_from_parts_roundtrip() {
        let mut index = CandidateIndex::new();
        index.record(0, &QuerySignals::for_program(&analyzed(LOOPY), Some(&surface(LOOPY))));
        index.record(1, &QuerySignals::for_program(&analyzed(STRAIGHT), Some(&surface(STRAIGHT))));
        let rebuilt = CandidateIndex::from_parts(index.export());
        assert_eq!(rebuilt.export(), index.export());
        assert_eq!(rebuilt.len(), 2);
        assert!(rebuilt.resident_bytes() > 0);
        let query = QuerySignals::for_program(&analyzed(LOOPY), Some(&surface(LOOPY)));
        assert_eq!(rebuilt.query(&query, 2, 1), index.query(&query, 2, 1));
    }
}
