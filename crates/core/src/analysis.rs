//! Dynamic analysis of student attempts: lowering + trace collection.
//!
//! An [`AnalyzedProgram`] bundles a model [`Program`] with the traces obtained
//! by executing it on the assignment's test inputs (the set `I` of the
//! paper). Everything the matching, clustering and repair algorithms need is
//! derived from this structure.

use std::collections::hash_map::DefaultHasher;
use std::collections::HashMap;
use std::hash::{Hash, Hasher};

use clara_lang::{parse_program, ParseError, SourceProgram, Value};
use clara_model::frontend::{FrontendError, Lang};
use clara_model::{execute_on_inputs, lower_entry, Fuel, LowerError, Program, StructSig, Trace};

/// Why a student attempt could not be analysed.
#[derive(Debug, Clone, PartialEq)]
pub enum AnalysisError {
    /// The source text could not be parsed (MiniPy).
    Parse(ParseError),
    /// The source text could not be parsed (any non-MiniPy frontend).
    Syntax(FrontendError),
    /// The program uses constructs the model does not support.
    Unsupported(LowerError),
}

impl std::fmt::Display for AnalysisError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            AnalysisError::Parse(e) => write!(f, "{e}"),
            AnalysisError::Syntax(e) => write!(f, "{e}"),
            AnalysisError::Unsupported(e) => write!(f, "{e}"),
        }
    }
}

impl AnalysisError {
    /// `true` for the parse-failure variants (of any frontend).
    pub fn is_syntax_error(&self) -> bool {
        matches!(self, AnalysisError::Parse(_) | AnalysisError::Syntax(_))
    }
}

impl std::error::Error for AnalysisError {}

impl From<ParseError> for AnalysisError {
    fn from(e: ParseError) -> Self {
        AnalysisError::Parse(e)
    }
}

impl From<FrontendError> for AnalysisError {
    fn from(e: FrontendError) -> Self {
        AnalysisError::Syntax(e)
    }
}

impl From<LowerError> for AnalysisError {
    fn from(e: LowerError) -> Self {
        AnalysisError::Unsupported(e)
    }
}

/// A lowered program together with its traces on the assignment inputs.
#[derive(Debug, Clone)]
pub struct AnalyzedProgram {
    /// The model program.
    pub program: Program,
    /// One trace per input, in input order.
    pub traces: Vec<Trace>,
    /// A cheap fingerprint of the dynamic behaviour used as a clustering
    /// pre-filter: programs with different fingerprints cannot match.
    pub fingerprint: u64,
    /// Per-variable value projections (with trace separators) and their
    /// hashes, precomputed once at analysis time. `find_matching` probes the
    /// representative's projections on every clustering attempt, so these
    /// must not be recomputed per probe.
    projections: HashMap<String, Projection>,
}

/// A cached variable projection: the concatenated per-trace value sequences
/// and a hash consistent with `Value`'s `py_eq`-based equality.
#[derive(Debug, Clone)]
struct Projection {
    values: Vec<Value>,
    hash: u64,
}

impl AnalyzedProgram {
    /// Lowers `source`'s `entry` function and executes it on `inputs`.
    ///
    /// # Errors
    ///
    /// Returns an [`AnalysisError`] if the program cannot be lowered into the
    /// model.
    pub fn from_source(
        source: &SourceProgram,
        entry: &str,
        inputs: &[Vec<Value>],
        fuel: Fuel,
    ) -> Result<Self, AnalysisError> {
        let program = lower_entry(source, entry)?;
        Ok(Self::from_program(program, inputs, fuel))
    }

    /// Parses, lowers and executes a MiniPy source text in one step.
    ///
    /// # Errors
    ///
    /// Returns an [`AnalysisError`] for parse errors or unsupported
    /// constructs.
    pub fn from_text(
        text: &str,
        entry: &str,
        inputs: &[Vec<Value>],
        fuel: Fuel,
    ) -> Result<Self, AnalysisError> {
        let source = parse_program(text)?;
        Self::from_source(&source, entry, inputs, fuel)
    }

    /// Parses, lowers and executes a source text written in `lang`.
    ///
    /// The MiniPy path is byte-identical to [`AnalyzedProgram::from_text`]
    /// (including its error variants); other languages go through their
    /// [`clara_model::frontend::Frontend`].
    ///
    /// # Errors
    ///
    /// Returns an [`AnalysisError`] for syntax errors or unsupported
    /// constructs.
    pub fn from_text_in(
        lang: Lang,
        text: &str,
        entry: &str,
        inputs: &[Vec<Value>],
        fuel: Fuel,
    ) -> Result<Self, AnalysisError> {
        match lang {
            Lang::MiniPy => Self::from_text(text, entry, inputs, fuel),
            _ => {
                let parsed = crate::frontends::frontend(lang).parse(text)?;
                let program = parsed.lower(entry)?;
                Ok(Self::from_program(program, inputs, fuel))
            }
        }
    }

    /// Executes an already-lowered program on `inputs`.
    pub fn from_program(program: Program, inputs: &[Vec<Value>], fuel: Fuel) -> Self {
        let traces = execute_on_inputs(&program, inputs, fuel);
        let projections = compute_projections(&program, &traces);
        let fingerprint = behaviour_fingerprint(&program, &traces, &projections);
        AnalyzedProgram { program, traces, fingerprint, projections }
    }

    /// The concatenated projection of `var` over all traces (the per-trace
    /// projections separated by a marker so that boundaries cannot be
    /// confused). Precomputed at analysis time; unknown variables yield the
    /// empty projection.
    pub fn projection(&self, var: &str) -> &[Value] {
        self.projections.get(var).map(|p| p.values.as_slice()).unwrap_or(&[])
    }

    /// A hash of [`AnalyzedProgram::projection`], consistent with the
    /// `py_eq`-based equality of value slices: equal projections have equal
    /// hashes, so unequal hashes prove two projections differ.
    pub fn projection_hash(&self, var: &str) -> u64 {
        self.projections.get(var).map(|p| p.hash).unwrap_or(0)
    }

    /// The concatenated location sequence over all traces.
    pub fn location_sequence(&self) -> Vec<usize> {
        let mut out = Vec::new();
        for trace in &self.traces {
            out.extend(trace.locations().iter().map(|l| l.0));
            out.push(usize::MAX);
        }
        out
    }

    /// The structural signature key of the program.
    pub fn signature_key(&self) -> String {
        StructSig::sequence_key(&self.program.signature)
    }
}

/// Computes the per-variable projections (and their hashes) once for all
/// variables of the program.
fn compute_projections(program: &Program, traces: &[Trace]) -> HashMap<String, Projection> {
    let separator = Value::str("⋄");
    program
        .vars
        .iter()
        .map(|var| {
            let mut values = Vec::new();
            for trace in traces {
                values.extend(trace.projection(var));
                values.push(separator.clone());
            }
            let mut hasher = DefaultHasher::new();
            values.len().hash(&mut hasher);
            for value in &values {
                value.hash(&mut hasher);
            }
            (var.clone(), Projection { hash: hasher.finish(), values })
        })
        .collect()
}

/// A fingerprint of (control-flow structure, location sequence, multiset of
/// per-variable value sequences). Two programs that match necessarily have
/// equal fingerprints, so unequal fingerprints let clustering skip the full
/// matching test.
///
/// The per-variable hashes are the cached projection hashes, which hash
/// values through `Value`'s `py_eq`-consistent `Hash`. (The previous
/// rendering-based hash distinguished `1` from `1.0`, which `py_eq` — and
/// therefore the matcher — does not, so two matchable programs could be
/// missed by the pre-filter.)
fn behaviour_fingerprint(
    program: &Program,
    traces: &[Trace],
    projections: &HashMap<String, Projection>,
) -> u64 {
    let mut hasher = DefaultHasher::new();
    StructSig::sequence_key(&program.signature).hash(&mut hasher);
    for trace in traces {
        for loc in trace.locations() {
            loc.0.hash(&mut hasher);
        }
        usize::MAX.hash(&mut hasher);
    }
    // Multiset of projection hashes: order-independent combination (sum of
    // per-variable hashes) so that variable naming/order does not matter.
    let mut combined: u64 = 0;
    for projection in projections.values() {
        combined = combined.wrapping_add(projection.hash);
    }
    combined.hash(&mut hasher);
    program.vars.len().hash(&mut hasher);
    hasher.finish()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn poly(xs: &[f64]) -> Value {
        Value::List(xs.iter().map(|x| Value::Float(*x)).collect())
    }

    fn inputs() -> Vec<Vec<Value>> {
        vec![vec![poly(&[6.3, 7.6, 12.14])], vec![poly(&[3.0])], vec![poly(&[1.0, 2.0, 3.0, 4.0])]]
    }

    const C1: &str = "\
def computeDeriv(poly):
    result = []
    for e in range(1, len(poly)):
        result.append(float(poly[e]*e))
    if result == []:
        return [0.0]
    else:
        return result
";

    const C2: &str = "\
def computeDeriv(poly):
    deriv = []
    for i in xrange(1,len(poly)):
        deriv+=[float(i)*poly[i]]
    if len(deriv)==0:
        return [0.0]
    return deriv
";

    #[test]
    fn analysis_produces_one_trace_per_input() {
        let analyzed = AnalyzedProgram::from_text(C1, "computeDeriv", &inputs(), Fuel::default()).unwrap();
        assert_eq!(analyzed.traces.len(), 3);
        assert_eq!(analyzed.signature_key(), "BL(B)B");
    }

    #[test]
    fn matching_programs_have_equal_fingerprints() {
        let a = AnalyzedProgram::from_text(C1, "computeDeriv", &inputs(), Fuel::default()).unwrap();
        let b = AnalyzedProgram::from_text(C2, "computeDeriv", &inputs(), Fuel::default()).unwrap();
        assert_eq!(a.fingerprint, b.fingerprint);
    }

    #[test]
    fn different_behaviour_changes_the_fingerprint() {
        let wrong = "\
def computeDeriv(poly):
    result = []
    for e in range(len(poly)):
        result.append(float(poly[e]*e))
    if result == []:
        return [0.0]
    else:
        return result
";
        let a = AnalyzedProgram::from_text(C1, "computeDeriv", &inputs(), Fuel::default()).unwrap();
        let b = AnalyzedProgram::from_text(wrong, "computeDeriv", &inputs(), Fuel::default()).unwrap();
        assert_ne!(a.fingerprint, b.fingerprint);
    }

    #[test]
    fn parse_errors_are_reported() {
        let err = AnalyzedProgram::from_text("def f(:\n", "f", &[], Fuel::default()).unwrap_err();
        assert!(matches!(err, AnalysisError::Parse(_)));
    }

    #[test]
    fn unsupported_constructs_are_reported() {
        let err = AnalyzedProgram::from_text(
            "def g(x):\n    return x\n\ndef f(x):\n    return g(x)\n",
            "f",
            &[],
            Fuel::default(),
        )
        .unwrap_err();
        assert!(matches!(err, AnalysisError::Unsupported(_)));
    }
}
